#!/usr/bin/env python3
"""CI bench-regression harness.

Compares freshly emitted BENCH_*.json reports against the committed
baselines in bench/baselines/ and fails (exit 1) when a gated metric
regresses by more than the tolerance (default 20%).

Metric directions:
  higher  - bigger is better; fail when new < old * (1 - tol)
  lower   - smaller is better; fail when new > old * (1 + tol)
  stable  - deterministic figure; fail when it drifts more than tol
            either way (catches silent workload changes, not just
            slowdowns)
  bool    - must be true in the current report
  exact   - string/value equality with the baseline (canonical
            fingerprints: any divergence is a correctness regression or
            an intentional change that must re-bless the baseline)

Metrics carrying a `when` path are skipped unless that path is truthy in
BOTH reports — used for wall-clock gates that benches themselves only
enforce on >= 4-core machines.

Usage:
  tools/check_bench.py                 # compare all gated reports in cwd
  tools/check_bench.py --update        # re-bless baselines from cwd
  tools/check_bench.py --current-dir build
"""

import argparse
import json
import os
import shutil
import sys


def lookup(doc, path):
    """Dotted-path lookup; returns None when any step is missing."""
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def grid_total(field):
    """Sum a field over the extraction grid's successful entries."""

    def extract(doc):
        grid = doc.get("extraction_grid")
        if not isinstance(grid, list):
            return None
        return sum(e.get(field, 0) for e in grid if not e.get("failed"))

    extract.label = "extraction_grid.sum(%s)" % field
    return extract


class Metric:
    def __init__(self, path, direction, tolerance=0.20, when=None):
        self.path = path  # dotted path or callable(doc) -> value
        self.direction = direction
        self.tolerance = tolerance
        self.when = when

    @property
    def label(self):
        if callable(self.path):
            return getattr(self.path, "label", self.path.__name__)
        return self.path

    def value(self, doc):
        if callable(self.path):
            return self.path(doc)
        return lookup(doc, self.path)

    def check(self, baseline, current):
        """Returns (ok, detail)."""
        if self.when is not None:
            # A missing gate flag is indistinguishable from "not enforced"
            # only if we let it be: a bench that stops emitting the flag
            # must fail loudly, not silently skip its wall-clock gate.
            base_flag = lookup(baseline, self.when)
            cur_flag = lookup(current, self.when)
            if base_flag is None or cur_flag is None:
                side = "baseline" if base_flag is None else "current"
                return False, "gate flag %s missing from %s report" % (
                    self.when, side)
            if not base_flag or not cur_flag:
                return True, "skipped (%s not enforced)" % self.when
        old, new = self.value(baseline), self.value(current)
        if new is None:
            return False, "missing from current report"
        if self.direction == "bool":
            return bool(new), "%r" % new
        if old is None:
            return False, "missing from baseline (re-bless with --update)"
        if self.direction == "exact":
            ok = new == old
            return ok, "%r vs baseline %r" % (new, old)
        old, new = float(old), float(new)
        detail = "%.4g vs baseline %.4g (tol %d%%)" % (
            new, old, round(self.tolerance * 100))
        if old == 0:
            return new == 0, detail
        ratio = new / old
        if self.direction == "higher":
            return ratio >= 1 - self.tolerance, detail
        if self.direction == "lower":
            return ratio <= 1 + self.tolerance, detail
        if self.direction == "stable":
            return 1 - self.tolerance <= ratio <= 1 + self.tolerance, detail
        raise ValueError("unknown direction %r" % self.direction)


# The gated surface: one entry per bench report wired into CI.
GATED = {
    "BENCH_plan_cache.json": [
        # The bench's own >=2x bool gate is the wall-clock authority (a
        # 7x baseline ratio measured on one machine must not become a
        # hard gate on another); bit identity and steady-state hit
        # behavior are the deterministic correctness gates.
        Metric("gates.plan_cache_speedup_2x", "bool"),
        Metric("gates.bit_identity", "bool"),
        Metric("gates.steady_state_all_hits", "bool"),
        Metric("steady_misses", "stable"),
    ],
    "BENCH_query_fastpath.json": [
        # The bench's own gates are the wall-clock authority (they know
        # the machine's core count); a baseline ratio measured on one
        # machine must not become a hard wall-clock gate on another.
        Metric("gates.count_speedup_5x", "bool"),
        Metric("gates.bit_identity", "bool"),
        Metric("gates.batched_wallclock_2x", "bool"),
        Metric("batched_local.speedup", "higher",
               when="batched_local.gate_enforced"),
    ],
    "BENCH_index_extraction.json": [
        # The grid is a fixed simulated workload: query counts and
        # simulated latency are deterministic, so drift means the
        # extraction strategies changed behavior.
        Metric(grid_total("queries"), "stable"),
        Metric(grid_total("endpoint_ms"), "lower"),
        # Out-of-core leg (--ooc): the mmap-backed store must finish the
        # full extraction under an RLIMIT_AS cap the in-RAM vectors cannot
        # fit. A report without the "ooc" section fails these outright —
        # CI always passes --ooc, and a silently dropped leg must not
        # read as green.
        Metric("ooc.gates.disk_completed_under_cap", "bool"),
        Metric("ooc.gates.in_ram_exceeds_cap", "bool"),
        Metric("ooc.strategy", "exact"),
        Metric("ooc.triples", "stable"),
        Metric("ooc.queries", "stable"),
    ],
    "BENCH_async_extraction.json": [
        Metric("intra_speedup_at_4", "higher"),
        Metric("sim_cost_ms", "lower"),
        Metric("gates.sequential_equality", "bool"),
        Metric("gates.intra_speedup_2x", "bool"),
    ],
    "BENCH_fleet_simulation.json": [
        Metric("gates.shard_count_invariance", "bool"),
        Metric("fingerprint", "exact"),
        Metric("sim_total_makespan_ms", "lower"),
        Metric("total_failed", "stable"),
        Metric("speedup", "higher", when="gate_enforced"),
    ],
    "BENCH_mixed_timeline.json": [
        # Extraction cycles and serving sessions share one sim::EventLoop.
        # Everything on that loop is seeded and single-timeline, so the
        # event history, session transcripts, and fleet fingerprint are
        # deterministic hard gates; the overrun day is the scheduling
        # regression canary (losing it means catch-up cycles stopped
        # being exercised).
        Metric("gates.history_invariance", "bool"),
        Metric("gates.transcript_identity", "bool"),
        Metric("gates.overrun_present", "bool"),
        Metric("gates.sessions_served_nonzero", "bool"),
        Metric("fingerprint", "exact"),
        Metric("history_fingerprint", "exact"),
        Metric("transcript_fingerprint", "exact"),
        Metric("sessions_served", "stable"),
        Metric("overran_days", "stable"),
    ],
    "BENCH_delta_extraction.json": [
        # The seeded churning world is fully deterministic (simulated
        # makespan, not wall clock), so every figure here is a hard gate:
        # content divergence or a shrinking reduction means the
        # incremental pipeline changed behavior.
        Metric("gates.content_identity", "bool"),
        Metric("gates.deployment_invariance", "bool"),
        Metric("gates.makespan_reduction_3x", "bool"),
        Metric("content_fingerprint", "exact"),
        Metric("makespan_reduction", "higher"),
        Metric("query_reduction", "higher"),
        Metric("probe_skips", "stable"),
        Metric("delta_extractions", "stable"),
    ],
    "BENCH_adversarial_delta.json": [
        # Mixed honest/lying/partial/flaky fleet under kBounded. The
        # world and the adversary are seeded and frozen before the end,
        # so convergence, detection counters, and the canonical
        # fingerprint are all deterministic hard gates.
        Metric("gates.final_state_identity", "bool"),
        Metric("gates.deployment_invariance", "bool"),
        Metric("gates.adversary_detected", "bool"),
        Metric("gates.makespan_reduction_1_2x", "bool"),
        Metric("bounded_fingerprint", "exact"),
        Metric("probe_mismatches", "stable"),
        Metric("forced_refreshes", "stable"),
        Metric("quarantines_entered", "stable"),
        Metric("makespan_reduction", "higher"),
    ],
    "BENCH_exploration_serving.json": [
        # The session stream is fully seeded: transcripts and cache miss
        # counts are deterministic, so the fingerprint is a hard gate.
        # The bench's own >=2x speedup bool is the wall-clock authority.
        Metric("gates.transcript_identity", "bool"),
        Metric("gates.deterministic_misses", "bool"),
        Metric("gates.cache_speedup_2x", "bool"),
        Metric("transcript_fingerprint", "exact"),
        Metric("cache_misses", "stable"),
        Metric("sessions", "stable"),
    ],
}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--current-dir", default=".")
    parser.add_argument("--update", action="store_true",
                        help="copy current reports over the baselines")
    parser.add_argument("reports", nargs="*",
                        help="subset of report filenames to check")
    args = parser.parse_args()

    names = args.reports or sorted(GATED)
    unknown = [n for n in names if n not in GATED]
    if unknown:
        print("unknown report(s): %s" % ", ".join(unknown), file=sys.stderr)
        return 2

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for name in names:
            src = os.path.join(args.current_dir, name)
            if not os.path.exists(src):
                print("cannot bless %s: not found in %s" %
                      (name, args.current_dir), file=sys.stderr)
                return 2
            shutil.copyfile(src, os.path.join(args.baseline_dir, name))
            print("blessed %s" % name)
        return 0

    failures = 0
    for name in names:
        current_path = os.path.join(args.current_dir, name)
        baseline_path = os.path.join(args.baseline_dir, name)
        print("== %s" % name)
        if not os.path.exists(current_path):
            print("  FAIL: report not emitted (expected %s)" % current_path)
            failures += 1
            continue
        if not os.path.exists(baseline_path):
            print("  FAIL: no committed baseline (%s); run "
                  "tools/check_bench.py --update and commit" % baseline_path)
            failures += 1
            continue
        with open(current_path) as f:
            current = json.load(f)
        with open(baseline_path) as f:
            baseline = json.load(f)
        for metric in GATED[name]:
            ok, detail = metric.check(baseline, current)
            print("  %-4s %-40s %s" % ("ok" if ok else "FAIL",
                                       metric.label, detail))
            if not ok:
                failures += 1

    if failures:
        print("\n%d gated metric(s) regressed beyond tolerance" % failures)
        return 1
    print("\nall gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
