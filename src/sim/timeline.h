#ifndef HBOLD_SIM_TIMELINE_H_
#define HBOLD_SIM_TIMELINE_H_

#include <cstdint>

#include "common/clock.h"

namespace hbold::sim {

/// Read-only view of simulated time — the interface layers consult
/// instead of holding a SimClock* they could (and historically did)
/// advance themselves. Under the event-loop redesign only the loop's
/// dispatcher moves time; everything else (servers, schedulers,
/// endpoints) just reads it through this interface.
class Timeline {
 public:
  virtual ~Timeline() = default;

  /// Milliseconds since the simulation epoch.
  virtual int64_t NowMs() const = 0;

  /// Simulated day index (§3.1 refresh granularity).
  int64_t NowDay() const { return NowMs() / SimClock::kMillisPerDay; }
};

/// Adapter: views an externally-owned SimClock as a Timeline. This is the
/// compatibility shim for the pre-event-loop API — code that still drives
/// a bare SimClock (AdvanceDays between manual cycles) keeps working, and
/// the server layer reads it through the same interface it reads an
/// EventLoop through. Scheduled for removal once the last SimClock-passing
/// caller migrates.
class ClockTimeline final : public Timeline {
 public:
  explicit ClockTimeline(const SimClock* clock) : clock_(clock) {}

  int64_t NowMs() const override { return clock_->NowMs(); }

 private:
  const SimClock* clock_;
};

}  // namespace hbold::sim

#endif  // HBOLD_SIM_TIMELINE_H_
