#include "sim/event_loop.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/hash.h"

namespace hbold::sim {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kGeneric:
      return "generic";
    case EventKind::kDayBoundary:
      return "day-boundary";
    case EventKind::kChurn:
      return "churn";
    case EventKind::kCycleStart:
      return "cycle-start";
    case EventKind::kPipelineComplete:
      return "pipeline-complete";
    case EventKind::kThrottle:
      return "throttle";
    case EventKind::kCycleComplete:
      return "cycle-complete";
    case EventKind::kSessionArrival:
      return "session-arrival";
  }
  return "unknown";
}

EventLoop::EventLoop() : clock_(&owned_clock_) {}

EventLoop::EventLoop(SimClock* clock) : clock_(clock) {}

EventId EventLoop::ScheduleAt(int64_t time_ms, EventKind kind,
                              std::string label, Handler fn) {
  // The past is not schedulable: a handler asking for an elapsed instant
  // gets "as soon as possible" (now, after everything already queued at
  // now — the sequence tie-break preserves scheduling order).
  time_ms = std::max(time_ms, clock_->NowMs());
  const EventId id = next_id_++;
  queue_.emplace(std::make_pair(time_ms, id),
                 Pending{kind, std::move(label), std::move(fn)});
  time_of_.emplace(id, time_ms);
  return id;
}

EventId EventLoop::ScheduleAfter(int64_t delay_ms, EventKind kind,
                                 std::string label, Handler fn) {
  return ScheduleAt(clock_->NowMs() + std::max<int64_t>(0, delay_ms), kind,
                    std::move(label), std::move(fn));
}

bool EventLoop::Cancel(EventId id) {
  auto it = time_of_.find(id);
  if (it == time_of_.end()) return false;
  queue_.erase(std::make_pair(it->second, id));
  time_of_.erase(it);
  return true;
}

void EventLoop::Note(EventKind kind, std::string label) {
  // Annotations share the id space with scheduled events so the history's
  // sequence column stays strictly increasing within an instant.
  history_.push_back(
      EventRecord{clock_->NowMs(), next_id_++, kind, std::move(label)});
}

void EventLoop::Dispatch(int64_t time_ms, EventId id, Pending pending) {
  // Time only moves forward through here: set, never add, so a re-entrant
  // read during the handler sees exactly the event's instant.
  clock_->AdvanceMs(time_ms - clock_->NowMs());
  history_.push_back(EventRecord{time_ms, id, pending.kind, pending.label});
  if (pending.fn) pending.fn();
}

bool EventLoop::Step() {
  auto it = queue_.begin();
  if (it == queue_.end()) return false;
  const auto [time_ms, id] = it->first;
  Pending pending = std::move(it->second);
  queue_.erase(it);
  time_of_.erase(id);
  Dispatch(time_ms, id, std::move(pending));
  return true;
}

size_t EventLoop::RunUntilIdle() {
  size_t dispatched = 0;
  while (Step()) ++dispatched;
  return dispatched;
}

size_t EventLoop::RunUntil(int64_t horizon_ms) {
  size_t dispatched = 0;
  while (!queue_.empty() && queue_.begin()->first.first <= horizon_ms) {
    Step();
    ++dispatched;
  }
  if (clock_->NowMs() < horizon_ms) {
    clock_->AdvanceMs(horizon_ms - clock_->NowMs());
  }
  return dispatched;
}

std::string EventLoop::HistoryDump() const {
  std::string dump;
  dump.reserve(history_.size() * 48);
  for (const EventRecord& e : history_) {
    dump += std::to_string(e.time_ms);
    dump += '|';
    dump += std::to_string(e.sequence);
    dump += '|';
    dump += EventKindName(e.kind);
    dump += '|';
    dump += e.label;
    dump += '\n';
  }
  return dump;
}

std::string EventLoop::HistoryFingerprint() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(Fnv64(HistoryDump())));
  return buf;
}

void EventLoop::ClearHistory() { history_.clear(); }

// --------------------------------------------------------------- process

Process::Process(EventLoop* loop, EventKind kind, std::string label)
    : loop_(loop), kind_(kind), label_(std::move(label)) {}

Process::~Process() { Cancel(); }

void Process::ActivateAt(int64_t time_ms, EventLoop::Handler fn) {
  Cancel();
  pending_ = loop_->ScheduleAt(time_ms, kind_, label_, std::move(fn));
}

void Process::ActivateAfter(int64_t delay_ms, EventLoop::Handler fn) {
  Cancel();
  pending_ = loop_->ScheduleAfter(delay_ms, kind_, label_, std::move(fn));
}

void Process::Cancel() {
  if (pending_ != 0) loop_->Cancel(pending_);
  pending_ = 0;
}

bool Process::active() const {
  return pending_ != 0 && loop_->IsPending(pending_);
}

// ------------------------------------------------------- arrival process

namespace {

/// Uniform draw in (0, 1]: top 53 bits of an FNV-1a hash over the
/// canonical "seed|index" key — the same platform-stable construction the
/// fleet's churn coins use.
double UniformDraw(uint64_t seed, uint64_t index) {
  std::string key = std::to_string(seed);
  key += "|arrival|";
  key += std::to_string(index);
  const double u =
      static_cast<double>(Fnv64(key) >> 11) / 9007199254740992.0;  // 2^53
  return 1.0 - u;  // (0, 1]: log() below must never see 0
}

}  // namespace

ArrivalProcess::ArrivalProcess(uint64_t seed, double mean_gap_ms)
    : seed_(seed), mean_gap_ms_(mean_gap_ms > 0 ? mean_gap_ms : 1.0) {}

int64_t ArrivalProcess::GapMs(uint64_t index) const {
  // Inverse-CDF exponential gap, rounded to whole simulated milliseconds
  // (event times are integers). At least 1ms so arrivals stay strictly
  // ordered even at silly rates.
  const double gap = -std::log(UniformDraw(seed_, index)) * mean_gap_ms_;
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(gap)));
}

std::vector<int64_t> ArrivalProcess::ArrivalsIn(int64_t start_ms,
                                                int64_t end_ms,
                                                uint64_t first_index) const {
  std::vector<int64_t> arrivals;
  int64_t t = start_ms;
  for (uint64_t i = first_index;; ++i) {
    t += GapMs(i);
    if (t >= end_ms) break;
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace hbold::sim
