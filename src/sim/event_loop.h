#ifndef HBOLD_SIM_EVENT_LOOP_H_
#define HBOLD_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "sim/timeline.h"

namespace hbold::sim {

/// What kind of simulated occurrence an event represents. The taxonomy is
/// part of the determinism contract: HistoryDump() serializes kind names,
/// so two runs have the same history only if the same kinds fired at the
/// same times in the same order.
enum class EventKind : uint8_t {
  /// Uncategorized (tests, ad-hoc scheduling).
  kGeneric,
  /// A simulated day ticked over. Dispatching the event is what advances
  /// the clock across the boundary — day boundaries are just scheduled
  /// events, not privileged clock arithmetic.
  kDayBoundary,
  /// Fleet churn applies for a day: scheduled arrivals join, the seeded
  /// death lottery runs. Always dispatched before the same instant's
  /// kCycleStart (scheduled first, lower sequence).
  kChurn,
  /// A fleet-wide daily extraction cycle begins.
  kCycleStart,
  /// One endpoint's extraction pipeline finished, at the canonical
  /// list-scheduled completion time of its charged latency.
  kPipelineComplete,
  /// An endpoint pushed back (Timeout fallbacks) during its pipeline.
  kThrottle,
  /// The whole cycle's canonical makespan elapsed; day report finalized.
  kCycleComplete,
  /// A simulated user session arrives at the serving layer.
  kSessionArrival,
};

/// Stable lower-case name for an EventKind ("cycle-start", ...).
const char* EventKindName(EventKind kind);

/// Identifies one scheduled event; doubles as the tie-break sequence
/// number (monotonic in scheduling order).
using EventId = uint64_t;

/// One dispatched (or annotated) occurrence in the loop's history.
struct EventRecord {
  int64_t time_ms = 0;
  EventId sequence = 0;
  EventKind kind = EventKind::kGeneric;
  std::string label;
};

/// A discrete-event loop in the DESP-C++ mold: a priority queue of
/// {time_ms, sequence, event} dispatched in time order, ties broken by
/// scheduling sequence — so simultaneous events replay in exactly the
/// order they were scheduled, which is what makes event histories
/// byte-comparable across runs.
///
/// The loop drives a SimClock (owned, or bound via the compatibility
/// constructor): dispatching an event first sets the clock to the event's
/// time, so everything that reads time through sim::Timeline — schedulers,
/// availability models, simulated endpoints — sees a consistent instant.
///
/// Not thread-safe: all scheduling and dispatching must happen on one
/// thread (handlers may fan work out over pools internally, but only the
/// dispatching thread touches the loop). That single-threaded discipline
/// is deliberate — it is what keeps sequence numbers, and with them the
/// whole history, independent of worker counts.
class EventLoop final : public Timeline {
 public:
  using Handler = std::function<void()>;

  /// Owns its clock, starting at t = 0.
  EventLoop();

  /// Binds an externally-owned clock (the SimClock compatibility shim):
  /// simulated endpoints built against `clock` share the loop's timeline
  /// without being rebuilt. `clock` must outlive the loop.
  explicit EventLoop(SimClock* clock);

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  int64_t NowMs() const override { return clock_->NowMs(); }

  /// The driven clock — what legacy SimClock-reading code binds to.
  SimClock* clock() { return clock_; }
  const SimClock* clock() const { return clock_; }

  /// Schedules `fn` at absolute simulated time `time_ms` (clamped to now:
  /// the past is not schedulable). Returns the event's id.
  EventId ScheduleAt(int64_t time_ms, EventKind kind, std::string label,
                     Handler fn);

  /// Schedules `fn` `delay_ms` after now (negative clamps to now).
  EventId ScheduleAfter(int64_t delay_ms, EventKind kind, std::string label,
                        Handler fn);

  /// Removes a pending event. False when already dispatched, cancelled,
  /// or unknown. Cancelled events never enter the history.
  bool Cancel(EventId id);

  /// True while `id` is scheduled but not yet dispatched or cancelled.
  bool IsPending(EventId id) const { return time_of_.count(id) > 0; }

  /// Appends an annotation to the history at the current instant without
  /// scheduling anything — how handlers record sub-occurrences (individual
  /// churn deaths, throttle pressure) that have no handler of their own.
  void Note(EventKind kind, std::string label);

  /// Dispatches the next pending event (advancing the clock to its time).
  /// False when the queue is empty.
  bool Step();

  /// Dispatches until the queue drains; returns events dispatched.
  size_t RunUntilIdle();

  /// Dispatches every event with time <= `horizon_ms`, then advances the
  /// clock to the horizon (a bare time-passes fast-forward). Events
  /// scheduled beyond the horizon stay queued. Returns events dispatched.
  size_t RunUntil(int64_t horizon_ms);

  size_t pending() const { return queue_.size(); }

  /// Every dispatched event and annotation, in dispatch order.
  const std::vector<EventRecord>& history() const { return history_; }

  /// Canonical one-line-per-event serialization of the history:
  /// "time_ms|seq|kind|label\n". Two runs of the same seeded world are
  /// the same simulation iff these strings are byte-identical — the
  /// event-loop half of the determinism contract (FleetReport::
  /// CanonicalDump() is the report half).
  std::string HistoryDump() const;

  /// FNV-1a fingerprint of HistoryDump(), as 16 hex chars.
  std::string HistoryFingerprint() const;

  /// Forgets the recorded history (queue and clock untouched) — lets
  /// long simulations bound memory once a segment has been fingerprinted.
  void ClearHistory();

 private:
  struct Pending {
    EventKind kind;
    std::string label;
    Handler fn;
  };

  void Dispatch(int64_t time_ms, EventId id, Pending pending);

  SimClock owned_clock_;
  SimClock* clock_;
  /// Keyed by (time, sequence): iteration order IS dispatch order, and
  /// erase-by-id stays cheap for Cancel.
  std::map<std::pair<int64_t, EventId>, Pending> queue_;
  /// Cancel/IsPending index: id -> scheduled time.
  std::map<EventId, int64_t> time_of_;
  EventId next_id_ = 1;
  std::vector<EventRecord> history_;
};

/// Handle to a recurring simulated activity (DESP-C++'s "process"): owns
/// at most one pending activation on the loop and cancels it on
/// destruction, so an activity cannot fire into a destroyed owner. Each
/// activation is a plain event (same kind/label prefix); the handler
/// typically re-activates the process to continue the chain — the fleet's
/// daily-cycle chain is one Process.
class Process {
 public:
  /// `loop` must outlive the process.
  Process(EventLoop* loop, EventKind kind, std::string label);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Schedules the next activation (cancelling any pending one).
  void ActivateAt(int64_t time_ms, EventLoop::Handler fn);
  void ActivateAfter(int64_t delay_ms, EventLoop::Handler fn);

  /// Cancels the pending activation, if any.
  void Cancel();

  /// True while an activation is scheduled but not yet dispatched.
  bool active() const;

  const std::string& label() const { return label_; }

 private:
  EventLoop* loop_;
  EventKind kind_;
  std::string label_;
  EventId pending_ = 0;
};

/// Seeded arrival-process generator: deterministic exponential-ish
/// inter-arrival gaps from hashed uniform draws, so a workload's arrival
/// times are a pure function of (seed, index) — identical across runs,
/// deployment shapes, and generation order. Used to pour user sessions
/// onto the shared loop next to extraction traffic.
class ArrivalProcess {
 public:
  /// `mean_gap_ms` is the mean inter-arrival time (must be > 0).
  ArrivalProcess(uint64_t seed, double mean_gap_ms);

  /// Gap before arrival `index` (index-addressed, stateless: draw 7 is
  /// the same whether or not draws 0..6 were ever asked for).
  int64_t GapMs(uint64_t index) const;

  /// Absolute arrival times in [start_ms, end_ms), oldest first, starting
  /// from draw `first_index`. Cumulative from `start_ms`.
  std::vector<int64_t> ArrivalsIn(int64_t start_ms, int64_t end_ms,
                                  uint64_t first_index = 0) const;

 private:
  uint64_t seed_;
  double mean_gap_ms_;
};

}  // namespace hbold::sim

#endif  // HBOLD_SIM_EVENT_LOOP_H_
