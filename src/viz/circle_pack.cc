#include "viz/circle_pack.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hbold::viz {

namespace {

struct Node {
  double x = 0, y = 0, r = 0;
  int next = -1;
  int prev = -1;
};

bool Intersects(const Node& a, const Node& b) {
  double dr = a.r + b.r - 1e-6;
  double dx = b.x - a.x, dy = b.y - a.y;
  return dr > 0 && dr * dr > dx * dx + dy * dy;
}

/// Positions c tangent to both a and b (d3's place()).
void Place(const Node& b, const Node& a, Node* c) {
  double dx = b.x - a.x, dy = b.y - a.y;
  double d2 = dx * dx + dy * dy;
  if (d2 > 1e-12) {
    double a2 = a.r + c->r;
    a2 *= a2;
    double b2 = b.r + c->r;
    b2 *= b2;
    if (a2 > b2) {
      double x = (d2 + b2 - a2) / (2 * d2);
      double y = std::sqrt(std::max(0.0, b2 / d2 - x * x));
      c->x = b.x - x * dx - y * dy;
      c->y = b.y - x * dy + y * dx;
    } else {
      double x = (d2 + a2 - b2) / (2 * d2);
      double y = std::sqrt(std::max(0.0, a2 / d2 - x * x));
      c->x = a.x + x * dx - y * dy;
      c->y = a.y + x * dy + y * dx;
    }
  } else {
    c->x = a.x + c->r;
    c->y = a.y;
  }
}

/// Weighted midpoint score of the front pair (node, node.next); the pair
/// closest to the origin is the best place to grow the pack.
double PairScore(const std::vector<Node>& nodes, int i) {
  const Node& a = nodes[static_cast<size_t>(i)];
  const Node& b = nodes[static_cast<size_t>(a.next)];
  double ab = a.r + b.r;
  if (ab <= 0) return 0;
  double dx = (a.x * b.r + b.x * a.r) / ab;
  double dy = (a.y * b.r + b.y * a.r) / ab;
  return dx * dx + dy * dy;
}

}  // namespace

std::vector<Point> PackSiblings(const std::vector<double>& radii) {
  // Faithful port of d3-hierarchy's packEnclose front chain (Wang et al.).
  const size_t n = radii.size();
  std::vector<Node> nodes(n);
  for (size_t i = 0; i < n; ++i) nodes[i].r = std::max(radii[i], 1e-9);
  if (n == 0) return {};
  if (n == 1) {
    return {Point{0, 0}};
  }
  // First two circles tangent, straddling the origin.
  nodes[0].x = -nodes[1].r;
  nodes[1].x = nodes[0].r;
  nodes[1].y = 0;
  if (n == 2) {
    return {Point{nodes[0].x, 0}, Point{nodes[1].x, 0}};
  }
  // Third circle tangent to the first two: place(b, a, c).
  Place(nodes[1], nodes[0], &nodes[2]);

  auto next = [&](int i) -> int& { return nodes[static_cast<size_t>(i)].next; };
  auto prev = [&](int i) -> int& { return nodes[static_cast<size_t>(i)].prev; };

  // Circular front chain a(0) -> b(1) -> c(2) -> a, exactly as d3 links it.
  int a = 0, b = 1;
  next(0) = 1;
  prev(1) = 0;
  next(1) = 2;
  prev(2) = 1;
  next(2) = 0;
  prev(0) = 2;

  for (size_t i = 3; i < n; ++i) {
    Node& c = nodes[i];
    // d3: place(a._, b._, c) — note the (a, b) order in the main loop.
    Place(nodes[static_cast<size_t>(a)], nodes[static_cast<size_t>(b)], &c);

    // Walk the front in both directions looking for an intersection; on
    // conflict, shrink the front to the offending circle and retry.
    int j = next(b);
    int k = prev(a);
    double sj = nodes[static_cast<size_t>(b)].r;
    double sk = nodes[static_cast<size_t>(a)].r;
    bool retry = false;
    do {
      if (sj <= sk) {
        if (Intersects(nodes[static_cast<size_t>(j)], c)) {
          b = j;
          next(a) = b;
          prev(b) = a;
          retry = true;
          break;
        }
        sj += nodes[static_cast<size_t>(j)].r;
        j = next(j);
      } else {
        if (Intersects(nodes[static_cast<size_t>(k)], c)) {
          a = k;
          next(a) = b;
          prev(b) = a;
          retry = true;
          break;
        }
        sk += nodes[static_cast<size_t>(k)].r;
        k = prev(k);
      }
    } while (j != next(k));
    if (retry) {
      --i;
      continue;
    }

    // Insert c between a and b on the front.
    int ci = static_cast<int>(i);
    c.prev = a;
    c.next = b;
    next(a) = ci;
    prev(b) = ci;
    b = ci;

    // Move (a, b) to the front pair closest to the origin.
    double best = PairScore(nodes, a);
    int cur = next(b);
    while (cur != b) {
      double score = PairScore(nodes, cur);
      if (score < best) {
        best = score;
        a = cur;
      }
      cur = next(cur);
    }
    b = next(a);
  }

  std::vector<Point> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = Point{nodes[i].x, nodes[i].y};
  return out;
}

Circle EncloseCircles(const std::vector<Circle>& circles) {
  if (circles.empty()) return Circle{0, 0, 0};
  // Iterative shrinking heuristic: move the center toward the farthest
  // circle; the step shrinks geometrically so the center converges.
  double cx = 0, cy = 0;
  for (const Circle& c : circles) {
    cx += c.x;
    cy += c.y;
  }
  cx /= static_cast<double>(circles.size());
  cy /= static_cast<double>(circles.size());

  double step = 0.5;
  for (int iter = 0; iter < 200; ++iter) {
    const Circle* far = nullptr;
    double far_dist = -1;
    for (const Circle& c : circles) {
      double d = std::hypot(c.x - cx, c.y - cy) + c.r;
      if (d > far_dist) {
        far_dist = d;
        far = &c;
      }
    }
    double dx = far->x - cx, dy = far->y - cy;
    cx += dx * step * 0.2;
    cy += dy * step * 0.2;
    step *= 0.98;
  }
  double radius = 0;
  for (const Circle& c : circles) {
    radius = std::max(radius, std::hypot(c.x - cx, c.y - cy) + c.r);
  }
  // Tiny slack guarantees ContainsCircle holds despite floating error.
  return Circle{cx, cy, radius * (1 + 1e-9) + 1e-9};
}

namespace {

/// Recursive result: circles of the subtree in coordinates local to the
/// subtree's own enclosing circle center; radius of that enclosing circle.
struct SubPack {
  double radius = 0;
  std::vector<PackedCircle> circles;  // subtree root is circles[0]
};

SubPack PackNode(const Hierarchy& node, size_t depth, size_t group,
                 double padding_fraction) {
  SubPack result;
  if (node.IsLeaf()) {
    // Mirror Hierarchy's fill rule: non-finite or non-positive leaf
    // values get unit weight instead of a NaN/zero-radius circle.
    double v = std::isfinite(node.value) && node.value > 0 ? node.value : 1.0;
    result.radius = std::sqrt(v / kPi);
    result.circles.push_back(PackedCircle{
        node.name, depth, group, v, Circle{0, 0, result.radius}});
    return result;
  }

  std::vector<double> values = node.ChildValues();
  std::vector<SubPack> subs;
  subs.reserve(node.children.size());
  for (size_t i = 0; i < node.children.size(); ++i) {
    size_t child_group = depth == 0 ? i : group;
    SubPack sub =
        PackNode(node.children[i], depth + 1, child_group, padding_fraction);
    // Leaf areas must be proportional to values *within this parent*:
    // rescale the subtree so its enclosing radius matches sqrt(value/pi).
    double target = std::sqrt(values[i] / kPi);
    double scale = sub.radius > 0 ? target / sub.radius : 1.0;
    for (PackedCircle& pc : sub.circles) {
      pc.circle.x *= scale;
      pc.circle.y *= scale;
      pc.circle.r *= scale;
    }
    sub.radius = target;
    subs.push_back(std::move(sub));
  }

  // Pack the children as sibling circles with padding.
  double max_r = 0;
  for (const SubPack& s : subs) max_r = std::max(max_r, s.radius);
  double pad = max_r * padding_fraction * 2;
  std::vector<double> radii;
  radii.reserve(subs.size());
  for (const SubPack& s : subs) radii.push_back(s.radius + pad);
  std::vector<Point> centers = PackSiblings(radii);

  std::vector<Circle> outlines;
  outlines.reserve(subs.size());
  for (size_t i = 0; i < subs.size(); ++i) {
    outlines.push_back(Circle{centers[i].x, centers[i].y, subs[i].radius});
  }
  Circle enclosing = EncloseCircles(outlines);
  result.radius = enclosing.r + pad;

  result.circles.push_back(PackedCircle{
      node.name, depth, group,
      node.EffectiveValue(), Circle{0, 0, result.radius}});
  for (size_t i = 0; i < subs.size(); ++i) {
    double ox = centers[i].x - enclosing.x;
    double oy = centers[i].y - enclosing.y;
    for (PackedCircle& pc : subs[i].circles) {
      pc.circle.x += ox;
      pc.circle.y += oy;
      result.circles.push_back(std::move(pc));
    }
  }
  return result;
}

}  // namespace

std::vector<PackedCircle> CirclePackLayout(const Hierarchy& root,
                                           const CirclePackOptions& options) {
  SubPack packed = PackNode(root, 0, 0, options.padding_fraction);
  double scale = packed.radius > 0 ? options.radius / packed.radius : 1.0;
  for (PackedCircle& pc : packed.circles) {
    pc.circle.x *= scale;
    pc.circle.y *= scale;
    pc.circle.r *= scale;
  }
  return std::move(packed.circles);
}

}  // namespace hbold::viz
