#include "viz/color.h"

#include <cmath>
#include <cstdio>

namespace hbold::viz {

std::string Color::ToHex() const {
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  return buf;
}

Color FromHsl(double h, double s, double l) {
  h = std::fmod(std::fmod(h, 360.0) + 360.0, 360.0);
  double c = (1 - std::fabs(2 * l - 1)) * s;
  double hp = h / 60.0;
  double x = c * (1 - std::fabs(std::fmod(hp, 2.0) - 1));
  double r1 = 0, g1 = 0, b1 = 0;
  if (hp < 1) {
    r1 = c;
    g1 = x;
  } else if (hp < 2) {
    r1 = x;
    g1 = c;
  } else if (hp < 3) {
    g1 = c;
    b1 = x;
  } else if (hp < 4) {
    g1 = x;
    b1 = c;
  } else if (hp < 5) {
    r1 = x;
    b1 = c;
  } else {
    r1 = c;
    b1 = x;
  }
  double m = l - c / 2;
  auto to8 = [](double v) {
    int i = static_cast<int>(std::lround(v * 255));
    if (i < 0) i = 0;
    if (i > 255) i = 255;
    return static_cast<uint8_t>(i);
  };
  return Color{to8(r1 + m), to8(g1 + m), to8(b1 + m)};
}

Color CategoricalColor(size_t index) {
  // Golden-angle hue walk gives well-separated hues for any count.
  double hue = std::fmod(static_cast<double>(index) * 137.508, 360.0);
  double light = 0.55 + 0.08 * static_cast<double>((index / 7) % 3);
  return FromHsl(hue, 0.62, light);
}

Color Lighten(const Color& c, double amount) {
  auto mix = [&](uint8_t v) {
    double out = v + (255 - v) * amount;
    if (out > 255) out = 255;
    return static_cast<uint8_t>(out);
  };
  return Color{mix(c.r), mix(c.g), mix(c.b)};
}

}  // namespace hbold::viz
