#ifndef HBOLD_VIZ_LAYOUT_CACHE_H_
#define HBOLD_VIZ_LAYOUT_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster_schema.h"
#include "schema/schema_summary.h"
#include "viz/circle_pack.h"
#include "viz/edge_bundling.h"
#include "viz/hierarchy.h"
#include "viz/sunburst.h"
#include "viz/treemap.h"

namespace hbold::viz {

/// Rendering knobs for one full layout set (all four Fig. 4-7 views).
struct LayoutSetOptions {
  double treemap_width = 800.0;
  double treemap_height = 600.0;
  TreemapOptions treemap;
  SunburstOptions sunburst;
  CirclePackOptions circle_pack;
  EdgeBundlingOptions bundling;

  /// Stable FNV-1a fingerprint over every knob — the options half of the
  /// cache key, so two services with different view settings never share
  /// entries.
  uint64_t Fingerprint() const;
};

/// Everything one "open cluster schema" interaction needs rendered: the
/// four layout geometries plus their SVG documents, and a byte-stable
/// fingerprint over the rendered output. Computed once per distinct
/// cluster-schema content, then served from the LayoutCache.
struct LayoutSet {
  std::vector<TreemapCell> treemap;
  std::vector<SunburstSlice> sunburst;
  std::vector<PackedCircle> circles;
  EdgeBundlingLayout bundling;
  std::string treemap_svg;
  std::string sunburst_svg;
  std::string circle_pack_svg;
  std::string bundling_svg;
  /// FNV-1a over the four rendered SVG byte streams — the geometry
  /// fingerprint session transcripts embed, so any divergence between the
  /// cached and on-the-fly paths (or across thread counts) is caught by
  /// byte comparison of transcripts.
  uint64_t geometry_fingerprint = 0;
};

/// Computes all four layouts and renders them to SVG — the cacheable viz
/// entry point. Deterministic: a pure function of its arguments.
LayoutSet ComputeLayoutSet(const schema::SchemaSummary& summary,
                           const cluster::ClusterSchema& clusters,
                           const std::string& dataset_name,
                           const LayoutSetOptions& options);

struct LayoutCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t epoch_flushes = 0;
};

/// Thread-safe LRU cache of LayoutSets keyed on (cluster-schema content
/// fingerprint, options fingerprint), generation-invalidated like the
/// query engine's PlanCache: the serving layer bumps the epoch whenever it
/// refreshes its store snapshots, and a mismatched epoch flushes the
/// cache wholesale. Keys are content fingerprints, so even a stale entry
/// can never be *wrong* — the epoch bound only keeps dead schemas from
/// pinning memory across extraction cycles.
///
/// Lookups are single-flight: concurrent requests for the same key block
/// on one computation instead of racing it, which both saves the duplicate
/// work and keeps hit/miss counters deterministic under any thread count
/// (misses == distinct keys requested, always).
class LayoutCache {
 public:
  /// `capacity` is clamped to >= 1.
  explicit LayoutCache(size_t capacity = 256);

  /// Returns the cached set for the key, computing it via `compute` on
  /// first request. `compute` runs outside the cache lock; concurrent
  /// callers with the same key wait for the in-flight computation.
  std::shared_ptr<const LayoutSet> GetOrCompute(
      uint64_t cluster_fingerprint, uint64_t options_fingerprint,
      const std::function<LayoutSet()>& compute);

  /// Flushes everything when `epoch` differs from the current epoch (the
  /// PlanCache idiom: callers pass their snapshot generation).
  void SetEpoch(uint64_t epoch);

  LayoutCacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  using Key = std::pair<uint64_t, uint64_t>;
  struct Entry {
    std::shared_future<std::shared_ptr<const LayoutSet>> future;
    std::list<Key>::iterator lru_it;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t epoch_ = 0;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = most recently used
  LayoutCacheStats stats_;
};

}  // namespace hbold::viz

#endif  // HBOLD_VIZ_LAYOUT_CACHE_H_
