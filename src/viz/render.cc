#include "viz/render.h"

#include <algorithm>
#include <cmath>

namespace hbold::viz {

SvgDocument RenderTreemap(const std::vector<TreemapCell>& cells, double width,
                          double height) {
  SvgDocument doc(width, height);
  for (const TreemapCell& cell : cells) {
    if (cell.depth == 0) continue;  // root is the canvas
    Color base = CategoricalColor(cell.group);
    if (cell.depth == 1) {
      doc.AddRect(cell.rect, Style::Fill(Lighten(base, 0.55)), 2);
      Style border = Style::Stroke(base, 1.5);
      doc.AddRect(cell.rect, border, 2);
      if (cell.rect.w > 40 && cell.rect.h > 16) {
        doc.AddText(Point{cell.rect.x + 4, cell.rect.y + 12}, cell.name, 11,
                    "#333");
      }
    } else {
      doc.AddRect(cell.rect, Style::Fill(base, 0.9), 1);
      if (cell.rect.w > 46 && cell.rect.h > 14) {
        doc.AddText(Point{cell.rect.x + 3, cell.rect.y + 11}, cell.name, 9,
                    "#ffffff");
      }
    }
  }
  return doc;
}

SvgDocument RenderSunburst(const std::vector<SunburstSlice>& slices,
                           double radius) {
  double size = radius * 2 + 20;
  SvgDocument doc(size, size);
  Point center{size / 2, size / 2};
  for (const SunburstSlice& slice : slices) {
    Color base = CategoricalColor(slice.group);
    Color fill = slice.depth == 1 ? base : Lighten(base, 0.35);
    Style style = Style::Fill(fill);
    style.stroke = "#ffffff";
    style.stroke_width = 0.8;
    doc.AddAnnularSector(center, slice.r0, slice.r1, slice.a0, slice.a1,
                         style);
    // Radial labels on sufficiently wide slices.
    double span = slice.a1 - slice.a0;
    if (span * (slice.r0 + slice.r1) / 2 > 24) {
      double mid = (slice.a0 + slice.a1) / 2;
      double r = (slice.r0 + slice.r1) / 2;
      Point p{center.x + r * std::cos(mid), center.y + r * std::sin(mid)};
      doc.AddText(p, slice.name, 9, "#222", "middle");
    }
  }
  return doc;
}

SvgDocument RenderCirclePack(const std::vector<PackedCircle>& circles,
                             double radius) {
  double size = radius * 2 + 20;
  SvgDocument doc(size, size);
  Point center{size / 2, size / 2};
  // Draw outer circles first so leaves stay visible.
  std::vector<const PackedCircle*> ordered;
  ordered.reserve(circles.size());
  for (const PackedCircle& c : circles) ordered.push_back(&c);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const PackedCircle* a, const PackedCircle* b) {
                     return a->depth < b->depth;
                   });
  for (const PackedCircle* c : ordered) {
    Circle shifted{c->circle.x + center.x, c->circle.y + center.y,
                   c->circle.r};
    if (c->depth == 0) {
      Style outer = Style::Stroke(Color{160, 160, 160}, 1.5);
      doc.AddCircle(shifted, outer);
    } else if (!c->name.empty() && c->depth == 1) {
      Color base = CategoricalColor(c->group);
      Style s = Style::Fill(Lighten(base, 0.6), 0.9);
      s.stroke = base.ToHex();
      s.stroke_width = 1.2;
      doc.AddCircle(shifted, s);
    } else {
      Color base = CategoricalColor(c->group);
      doc.AddCircle(shifted, Style::Fill(base, 0.9));
      if (shifted.r > 18) {
        doc.AddText(Point{shifted.x, shifted.y + 3}, c->name, 9, "#ffffff",
                    "middle");
      }
    }
  }
  return doc;
}

SvgDocument RenderEdgeBundling(const EdgeBundlingLayout& layout, double radius,
                               int focus_leaf) {
  double size = radius * 2 + 140;  // label margin
  SvgDocument doc(size, size);
  Point center{size / 2, size / 2};

  // Classify leaves relative to the focus: domains point at the focus
  // (focus is their property's range); ranges are pointed at by the focus.
  std::vector<int> role(layout.leaves.size(), 0);  // 1=focus 2=domain 3=range
  if (focus_leaf >= 0) {
    role[static_cast<size_t>(focus_leaf)] = 1;
    for (const BundledEdge& e : layout.edges) {
      if (static_cast<int>(e.dst_leaf) == focus_leaf &&
          static_cast<int>(e.src_leaf) != focus_leaf) {
        role[e.src_leaf] = 2;
      }
      if (static_cast<int>(e.src_leaf) == focus_leaf &&
          static_cast<int>(e.dst_leaf) != focus_leaf) {
        role[e.dst_leaf] = 3;
      }
    }
  }

  for (const BundledEdge& e : layout.edges) {
    std::vector<Point> shifted = e.polyline;
    for (Point& p : shifted) {
      p.x += center.x;
      p.y += center.y;
    }
    bool touches_focus =
        focus_leaf >= 0 && (static_cast<int>(e.src_leaf) == focus_leaf ||
                            static_cast<int>(e.dst_leaf) == focus_leaf);
    Style s = touches_focus
                  ? Style::Stroke(Color{200, 60, 40}, 1.6, 0.85)
                  : Style::Stroke(Color{120, 140, 190}, 0.9, 0.4);
    doc.AddPolyline(shifted, s);
  }

  for (size_t i = 0; i < layout.leaves.size(); ++i) {
    const BundleLeaf& leaf = layout.leaves[i];
    Point p{leaf.position.x + center.x, leaf.position.y + center.y};
    Color dot = CategoricalColor(leaf.cluster);
    std::string text_color = "#333";
    if (role[i] == 1) {
      dot = Color{20, 20, 20};
      text_color = "#000000";
    } else if (role[i] == 2) {
      dot = Color{200, 40, 40};  // rdfs:domain classes, red
      text_color = "#c02020";
    } else if (role[i] == 3) {
      dot = Color{30, 150, 60};  // rdfs:range classes, green
      text_color = "#1e9640";
    }
    doc.AddCircle(Circle{p.x, p.y, role[i] == 1 ? 5.0 : 3.5},
                  Style::Fill(dot));
    // Labels placed outward along the leaf's angle, rotated to read along
    // the radius.
    double deg = leaf.angle * 180 / kPi;
    bool flip = deg > 90 && deg < 270;
    double lr = radius + 10;
    Point lp{center.x + lr * std::cos(leaf.angle),
             center.y + lr * std::sin(leaf.angle)};
    doc.AddText(lp, leaf.label, 10, text_color, flip ? "end" : "start",
                flip ? deg + 180 : deg);
  }
  return doc;
}

SvgDocument RenderGraph(const std::vector<GraphNode>& nodes,
                        const std::vector<ForceEdge>& edges,
                        const std::vector<Point>& positions, double width,
                        double height) {
  SvgDocument doc(width, height);
  for (const ForceEdge& e : edges) {
    if (e.a >= positions.size() || e.b >= positions.size()) continue;
    doc.AddLine(positions[e.a], positions[e.b],
                Style::Stroke(Color{150, 150, 160}, 1.0, 0.6));
  }
  for (size_t i = 0; i < nodes.size() && i < positions.size(); ++i) {
    Color c = CategoricalColor(nodes[i].group);
    Style s = Style::Fill(c);
    s.stroke = "#ffffff";
    s.stroke_width = 1.2;
    doc.AddCircle(Circle{positions[i].x, positions[i].y, nodes[i].size}, s);
    doc.AddText(Point{positions[i].x, positions[i].y - nodes[i].size - 3},
                nodes[i].label, 10, "#333", "middle");
  }
  return doc;
}

}  // namespace hbold::viz
