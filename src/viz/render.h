#ifndef HBOLD_VIZ_RENDER_H_
#define HBOLD_VIZ_RENDER_H_

#include <string>
#include <vector>

#include "viz/circle_pack.h"
#include "viz/edge_bundling.h"
#include "viz/force_layout.h"
#include "viz/sunburst.h"
#include "viz/svg.h"
#include "viz/treemap.h"

namespace hbold::viz {

/// Renders the Fig. 4 treemap of a Cluster Schema to SVG.
SvgDocument RenderTreemap(const std::vector<TreemapCell>& cells, double width,
                          double height);

/// Renders the Fig. 5 sunburst.
SvgDocument RenderSunburst(const std::vector<SunburstSlice>& slices,
                           double radius);

/// Renders the Fig. 6 circle packing.
SvgDocument RenderCirclePack(const std::vector<PackedCircle>& circles,
                             double radius);

/// Renders the Fig. 7 hierarchical edge bundling. `focus_leaf` >= 0
/// highlights the class of interest with its rdfs:domain (red) and
/// rdfs:range (green) counterparts, as in the paper's figure.
SvgDocument RenderEdgeBundling(const EdgeBundlingLayout& layout, double radius,
                               int focus_leaf = -1);

/// A labeled node for graph rendering (Fig. 2 views).
struct GraphNode {
  std::string label;
  double size = 8;     // radius
  size_t group = 0;    // color index
};

/// Renders a node-link diagram from a force layout.
SvgDocument RenderGraph(const std::vector<GraphNode>& nodes,
                        const std::vector<ForceEdge>& edges,
                        const std::vector<Point>& positions, double width,
                        double height);

}  // namespace hbold::viz

#endif  // HBOLD_VIZ_RENDER_H_
