#ifndef HBOLD_VIZ_SUNBURST_H_
#define HBOLD_VIZ_SUNBURST_H_

#include <string>
#include <vector>

#include "viz/hierarchy.h"

namespace hbold::viz {

/// One annular slice of the sunburst (Fig. 5). Angles are radians,
/// counterclockwise from the positive x axis; `a1 - a0` is proportional to
/// the node's effective value within its parent. Depth-1 is the inner ring
/// (clusters), depth-2 the outer ring (classes).
struct SunburstSlice {
  std::string name;
  size_t depth = 0;
  size_t group = 0;  // depth-1 ancestor index (for coloring)
  double value = 0;
  double a0 = 0;
  double a1 = 0;
  double r0 = 0;  // inner radius
  double r1 = 0;  // outer radius
};

struct SunburstOptions {
  double radius = 300.0;
  /// Radius of the empty center disk, as a fraction of `radius`.
  double inner_hole = 0.25;
  /// Gap between rings, absolute units.
  double ring_gap = 1.0;
};

/// Radial partition layout: rings per depth, angular extent proportional to
/// value. The root (depth 0) is not emitted (it would be the full disk).
std::vector<SunburstSlice> SunburstLayout(const Hierarchy& root,
                                          const SunburstOptions& options = {});

}  // namespace hbold::viz

#endif  // HBOLD_VIZ_SUNBURST_H_
