#ifndef HBOLD_VIZ_HIERARCHY_H_
#define HBOLD_VIZ_HIERARCHY_H_

#include <string>
#include <vector>

#include "cluster/cluster_schema.h"
#include "schema/schema_summary.h"

namespace hbold::viz {

/// Generic weighted hierarchy consumed by the treemap / sunburst / circle-
/// pack layouts: dataset -> clusters -> classes for the Cluster Schema
/// views (Figs. 4-6).
struct Hierarchy {
  std::string name;
  /// Leaf quantity (class instance count). Internal nodes use the sum of
  /// their leaves; a leaf with value 0 receives an equal share of its
  /// parent (the paper: "if no quantity is assigned to a class, its area
  /// is divided equally amongst the other classes within its cluster").
  double value = 0;
  std::vector<Hierarchy> children;

  bool IsLeaf() const { return children.empty(); }

  /// Sum of effective leaf values below this node (leaves with zero value
  /// count as the mean of their non-zero siblings, or 1 if all are zero).
  double EffectiveValue() const;

  /// Effective values of direct children, aligned by index.
  std::vector<double> ChildValues() const;

  /// Number of nodes in the subtree (including this one).
  size_t TreeSize() const;
  /// Maximum depth below this node (0 for a leaf).
  size_t MaxDepth() const;
};

/// dataset -> clusters -> classes, with class instance counts as values.
/// Cluster node names are the degree-based cluster labels.
Hierarchy HierarchyFromClusterSchema(const cluster::ClusterSchema& cs,
                                     const schema::SchemaSummary& summary,
                                     const std::string& dataset_name);

}  // namespace hbold::viz

#endif  // HBOLD_VIZ_HIERARCHY_H_
