#ifndef HBOLD_VIZ_FORCE_LAYOUT_H_
#define HBOLD_VIZ_FORCE_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "viz/geometry.h"

namespace hbold::viz {

/// Edge for the force layout (indexes into the node list).
struct ForceEdge {
  size_t a = 0;
  size_t b = 0;
  double weight = 1.0;
};

struct ForceLayoutOptions {
  double width = 800;
  double height = 600;
  size_t iterations = 300;
  uint64_t seed = 42;
};

/// Fruchterman-Reingold force-directed placement for the graph views of
/// the Cluster Schema and Schema Summary (Fig. 2): repulsion between all
/// node pairs, attraction along edges, simulated annealing temperature.
/// Deterministic for a fixed seed. Returns one position per node, inside
/// the [0,width] x [0,height] box.
std::vector<Point> ForceLayout(size_t node_count,
                               const std::vector<ForceEdge>& edges,
                               const ForceLayoutOptions& options = {});

}  // namespace hbold::viz

#endif  // HBOLD_VIZ_FORCE_LAYOUT_H_
