#include "viz/force_layout.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace hbold::viz {

std::vector<Point> ForceLayout(size_t node_count,
                               const std::vector<ForceEdge>& edges,
                               const ForceLayoutOptions& options) {
  std::vector<Point> pos(node_count);
  if (node_count == 0) return pos;
  Rng rng(options.seed);
  for (Point& p : pos) {
    p.x = options.width * rng.NextDouble();
    p.y = options.height * rng.NextDouble();
  }
  if (node_count == 1) {
    pos[0] = Point{options.width / 2, options.height / 2};
    return pos;
  }

  const double area = options.width * options.height;
  const double k = std::sqrt(area / static_cast<double>(node_count));
  double temperature = options.width / 10;
  const double cooling =
      std::pow(0.01, 1.0 / static_cast<double>(options.iterations));

  std::vector<Point> disp(node_count);
  for (size_t iter = 0; iter < options.iterations; ++iter) {
    for (Point& d : disp) d = Point{0, 0};
    // Repulsion: O(n^2) pairs (schema graphs are small; hundreds of nodes).
    for (size_t i = 0; i < node_count; ++i) {
      for (size_t j = i + 1; j < node_count; ++j) {
        double dx = pos[i].x - pos[j].x;
        double dy = pos[i].y - pos[j].y;
        double d2 = dx * dx + dy * dy;
        double d = std::sqrt(d2);
        if (d < 1e-9) {
          // Coincident nodes: nudge apart deterministically.
          dx = 1e-3 * (static_cast<double>(i % 7) + 1);
          dy = 1e-3 * (static_cast<double>(j % 5) + 1);
          d = std::hypot(dx, dy);
        }
        double force = k * k / d;
        disp[i].x += dx / d * force;
        disp[i].y += dy / d * force;
        disp[j].x -= dx / d * force;
        disp[j].y -= dy / d * force;
      }
    }
    // Attraction along edges.
    for (const ForceEdge& e : edges) {
      if (e.a >= node_count || e.b >= node_count || e.a == e.b) continue;
      double dx = pos[e.a].x - pos[e.b].x;
      double dy = pos[e.a].y - pos[e.b].y;
      double d = std::hypot(dx, dy);
      if (d < 1e-9) continue;
      double force = d * d / k * std::min(e.weight, 4.0);
      disp[e.a].x -= dx / d * force;
      disp[e.a].y -= dy / d * force;
      disp[e.b].x += dx / d * force;
      disp[e.b].y += dy / d * force;
    }
    // Apply displacements, clamped by temperature and the frame.
    for (size_t i = 0; i < node_count; ++i) {
      double d = std::hypot(disp[i].x, disp[i].y);
      if (d < 1e-12) continue;
      double step = std::min(d, temperature);
      pos[i].x += disp[i].x / d * step;
      pos[i].y += disp[i].y / d * step;
      pos[i].x = std::clamp(pos[i].x, 0.0, options.width);
      pos[i].y = std::clamp(pos[i].y, 0.0, options.height);
    }
    temperature *= cooling;
  }
  return pos;
}

}  // namespace hbold::viz
