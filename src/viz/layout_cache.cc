#include "viz/layout_cache.h"

#include <sstream>

#include "common/hash.h"
#include "viz/render.h"

namespace hbold::viz {

namespace {

/// Folds a value's canonical text form into an FNV-1a state. Going through
/// text (rather than raw bytes) keeps the fingerprint independent of
/// struct padding and float endianness.
void Fold(std::ostringstream* os, double v) { *os << v << '|'; }
void Fold(std::ostringstream* os, size_t v) { *os << v << '|'; }
void Fold(std::ostringstream* os, int v) { *os << v << '|'; }

uint64_t FoldSvg(uint64_t h, const std::string& svg) {
  // FNV-1a continuation over the SVG bytes plus a separator so that
  // concatenation ambiguity between documents cannot alias.
  for (unsigned char c : svg) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  h ^= static_cast<unsigned char>('|');
  h *= 1099511628211ULL;
  return h;
}

}  // namespace

uint64_t LayoutSetOptions::Fingerprint() const {
  std::ostringstream os;
  os.precision(17);
  Fold(&os, treemap_width);
  Fold(&os, treemap_height);
  Fold(&os, treemap.padding);
  Fold(&os, treemap.header);
  Fold(&os, static_cast<int>(treemap.algorithm));
  Fold(&os, sunburst.radius);
  Fold(&os, sunburst.inner_hole);
  Fold(&os, sunburst.ring_gap);
  Fold(&os, circle_pack.radius);
  Fold(&os, circle_pack.padding_fraction);
  Fold(&os, bundling.radius);
  Fold(&os, bundling.beta);
  Fold(&os, bundling.samples_per_segment);
  Fold(&os, bundling.cluster_radius_fraction);
  return Fnv64(os.str());
}

LayoutSet ComputeLayoutSet(const schema::SchemaSummary& summary,
                           const cluster::ClusterSchema& clusters,
                           const std::string& dataset_name,
                           const LayoutSetOptions& options) {
  LayoutSet set;
  Hierarchy root = HierarchyFromClusterSchema(clusters, summary, dataset_name);

  set.treemap = TreemapLayout(
      root, Rect{0, 0, options.treemap_width, options.treemap_height},
      options.treemap);
  set.sunburst = SunburstLayout(root, options.sunburst);
  set.circles = CirclePackLayout(root, options.circle_pack);
  set.bundling = BundleSchemaSummary(summary, clusters, options.bundling);

  set.treemap_svg = RenderTreemap(set.treemap, options.treemap_width,
                                  options.treemap_height)
                        .ToString();
  set.sunburst_svg = RenderSunburst(set.sunburst, options.sunburst.radius)
                         .ToString();
  set.circle_pack_svg =
      RenderCirclePack(set.circles, options.circle_pack.radius).ToString();
  set.bundling_svg =
      RenderEdgeBundling(set.bundling, options.bundling.radius).ToString();

  uint64_t h = 1469598103934665603ULL;
  h = FoldSvg(h, set.treemap_svg);
  h = FoldSvg(h, set.sunburst_svg);
  h = FoldSvg(h, set.circle_pack_svg);
  h = FoldSvg(h, set.bundling_svg);
  set.geometry_fingerprint = h;
  return set;
}

LayoutCache::LayoutCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const LayoutSet> LayoutCache::GetOrCompute(
    uint64_t cluster_fingerprint, uint64_t options_fingerprint,
    const std::function<LayoutSet()>& compute) {
  Key key{cluster_fingerprint, options_fingerprint};
  std::shared_future<std::shared_ptr<const LayoutSet>> future;
  std::promise<std::shared_ptr<const LayoutSet>> promise;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      future = it->second.future;
    } else {
      ++stats_.misses;
      owner = true;
      future = promise.get_future().share();
      lru_.push_front(key);
      entries_.emplace(key, Entry{future, lru_.begin()});
      while (entries_.size() > capacity_) {
        Key victim = lru_.back();
        // Never evict the entry we are about to fill — its waiters hold
        // the future, but a re-request would recompute needlessly.
        if (victim == key) break;
        lru_.pop_back();
        entries_.erase(victim);
        ++stats_.evictions;
      }
    }
  }
  if (owner) {
    try {
      promise.set_value(std::make_shared<const LayoutSet>(compute()));
    } catch (...) {
      promise.set_exception(std::current_exception());
      {
        // Don't cache a failed computation; a retry should recompute.
        std::lock_guard<std::mutex> lock(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
          lru_.erase(it->second.lru_it);
          entries_.erase(it);
        }
      }
    }
  }
  return future.get();
}

void LayoutCache::SetEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch == epoch_) return;
  epoch_ = epoch;
  if (!entries_.empty()) ++stats_.epoch_flushes;
  entries_.clear();
  lru_.clear();
}

LayoutCacheStats LayoutCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t LayoutCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace hbold::viz
