#include "viz/sunburst.h"

#include <numeric>

#include "viz/geometry.h"

namespace hbold::viz {

namespace {

void LayoutNode(const Hierarchy& node, double a0, double a1, size_t depth,
                size_t group, size_t max_depth, const SunburstOptions& opt,
                std::vector<SunburstSlice>* out) {
  if (depth > 0) {
    double hole = opt.radius * opt.inner_hole;
    double ring = (opt.radius - hole) / static_cast<double>(max_depth);
    SunburstSlice slice;
    slice.name = node.name;
    slice.depth = depth;
    slice.group = group;
    slice.value = node.IsLeaf() ? node.value : node.EffectiveValue();
    slice.a0 = a0;
    slice.a1 = a1;
    slice.r0 = hole + ring * static_cast<double>(depth - 1);
    slice.r1 = hole + ring * static_cast<double>(depth) - opt.ring_gap;
    // A ring thinner than ring_gap (deep hierarchy, small radius) would
    // invert the annulus; collapse it to zero thickness instead.
    if (slice.r1 < slice.r0) slice.r1 = slice.r0;
    out->push_back(std::move(slice));
  }
  if (node.IsLeaf()) return;
  std::vector<double> values = node.ChildValues();
  double total = std::accumulate(values.begin(), values.end(), 0.0);
  if (total <= 0) return;
  double angle = a0;
  for (size_t i = 0; i < node.children.size(); ++i) {
    double span = (a1 - a0) * values[i] / total;
    size_t child_group = depth == 0 ? i : group;
    LayoutNode(node.children[i], angle, angle + span, depth + 1, child_group,
               max_depth, opt, out);
    angle += span;
  }
}

}  // namespace

std::vector<SunburstSlice> SunburstLayout(const Hierarchy& root,
                                          const SunburstOptions& options) {
  std::vector<SunburstSlice> out;
  size_t max_depth = root.MaxDepth();
  if (max_depth == 0) return out;
  LayoutNode(root, 0, 2 * kPi, 0, 0, max_depth, options, &out);
  return out;
}

}  // namespace hbold::viz
