#ifndef HBOLD_VIZ_GEOMETRY_H_
#define HBOLD_VIZ_GEOMETRY_H_

#include <cmath>

namespace hbold::viz {

struct Point {
  double x = 0;
  double y = 0;
};

inline double Distance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

struct Rect {
  double x = 0;
  double y = 0;
  double w = 0;
  double h = 0;

  double Area() const { return w * h; }
  Point Center() const { return {x + w / 2, y + h / 2}; }

  bool Contains(const Point& p, double eps = 1e-9) const {
    return p.x >= x - eps && p.x <= x + w + eps && p.y >= y - eps &&
           p.y <= y + h + eps;
  }
  /// True if `inner` lies inside this rect (within eps).
  bool ContainsRect(const Rect& inner, double eps = 1e-9) const {
    return inner.x >= x - eps && inner.y >= y - eps &&
           inner.x + inner.w <= x + w + eps && inner.y + inner.h <= y + h + eps;
  }
  /// True if the interiors of the two rects intersect.
  bool Overlaps(const Rect& other, double eps = 1e-9) const {
    return x + eps < other.x + other.w && other.x + eps < x + w &&
           y + eps < other.y + other.h && other.y + eps < y + h;
  }
  /// Shrinks the rect by `pad` on every side (clamped to non-negative size).
  Rect Inset(double pad) const {
    Rect r{x + pad, y + pad, w - 2 * pad, h - 2 * pad};
    if (r.w < 0) r.w = 0;
    if (r.h < 0) r.h = 0;
    return r;
  }
};

struct Circle {
  double x = 0;
  double y = 0;
  double r = 0;

  Point center() const { return {x, y}; }
  /// True if `inner` lies entirely inside this circle (within eps).
  bool ContainsCircle(const Circle& inner, double eps = 1e-9) const {
    return Distance(center(), inner.center()) + inner.r <= r + eps;
  }
  /// True if the two circle interiors intersect.
  bool Overlaps(const Circle& other, double eps = 1e-9) const {
    return Distance(center(), other.center()) + eps < r + other.r;
  }
};

inline constexpr double kPi = 3.14159265358979323846;

}  // namespace hbold::viz

#endif  // HBOLD_VIZ_GEOMETRY_H_
