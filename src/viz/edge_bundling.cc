#include "viz/edge_bundling.h"

#include <algorithm>
#include <cmath>

namespace hbold::viz {

double BundledEdge::Length() const {
  double len = 0;
  for (size_t i = 1; i < polyline.size(); ++i) {
    len += Distance(polyline[i - 1], polyline[i]);
  }
  return len;
}

double EdgeBundlingLayout::TotalInk() const {
  double ink = 0;
  for (const BundledEdge& e : edges) ink += e.Length();
  return ink;
}

double EdgeBundlingLayout::StraightInk() const {
  double ink = 0;
  for (const BundledEdge& e : edges) {
    if (e.polyline.size() >= 2) {
      ink += Distance(e.polyline.front(), e.polyline.back());
    }
  }
  return ink;
}

std::vector<Point> SampleBSpline(const std::vector<Point>& control,
                                 size_t samples_per_segment) {
  if (control.size() < 2) return control;
  // Clamp the spline to its endpoints by tripling them (standard trick for
  // endpoint interpolation with uniform cubic B-splines).
  std::vector<Point> pts;
  pts.push_back(control.front());
  pts.push_back(control.front());
  pts.insert(pts.end(), control.begin(), control.end());
  pts.push_back(control.back());
  pts.push_back(control.back());

  std::vector<Point> out;
  const size_t segments = pts.size() - 3;
  for (size_t seg = 0; seg < segments; ++seg) {
    const Point& p0 = pts[seg];
    const Point& p1 = pts[seg + 1];
    const Point& p2 = pts[seg + 2];
    const Point& p3 = pts[seg + 3];
    for (size_t s = 0; s < samples_per_segment; ++s) {
      double t = static_cast<double>(s) / static_cast<double>(samples_per_segment);
      double t2 = t * t, t3 = t2 * t;
      // Uniform cubic B-spline basis.
      double b0 = (1 - 3 * t + 3 * t2 - t3) / 6;
      double b1 = (4 - 6 * t2 + 3 * t3) / 6;
      double b2 = (1 + 3 * t + 3 * t2 - 3 * t3) / 6;
      double b3 = t3 / 6;
      out.push_back(Point{b0 * p0.x + b1 * p1.x + b2 * p2.x + b3 * p3.x,
                          b0 * p0.y + b1 * p1.y + b2 * p2.y + b3 * p3.y});
    }
  }
  out.push_back(control.back());
  return out;
}

EdgeBundlingLayout BundleSchemaSummary(const schema::SchemaSummary& summary,
                                       const cluster::ClusterSchema& clusters,
                                       const EdgeBundlingOptions& options) {
  EdgeBundlingLayout layout;
  const size_t n = summary.NodeCount();
  if (n == 0) return layout;

  // Leaves around the circle, grouped by cluster so bundles are coherent.
  std::vector<size_t> order;
  order.reserve(n);
  for (const cluster::Cluster& c : clusters.clusters()) {
    for (size_t node : c.class_nodes) order.push_back(node);
  }
  // Safety: any node missing from the partition is appended.
  if (order.size() < n) {
    std::vector<bool> seen(n, false);
    for (size_t node : order) seen[node] = true;
    for (size_t i = 0; i < n; ++i) {
      if (!seen[i]) order.push_back(i);
    }
  }

  std::vector<size_t> leaf_of_node(n, 0);
  for (size_t i = 0; i < order.size(); ++i) {
    size_t node = order[i];
    BundleLeaf leaf;
    leaf.label = summary.nodes()[node].label;
    leaf.schema_node = node;
    int cl = clusters.ClusterOf(node);
    leaf.cluster = cl < 0 ? 0 : static_cast<size_t>(cl);
    leaf.angle = 2 * kPi * static_cast<double>(i) / static_cast<double>(n);
    leaf.position = Point{options.radius * std::cos(leaf.angle),
                          options.radius * std::sin(leaf.angle)};
    leaf_of_node[node] = layout.leaves.size();
    layout.leaves.push_back(std::move(leaf));
  }

  // Cluster control points: angular centroid of member leaves at a smaller
  // radius; the root control point is the origin.
  const size_t k = clusters.ClusterCount();
  std::vector<Point> cluster_point(k, Point{0, 0});
  {
    std::vector<double> sx(k, 0), sy(k, 0);
    std::vector<size_t> cnt(k, 0);
    for (const BundleLeaf& leaf : layout.leaves) {
      sx[leaf.cluster] += std::cos(leaf.angle);
      sy[leaf.cluster] += std::sin(leaf.angle);
      ++cnt[leaf.cluster];
    }
    double rc = options.radius * options.cluster_radius_fraction;
    for (size_t c = 0; c < k; ++c) {
      if (cnt[c] == 0) continue;
      double len = std::hypot(sx[c], sy[c]);
      if (len < 1e-9) continue;  // leaves spread evenly: keep origin
      cluster_point[c] = Point{rc * sx[c] / len, rc * sy[c] / len};
    }
  }

  for (const schema::PropertyArc& arc : summary.arcs()) {
    BundledEdge edge;
    edge.src_leaf = leaf_of_node[arc.src];
    edge.dst_leaf = leaf_of_node[arc.dst];
    edge.property_iri = arc.iri;
    edge.count = arc.count;

    const BundleLeaf& src = layout.leaves[edge.src_leaf];
    const BundleLeaf& dst = layout.leaves[edge.dst_leaf];

    // Control path through the hierarchy.
    std::vector<Point> control;
    control.push_back(src.position);
    if (arc.src == arc.dst) {
      // Self-loop: bow out through the cluster point.
      control.push_back(cluster_point[src.cluster]);
    } else if (src.cluster == dst.cluster) {
      control.push_back(cluster_point[src.cluster]);
    } else {
      control.push_back(cluster_point[src.cluster]);
      control.push_back(Point{0, 0});  // root
      control.push_back(cluster_point[dst.cluster]);
    }
    control.push_back(dst.position);

    // Holten's straightening: interpolate interior control points toward
    // the straight src->dst line by (1 - beta).
    const Point& p0 = control.front();
    const Point& pn = control.back();
    const size_t last = control.size() - 1;
    for (size_t i = 1; i < last; ++i) {
      double t = static_cast<double>(i) / static_cast<double>(last);
      Point straight{p0.x + (pn.x - p0.x) * t, p0.y + (pn.y - p0.y) * t};
      control[i].x = options.beta * control[i].x +
                     (1 - options.beta) * straight.x;
      control[i].y = options.beta * control[i].y +
                     (1 - options.beta) * straight.y;
    }

    edge.polyline = SampleBSpline(control, options.samples_per_segment);
    // Anchor the sampled curve exactly at the leaves.
    edge.polyline.front() = src.position;
    edge.polyline.back() = dst.position;
    layout.edges.push_back(std::move(edge));
  }
  return layout;
}

}  // namespace hbold::viz
