#ifndef HBOLD_VIZ_TREEMAP_H_
#define HBOLD_VIZ_TREEMAP_H_

#include <string>
#include <vector>

#include "viz/geometry.h"
#include "viz/hierarchy.h"

namespace hbold::viz {

/// One rectangle of the treemap. `depth` 0 is the root, 1 the clusters,
/// 2 the classes (Fig. 4). `group` is the index of the depth-1 ancestor
/// (cluster), used for coloring.
struct TreemapCell {
  std::string name;
  size_t depth = 0;
  size_t group = 0;
  double value = 0;  // effective value the area is proportional to
  Rect rect;
};

/// Tiling algorithm. Squarified is what the figure uses; slice-dice is the
/// classic alternating-direction baseline kept for the aspect-ratio
/// ablation (bench_ablation_treemap).
enum class TreemapAlgorithm { kSquarified, kSliceDice };

struct TreemapOptions {
  /// Padding between a parent cell and its children, and between siblings.
  double padding = 2.0;
  /// Extra top inset inside cluster cells for the label strip.
  double header = 14.0;
  TreemapAlgorithm algorithm = TreemapAlgorithm::kSquarified;
};

/// Squarified treemap (Bruls, Huizing, van Wijk 2000): recursively lays out
/// each node's children inside its rectangle, choosing row/column splits
/// that keep cell aspect ratios near 1. Areas are proportional to
/// Hierarchy::ChildValues() within every parent.
std::vector<TreemapCell> TreemapLayout(const Hierarchy& root,
                                       const Rect& bounds,
                                       const TreemapOptions& options = {});

/// Mean aspect ratio (long side / short side, >= 1) over leaf cells — the
/// readability metric squarified treemaps optimize.
double MeanLeafAspectRatio(const std::vector<TreemapCell>& cells);

}  // namespace hbold::viz

#endif  // HBOLD_VIZ_TREEMAP_H_
