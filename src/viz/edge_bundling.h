#ifndef HBOLD_VIZ_EDGE_BUNDLING_H_
#define HBOLD_VIZ_EDGE_BUNDLING_H_

#include <string>
#include <vector>

#include "cluster/cluster_schema.h"
#include "schema/schema_summary.h"
#include "viz/geometry.h"

namespace hbold::viz {

/// A class placed on the layout circle.
struct BundleLeaf {
  std::string label;
  size_t schema_node = 0;
  size_t cluster = 0;
  double angle = 0;  // radians
  Point position;
};

/// One bundled edge: a sampled B-spline from src leaf to dst leaf routed
/// through the cluster hierarchy (Holten 2006).
struct BundledEdge {
  size_t src_leaf = 0;
  size_t dst_leaf = 0;
  std::string property_iri;
  size_t count = 0;
  std::vector<Point> polyline;  // sampled spline, first/last = leaf anchors

  /// Total polyline length (the "ink" the bundling is meant to reduce).
  double Length() const;
};

struct EdgeBundlingOptions {
  double radius = 300.0;
  /// Bundling strength beta in [0,1]: 0 = straight lines, 1 = fully routed
  /// through the hierarchy (Holten's straightening parameter).
  double beta = 0.85;
  /// Samples per spline segment.
  size_t samples_per_segment = 8;
  /// Radial position of cluster control points as a fraction of `radius`.
  double cluster_radius_fraction = 0.5;
};

/// The Fig. 7 layout: classes on an invisible circumference grouped by
/// cluster, properties drawn as B-splines bundled along the
/// leaf -> cluster -> root -> cluster -> leaf control path.
struct EdgeBundlingLayout {
  std::vector<BundleLeaf> leaves;
  std::vector<BundledEdge> edges;

  /// Sum of edge lengths.
  double TotalInk() const;
  /// Sum of straight-chord lengths between the same endpoints (the
  /// baseline the bundling is compared against).
  double StraightInk() const;
};

EdgeBundlingLayout BundleSchemaSummary(const schema::SchemaSummary& summary,
                                       const cluster::ClusterSchema& clusters,
                                       const EdgeBundlingOptions& options = {});

/// Uniform cubic B-spline sampled through `control` points (endpoints
/// interpolated by repeating them). Exposed for testing.
std::vector<Point> SampleBSpline(const std::vector<Point>& control,
                                 size_t samples_per_segment);

}  // namespace hbold::viz

#endif  // HBOLD_VIZ_EDGE_BUNDLING_H_
