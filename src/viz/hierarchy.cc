#include "viz/hierarchy.h"

#include <algorithm>
#include <cmath>

namespace hbold::viz {

namespace {

/// A usable weight is finite and strictly positive; NaN, infinities,
/// zeros, and negative values all fall back to the sibling fill rule so
/// degenerate inputs (zero-instance classes, corrupt counts) can never
/// poison the geometry downstream.
bool UsableWeight(double v) { return std::isfinite(v) && v > 0; }

}  // namespace

double Hierarchy::EffectiveValue() const {
  double total = 0;
  for (double v : ChildValues()) total += v;
  if (IsLeaf()) return UsableWeight(value) ? value : 1.0;
  return total;
}

std::vector<double> Hierarchy::ChildValues() const {
  std::vector<double> out;
  out.reserve(children.size());
  double nonzero_sum = 0;
  size_t nonzero_count = 0;
  for (const Hierarchy& c : children) {
    double v = c.IsLeaf() ? c.value : c.EffectiveValue();
    out.push_back(v);
    if (UsableWeight(v)) {
      nonzero_sum += v;
      ++nonzero_count;
    }
  }
  // Zero-valued leaves receive the mean of their non-zero siblings (equal
  // visual share), or 1 when everything is zero. Non-finite values take
  // the same fill — checking `v <= 0` alone would let a NaN slip through
  // both branches and surface as NaN rectangles in every layout.
  double fill = nonzero_count > 0
                    ? nonzero_sum / static_cast<double>(nonzero_count)
                    : 1.0;
  for (double& v : out) {
    if (!UsableWeight(v)) v = fill;
  }
  return out;
}

size_t Hierarchy::TreeSize() const {
  size_t n = 1;
  for (const Hierarchy& c : children) n += c.TreeSize();
  return n;
}

size_t Hierarchy::MaxDepth() const {
  size_t d = 0;
  for (const Hierarchy& c : children) d = std::max(d, c.MaxDepth() + 1);
  return d;
}

Hierarchy HierarchyFromClusterSchema(const cluster::ClusterSchema& cs,
                                     const schema::SchemaSummary& summary,
                                     const std::string& dataset_name) {
  Hierarchy root;
  root.name = dataset_name;
  for (const cluster::Cluster& c : cs.clusters()) {
    Hierarchy cluster_node;
    cluster_node.name = c.label;
    for (size_t node : c.class_nodes) {
      Hierarchy leaf;
      leaf.name = summary.nodes()[node].label;
      leaf.value = static_cast<double>(summary.nodes()[node].instance_count);
      cluster_node.children.push_back(std::move(leaf));
    }
    // Deterministic display order: big classes first.
    std::sort(cluster_node.children.begin(), cluster_node.children.end(),
              [](const Hierarchy& a, const Hierarchy& b) {
                if (a.value != b.value) return a.value > b.value;
                return a.name < b.name;
              });
    root.children.push_back(std::move(cluster_node));
  }
  std::sort(root.children.begin(), root.children.end(),
            [](const Hierarchy& a, const Hierarchy& b) {
              double av = a.EffectiveValue(), bv = b.EffectiveValue();
              if (av != bv) return av > bv;
              return a.name < b.name;
            });
  return root;
}

}  // namespace hbold::viz
