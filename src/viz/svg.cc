#include "viz/svg.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/string_util.h"

namespace hbold::viz {

namespace {
std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}
}  // namespace

SvgDocument::SvgDocument(double width, double height)
    : width_(width), height_(height) {}

std::string SvgDocument::StyleAttrs(const Style& style) const {
  std::string out = " fill=\"" + style.fill + "\"";
  if (style.stroke != "none") {
    out += " stroke=\"" + style.stroke + "\" stroke-width=\"" +
           Num(style.stroke_width) + "\"";
  }
  if (style.opacity < 1.0) {
    out += " opacity=\"" + Num(style.opacity) + "\"";
  }
  return out;
}

void SvgDocument::AddRect(const Rect& r, const Style& style,
                          double corner_radius) {
  std::string el = "<rect x=\"" + Num(r.x) + "\" y=\"" + Num(r.y) +
                   "\" width=\"" + Num(r.w) + "\" height=\"" + Num(r.h) + "\"";
  if (corner_radius > 0) el += " rx=\"" + Num(corner_radius) + "\"";
  el += StyleAttrs(style) + "/>";
  elements_.push_back(std::move(el));
}

void SvgDocument::AddCircle(const Circle& c, const Style& style) {
  elements_.push_back("<circle cx=\"" + Num(c.x) + "\" cy=\"" + Num(c.y) +
                      "\" r=\"" + Num(c.r) + "\"" + StyleAttrs(style) + "/>");
}

void SvgDocument::AddLine(const Point& a, const Point& b, const Style& style) {
  elements_.push_back("<line x1=\"" + Num(a.x) + "\" y1=\"" + Num(a.y) +
                      "\" x2=\"" + Num(b.x) + "\" y2=\"" + Num(b.y) + "\"" +
                      StyleAttrs(style) + "/>");
}

void SvgDocument::AddPolyline(const std::vector<Point>& points,
                              const Style& style) {
  if (points.size() < 2) return;
  std::string el = "<polyline points=\"";
  for (size_t i = 0; i < points.size(); ++i) {
    if (i > 0) el += ' ';
    el += Num(points[i].x) + "," + Num(points[i].y);
  }
  el += "\"" + StyleAttrs(style) + "/>";
  elements_.push_back(std::move(el));
}

void SvgDocument::AddAnnularSector(const Point& center, double r0, double r1,
                                   double a0, double a1, const Style& style) {
  // Full-circle sectors need two arcs; detect and split.
  if (a1 - a0 >= 2 * kPi - 1e-9) {
    double mid = a0 + (a1 - a0) / 2;
    AddAnnularSector(center, r0, r1, a0, mid, style);
    AddAnnularSector(center, r0, r1, mid, a1, style);
    return;
  }
  auto at = [&](double r, double a) {
    return Point{center.x + r * std::cos(a), center.y + r * std::sin(a)};
  };
  Point p0 = at(r1, a0), p1 = at(r1, a1), p2 = at(r0, a1), p3 = at(r0, a0);
  int large = (a1 - a0) > kPi ? 1 : 0;
  std::string el = "<path d=\"M " + Num(p0.x) + " " + Num(p0.y);
  el += " A " + Num(r1) + " " + Num(r1) + " 0 " + std::to_string(large) +
        " 1 " + Num(p1.x) + " " + Num(p1.y);
  el += " L " + Num(p2.x) + " " + Num(p2.y);
  el += " A " + Num(r0) + " " + Num(r0) + " 0 " + std::to_string(large) +
        " 0 " + Num(p3.x) + " " + Num(p3.y);
  el += " Z\"" + StyleAttrs(style) + "/>";
  elements_.push_back(std::move(el));
}

void SvgDocument::AddText(const Point& p, const std::string& text,
                          double font_size, const std::string& fill,
                          const std::string& anchor, double rotate_deg) {
  std::string el = "<text x=\"" + Num(p.x) + "\" y=\"" + Num(p.y) +
                   "\" font-size=\"" + Num(font_size) +
                   "\" font-family=\"sans-serif\" fill=\"" + fill +
                   "\" text-anchor=\"" + anchor + "\"";
  if (rotate_deg != 0) {
    el += " transform=\"rotate(" + Num(rotate_deg) + " " + Num(p.x) + " " +
          Num(p.y) + ")\"";
  }
  el += ">" + XmlEscape(text) + "</text>";
  elements_.push_back(std::move(el));
}

std::string SvgDocument::ToString() const {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  out += "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" + Num(width_) +
         "\" height=\"" + Num(height_) + "\" viewBox=\"0 0 " + Num(width_) +
         " " + Num(height_) + "\">\n";
  out += "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const std::string& el : elements_) {
    out += el;
    out += '\n';
  }
  out += "</svg>\n";
  return out;
}

Status SvgDocument::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << ToString();
  if (!out) return Status::IOError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace hbold::viz
