#ifndef HBOLD_VIZ_CIRCLE_PACK_H_
#define HBOLD_VIZ_CIRCLE_PACK_H_

#include <string>
#include <vector>

#include "viz/geometry.h"
#include "viz/hierarchy.h"

namespace hbold::viz {

/// One circle of the pack (Fig. 6). depth 0 = the dataset circle, 1 =
/// clusters, 2 = classes. Leaf areas are proportional to effective values
/// within their cluster.
struct PackedCircle {
  std::string name;
  size_t depth = 0;
  size_t group = 0;
  double value = 0;
  Circle circle;
};

struct CirclePackOptions {
  /// Radius of the outermost (dataset) circle.
  double radius = 300.0;
  /// Gap between sibling circles and between a circle and its parent rim,
  /// expressed as a fraction of the parent radius.
  double padding_fraction = 0.02;
};

/// Hierarchical circle packing: siblings are packed with the front-chain
/// algorithm (Wang et al. 2006, as popularized by D3's pack layout), each
/// parent circle is the (near-)smallest circle enclosing its packed
/// children, and the whole arrangement is scaled to `options.radius`.
std::vector<PackedCircle> CirclePackLayout(
    const Hierarchy& root, const CirclePackOptions& options = {});

/// Packs circles of the given radii around the origin so that no two
/// overlap and the arrangement is compact. Returns centers aligned with
/// `radii` by index. Exposed for testing.
std::vector<Point> PackSiblings(const std::vector<double>& radii);

/// Near-minimal circle enclosing all of `circles` (iterative; the returned
/// circle is guaranteed to contain every input within 1e-6 relative slack).
Circle EncloseCircles(const std::vector<Circle>& circles);

}  // namespace hbold::viz

#endif  // HBOLD_VIZ_CIRCLE_PACK_H_
