#include "viz/treemap.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hbold::viz {

namespace {

/// Worst aspect ratio of a row of areas laid along a side of length `side`.
double WorstRatio(const std::vector<double>& row, double side) {
  double sum = std::accumulate(row.begin(), row.end(), 0.0);
  if (sum <= 0 || side <= 0) return 1e18;
  double thickness = sum / side;
  double worst = 1;
  for (double area : row) {
    double len = area / thickness;
    double ratio = std::max(len / thickness, thickness / len);
    worst = std::max(worst, ratio);
  }
  return worst;
}

/// Lays `areas` (already scaled to fill `bounds`) into `bounds` with the
/// squarified algorithm; writes one rect per area into `out` (same order).
void Squarify(const std::vector<double>& areas, Rect bounds,
              std::vector<Rect>* out) {
  out->assign(areas.size(), Rect{});
  // Process areas in decreasing order for squarified quality, but remember
  // original slots.
  std::vector<size_t> order(areas.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return areas[a] > areas[b]; });

  size_t i = 0;
  while (i < order.size()) {
    double side = std::min(bounds.w, bounds.h);
    // Grow the row while the worst aspect ratio improves.
    std::vector<double> row;
    size_t row_start = i;
    row.push_back(std::max(areas[order[i]], 1e-12));
    ++i;
    while (i < order.size()) {
      std::vector<double> candidate = row;
      candidate.push_back(std::max(areas[order[i]], 1e-12));
      if (WorstRatio(candidate, side) <= WorstRatio(row, side)) {
        row = std::move(candidate);
        ++i;
      } else {
        break;
      }
    }
    double row_sum = std::accumulate(row.begin(), row.end(), 0.0);
    bool horizontal = bounds.w >= bounds.h;  // row laid along the short side
    double thickness =
        row_sum / (horizontal ? std::max(bounds.h, 1e-12)
                              : std::max(bounds.w, 1e-12));
    double along = 0;
    for (size_t k = 0; k < row.size(); ++k) {
      double len = row[k] / std::max(thickness, 1e-12);
      Rect cell;
      if (horizontal) {
        cell = Rect{bounds.x, bounds.y + along, thickness, len};
      } else {
        cell = Rect{bounds.x + along, bounds.y, len, thickness};
      }
      (*out)[order[row_start + k]] = cell;
      along += len;
    }
    if (horizontal) {
      bounds.x += thickness;
      bounds.w -= thickness;
    } else {
      bounds.y += thickness;
      bounds.h -= thickness;
    }
    if (bounds.w < 0) bounds.w = 0;
    if (bounds.h < 0) bounds.h = 0;
  }
}

/// Slice-and-dice: children laid out in one strip, direction alternating
/// with depth. Trivially correct, terrible aspect ratios on skewed data —
/// the baseline squarified treemaps were invented to beat.
void SliceDice(const std::vector<double>& areas, Rect bounds, size_t depth,
               std::vector<Rect>* out) {
  out->assign(areas.size(), Rect{});
  double total = std::accumulate(areas.begin(), areas.end(), 0.0);
  if (total <= 0) return;
  bool horizontal = depth % 2 == 0;
  double along = 0;
  for (size_t i = 0; i < areas.size(); ++i) {
    double share = areas[i] / total;
    if (horizontal) {
      double w = bounds.w * share;
      (*out)[i] = Rect{bounds.x + along, bounds.y, w, bounds.h};
      along += w;
    } else {
      double h = bounds.h * share;
      (*out)[i] = Rect{bounds.x, bounds.y + along, bounds.w, h};
      along += h;
    }
  }
}

void LayoutNode(const Hierarchy& node, const Rect& rect, size_t depth,
                size_t group, const TreemapOptions& opt,
                std::vector<TreemapCell>* out) {
  out->push_back(TreemapCell{node.name, depth, group,
                             node.IsLeaf() ? node.value
                                           : node.EffectiveValue(),
                             rect});
  if (node.IsLeaf()) return;

  Rect inner = rect.Inset(opt.padding);
  if (depth >= 1) {
    // Cluster cells reserve a strip for the label.
    inner.y += opt.header;
    inner.h = std::max(0.0, inner.h - opt.header);
  }
  if (inner.Area() <= 0) return;

  std::vector<double> values = node.ChildValues();
  double total = std::accumulate(values.begin(), values.end(), 0.0);
  // ChildValues() fills degenerate weights, so total > 0 whenever there
  // are children — the guard is belt-and-braces against non-finite input.
  if (!(total > 0) || !std::isfinite(total)) return;
  std::vector<double> areas(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    areas[i] = values[i] / total * inner.Area();
  }
  std::vector<Rect> rects;
  if (opt.algorithm == TreemapAlgorithm::kSliceDice) {
    SliceDice(areas, inner, depth, &rects);
  } else {
    Squarify(areas, inner, &rects);
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    Rect child_rect = rects[i].Inset(depth == 0 ? 0 : opt.padding / 2);
    size_t child_group = depth == 0 ? i : group;
    LayoutNode(node.children[i], child_rect, depth + 1, child_group, opt, out);
  }
}

}  // namespace

std::vector<TreemapCell> TreemapLayout(const Hierarchy& root,
                                       const Rect& bounds,
                                       const TreemapOptions& options) {
  std::vector<TreemapCell> out;
  LayoutNode(root, bounds, 0, 0, options, &out);
  return out;
}

double MeanLeafAspectRatio(const std::vector<TreemapCell>& cells) {
  double sum = 0;
  size_t leaves = 0;
  size_t max_depth = 0;
  for (const TreemapCell& c : cells) max_depth = std::max(max_depth, c.depth);
  for (const TreemapCell& c : cells) {
    if (c.depth != max_depth) continue;
    if (c.rect.w <= 0 || c.rect.h <= 0) continue;
    sum += std::max(c.rect.w / c.rect.h, c.rect.h / c.rect.w);
    ++leaves;
  }
  return leaves == 0 ? 0 : sum / static_cast<double>(leaves);
}

}  // namespace hbold::viz
