#ifndef HBOLD_VIZ_COLOR_H_
#define HBOLD_VIZ_COLOR_H_

#include <cstdint>
#include <string>

namespace hbold::viz {

struct Color {
  uint8_t r = 0;
  uint8_t g = 0;
  uint8_t b = 0;

  /// "#rrggbb" for SVG attributes.
  std::string ToHex() const;
};

/// Converts HSL (h in degrees, s/l in [0,1]) to RGB.
Color FromHsl(double h, double s, double l);

/// Categorical palette (stable assignment: index i always maps to the same
/// color; cycles with lightness variation after the base palette).
Color CategoricalColor(size_t index);

/// Lightens toward white by `amount` in [0,1].
Color Lighten(const Color& c, double amount);

}  // namespace hbold::viz

#endif  // HBOLD_VIZ_COLOR_H_
