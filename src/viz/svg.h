#ifndef HBOLD_VIZ_SVG_H_
#define HBOLD_VIZ_SVG_H_

#include <string>

#include "common/status.h"
#include "viz/color.h"
#include "viz/geometry.h"

#include <vector>

namespace hbold::viz {

/// Stroke/fill styling for one SVG element.
struct Style {
  std::string fill = "none";
  std::string stroke = "none";
  double stroke_width = 1.0;
  double opacity = 1.0;

  static Style Fill(const Color& c, double opacity = 1.0) {
    Style s;
    s.fill = c.ToHex();
    s.opacity = opacity;
    return s;
  }
  static Style Stroke(const Color& c, double width = 1.0,
                      double opacity = 1.0) {
    Style s;
    s.stroke = c.ToHex();
    s.stroke_width = width;
    s.opacity = opacity;
    return s;
  }
};

/// Minimal SVG document builder. Coordinates are in user units; the
/// document carries width/height and an equal viewBox.
class SvgDocument {
 public:
  SvgDocument(double width, double height);

  double width() const { return width_; }
  double height() const { return height_; }

  void AddRect(const Rect& r, const Style& style, double corner_radius = 0);
  void AddCircle(const Circle& c, const Style& style);
  void AddLine(const Point& a, const Point& b, const Style& style);
  void AddPolyline(const std::vector<Point>& points, const Style& style);
  /// Annular sector between radii r0..r1 and angles a0..a1 (radians),
  /// centered at `center` — the sunburst building block.
  void AddAnnularSector(const Point& center, double r0, double r1, double a0,
                        double a1, const Style& style);
  /// Text anchored at `p`. `anchor` is "start", "middle" or "end".
  void AddText(const Point& p, const std::string& text, double font_size,
               const std::string& fill = "#222",
               const std::string& anchor = "start", double rotate_deg = 0);

  /// Number of elements added so far.
  size_t ElementCount() const { return elements_.size(); }

  /// Serializes the document.
  std::string ToString() const;

  /// Writes the document to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  std::string StyleAttrs(const Style& style) const;

  double width_;
  double height_;
  std::vector<std::string> elements_;
};

}  // namespace hbold::viz

#endif  // HBOLD_VIZ_SVG_H_
