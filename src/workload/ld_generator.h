#ifndef HBOLD_WORKLOAD_LD_GENERATOR_H_
#define HBOLD_WORKLOAD_LD_GENERATOR_H_

#include <cstdint>
#include <string>

#include "rdf/graph.h"

namespace hbold::workload {

/// Shape of a synthetic Linked Data source. The generator mimics the
/// statistical structure of real LD: Zipf-skewed class sizes, classes
/// grouped into topical "domains" with dense intra-domain object-property
/// links and sparse cross-domain links (so community detection has real
/// structure to find), and a mix of datatype and object properties.
struct SyntheticLdConfig {
  std::string namespace_iri = "http://synth.example.org/";
  size_t num_classes = 20;
  /// Classes are split round-robin into this many topical domains.
  size_t num_domains = 4;
  /// Instances of class ranked r follow a Zipf law scaled to this maximum.
  size_t max_instances_per_class = 200;
  double zipf_skew = 1.1;
  /// Datatype properties per class.
  size_t attributes_per_class = 2;
  /// Object-property links per class to other classes in the same domain.
  size_t intra_domain_links = 2;
  /// Probability of an additional cross-domain link per class.
  double cross_domain_link_prob = 0.15;
  /// Fraction of a class's instances carrying each property.
  double property_fill = 0.8;
  uint64_t seed = 42;
};

/// Summary of what was generated (for assertions and bench reporting).
struct SyntheticLdStats {
  size_t classes = 0;
  size_t instances = 0;
  size_t triples_added = 0;
};

/// Generates triples into `store` per `config`.
SyntheticLdStats GenerateSyntheticLd(const SyntheticLdConfig& config,
                                     rdf::TripleStore* store);

}  // namespace hbold::workload

#endif  // HBOLD_WORKLOAD_LD_GENERATOR_H_
