#include "workload/ld_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"
#include "rdf/vocab.h"

namespace hbold::workload {

SyntheticLdStats GenerateSyntheticLd(const SyntheticLdConfig& config,
                                     rdf::TripleStore* store) {
  SyntheticLdStats stats;
  if (config.num_classes == 0) return stats;
  Rng rng(config.seed);
  const std::string& ns = config.namespace_iri;

  rdf::Term rdf_type = rdf::Term::Iri(rdf::vocab::kRdfType);

  // Class IRIs and instance counts (Zipf by class rank).
  std::vector<rdf::Term> classes;
  std::vector<size_t> counts;
  classes.reserve(config.num_classes);
  for (size_t c = 0; c < config.num_classes; ++c) {
    classes.push_back(rdf::Term::Iri(ns + "class/C" + std::to_string(c)));
    double scale = 1.0 / std::pow(static_cast<double>(c + 1),
                                  config.zipf_skew);
    size_t n = std::max<size_t>(
        1, static_cast<size_t>(
               static_cast<double>(config.max_instances_per_class) * scale));
    counts.push_back(n);
  }

  // Instances, typed.
  std::vector<std::vector<rdf::Term>> instances(config.num_classes);
  for (size_t c = 0; c < config.num_classes; ++c) {
    instances[c].reserve(counts[c]);
    for (size_t i = 0; i < counts[c]; ++i) {
      rdf::Term inst = rdf::Term::Iri(ns + "inst/C" + std::to_string(c) + "_" +
                                      std::to_string(i));
      store->Add(inst, rdf_type, classes[c]);
      ++stats.triples_added;
      instances[c].push_back(std::move(inst));
    }
    stats.instances += counts[c];
  }
  stats.classes = config.num_classes;

  // Datatype attributes.
  for (size_t c = 0; c < config.num_classes; ++c) {
    for (size_t a = 0; a < config.attributes_per_class; ++a) {
      rdf::Term prop = rdf::Term::Iri(ns + "prop/attr" + std::to_string(c) +
                                      "_" + std::to_string(a));
      for (const rdf::Term& inst : instances[c]) {
        if (!rng.Chance(config.property_fill)) continue;
        store->Add(inst, prop,
                   rdf::Term::Literal("v" + std::to_string(rng.Uniform(1000))));
        ++stats.triples_added;
      }
    }
  }

  // Object-property links: intra-domain dense, cross-domain sparse.
  size_t domains = std::max<size_t>(1, config.num_domains);
  auto domain_of = [&](size_t c) { return c % domains; };
  size_t link_id = 0;
  for (size_t c = 0; c < config.num_classes; ++c) {
    // Candidate targets in the same domain.
    std::vector<size_t> same_domain;
    for (size_t d = 0; d < config.num_classes; ++d) {
      if (d != c && domain_of(d) == domain_of(c)) same_domain.push_back(d);
    }
    std::vector<size_t> targets;
    for (size_t l = 0; l < config.intra_domain_links && !same_domain.empty();
         ++l) {
      targets.push_back(same_domain[rng.Uniform(same_domain.size())]);
    }
    if (config.num_classes > 1 && rng.Chance(config.cross_domain_link_prob)) {
      size_t other = rng.Uniform(config.num_classes);
      if (other != c) targets.push_back(other);
    }
    for (size_t target : targets) {
      rdf::Term prop =
          rdf::Term::Iri(ns + "prop/link" + std::to_string(link_id++));
      for (const rdf::Term& inst : instances[c]) {
        if (!rng.Chance(config.property_fill)) continue;
        const rdf::Term& obj =
            instances[target][rng.Uniform(instances[target].size())];
        store->Add(inst, prop, obj);
        ++stats.triples_added;
      }
    }
  }
  return stats;
}

}  // namespace hbold::workload
