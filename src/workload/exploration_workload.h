#ifndef HBOLD_WORKLOAD_EXPLORATION_WORKLOAD_H_
#define HBOLD_WORKLOAD_EXPLORATION_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hbold::workload {

/// One user gesture of a simulated exploration session, covering the full
/// H-BOLD loop: dataset selection, high-level views, Fig. 2 exploration
/// steps, the §5 effectiveness tasks, and live drill-down / visual queries
/// against the owning endpoint.
enum class SessionActionKind {
  kListDatasets,       // the selection screen
  kOpenDataset,        // load summary + cluster schema of the session's dataset
  kRenderLayouts,      // render all four Fig. 4-7 views (the cacheable unit)
  kFocusClass,         // ExplorationSession::FocusClass(pick_a)
  kExpandClass,        // ExplorationSession::ExpandClass(pick_a)
  kExpandAll,          // ExplorationSession::ExpandAll()
  kEffectivenessTask,  // EffectivenessSimulator task pick_a in {0,1,2}
  kDrilldownSample,    // drilldown::SampleInstances on class pick_a
  kDescribeResource,   // drilldown::DescribeResource on a sampled instance
  kVisualQuery,        // VisualQuery on class pick_a with a label filter
};

const char* SessionActionKindName(SessionActionKind kind);

/// One step of a session plan. `pick_a` / `pick_b` are raw 64-bit draws;
/// the serving layer resolves them modulo whatever is actually there
/// (catalog size, class count, row count), so plan generation never needs
/// to know the catalog and the same plan replays against any deployment.
struct SessionAction {
  SessionActionKind kind = SessionActionKind::kListDatasets;
  uint64_t pick_a = 0;
  uint64_t pick_b = 0;
};

/// A full scripted session: which dataset the user works on (a Zipf rank —
/// real exploration traffic concentrates on a few popular datasets, which
/// is exactly what makes the layout cache earn its keep) and the gesture
/// sequence.
struct SessionPlan {
  size_t session_id = 0;
  uint64_t seed = 0;
  /// Zipf-skewed dataset rank; resolved modulo the catalog size.
  size_t dataset_rank = 0;
  std::vector<SessionAction> actions;
};

struct ExplorationWorkloadOptions {
  size_t sessions = 64;
  uint64_t seed = 2020;
  /// Zipf skew of dataset popularity (higher = more concentrated).
  double dataset_zipf_s = 1.1;
  /// Exploration steps after the fixed open/render prologue.
  size_t min_steps = 5;
  size_t max_steps = 12;
};

/// Generates the session plans. A pure function of (options,
/// dataset_count): same inputs, byte-identical plans, in any build, which
/// anchors the serving layer's transcript-determinism contract.
std::vector<SessionPlan> GenerateSessions(
    const ExplorationWorkloadOptions& options, size_t dataset_count);

}  // namespace hbold::workload

#endif  // HBOLD_WORKLOAD_EXPLORATION_WORKLOAD_H_
