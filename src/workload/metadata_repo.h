#ifndef HBOLD_WORKLOAD_METADATA_REPO_H_
#define HBOLD_WORKLOAD_METADATA_REPO_H_

#include <string>
#include <vector>

#include "rdf/graph.h"

namespace hbold::workload {

/// One endpoint entry of a SPARQLES-like metadata repository.
struct MetadataEntry {
  std::string url;
  double availability = 1.0;  // measured uptime fraction in [0, 1]
};

/// Generates a synthetic endpoint-metadata repository (the §5 future-work
/// discovery source): one sq:Endpoint resource per entry with sq:url and
/// sq:availability. Returns the number of triples added.
size_t GenerateMetadataRepository(const std::vector<MetadataEntry>& entries,
                                  const std::string& namespace_iri,
                                  rdf::TripleStore* store);

}  // namespace hbold::workload

#endif  // HBOLD_WORKLOAD_METADATA_REPO_H_
