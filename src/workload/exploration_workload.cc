#include "workload/exploration_workload.h"

#include "common/random.h"

namespace hbold::workload {

const char* SessionActionKindName(SessionActionKind kind) {
  switch (kind) {
    case SessionActionKind::kListDatasets:
      return "list_datasets";
    case SessionActionKind::kOpenDataset:
      return "open_dataset";
    case SessionActionKind::kRenderLayouts:
      return "render_layouts";
    case SessionActionKind::kFocusClass:
      return "focus_class";
    case SessionActionKind::kExpandClass:
      return "expand_class";
    case SessionActionKind::kExpandAll:
      return "expand_all";
    case SessionActionKind::kEffectivenessTask:
      return "effectiveness_task";
    case SessionActionKind::kDrilldownSample:
      return "drilldown_sample";
    case SessionActionKind::kDescribeResource:
      return "describe_resource";
    case SessionActionKind::kVisualQuery:
      return "visual_query";
  }
  return "unknown";
}

std::vector<SessionPlan> GenerateSessions(
    const ExplorationWorkloadOptions& options, size_t dataset_count) {
  std::vector<SessionPlan> plans;
  plans.reserve(options.sessions);
  for (size_t s = 0; s < options.sessions; ++s) {
    SessionPlan plan;
    plan.session_id = s;
    // Per-session seed derived from the workload seed, never from the
    // session's position in any execution order.
    plan.seed = options.seed * 0x9E3779B97F4A7C15ULL + s * 2 + 1;
    Rng rng(plan.seed);
    plan.dataset_rank =
        dataset_count == 0
            ? 0
            : rng.Zipf(dataset_count, options.dataset_zipf_s);

    // Every session walks the same prologue a real user does: pick a
    // dataset from the list, open it, look at the high-level views.
    plan.actions.push_back({SessionActionKind::kListDatasets, 0, 0});
    plan.actions.push_back({SessionActionKind::kOpenDataset, 0, 0});
    plan.actions.push_back({SessionActionKind::kRenderLayouts, 0, 0});

    size_t span = options.max_steps >= options.min_steps
                      ? options.max_steps - options.min_steps + 1
                      : 1;
    size_t steps = options.min_steps + rng.Uniform(span);
    bool focused = false;
    for (size_t i = 0; i < steps; ++i) {
      uint64_t roll = rng.Uniform(100);
      SessionAction action;
      action.pick_a = rng.Next();
      action.pick_b = rng.Next();
      if (!focused || roll < 15) {
        action.kind = SessionActionKind::kFocusClass;
        focused = true;
      } else if (roll < 35) {
        action.kind = SessionActionKind::kExpandClass;
      } else if (roll < 42) {
        action.kind = SessionActionKind::kExpandAll;
      } else if (roll < 55) {
        action.kind = SessionActionKind::kEffectivenessTask;
      } else if (roll < 70) {
        action.kind = SessionActionKind::kDrilldownSample;
      } else if (roll < 80) {
        action.kind = SessionActionKind::kDescribeResource;
      } else if (roll < 92) {
        action.kind = SessionActionKind::kVisualQuery;
      } else {
        // Revisit the high-level views mid-session — the second render of
        // the same schema is the layout cache's bread and butter.
        action.kind = SessionActionKind::kRenderLayouts;
      }
      plan.actions.push_back(action);
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

}  // namespace hbold::workload
