#include "workload/scholarly.h"

#include <string>
#include <vector>

#include "common/random.h"
#include "rdf/vocab.h"

namespace hbold::workload {

namespace {

class Builder {
 public:
  Builder(rdf::TripleStore* store, uint64_t seed) : store_(store), rng_(seed) {}

  rdf::Term Cls(const std::string& name) {
    return rdf::Term::Iri(std::string(kScholarlyNs) + name);
  }
  rdf::Term Prop(const std::string& name) {
    return rdf::Term::Iri(std::string(kScholarlyNs) + name);
  }
  rdf::Term Inst(const std::string& name) {
    return rdf::Term::Iri("http://www.scholarlydata.org/inst/" + name);
  }

  void Add(const rdf::Term& s, const rdf::Term& p, const rdf::Term& o) {
    store_->Add(s, p, o);
    ++triples_;
  }
  void Type(const rdf::Term& s, const rdf::Term& cls) {
    Add(s, rdf::Term::Iri(rdf::vocab::kRdfType), cls);
  }
  void Label(const rdf::Term& s, const std::string& text) {
    Add(s, rdf::Term::Iri(rdf::vocab::kRdfsLabel), rdf::Term::Literal(text));
  }

  Rng& rng() { return rng_; }
  size_t triples() const { return triples_; }

 private:
  rdf::TripleStore* store_;
  Rng rng_;
  size_t triples_ = 0;
};

}  // namespace

size_t GenerateScholarly(const ScholarlyConfig& config,
                         rdf::TripleStore* store) {
  Builder b(store, config.seed);

  // Ontology class terms (as seen in Figs. 2 and 7).
  rdf::Term event = b.Cls("Event");
  rdf::Term situation = b.Cls("Situation");
  rdf::Term vevent = b.Cls("Vevent");
  rdf::Term session_event = b.Cls("SessionEvent");
  rdf::Term conference_series = b.Cls("ConferenceSeries");
  rdf::Term information_object = b.Cls("InformationObject");
  rdf::Term person = b.Cls("Person");
  rdf::Term organisation = b.Cls("Organisation");
  rdf::Term role = b.Cls("RoleDuringEvent");
  rdf::Term site = b.Cls("Site");
  rdf::Term talk = b.Cls("Talk");
  rdf::Term paper = b.Cls("InProceedings");

  // Properties. Fig. 7's focus: Event with range Situation and domains
  // Vevent / SessionEvent / ConferenceSeries / InformationObject.
  rdf::Term has_situation = b.Prop("hasSituation");      // Event -> Situation
  rdf::Term sub_event_of = b.Prop("isSubEventOf");       // SessionEvent -> Event
  rdf::Term v_describes = b.Prop("describesEvent");      // Vevent -> Event
  rdf::Term part_of_series = b.Prop("partOfSeries");     // Event -> ConferenceSeries
  rdf::Term about_event = b.Prop("isAboutEvent");        // InformationObject -> Event
  rdf::Term held_at = b.Prop("heldAt");                  // Event -> Site
  rdf::Term has_role = b.Prop("holdsRole");              // Person -> Role
  rdf::Term role_at = b.Prop("roleAt");                  // Role -> Event
  rdf::Term affiliated = b.Prop("hasAffiliation");       // Person -> Organisation
  rdf::Term gives_talk = b.Prop("givesTalk");            // Person -> Talk
  rdf::Term talk_in = b.Prop("presentedIn");             // Talk -> SessionEvent
  rdf::Term authored = b.Prop("hasAuthor");              // InProceedings -> Person
  rdf::Term relates_to = b.Prop("relatesTo");            // InProceedings -> Talk

  // People and organisations.
  std::vector<rdf::Term> people;
  people.reserve(config.people);
  for (size_t i = 0; i < config.people; ++i) {
    rdf::Term p = b.Inst("person/p" + std::to_string(i));
    b.Type(p, person);
    b.Label(p, "Person " + std::to_string(i));
    people.push_back(std::move(p));
  }
  std::vector<rdf::Term> orgs;
  orgs.reserve(config.organisations);
  for (size_t i = 0; i < config.organisations; ++i) {
    rdf::Term o = b.Inst("org/o" + std::to_string(i));
    b.Type(o, organisation);
    b.Label(o, "Organisation " + std::to_string(i));
    orgs.push_back(std::move(o));
  }
  for (const rdf::Term& p : people) {
    b.Add(p, affiliated, orgs[b.rng().Uniform(orgs.size())]);
  }

  // One conference series, conferences, sessions, talks.
  rdf::Term series = b.Inst("series/main");
  b.Type(series, conference_series);
  b.Label(series, "Main Conference Series");

  size_t paper_id = 0;
  for (size_t c = 0; c < config.conferences; ++c) {
    rdf::Term conf = b.Inst("conf/c" + std::to_string(c));
    b.Type(conf, event);
    b.Label(conf, "Conference " + std::to_string(c));
    b.Add(conf, part_of_series, series);

    rdf::Term venue = b.Inst("site/s" + std::to_string(c));
    b.Type(venue, site);
    b.Add(conf, held_at, venue);

    rdf::Term sit = b.Inst("situation/sit" + std::to_string(c));
    b.Type(sit, situation);
    b.Add(conf, has_situation, sit);

    rdf::Term cal = b.Inst("vevent/v" + std::to_string(c));
    b.Type(cal, vevent);
    b.Add(cal, v_describes, conf);

    for (size_t s = 0; s < config.sessions_per_conference; ++s) {
      rdf::Term session =
          b.Inst("session/c" + std::to_string(c) + "_s" + std::to_string(s));
      b.Type(session, session_event);
      b.Add(session, sub_event_of, conf);

      // Session chair role.
      rdf::Term chair_role = b.Inst("role/c" + std::to_string(c) + "_s" +
                                    std::to_string(s));
      b.Type(chair_role, role);
      b.Add(chair_role, role_at, conf);
      b.Add(people[b.rng().Uniform(people.size())], has_role, chair_role);

      for (size_t t = 0; t < config.talks_per_session; ++t) {
        rdf::Term tk = b.Inst("talk/c" + std::to_string(c) + "_s" +
                              std::to_string(s) + "_t" + std::to_string(t));
        b.Type(tk, talk);
        b.Add(tk, talk_in, session);
        const rdf::Term& speaker = people[b.rng().Uniform(people.size())];
        b.Add(speaker, gives_talk, tk);

        rdf::Term pub = b.Inst("paper/p" + std::to_string(paper_id++));
        b.Type(pub, paper);
        b.Add(pub, relates_to, tk);
        b.Add(pub, about_event, conf);
        b.Type(pub, information_object);
        size_t n_authors = 1 + b.rng().Uniform(3);
        size_t first_author = b.rng().Uniform(people.size());
        for (size_t a = 0; a < n_authors; ++a) {
          // Consecutive indexes avoid duplicate author triples for a paper.
          b.Add(pub, authored, people[(first_author + a) % people.size()]);
        }
      }
    }
  }
  return b.triples();
}

}  // namespace hbold::workload
