#include "workload/portal_generator.h"

#include "common/random.h"
#include "rdf/vocab.h"

namespace hbold::workload {

size_t GeneratePortalCatalog(const PortalConfig& config,
                             rdf::TripleStore* store) {
  Rng rng(config.seed);
  size_t triples = 0;
  const std::string& ns = config.namespace_iri;

  rdf::Term rdf_type = rdf::Term::Iri(rdf::vocab::kRdfType);
  rdf::Term dataset_cls = rdf::Term::Iri(rdf::vocab::kDcatDataset);
  rdf::Term distribution = rdf::Term::Iri(rdf::vocab::kDcatDistribution);
  rdf::Term access_url = rdf::Term::Iri(rdf::vocab::kDcatAccessUrl);
  rdf::Term title = rdf::Term::Iri(rdf::vocab::kDcTitle);

  auto add = [&](const rdf::Term& s, const rdf::Term& p, const rdf::Term& o) {
    store->Add(s, p, o);
    ++triples;
  };

  size_t sparql_count = config.sparql_urls.size();
  for (size_t i = 0; i < config.total_datasets; ++i) {
    rdf::Term ds = rdf::Term::Iri(ns + "dataset/d" + std::to_string(i));
    add(ds, rdf_type, dataset_cls);
    add(ds, title,
        rdf::Term::Literal(config.portal_name + " dataset " +
                           std::to_string(i)));
    rdf::Term dist = rdf::Term::Iri(ns + "dist/d" + std::to_string(i));
    add(ds, distribution, dist);
    if (i < sparql_count) {
      add(dist, access_url, rdf::Term::Iri(config.sparql_urls[i]));
      // Realistic catalogs often list a data dump next to the endpoint.
      if (rng.Chance(0.5)) {
        rdf::Term dump = rdf::Term::Iri(ns + "dist/d" + std::to_string(i) +
                                        "_dump");
        add(ds, distribution, dump);
        add(dump, access_url,
            rdf::Term::Iri(ns + "files/d" + std::to_string(i) + ".nt.gz"));
      }
    } else {
      add(dist, access_url,
          rdf::Term::Iri(ns + "files/d" + std::to_string(i) + ".csv"));
    }
  }
  return triples;
}

}  // namespace hbold::workload
