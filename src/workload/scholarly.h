#ifndef HBOLD_WORKLOAD_SCHOLARLY_H_
#define HBOLD_WORKLOAD_SCHOLARLY_H_

#include <cstdint>

#include "rdf/graph.h"

namespace hbold::workload {

/// Generates a ScholarlyData.org-like dataset — the LD the paper uses for
/// Figs. 2 and 7. The ontology mirrors the classes visible in those
/// figures (Event, Situation, Vevent, SessionEvent, ConferenceSeries,
/// InformationObject, Person, Organisation, Role, Site, ...) and the
/// domain/range structure around the Event class that Fig. 7 highlights.
struct ScholarlyConfig {
  /// Scale factor: number of conference editions generated.
  size_t conferences = 4;
  size_t sessions_per_conference = 8;
  size_t talks_per_session = 4;
  size_t people = 300;
  size_t organisations = 40;
  uint64_t seed = 7;
};

/// Adds the scholarly dataset to `store`. Returns the number of triples.
size_t GenerateScholarly(const ScholarlyConfig& config,
                         rdf::TripleStore* store);

/// Namespace used by the scholarly generator.
inline constexpr const char* kScholarlyNs =
    "http://www.scholarlydata.org/ontology/conf-ontology.owl#";

}  // namespace hbold::workload

#endif  // HBOLD_WORKLOAD_SCHOLARLY_H_
