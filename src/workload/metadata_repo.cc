#include "workload/metadata_repo.h"

#include "rdf/vocab.h"

namespace hbold::workload {

size_t GenerateMetadataRepository(const std::vector<MetadataEntry>& entries,
                                  const std::string& namespace_iri,
                                  rdf::TripleStore* store) {
  size_t triples = 0;
  rdf::Term rdf_type = rdf::Term::Iri(rdf::vocab::kRdfType);
  rdf::Term endpoint_cls = rdf::Term::Iri(rdf::vocab::kSqEndpointClass);
  rdf::Term url_prop = rdf::Term::Iri(rdf::vocab::kSqUrl);
  rdf::Term avail_prop = rdf::Term::Iri(rdf::vocab::kSqAvailability);

  size_t id = 0;
  for (const MetadataEntry& entry : entries) {
    rdf::Term ep =
        rdf::Term::Iri(namespace_iri + "endpoint/e" + std::to_string(id++));
    store->Add(ep, rdf_type, endpoint_cls);
    store->Add(ep, url_prop, rdf::Term::Iri(entry.url));
    store->Add(ep, avail_prop, rdf::Term::DoubleLiteral(entry.availability));
    triples += 3;
  }
  return triples;
}

}  // namespace hbold::workload
