#ifndef HBOLD_WORKLOAD_PORTAL_GENERATOR_H_
#define HBOLD_WORKLOAD_PORTAL_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rdf/graph.h"

namespace hbold::workload {

/// Shape of a synthetic open-data portal catalog (DCAT metadata the
/// crawler queries with the paper's Listing 1).
struct PortalConfig {
  std::string portal_name = "portal";
  std::string namespace_iri = "http://portal.example.org/";
  /// Total dcat:Dataset entries in the catalog.
  size_t total_datasets = 100;
  /// dcat:accessURL values that contain "sparql" (discoverable endpoints).
  /// Must be <= total_datasets. Each such dataset gets one SPARQL
  /// distribution; the rest get file-download URLs.
  std::vector<std::string> sparql_urls;
  uint64_t seed = 3;
};

/// Generates the DCAT catalog into `store`: per dataset a dcat:Dataset with
/// dc:title and one or two dcat:distribution nodes carrying dcat:accessURL.
/// Returns the number of triples added.
size_t GeneratePortalCatalog(const PortalConfig& config,
                             rdf::TripleStore* store);

}  // namespace hbold::workload

#endif  // HBOLD_WORKLOAD_PORTAL_GENERATOR_H_
