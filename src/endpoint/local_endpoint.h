#ifndef HBOLD_ENDPOINT_LOCAL_ENDPOINT_H_
#define HBOLD_ENDPOINT_LOCAL_ENDPOINT_H_

#include <atomic>
#include <mutex>
#include <string>

#include "endpoint/endpoint.h"
#include "rdf/graph.h"
#include "sparql/executor.h"

namespace hbold::endpoint {

/// Backend selection for stores served by endpoints: small corpora stay in
/// RAM, million-triple corpora move out of core before serving begins.
/// Applied by ApplyStoreBackendPolicy — typically right after bulk load,
/// before the endpoint (and its FinalizeIndex) is constructed.
struct StoreBackendPolicy {
  /// Stores with at least this many triples switch to the mmap-backed
  /// disk backend. With ~36 B/triple mapped across the three runs, the
  /// default (4M triples, ~144 MB on disk) is where the in-RAM vectors'
  /// doubling slack starts to dominate typical endpoint memory budgets.
  size_t disk_threshold_triples = size_t{4} << 20;
  /// Scratch root for the store's run files; empty = a fresh directory
  /// under the system temp dir.
  std::string directory;
  /// Forwarded to DiskBackendOptions::memory_budget_bytes.
  size_t memory_budget_bytes = size_t{64} << 20;
};

/// Enables the disk backend on `store` when it is at or past the policy
/// threshold. No-op (OK) below the threshold or when already on disk.
/// Same write-side synchronization rules as TripleStore::Add.
Status ApplyStoreBackendPolicy(rdf::TripleStore* store,
                               const StoreBackendPolicy& policy);

/// An endpoint backed directly by an in-process TripleStore. Latency is the
/// measured wall-clock execution time; no availability or dialect modeling.
///
/// Thread safety — the truly concurrent read path: the constructor eagerly
/// finalizes the store's indexes (so the mutable lazy rebuild can never run
/// inside a query), the executor is stateless, and the served counter is
/// atomic, so any number of Query()/QueryWithStats() calls may run fully in
/// parallel — a width-4 QueryBatch against one local store gets real
/// wall-clock overlap, not serialized turns on a big lock. Callers that add
/// triples to the store after construction must not overlap those writes
/// with queries (same contract as TripleStore itself).
class LocalEndpoint : public SparqlEndpoint {
 public:
  /// `store` must outlive the endpoint. Every endpoint owns one
  /// cross-query plan cache (keyed on the normalized WHERE tree and the
  /// store's rebuild generation); `enable_plan_cache = false` opts out for
  /// differential benchmarks. The cache only memoizes planning — results
  /// and charged accounting are bit-identical either way.
  LocalEndpoint(std::string url, std::string name,
                const rdf::TripleStore* store, bool enable_plan_cache = true)
      : url_(std::move(url)), name_(std::move(name)), store_(store),
        // Capacity adapted to the endpoint's corpus: sized from the store
        // at construction, growing (bounded) if the observed query corpus
        // outruns the guess.
        plan_cache_(sparql::PlanCache::CapacityForStoreSize(store->size()),
                    /*adaptive=*/true),
        executor_(store, sparql::ExecOptions{},
                  enable_plan_cache ? &plan_cache_ : nullptr) {
    store_->FinalizeIndex();
  }

  Result<QueryOutcome> Query(const std::string& query_text) override;

  /// Like Query(), but writes the execution stats to caller-owned storage
  /// instead of the shared last_stats() slot — the race-free form for
  /// concurrent callers that need per-query stats (the simulated-endpoint
  /// latency model uses this).
  Result<QueryOutcome> QueryWithStats(const std::string& query_text,
                                      sparql::ExecStats* stats);

  const std::string& url() const override { return url_; }
  const std::string& name() const override { return name_; }
  size_t queries_served() const override {
    return queries_served_.load(std::memory_order_relaxed);
  }

  const rdf::TripleStore* store() const { return store_; }

  /// Plan-cache effectiveness + hash-join activity, cumulative. Reads
  /// atomics / takes the cache's shared lock only — never the query path.
  QueryEngineStats engine_stats() const override {
    sparql::PlanCacheStats cache = plan_cache_.stats();
    QueryEngineStats s;
    s.plan_cache_hits = cache.hits;
    s.plan_cache_misses = cache.misses;
    s.plan_cache_invalidations = cache.invalidations;
    s.hash_join_builds = hash_join_builds_.load(std::memory_order_relaxed);
    s.plan_cache_capacity = cache.capacity;
    return s;
  }

  const sparql::PlanCache& plan_cache() const { return plan_cache_; }

  /// Execution stats of the most recent completed query. Only meaningful
  /// when no other query is in flight; concurrent callers should use
  /// QueryWithStats() instead. Returns a copy (the slot is guarded by a
  /// small mutex, not the query path).
  sparql::ExecStats last_stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return last_stats_;
  }

 private:
  std::string url_;
  std::string name_;
  const rdf::TripleStore* store_;
  /// Declared before executor_: the executor captures its address.
  sparql::PlanCache plan_cache_;
  sparql::Executor executor_;
  std::atomic<uint64_t> hash_join_builds_{0};
  mutable std::mutex stats_mu_;  // guards last_stats_ only, never the query
  sparql::ExecStats last_stats_;
  std::atomic<size_t> queries_served_{0};
};

}  // namespace hbold::endpoint

#endif  // HBOLD_ENDPOINT_LOCAL_ENDPOINT_H_
