#ifndef HBOLD_ENDPOINT_LOCAL_ENDPOINT_H_
#define HBOLD_ENDPOINT_LOCAL_ENDPOINT_H_

#include <mutex>
#include <string>

#include "endpoint/endpoint.h"
#include "rdf/graph.h"
#include "sparql/executor.h"

namespace hbold::endpoint {

/// An endpoint backed directly by an in-process TripleStore. Latency is the
/// measured wall-clock execution time; no availability or dialect modeling.
///
/// Thread safety: Query() serializes on an internal mutex, so a QueryBatch
/// may fan concurrent queries at one endpoint (the executor itself is
/// stateless, but the served counter and last_stats() are not). Reading
/// last_stats() is only meaningful from the thread that just ran Query()
/// while no other query is in flight — SimulatedRemoteEndpoint holds its
/// own lock across both calls for exactly that reason.
class LocalEndpoint : public SparqlEndpoint {
 public:
  /// `store` must outlive the endpoint.
  LocalEndpoint(std::string url, std::string name,
                const rdf::TripleStore* store)
      : url_(std::move(url)), name_(std::move(name)), store_(store),
        executor_(store) {}

  Result<QueryOutcome> Query(const std::string& query_text) override;

  const std::string& url() const override { return url_; }
  const std::string& name() const override { return name_; }
  size_t queries_served() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return queries_served_;
  }

  const rdf::TripleStore* store() const { return store_; }

  /// Execution stats of the most recent query (for the latency model of
  /// SimulatedRemoteEndpoint).
  const sparql::ExecStats& last_stats() const { return last_stats_; }

 private:
  std::string url_;
  std::string name_;
  const rdf::TripleStore* store_;
  sparql::Executor executor_;
  mutable std::mutex mu_;
  sparql::ExecStats last_stats_;
  size_t queries_served_ = 0;
};

}  // namespace hbold::endpoint

#endif  // HBOLD_ENDPOINT_LOCAL_ENDPOINT_H_
