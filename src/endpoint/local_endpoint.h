#ifndef HBOLD_ENDPOINT_LOCAL_ENDPOINT_H_
#define HBOLD_ENDPOINT_LOCAL_ENDPOINT_H_

#include <string>

#include "endpoint/endpoint.h"
#include "rdf/graph.h"
#include "sparql/executor.h"

namespace hbold::endpoint {

/// An endpoint backed directly by an in-process TripleStore. Latency is the
/// measured wall-clock execution time; no availability or dialect modeling.
class LocalEndpoint : public SparqlEndpoint {
 public:
  /// `store` must outlive the endpoint.
  LocalEndpoint(std::string url, std::string name,
                const rdf::TripleStore* store)
      : url_(std::move(url)), name_(std::move(name)), store_(store),
        executor_(store) {}

  Result<QueryOutcome> Query(const std::string& query_text) override;

  const std::string& url() const override { return url_; }
  const std::string& name() const override { return name_; }
  size_t queries_served() const override { return queries_served_; }

  const rdf::TripleStore* store() const { return store_; }

  /// Execution stats of the most recent query (for the latency model of
  /// SimulatedRemoteEndpoint).
  const sparql::ExecStats& last_stats() const { return last_stats_; }

 private:
  std::string url_;
  std::string name_;
  const rdf::TripleStore* store_;
  sparql::Executor executor_;
  sparql::ExecStats last_stats_;
  size_t queries_served_ = 0;
};

}  // namespace hbold::endpoint

#endif  // HBOLD_ENDPOINT_LOCAL_ENDPOINT_H_
