#include "endpoint/query_batch.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <utility>

#include "common/thread_pool.h"

namespace hbold::endpoint {

namespace {

/// Shared state of one running batch. Held by shared_ptr: pool runner
/// tasks that only get scheduled after the batch already completed (their
/// claims all miss) must still find the cursor alive.
struct BatchState {
  BatchState(std::vector<QueryJob> jobs_in, const QueryBatchOptions& options)
      : jobs(std::move(jobs_in)),
        limit(options.per_endpoint_limit),
        abort_on_failure(options.abort_on_failure),
        abort_on_truncation(options.abort_on_truncation),
        results(jobs.size(), Status::Internal("batch job never ran")) {}

  /// Owned copy: a pool runner scheduled only after the batch finished
  /// still reads jobs.size() through the shared_ptr, which must not
  /// dangle into the caller's stack.
  const std::vector<QueryJob> jobs;
  const size_t limit;  // per-endpoint cap, 0 = unlimited
  const bool abort_on_failure;
  const bool abort_on_truncation;

  /// Claim cursor: hands out job indices in submission order.
  std::atomic<size_t> next{0};
  /// Set on the first job failure; jobs claimed afterwards are abandoned.
  std::atomic<bool> aborted{false};

  std::vector<Result<QueryOutcome>> results;

  // Completion tracking (caller blocks until completed == jobs.size()).
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t completed = 0;

  // Politeness semaphore: in-flight queries per endpoint.
  std::mutex slots_mu;
  std::condition_variable slots_cv;
  std::map<SparqlEndpoint*, size_t> in_flight;
};

void AcquireSlot(BatchState* s, SparqlEndpoint* ep) {
  if (s->limit == 0) return;
  std::unique_lock<std::mutex> lock(s->slots_mu);
  s->slots_cv.wait(lock, [&] { return s->in_flight[ep] < s->limit; });
  ++s->in_flight[ep];
}

void ReleaseSlot(BatchState* s, SparqlEndpoint* ep) {
  if (s->limit == 0) return;
  {
    std::lock_guard<std::mutex> lock(s->slots_mu);
    --s->in_flight[ep];
  }
  s->slots_cv.notify_all();
}

void MarkDone(BatchState* s) {
  bool all = false;
  {
    std::lock_guard<std::mutex> lock(s->done_mu);
    all = ++s->completed == s->jobs.size();
  }
  if (all) s->done_cv.notify_all();
}

/// Claim-and-run loop shared by the caller thread and the pool runners.
///
/// The abort flag is sampled *before* claiming: a job claimed while the
/// flag was still clear always executes, so the set of real (non-
/// Cancelled) outcomes is a prefix-closed superset of everything before
/// the first failure in submission order — see the header contract.
void RunClaimLoop(const std::shared_ptr<BatchState>& s) {
  const size_t n = s->jobs.size();
  for (;;) {
    const bool aborted = s->aborted.load();
    const size_t i = s->next.fetch_add(1);
    if (i >= n) return;
    if (aborted) {
      s->results[i] =
          Status::Cancelled("batch aborted after an earlier job failed");
      MarkDone(s.get());
      continue;
    }
    SparqlEndpoint* ep = s->jobs[i].endpoint;
    Result<QueryOutcome> outcome =
        Status::Unavailable("null endpoint in batch job");
    if (ep != nullptr) {
      AcquireSlot(s.get(), ep);
      // An escaping exception would be swallowed by the pool task's
      // discarded future and this job would never MarkDone — hanging
      // the whole batch. Fold it into a Status instead.
      try {
        outcome = ep->Query(s->jobs[i].query);
      } catch (const std::exception& e) {
        outcome = Status::Internal(std::string("batch job threw: ") +
                                   e.what());
      } catch (...) {
        outcome = Status::Internal("batch job threw");
      }
      ReleaseSlot(s.get(), ep);
    }
    const bool failed = !outcome.ok() && s->abort_on_failure;
    const bool truncated =
        outcome.ok() && outcome->truncated && s->abort_on_truncation;
    if (failed || truncated) s->aborted.store(true);
    s->results[i] = std::move(outcome);
    MarkDone(s.get());
  }
}

}  // namespace

std::vector<Result<QueryOutcome>> QueryBatch::Run(
    const std::vector<QueryJob>& jobs, const QueryBatchOptions& options) {
  auto state = std::make_shared<BatchState>(jobs, options);
  if (jobs.empty()) return std::move(state->results);

  if (options.pool != nullptr && state->jobs.size() > 1) {
    // Useful concurrency: the politeness cap bounds it per endpoint, the
    // pool bounds it globally. The caller thread is one more runner, so
    // the batch completes even if the pool never schedules any of these.
    std::set<SparqlEndpoint*> distinct;
    for (const QueryJob& job : jobs) distinct.insert(job.endpoint);
    size_t bound = jobs.size();
    if (options.per_endpoint_limit > 0) {
      bound = std::min(bound, distinct.size() * options.per_endpoint_limit);
    }
    const size_t runners =
        std::min({jobs.size() - 1, bound, options.pool->size()});
    for (size_t r = 0; r < runners; ++r) {
      options.pool->Submit([state] { RunClaimLoop(state); });
    }
  }
  RunClaimLoop(state);
  {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(
        lock, [&] { return state->completed == state->jobs.size(); });
  }
  return std::move(state->results);
}

std::vector<Result<QueryOutcome>> QueryBatch::RunOnOne(
    SparqlEndpoint* ep, const std::vector<std::string>& queries,
    const QueryBatchOptions& options) {
  std::vector<QueryJob> jobs;
  jobs.reserve(queries.size());
  for (const std::string& q : queries) jobs.push_back(QueryJob{ep, q});
  return Run(jobs, options);
}

std::vector<Result<bool>> ProbeBatch(
    const std::vector<SparqlEndpoint*>& endpoints,
    const QueryBatchOptions& options) {
  std::vector<QueryJob> jobs;
  jobs.reserve(endpoints.size());
  for (SparqlEndpoint* ep : endpoints) {
    jobs.push_back(QueryJob{ep, "ASK { ?s ?p ?o . }"});
  }
  // A down endpoint is a per-endpoint answer, not a reason to stop
  // probing the rest.
  QueryBatchOptions probe_options = options;
  probe_options.abort_on_failure = false;
  std::vector<Result<QueryOutcome>> outcomes =
      QueryBatch::Run(jobs, probe_options);
  std::vector<Result<bool>> probes;
  probes.reserve(outcomes.size());
  for (Result<QueryOutcome>& outcome : outcomes) {
    if (!outcome.ok()) {
      probes.push_back(outcome.status());
      continue;
    }
    std::optional<bool> answer = outcome->table.AskResult();
    if (!answer.has_value()) {
      probes.push_back(
          Status::Internal("endpoint returned a non-boolean ASK result"));
      continue;
    }
    probes.push_back(*answer);
  }
  return probes;
}

}  // namespace hbold::endpoint
