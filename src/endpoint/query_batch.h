#ifndef HBOLD_ENDPOINT_QUERY_BATCH_H_
#define HBOLD_ENDPOINT_QUERY_BATCH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "endpoint/endpoint.h"

namespace hbold {
class ThreadPool;
}  // namespace hbold

namespace hbold::endpoint {

/// One unit of batch work: a SPARQL query against an endpoint. Jobs in a
/// batch are independent of one another (no job reads another's result).
struct QueryJob {
  SparqlEndpoint* endpoint = nullptr;
  std::string query;
};

/// Knobs for QueryBatch::Run.
struct QueryBatchOptions {
  /// Shared worker pool the batch fans out over. Null runs every job on
  /// the calling thread (the degenerate sequential mode). The pool may be
  /// the same one whose workers call Run — see the nested-submission rule
  /// below.
  ThreadPool* pool = nullptr;
  /// Politeness cap: at most this many queries in flight against any one
  /// endpoint at a time. 0 means unlimited. Public SPARQL endpoints
  /// throttle or ban aggressive clients, so the daily cycle keeps this
  /// small regardless of how many pool workers are idle.
  size_t per_endpoint_limit = 1;
  /// Abandon not-yet-started jobs once one fails — the all-or-nothing
  /// mode extraction batches want (their caller aborts on the first
  /// failure anyway, so the rest of the batch would be wasted endpoint
  /// work). Set false when jobs are independent errands (portal crawls):
  /// every job then runs and carries its own outcome.
  bool abort_on_failure = true;
  /// Also abandon not-yet-started jobs once one outcome comes back
  /// truncated by the endpoint's row cap. Extraction batches set this:
  /// their callers treat truncation as Unsupported and fall back to the
  /// next strategy, so issuing the rest of the batch would charge the
  /// endpoint for answers nobody reads.
  bool abort_on_truncation = false;
};

/// Fans a set of independent queries out over a shared ThreadPool and
/// collects the outcomes in submission order.
///
/// Guarantees:
///   - Outcomes are returned in submission order regardless of the order
///     jobs actually finished in; callers can account costs and merge
///     results deterministically.
///   - Jobs *start* in submission order (a shared cursor hands out
///     indices), so when a job fails (or, with abort_on_truncation, is
///     truncated), every job before it in submission order has started
///     and will produce a real outcome. Jobs not yet started when the
///     abort lands are abandoned with Status::Cancelled; in-flight jobs
///     run to completion. Scanning the returned vector in order
///     therefore meets every pre-abort outcome before any Cancelled
///     placeholder — the deterministic-accounting contract the
///     extraction layer builds on.
///   - Nested-submission safe: the calling thread claims and runs jobs
///     itself alongside the pool workers. A batch submitted from inside a
///     pool worker (an endpoint pipeline fanning out its own queries)
///     makes progress even when every other worker is busy or the pool's
///     queue never schedules the batch's runners — there is no
///     futures-wait on queued work, so no deadlock.
class QueryBatch {
 public:
  /// Runs all jobs; returns one Result per job, in submission order.
  static std::vector<Result<QueryOutcome>> Run(
      const std::vector<QueryJob>& jobs, const QueryBatchOptions& options);

  /// Convenience for the common case of N queries against one endpoint.
  static std::vector<Result<QueryOutcome>> RunOnOne(
      SparqlEndpoint* ep, const std::vector<std::string>& queries,
      const QueryBatchOptions& options);
};

/// Batched liveness probes: runs endpoint::Probe against every endpoint
/// through the same fan-out machinery (one ASK per endpoint, politeness
/// cap honored). Results are in input order; a null endpoint yields
/// Unavailable.
std::vector<Result<bool>> ProbeBatch(
    const std::vector<SparqlEndpoint*>& endpoints,
    const QueryBatchOptions& options);

}  // namespace hbold::endpoint

#endif  // HBOLD_ENDPOINT_QUERY_BATCH_H_
