#include "endpoint/simulated_endpoint.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/hash.h"
#include "rdf/vocab.h"
#include "sparql/parser.h"

namespace hbold::endpoint {

namespace {

/// splitmix64 finalizer — the same mixing the availability model uses.
uint64_t Mix64(uint64_t h) {
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  return h;
}

/// Deterministic hash of (seed, day, op, salt) — the mutation model's
/// only randomness source.
uint64_t MutHash(uint64_t seed, int64_t day, uint64_t op, uint64_t salt) {
  uint64_t h = seed * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(day);
  h = Mix64(h + op * 0xD1B54A32D192ED03ULL);
  return Mix64(h + salt * 0x8CB92BA72F3D8DD7ULL);
}

double UnitInterval(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace

bool AvailabilityModel::IsUp(int64_t day) const {
  if (forced_outage_days.count(day) > 0) return false;
  if (uptime >= 1.0) return true;
  if (uptime <= 0.0) return false;
  // Deterministic hash of (seed, day) -> [0, 1).
  uint64_t h = seed * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(day);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < uptime;
}

SimulatedRemoteEndpoint::SimulatedRemoteEndpoint(
    std::string url, std::string name, rdf::TripleStore* store,
    const SimClock* clock, Dialect dialect, AvailabilityModel availability,
    LatencyModel latency, MutationModel mutation,
    ProbeFaultModel probe_faults)
    : store_(store),
      local_(std::move(url), std::move(name), store),
      clock_(clock),
      dialect_(dialect),
      availability_(availability),
      latency_(latency),
      mutation_(mutation),
      probe_faults_(probe_faults) {}

void SimulatedRemoteEndpoint::AdvanceDataDay(int64_t day) {
  for (int64_t d = last_mutation_day_ + 1; d <= day; ++d) {
    ApplyMutationDay(d);
  }
  last_mutation_day_ = std::max(last_mutation_day_, day);
}

void SimulatedRemoteEndpoint::ApplyMutationDay(int64_t day) {
  if (store_ == nullptr) return;
  if (mutation_.freeze_after_day >= 0 && day > mutation_.freeze_after_day) {
    return;
  }
  rdf::TripleStore& st = *store_;

  const rdf::TermId type_lookup =
      st.dict().Lookup(rdf::Term::Iri(rdf::vocab::kRdfType));

  // ---- Plan phase: data churn. Every pick reads the pre-day snapshot, so
  // the op sequence is a pure function of (seed, day, store content) — no
  // read depends on a same-day write.
  struct PlannedAdd {
    std::string subject_iri;
    std::vector<std::pair<rdf::TermId, rdf::TermId>> po;  // (p, o) pairs
  };
  std::vector<rdf::Triple> removes;
  std::vector<PlannedAdd> adds;
  std::set<rdf::TermId> dirty_classes;

  auto bump_classes_of = [&](rdf::TermId subject) {
    rdf::TriplePattern pat;
    pat.s = subject;
    pat.p = type_lookup;
    for (const rdf::Triple& t : st.Span(pat)) dirty_classes.insert(t.o);
  };

  const size_t total = st.size();
  const size_t budget = static_cast<size_t>(
      static_cast<double>(total) * mutation_.daily_churn_fraction);
  if (budget > 0 && type_lookup != rdf::kInvalidTermId) {
    const auto classes = st.GroupedCountByObject(type_lookup);
    // Hot set: a fixed, seed-determined subset of classes absorbs all
    // churn; everything else stays quiet forever. Guaranteed non-empty
    // (the class with the smallest hash is always hot) so enabled churn
    // always churns.
    std::vector<rdf::TermId> hot;
    if (!classes.empty()) {
      rdf::TermId min_hash_class = classes.front().first;
      uint64_t min_hash = ~uint64_t{0};
      for (const auto& [cid, count] : classes) {
        const uint64_t h =
            Mix64(Fnv64(st.dict().Get(cid).lexical()) ^ mutation_.seed);
        if (h < min_hash) {
          min_hash = h;
          min_hash_class = cid;
        }
        if (UnitInterval(h) < mutation_.hot_class_fraction) {
          hot.push_back(cid);
        }
      }
      if (hot.empty()) hot.push_back(min_hash_class);
    }

    size_t staged = 0;
    for (uint64_t op = 0; !hot.empty() && staged < budget && op < budget * 4;
         ++op) {
      const uint64_t h = MutHash(mutation_.seed, day, op, 0);
      const rdf::TermId cls =
          hot[MutHash(mutation_.seed, day, op, 1) % hot.size()];
      rdf::TriplePattern members;
      members.p = type_lookup;
      members.o = cls;
      const rdf::TripleSpan span = st.Span(members);
      if (span.empty()) continue;
      const rdf::TermId inst =
          span.data[MutHash(mutation_.seed, day, op, 2) % span.size].s;
      rdf::TriplePattern of_inst;
      of_inst.s = inst;
      const rdf::TripleSpan inst_triples = st.Span(of_inst);
      if (inst_triples.empty()) continue;

      if (UnitInterval(h) < mutation_.add_fraction) {
        // Add: a fresh instance of the hot class, cloned from `inst` as a
        // template (type triple plus every non-type (p, o) of the
        // template).
        PlannedAdd add;
        add.subject_iri = st.dict().Get(cls).lexical() + "/churn-d" +
                          std::to_string(day) + "-k" + std::to_string(op);
        add.po.emplace_back(type_lookup, cls);
        for (const rdf::Triple& t : inst_triples) {
          if (t.p == type_lookup) continue;
          add.po.emplace_back(t.p, t.o);
        }
        staged += add.po.size();
        adds.push_back(std::move(add));
        dirty_classes.insert(cls);
      } else {
        // Retract one triple of the picked instance.
        const rdf::Triple t =
            inst_triples.data[MutHash(mutation_.seed, day, op, 3) %
                              inst_triples.size];
        removes.push_back(t);
        staged += 1;
        bump_classes_of(t.s);
        if (t.p == type_lookup) {
          // Losing a type edge changes the class itself and the property
          // ranges of every class whose instances point at this one.
          dirty_classes.insert(t.o);
          rdf::TriplePattern incoming;
          incoming.o = t.s;
          for (const rdf::Triple& in : st.Span(incoming)) {
            if (in.p == type_lookup) continue;
            bump_classes_of(in.s);
          }
        }
      }
    }
  }

  // ---- Plan phase: structural churn (class births / retires). Runs even
  // with data churn disabled and on an empty store — it models schema
  // evolution, not data volume. All reads still hit the pre-day snapshot.
  bool structural_today = false;
  std::string born_class_iri;
  size_t born_instances = 0;
  if (mutation_.class_birth_probability > 0 &&
      UnitInterval(MutHash(mutation_.seed, day, 0xB117B117ULL, 1)) <
          mutation_.class_birth_probability) {
    born_class_iri = url() + "#class-born-d" + std::to_string(day);
    born_instances = 2 + MutHash(mutation_.seed, day, 0xB117B117ULL, 2) % 3;
    structural_today = true;
  }
  if (mutation_.class_retire_probability > 0 &&
      type_lookup != rdf::kInvalidTermId &&
      UnitInterval(MutHash(mutation_.seed, day, 0x5E71BEULL, 1)) <
          mutation_.class_retire_probability) {
    const auto classes = st.GroupedCountByObject(type_lookup);
    if (!classes.empty()) {
      const rdf::TermId retired =
          classes[MutHash(mutation_.seed, day, 0x5E71BEULL, 2) %
                  classes.size()]
              .first;
      dirty_classes.insert(retired);
      rdf::TriplePattern members;
      members.p = type_lookup;
      members.o = retired;
      std::vector<rdf::TermId> member_ids;
      for (const rdf::Triple& m : st.Span(members)) member_ids.push_back(m.s);
      for (const rdf::TermId member : member_ids) {
        bump_classes_of(member);  // members may carry other types too
        rdf::TriplePattern outgoing;
        outgoing.s = member;
        for (const rdf::Triple& t : st.Span(outgoing)) removes.push_back(t);
        // Incoming edges go too; their subjects' classes see their
        // property ranges change.
        rdf::TriplePattern incoming;
        incoming.o = member;
        for (const rdf::Triple& in : st.Span(incoming)) {
          if (in.p == type_lookup) continue;
          removes.push_back(in);
          bump_classes_of(in.s);
        }
      }
      structural_today = true;
    }
  }

  const bool will_write =
      !removes.empty() || !adds.empty() || born_instances > 0;
  if (!will_write) return;

  // Quiet-structural worlds answer probes from a snapshot taken before the
  // structural change; capture it now, while the store still shows the
  // pre-day state. Honest worlds never populate the snapshot.
  if (mutation_.quiet_structural_changes && structural_today &&
      !have_probe_snapshot_) {
    probe_snapshot_ = TruthfulProbe();
    have_probe_snapshot_ = true;
  }
  const uint64_t gen_before = st.generation();

  // ---- Apply phase: stage all writes, then rebuild exactly once so the
  // store generation moves by one per churning day.
  for (const rdf::Triple& t : removes) st.RemoveIds(t.s, t.p, t.o);
  for (const PlannedAdd& add : adds) {
    const rdf::TermId sid = st.dict().Intern(rdf::Term::Iri(add.subject_iri));
    for (const auto& [p, o] : add.po) st.AddIds(sid, p, o);
  }
  if (born_instances > 0) {
    const rdf::TermId type_id =
        st.dict().Intern(rdf::Term::Iri(rdf::vocab::kRdfType));
    const rdf::TermId cls =
        st.dict().Intern(rdf::Term::Iri(born_class_iri));
    const rdf::TermId prop =
        st.dict().Intern(rdf::Term::Iri(born_class_iri + "/label"));
    for (size_t k = 0; k < born_instances; ++k) {
      const rdf::TermId inst = st.dict().Intern(
          rdf::Term::Iri(born_class_iri + "/inst" + std::to_string(k)));
      const rdf::TermId val = st.dict().Intern(
          rdf::Term::Iri(born_class_iri + "/val" + std::to_string(k)));
      st.AddIds(inst, type_id, cls);
      st.AddIds(inst, prop, val);
    }
    dirty_classes.insert(cls);
  }
  for (const rdf::TermId cid : dirty_classes) {
    const std::string iri = st.dict().Get(cid).lexical();
    auto it = class_versions_.try_emplace(iri, 0).first;
    prev_class_versions_[iri] = it->second;
    ++it->second;
  }
  st.FinalizeIndex();
  prev_generation_ = gen_before;

  // Non-structural mutation days make the world visible again: the
  // endpoint's next probe answers live, revealing whatever the quiet
  // structural changes hid.
  if (mutation_.quiet_structural_changes && !structural_today) {
    have_probe_snapshot_ = false;
  }
}

ChangeProbe SimulatedRemoteEndpoint::TruthfulProbe() const {
  ChangeProbe probe;
  probe.store_generation = store_->generation();
  const rdf::TermId type_id =
      store_->dict().Lookup(rdf::Term::Iri(rdf::vocab::kRdfType));
  if (type_id != rdf::kInvalidTermId) {
    for (const auto& [cid, count] : store_->GroupedCountByObject(type_id)) {
      ClassFingerprint f;
      f.class_iri = store_->dict().Get(cid).lexical();
      auto it = class_versions_.find(f.class_iri);
      f.version = it == class_versions_.end() ? 0 : it->second;
      probe.classes.push_back(std::move(f));
    }
    std::sort(probe.classes.begin(), probe.classes.end(),
              [](const ClassFingerprint& a, const ClassFingerprint& b) {
                return a.class_iri < b.class_iri;
              });
  }
  return probe;
}

Result<ChangeProbe> SimulatedRemoteEndpoint::ProbeChanges() {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  const int64_t today = clock_->NowDay();
  if (!availability_.IsUp(today)) {
    return Status::Unavailable("endpoint " + url() + " is down on day " +
                               std::to_string(today));
  }
  // Outage-recovery edge case: a probe arriving before the harness advanced
  // the endpoint's data (e.g. right after an outage window) would answer
  // from the un-churned store and report a generation that spuriously
  // matches the consumer's persisted one. Catch up first — idempotent when
  // the owner already called AdvanceDataDay for today.
  if (last_mutation_day_ < today) AdvanceDataDay(today);

  // Fault coins are salted with a per-day attempt index so a retry or a
  // post-merge validation echo can see a different fate than the first
  // attempt. Honest endpoints never touch the counter (or the mutex), and
  // a frozen adversary (freeze_after_day passed) answers truthfully — the
  // gate is a pure function of the day, so determinism holds either way.
  const bool faults_active =
      probe_faults_.Enabled() && (probe_faults_.freeze_after_day < 0 ||
                                  today <= probe_faults_.freeze_after_day);
  uint64_t attempt = 0;
  if (faults_active) {
    std::lock_guard<std::mutex> lock(probe_mutex_);
    if (probe_attempt_day_ != today) {
      probe_attempt_day_ = today;
      probe_attempts_today_ = 0;
    }
    attempt = probe_attempts_today_++;
  }
  auto coin = [&](uint64_t salt) {
    return UnitInterval(MutHash(probe_faults_.seed, today, attempt, salt));
  };

  if (faults_active && probe_faults_.transient_failure_probability > 0 &&
      coin(1) < probe_faults_.transient_failure_probability) {
    return Status::Timeout("endpoint " + url() +
                           " probe connection dropped on day " +
                           std::to_string(today) + " (attempt " +
                           std::to_string(attempt) + ")");
  }

  ChangeProbe probe =
      (mutation_.quiet_structural_changes && have_probe_snapshot_)
          ? probe_snapshot_
          : TruthfulProbe();

  if (faults_active && probe_faults_.lie_generation_probability > 0 &&
      coin(2) < probe_faults_.lie_generation_probability) {
    // The quiet liar: report the generation from before the last change.
    probe.store_generation = prev_generation_;
  }
  if (faults_active && probe_faults_.lie_fingerprint_probability > 0) {
    for (ClassFingerprint& f : probe.classes) {
      const uint64_t h = MutHash(probe_faults_.seed ^ Fnv64(f.class_iri),
                                 today, attempt, 3);
      if (UnitInterval(h) < probe_faults_.lie_fingerprint_probability) {
        auto it = prev_class_versions_.find(f.class_iri);
        f.version = it == prev_class_versions_.end() ? 0 : it->second;
      }
    }
  }
  if (faults_active && probe_faults_.partial_probability > 0 &&
      !probe.classes.empty() &&
      coin(4) < probe_faults_.partial_probability) {
    // Partial fingerprint set: a per-class keep coin drops a subset. The
    // omission is silent — consumers must not read absence as removal.
    std::vector<ClassFingerprint> kept;
    for (ClassFingerprint& f : probe.classes) {
      const uint64_t h = MutHash(probe_faults_.seed ^ Fnv64(f.class_iri),
                                 today, attempt, 5);
      if (UnitInterval(h) < probe_faults_.partial_keep_fraction) {
        kept.push_back(std::move(f));
      }
    }
    probe.classes = std::move(kept);
  }
  if (faults_active && probe_faults_.truncate_probability > 0 &&
      !probe.classes.empty() &&
      coin(6) < probe_faults_.truncate_probability) {
    probe.classes.resize(MutHash(probe_faults_.seed, today, attempt, 7) %
                         probe.classes.size());
    probe.truncated = true;
  }
  // An honest row cap truncates the fingerprint list like any result set.
  if (dialect_.max_result_rows > 0 &&
      probe.classes.size() > dialect_.max_result_rows) {
    probe.classes.resize(dialect_.max_result_rows);
    probe.truncated = true;
  }
  probe.latency_ms = latency_.Cost(0, probe.classes.size());
  return probe;
}

Result<QueryOutcome> SimulatedRemoteEndpoint::Query(
    const std::string& query_text) {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  if (!availability_.IsUp(clock_->NowDay())) {
    return Status::Unavailable("endpoint " + url() + " is down on day " +
                               std::to_string(clock_->NowDay()));
  }
  // Dialect gate: parse first so feature rejection happens before any work,
  // as a real server would reject at query planning time.
  HBOLD_ASSIGN_OR_RETURN(sparql::SelectQuery parsed,
                         sparql::ParseQuery(query_text));
  if (!dialect_.supports_aggregates && parsed.UsesAggregates()) {
    return Status::Unsupported("endpoint " + url() +
                               " does not implement aggregates");
  }
  if (!dialect_.supports_group_by && !parsed.group_by.empty()) {
    return Status::Unsupported("endpoint " + url() +
                               " does not implement GROUP BY");
  }

  // Per-query stats live on this stack frame, so concurrent queries never
  // contend on (or corrupt) a shared last-stats slot.
  sparql::ExecStats stats;
  HBOLD_ASSIGN_OR_RETURN(QueryOutcome outcome,
                         local_.QueryWithStats(query_text, &stats));

  if (dialect_.work_budget_bindings > 0 &&
      stats.intermediate_bindings > dialect_.work_budget_bindings) {
    return Status::Timeout("endpoint " + url() + " exceeded work budget (" +
                           std::to_string(stats.intermediate_bindings) + " > " +
                           std::to_string(dialect_.work_budget_bindings) + ")");
  }
  if (dialect_.max_result_rows > 0 &&
      outcome.table.num_rows() > dialect_.max_result_rows) {
    outcome.table.Truncate(dialect_.max_result_rows);
    outcome.truncated = true;
  }
  outcome.latency_ms =
      latency_.Cost(stats.intermediate_bindings, outcome.table.num_rows());
  return outcome;
}

}  // namespace hbold::endpoint
