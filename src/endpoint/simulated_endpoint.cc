#include "endpoint/simulated_endpoint.h"

#include "sparql/parser.h"

namespace hbold::endpoint {

bool AvailabilityModel::IsUp(int64_t day) const {
  if (forced_outage_days.count(day) > 0) return false;
  if (uptime >= 1.0) return true;
  if (uptime <= 0.0) return false;
  // Deterministic hash of (seed, day) -> [0, 1).
  uint64_t h = seed * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(day);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBULL;
  h ^= h >> 31;
  double u = static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
  return u < uptime;
}

SimulatedRemoteEndpoint::SimulatedRemoteEndpoint(
    std::string url, std::string name, const rdf::TripleStore* store,
    const SimClock* clock, Dialect dialect, AvailabilityModel availability,
    LatencyModel latency)
    : local_(std::move(url), std::move(name), store),
      clock_(clock),
      dialect_(dialect),
      availability_(availability),
      latency_(latency) {}

Result<QueryOutcome> SimulatedRemoteEndpoint::Query(
    const std::string& query_text) {
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  if (!availability_.IsUp(clock_->NowDay())) {
    return Status::Unavailable("endpoint " + url() + " is down on day " +
                               std::to_string(clock_->NowDay()));
  }
  // Dialect gate: parse first so feature rejection happens before any work,
  // as a real server would reject at query planning time.
  HBOLD_ASSIGN_OR_RETURN(sparql::SelectQuery parsed,
                         sparql::ParseQuery(query_text));
  if (!dialect_.supports_aggregates && parsed.UsesAggregates()) {
    return Status::Unsupported("endpoint " + url() +
                               " does not implement aggregates");
  }
  if (!dialect_.supports_group_by && !parsed.group_by.empty()) {
    return Status::Unsupported("endpoint " + url() +
                               " does not implement GROUP BY");
  }

  // Per-query stats live on this stack frame, so concurrent queries never
  // contend on (or corrupt) a shared last-stats slot.
  sparql::ExecStats stats;
  HBOLD_ASSIGN_OR_RETURN(QueryOutcome outcome,
                         local_.QueryWithStats(query_text, &stats));

  if (dialect_.work_budget_bindings > 0 &&
      stats.intermediate_bindings > dialect_.work_budget_bindings) {
    return Status::Timeout("endpoint " + url() + " exceeded work budget (" +
                           std::to_string(stats.intermediate_bindings) + " > " +
                           std::to_string(dialect_.work_budget_bindings) + ")");
  }
  if (dialect_.max_result_rows > 0 &&
      outcome.table.num_rows() > dialect_.max_result_rows) {
    outcome.table.Truncate(dialect_.max_result_rows);
    outcome.truncated = true;
  }
  outcome.latency_ms =
      latency_.Cost(stats.intermediate_bindings, outcome.table.num_rows());
  return outcome;
}

}  // namespace hbold::endpoint
