#ifndef HBOLD_ENDPOINT_ENDPOINT_H_
#define HBOLD_ENDPOINT_ENDPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sparql/results.h"

namespace hbold::endpoint {

/// Outcome of one endpoint query: the solution table plus the metadata the
/// server layer needs for cost accounting and robustness decisions.
struct QueryOutcome {
  sparql::ResultTable table;
  /// Simulated (or measured) end-to-end latency.
  double latency_ms = 0;
  /// True when the endpoint's result-size cap truncated the table — the
  /// signal that makes paginated extraction strategies necessary.
  bool truncated = false;
};

/// Cumulative query-engine counters of one endpoint: plan-cache
/// effectiveness and hash-join activity. Deployment figures only — they
/// describe which machinery answered queries, never how much simulated
/// work was charged, so they are reported next to wall-clock numbers and
/// excluded from every canonical accounting contract (concurrent batches
/// make the hit/miss split timing-dependent).
struct QueryEngineStats {
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_invalidations = 0;
  uint64_t hash_join_builds = 0;
  /// Current plan-cache capacity (entries). When capacity adapts to the
  /// endpoint's corpus size this reports the chosen value; summing across
  /// endpoints yields the fleet's total cache budget.
  uint64_t plan_cache_capacity = 0;

  QueryEngineStats& operator+=(const QueryEngineStats& o) {
    plan_cache_hits += o.plan_cache_hits;
    plan_cache_misses += o.plan_cache_misses;
    plan_cache_invalidations += o.plan_cache_invalidations;
    hash_join_builds += o.hash_join_builds;
    plan_cache_capacity += o.plan_cache_capacity;
    return *this;
  }
  QueryEngineStats operator-(const QueryEngineStats& o) const {
    QueryEngineStats d;
    d.plan_cache_hits = plan_cache_hits - o.plan_cache_hits;
    d.plan_cache_misses = plan_cache_misses - o.plan_cache_misses;
    d.plan_cache_invalidations =
        plan_cache_invalidations - o.plan_cache_invalidations;
    d.hash_join_builds = hash_join_builds - o.hash_join_builds;
    d.plan_cache_capacity = plan_cache_capacity - o.plan_cache_capacity;
    return d;
  }
};

/// One entry of a change-detection probe: a class IRI plus an opaque
/// version counter that changes whenever any triple describing an instance
/// of that class changed. Versions are comparable only against earlier
/// probes of the same endpoint.
struct ClassFingerprint {
  std::string class_iri;
  uint64_t version = 0;
};

/// Result of the batched change-detection probe: the endpoint's current
/// store generation plus one fingerprint per instantiated class, in
/// ascending IRI order. A crawler diffs this against the fingerprints it
/// persisted last cycle to decide which classes need re-extraction — the
/// all-quiet case costs this one probe instead of a strategy chain.
struct ChangeProbe {
  uint64_t store_generation = 0;
  std::vector<ClassFingerprint> classes;
  /// Simulated latency charged for the probe round-trip.
  double latency_ms = 0;
  /// True when the endpoint cut the fingerprint list short (row cap,
  /// adversarial truncation). A truncated probe proves nothing about the
  /// classes it omitted — consumers must not infer removals from absence
  /// and must not take the all-quiet shortcut.
  bool truncated = false;
};

/// A SPARQL endpoint as H-BOLD sees it: an opaque URL that answers SPARQL
/// SELECT text. Implementations: LocalEndpoint (in-process store) and
/// SimulatedRemoteEndpoint (availability/latency/dialect model on top).
class SparqlEndpoint {
 public:
  virtual ~SparqlEndpoint() = default;

  /// Executes a SELECT query. Error statuses the server layer reacts to:
  ///   Unavailable — endpoint offline today (retry tomorrow, §3.1)
  ///   Timeout     — query exceeded the endpoint's work budget
  ///   Unsupported — dialect rejects a feature (COUNT/GROUP BY/...)
  ///   ParseError  — malformed query
  virtual Result<QueryOutcome> Query(const std::string& query_text) = 0;

  /// Stable identifier (the endpoint URL).
  virtual const std::string& url() const = 0;

  /// Human-readable name for listings.
  virtual const std::string& name() const = 0;

  /// Total number of Query() calls (for strategy cost accounting).
  virtual size_t queries_served() const = 0;

  /// Cumulative query-engine counters (zeros for implementations without a
  /// plan cache / local executor). Safe to call concurrently with queries;
  /// the server layer reads it between cycles for DailyReport deltas.
  virtual QueryEngineStats engine_stats() const { return {}; }

  /// Advances the endpoint's *data* to `day`: endpoints with a mutation
  /// model apply their seeded per-day churn (triples added/retracted) for
  /// every day up to and including `day`, exactly once per day regardless
  /// of how often this is called. Static endpoints ignore it. Write-side
  /// call: must not overlap Query()/ProbeChanges().
  virtual void AdvanceDataDay(int64_t day) { (void)day; }

  /// Batched change-detection probe (one round-trip). Default: the
  /// endpoint cannot answer it (crawlers fall back to full extraction).
  /// Unavailable propagates like any query so §3.1 retry applies.
  virtual Result<ChangeProbe> ProbeChanges() {
    return Status::Unsupported("endpoint " + url() +
                               " does not support change probes");
  }
};

/// Liveness probe: runs the idiomatic `ASK { ?s ?p ?o . }`. Returns true
/// if the endpoint answered and holds at least one triple, false if it
/// answered but is empty; error statuses (Unavailable/Timeout) propagate
/// so the §3.1 scheduler can distinguish "down" from "empty".
Result<bool> Probe(SparqlEndpoint* ep);

}  // namespace hbold::endpoint

#endif  // HBOLD_ENDPOINT_ENDPOINT_H_
