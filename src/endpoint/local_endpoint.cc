#include "endpoint/local_endpoint.h"

#include "common/clock.h"

namespace hbold::endpoint {

Result<QueryOutcome> LocalEndpoint::Query(const std::string& query_text) {
  std::lock_guard<std::mutex> lock(mu_);
  ++queries_served_;
  Stopwatch sw;
  last_stats_ = sparql::ExecStats{};
  HBOLD_ASSIGN_OR_RETURN(sparql::ResultTable table,
                         executor_.Execute(query_text, &last_stats_));
  QueryOutcome outcome;
  outcome.table = std::move(table);
  outcome.latency_ms = sw.ElapsedMillis();
  return outcome;
}

}  // namespace hbold::endpoint
