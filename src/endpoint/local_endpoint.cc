#include "endpoint/local_endpoint.h"

#include "common/clock.h"

namespace hbold::endpoint {

Result<QueryOutcome> LocalEndpoint::Query(const std::string& query_text) {
  sparql::ExecStats stats;
  Result<QueryOutcome> outcome = QueryWithStats(query_text, &stats);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_stats_ = stats;
  }
  return outcome;
}

Result<QueryOutcome> LocalEndpoint::QueryWithStats(
    const std::string& query_text, sparql::ExecStats* stats) {
  *stats = sparql::ExecStats{};  // per-query stats, never accumulated
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  Stopwatch sw;
  HBOLD_ASSIGN_OR_RETURN(sparql::ResultTable table,
                         executor_.Execute(query_text, stats));
  if (stats->hash_join_builds > 0) {
    hash_join_builds_.fetch_add(stats->hash_join_builds,
                                std::memory_order_relaxed);
  }
  QueryOutcome outcome;
  outcome.table = std::move(table);
  outcome.latency_ms = sw.ElapsedMillis();
  return outcome;
}

}  // namespace hbold::endpoint
