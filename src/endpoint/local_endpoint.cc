#include "endpoint/local_endpoint.h"

#include <unistd.h>

#include <atomic>
#include <filesystem>

#include "common/clock.h"

namespace hbold::endpoint {

Status ApplyStoreBackendPolicy(rdf::TripleStore* store,
                               const StoreBackendPolicy& policy) {
  if (store->on_disk() || store->size() < policy.disk_threshold_triples) {
    return Status::OK();
  }
  rdf::DiskBackendOptions options;
  options.memory_budget_bytes = policy.memory_budget_bytes;
  if (!policy.directory.empty()) {
    options.directory = policy.directory;
  } else {
    namespace fs = std::filesystem;
    static std::atomic<uint64_t> counter{0};
    options.directory =
        (fs::temp_directory_path() /
         ("hbold-store-" + std::to_string(static_cast<long>(::getpid())) +
          "-" + std::to_string(counter.fetch_add(1))))
            .string();
  }
  return store->EnableDiskBackend(options);
}

Result<QueryOutcome> LocalEndpoint::Query(const std::string& query_text) {
  sparql::ExecStats stats;
  Result<QueryOutcome> outcome = QueryWithStats(query_text, &stats);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_stats_ = stats;
  }
  return outcome;
}

Result<QueryOutcome> LocalEndpoint::QueryWithStats(
    const std::string& query_text, sparql::ExecStats* stats) {
  *stats = sparql::ExecStats{};  // per-query stats, never accumulated
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  Stopwatch sw;
  HBOLD_ASSIGN_OR_RETURN(sparql::ResultTable table,
                         executor_.Execute(query_text, stats));
  if (stats->hash_join_builds > 0) {
    hash_join_builds_.fetch_add(stats->hash_join_builds,
                                std::memory_order_relaxed);
  }
  QueryOutcome outcome;
  outcome.table = std::move(table);
  outcome.latency_ms = sw.ElapsedMillis();
  return outcome;
}

}  // namespace hbold::endpoint
