#ifndef HBOLD_ENDPOINT_REGISTRY_H_
#define HBOLD_ENDPOINT_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace hbold::endpoint {

/// How an endpoint URL entered the registry (§3.3 / §3.4).
enum class EndpointSource {
  kSeedList,      // inherited from the old LODeX list
  kPortalCrawl,   // discovered by the open-data-portal crawler
  kManualInsert,  // user-submitted URL
};

const char* EndpointSourceName(EndpointSource source);

/// Incremental-trust state of one endpoint: how much the server believes
/// its change probes. Advances trust -> suspect -> quarantined on detected
/// probe lies / divergences and walks back after clean full refreshes.
/// Quarantined endpoints get unconditional full refreshes until parole.
enum class TrustState {
  kTrusted = 0,
  kSuspect = 1,
  kQuarantined = 2,
};

const char* TrustStateName(TrustState state);

/// Registry record for one SPARQL endpoint: discovery provenance plus the
/// §3.1 extraction bookkeeping (last attempt day, last success day,
/// indexed flag).
struct EndpointRecord {
  std::string url;
  std::string name;
  EndpointSource source = EndpointSource::kSeedList;
  int64_t added_day = 0;
  /// First day the refresh scheduler may pick this endpoint up; -1 means
  /// "immediately". Endpoints that enter the registry *mid-cycle* (portal
  /// crawl, metadata crawl, fleet churn) set this to `added_day + 1` so
  /// the snapshot and live due-list paths agree deterministically: the
  /// newcomer is extracted on the next simulated day, never racily within
  /// the day it appeared.
  int64_t first_eligible_day = -1;

  /// Day of the most recent extraction attempt; -1 = never attempted.
  int64_t last_attempt_day = -1;
  /// Day of the most recent successful extraction; -1 = never succeeded.
  int64_t last_success_day = -1;
  /// True when the last attempt failed (drives the daily-retry policy).
  bool last_attempt_failed = false;
  /// True once the endpoint has a stored Schema Summary ("indexed and
  /// exposed" in the paper's wording).
  bool indexed = false;

  /// Store generation observed by the last successful change probe, as
  /// 16-digit hex (JSON numbers are doubles; 64-bit counters do not fit).
  /// Empty = never probed / incremental extraction disabled.
  std::string probed_generation;
  /// Per-class version fingerprints from the last successful extraction:
  /// class IRI -> hex version. Diffed against the next probe to pick the
  /// dirty classes; empty when incremental extraction is disabled.
  std::map<std::string, std::string> class_fingerprints;

  /// Quarantine state machine (adversarial-endpoint hardening). All fields
  /// keep their zero defaults when incremental trust tracking never fired,
  /// so registries from honest runs stay byte-identical to earlier builds.
  TrustState trust_state = TrustState::kTrusted;
  /// Divergences detected while suspect/trusted; reaching the server's
  /// suspect threshold quarantines the endpoint.
  int64_t suspect_strikes = 0;
  /// First day the endpoint may leave quarantine; -1 = not quarantined.
  int64_t quarantine_until_day = -1;
  /// Consecutive successful cycles without a detected divergence (drives
  /// parole from suspect back to trusted).
  int64_t clean_streak = 0;
  /// Day of the last *full* (non-delta) successful extraction; -1 = never.
  /// kBounded forces a full refresh when today - last_full_refresh_day
  /// exceeds the staleness budget.
  int64_t last_full_refresh_day = -1;
  /// Consecutive transient probe failures (Timeout) — drives deterministic
  /// retry/backoff, reset on any successful probe.
  int64_t probe_failure_streak = 0;
  /// Total divergences ever recorded against this endpoint. Unlike
  /// suspect_strikes it survives parole and quarantine exit — it is the
  /// strike *history* the adaptive staleness policy tightens budgets on —
  /// but it does decay: long clean streaks forgive strikes one at a time
  /// (IncrementalOptions::strike_decay_clean_cycles), so one bad week
  /// stops shadowing an endpoint forever.
  int64_t lifetime_strikes = 0;

  /// Forward compatibility: JSON keys this build does not know (e.g.
  /// fields added by a newer build) survive a load/save round-trip
  /// verbatim instead of being silently dropped.
  std::map<std::string, hbold::Json> unknown_fields;

  hbold::Json ToJson() const;
  static EndpointRecord FromJson(const hbold::Json& j);
};

/// The H-BOLD endpoint list. URLs are unique; re-adding an existing URL is
/// a no-op that reports the duplicate (the crawler counts those).
///
/// Thread safety: all methods lock an internal `std::shared_mutex`. The
/// parallel daily cycle reads via Snapshot() (immutable copies, safe to
/// iterate while workers mutate the registry) and writes via
/// UpdateRecord() (serialized per-record mutation). Find/All hand out
/// const pointers into the map — those stay valid (std::map nodes are
/// stable) but are only safe to dereference while no other thread is
/// writing the same record; concurrent pipelines must use
/// Snapshot/UpdateRecord instead.
class EndpointRegistry {
 public:
  EndpointRegistry() = default;

  /// Adds a record. Returns true if it was new, false if the URL already
  /// existed (record unchanged).
  bool Add(EndpointRecord record);

  bool Contains(const std::string& url) const;
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return order_.size();
  }

  /// Number of endpoints with indexed == true.
  size_t IndexedCount() const;

  const EndpointRecord* Find(const std::string& url) const;

  /// Copy of the record for `url` taken under the shared lock — the safe
  /// read form for concurrent pipelines (Find's pointer is not).
  std::optional<EndpointRecord> GetRecord(const std::string& url) const;

  /// Records in insertion order.
  std::vector<const EndpointRecord*> All() const;

  /// Immutable point-in-time copy of every record, in insertion order.
  /// This is what the scheduler consumes: workers updating bookkeeping
  /// mid-cycle cannot perturb the due list it was computed from.
  std::vector<EndpointRecord> Snapshot() const;

  /// Applies `fn` to the record for `url` under the registry's exclusive
  /// lock — the single serialization point for bookkeeping writes from
  /// concurrent pipelines. Returns false when the URL is unknown.
  bool UpdateRecord(const std::string& url,
                    const std::function<void(EndpointRecord&)>& fn);

  hbold::Json ToJson() const;
  Status LoadJson(const hbold::Json& j);

 private:
  // Requires mu_ held (any mode). Shared implementation of Add/LoadJson.
  bool AddLocked(EndpointRecord record);

  mutable std::shared_mutex mu_;
  std::map<std::string, EndpointRecord> by_url_;
  std::vector<std::string> order_;
};

}  // namespace hbold::endpoint

#endif  // HBOLD_ENDPOINT_REGISTRY_H_
