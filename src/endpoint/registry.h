#ifndef HBOLD_ENDPOINT_REGISTRY_H_
#define HBOLD_ENDPOINT_REGISTRY_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace hbold::endpoint {

/// How an endpoint URL entered the registry (§3.3 / §3.4).
enum class EndpointSource {
  kSeedList,      // inherited from the old LODeX list
  kPortalCrawl,   // discovered by the open-data-portal crawler
  kManualInsert,  // user-submitted URL
};

const char* EndpointSourceName(EndpointSource source);

/// Registry record for one SPARQL endpoint: discovery provenance plus the
/// §3.1 extraction bookkeeping (last attempt day, last success day,
/// indexed flag).
struct EndpointRecord {
  std::string url;
  std::string name;
  EndpointSource source = EndpointSource::kSeedList;
  int64_t added_day = 0;

  /// Day of the most recent extraction attempt; -1 = never attempted.
  int64_t last_attempt_day = -1;
  /// Day of the most recent successful extraction; -1 = never succeeded.
  int64_t last_success_day = -1;
  /// True when the last attempt failed (drives the daily-retry policy).
  bool last_attempt_failed = false;
  /// True once the endpoint has a stored Schema Summary ("indexed and
  /// exposed" in the paper's wording).
  bool indexed = false;

  hbold::Json ToJson() const;
  static EndpointRecord FromJson(const hbold::Json& j);
};

/// The H-BOLD endpoint list. URLs are unique; re-adding an existing URL is
/// a no-op that reports the duplicate (the crawler counts those).
class EndpointRegistry {
 public:
  EndpointRegistry() = default;

  /// Adds a record. Returns true if it was new, false if the URL already
  /// existed (record unchanged).
  bool Add(EndpointRecord record);

  bool Contains(const std::string& url) const;
  size_t size() const { return order_.size(); }

  /// Number of endpoints with indexed == true.
  size_t IndexedCount() const;

  const EndpointRecord* Find(const std::string& url) const;
  EndpointRecord* FindMutable(const std::string& url);

  /// Records in insertion order.
  std::vector<const EndpointRecord*> All() const;

  hbold::Json ToJson() const;
  Status LoadJson(const hbold::Json& j);

 private:
  std::map<std::string, EndpointRecord> by_url_;
  std::vector<std::string> order_;
};

}  // namespace hbold::endpoint

#endif  // HBOLD_ENDPOINT_REGISTRY_H_
