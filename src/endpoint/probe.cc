#include "endpoint/endpoint.h"

namespace hbold::endpoint {

Result<bool> Probe(SparqlEndpoint* ep) {
  HBOLD_ASSIGN_OR_RETURN(QueryOutcome outcome,
                         ep->Query("ASK { ?s ?p ?o . }"));
  std::optional<bool> answer = outcome.table.AskResult();
  if (!answer.has_value()) {
    return Status::Internal("endpoint returned a non-boolean ASK result");
  }
  return *answer;
}

}  // namespace hbold::endpoint
