#include "endpoint/registry.h"

#include <mutex>
#include <set>

#include "common/string_util.h"

namespace hbold::endpoint {

const char* EndpointSourceName(EndpointSource source) {
  switch (source) {
    case EndpointSource::kSeedList:
      return "seed";
    case EndpointSource::kPortalCrawl:
      return "portal";
    case EndpointSource::kManualInsert:
      return "manual";
  }
  return "?";
}

const char* TrustStateName(TrustState state) {
  switch (state) {
    case TrustState::kTrusted:
      return "trusted";
    case TrustState::kSuspect:
      return "suspect";
    case TrustState::kQuarantined:
      return "quarantined";
  }
  return "?";
}

namespace {
EndpointSource SourceFromName(const std::string& name) {
  if (name == "portal") return EndpointSource::kPortalCrawl;
  if (name == "manual") return EndpointSource::kManualInsert;
  return EndpointSource::kSeedList;
}

TrustState TrustStateFromName(const std::string& name) {
  if (name == "suspect") return TrustState::kSuspect;
  if (name == "quarantined") return TrustState::kQuarantined;
  return TrustState::kTrusted;
}
}  // namespace

Json EndpointRecord::ToJson() const {
  Json j = Json::MakeObject();
  // Unknown (newer-build) fields first; known fields overwrite on key
  // collision so this build's view always wins for keys it owns.
  for (const auto& [key, value] : unknown_fields) j.Set(key, value);
  j.Set("url", url);
  j.Set("name", name);
  j.Set("source", EndpointSourceName(source));
  j.Set("added_day", added_day);
  j.Set("first_eligible_day", first_eligible_day);
  j.Set("last_attempt_day", last_attempt_day);
  j.Set("last_success_day", last_success_day);
  j.Set("last_attempt_failed", last_attempt_failed);
  j.Set("indexed", indexed);
  // Incremental-extraction bookkeeping is emitted only once set, so
  // registries written with incremental mode off stay byte-identical to
  // earlier builds.
  if (!probed_generation.empty()) {
    j.Set("probed_generation", probed_generation);
  }
  if (!class_fingerprints.empty()) {
    Json fp = Json::MakeObject();
    for (const auto& [iri, version] : class_fingerprints) {
      fp.Set(iri, version);
    }
    j.Set("class_fingerprints", std::move(fp));
  }
  // Quarantine bookkeeping, likewise emitted only when it ever moved off
  // the defaults (honest fleets keep byte-identical registries).
  if (trust_state != TrustState::kTrusted) {
    j.Set("trust_state", TrustStateName(trust_state));
  }
  if (suspect_strikes != 0) j.Set("suspect_strikes", suspect_strikes);
  if (quarantine_until_day != -1) {
    j.Set("quarantine_until_day", quarantine_until_day);
  }
  if (clean_streak != 0) j.Set("clean_streak", clean_streak);
  if (last_full_refresh_day != -1) {
    j.Set("last_full_refresh_day", last_full_refresh_day);
  }
  if (probe_failure_streak != 0) {
    j.Set("probe_failure_streak", probe_failure_streak);
  }
  if (lifetime_strikes != 0) j.Set("lifetime_strikes", lifetime_strikes);
  return j;
}

EndpointRecord EndpointRecord::FromJson(const Json& j) {
  EndpointRecord r;
  r.url = j.GetString("url");
  r.name = j.GetString("name");
  r.source = SourceFromName(j.GetString("source"));
  r.added_day = j.GetInt("added_day");
  // Absent in registries persisted before the field existed: -1 keeps the
  // old behavior (eligible immediately).
  r.first_eligible_day = j.GetInt("first_eligible_day", -1);
  r.last_attempt_day = j.GetInt("last_attempt_day", -1);
  r.last_success_day = j.GetInt("last_success_day", -1);
  r.last_attempt_failed = j.GetBool("last_attempt_failed");
  r.indexed = j.GetBool("indexed");
  r.probed_generation = j.GetString("probed_generation");
  // Defensive fingerprint parsing: a record whose incremental bookkeeping
  // is missing entries or garbled (non-string / non-hex versions, wrong
  // container type) cannot safely drive a delta. Degrade just this
  // endpoint to a full refresh (drop generation + fingerprints) instead of
  // failing the whole registry load.
  bool garbled = false;
  const Json* fp = j.Find("class_fingerprints");
  if (fp != nullptr) {
    if (!fp->is_object()) {
      garbled = true;
    } else {
      for (const auto& [iri, version] : fp->as_object()) {
        uint64_t parsed = 0;
        if (!version.is_string() ||
            !ParseHexU64(version.as_string(), &parsed)) {
          garbled = true;
          break;
        }
        r.class_fingerprints[iri] = version.as_string();
      }
    }
  }
  if (!r.probed_generation.empty()) {
    uint64_t parsed = 0;
    if (!ParseHexU64(r.probed_generation, &parsed)) garbled = true;
  }
  if (garbled) {
    r.class_fingerprints.clear();
    r.probed_generation.clear();
  }
  r.trust_state = TrustStateFromName(j.GetString("trust_state"));
  r.suspect_strikes = j.GetInt("suspect_strikes", 0);
  r.quarantine_until_day = j.GetInt("quarantine_until_day", -1);
  r.clean_streak = j.GetInt("clean_streak", 0);
  r.last_full_refresh_day = j.GetInt("last_full_refresh_day", -1);
  r.probe_failure_streak = j.GetInt("probe_failure_streak", 0);
  r.lifetime_strikes = j.GetInt("lifetime_strikes", 0);
  // Preserve keys from newer builds verbatim (forward compatibility).
  static const std::set<std::string> kKnownKeys = {
      "url",          "name",
      "source",       "added_day",
      "first_eligible_day", "last_attempt_day",
      "last_success_day",   "last_attempt_failed",
      "indexed",      "probed_generation",
      "class_fingerprints", "trust_state",
      "suspect_strikes",    "quarantine_until_day",
      "clean_streak",       "last_full_refresh_day",
      "probe_failure_streak", "lifetime_strikes"};
  if (j.is_object()) {
    for (const auto& [key, value] : j.as_object()) {
      if (kKnownKeys.count(key) == 0) r.unknown_fields[key] = value;
    }
  }
  return r;
}

bool EndpointRegistry::AddLocked(EndpointRecord record) {
  if (by_url_.count(record.url) > 0) return false;
  order_.push_back(record.url);
  by_url_.emplace(record.url, std::move(record));
  return true;
}

bool EndpointRegistry::Add(EndpointRecord record) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return AddLocked(std::move(record));
}

bool EndpointRegistry::Contains(const std::string& url) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return by_url_.count(url) > 0;
}

size_t EndpointRegistry::IndexedCount() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [url, r] : by_url_) {
    if (r.indexed) ++n;
  }
  return n;
}

const EndpointRecord* EndpointRegistry::Find(const std::string& url) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_url_.find(url);
  return it == by_url_.end() ? nullptr : &it->second;
}

std::optional<EndpointRecord> EndpointRegistry::GetRecord(
    const std::string& url) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_url_.find(url);
  if (it == by_url_.end()) return std::nullopt;
  return it->second;
}

std::vector<const EndpointRecord*> EndpointRegistry::All() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<const EndpointRecord*> out;
  out.reserve(order_.size());
  for (const std::string& url : order_) {
    out.push_back(&by_url_.at(url));
  }
  return out;
}

std::vector<EndpointRecord> EndpointRegistry::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<EndpointRecord> out;
  out.reserve(order_.size());
  for (const std::string& url : order_) {
    out.push_back(by_url_.at(url));
  }
  return out;
}

bool EndpointRegistry::UpdateRecord(
    const std::string& url, const std::function<void(EndpointRecord&)>& fn) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_url_.find(url);
  if (it == by_url_.end()) return false;
  fn(it->second);
  return true;
}

Json EndpointRegistry::ToJson() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  Json arr = Json::MakeArray();
  for (const std::string& url : order_) {
    arr.Append(by_url_.at(url).ToJson());
  }
  return arr;
}

Status EndpointRegistry::LoadJson(const Json& j) {
  if (!j.is_array()) {
    return Status::InvalidArgument("registry JSON must be an array");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  by_url_.clear();
  order_.clear();
  for (const Json& item : j.as_array()) {
    EndpointRecord r = EndpointRecord::FromJson(item);
    if (r.url.empty()) {
      return Status::InvalidArgument("registry record missing url");
    }
    AddLocked(std::move(r));
  }
  return Status::OK();
}

}  // namespace hbold::endpoint
