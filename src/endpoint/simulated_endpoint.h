#ifndef HBOLD_ENDPOINT_SIMULATED_ENDPOINT_H_
#define HBOLD_ENDPOINT_SIMULATED_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "common/clock.h"
#include "endpoint/endpoint.h"
#include "endpoint/local_endpoint.h"
#include "rdf/graph.h"

namespace hbold::endpoint {

/// The feature surface of a remote SPARQL implementation. Real endpoints
/// differ exactly along these axes (Virtuoso vs Fuseki vs 4store vs hand-
/// rolled servers), which is why the paper's index extraction needs
/// "pattern strategies" [Benedetti et al. 2014].
struct Dialect {
  /// Endpoint rejects COUNT aggregates with an error.
  bool supports_aggregates = true;
  /// Endpoint rejects GROUP BY (some implementations allow plain COUNT but
  /// not grouped aggregation).
  bool supports_group_by = true;
  /// Hard cap on returned rows; 0 = unlimited. Real endpoints commonly cap
  /// at 10000. Truncation is flagged in QueryOutcome::truncated.
  size_t max_result_rows = 0;
  /// Work budget: queries producing more intermediate bindings than this
  /// fail with Timeout. 0 = unlimited.
  size_t work_budget_bindings = 0;

  /// Presets mirroring the implementation families H-BOLD meets in the
  /// wild.
  static Dialect Full() { return Dialect{}; }
  static Dialect NoGroupBy() {
    Dialect d;
    d.supports_group_by = false;
    return d;
  }
  static Dialect NoAggregates() {
    Dialect d;
    d.supports_aggregates = false;
    d.supports_group_by = false;
    return d;
  }
  static Dialect RowCapped(size_t cap) {
    Dialect d;
    d.max_result_rows = cap;
    return d;
  }
};

/// Day-granularity availability model for §3.1: a SPARQL endpoint "might
/// often be not available, [...] it might work again after 1 or 2 days".
/// Availability is deterministic per (seed, day) so simulations reproduce.
struct AvailabilityModel {
  /// Probability the endpoint is up on any given day.
  double uptime = 1.0;
  /// Days that are always outages regardless of `uptime` (maintenance
  /// windows etc.).
  std::set<int64_t> forced_outage_days;
  uint64_t seed = 0;

  bool IsUp(int64_t day) const;
};

/// Seeded per-day data churn: between simulated days the endpoint's store
/// gains and loses triples, skewed across classes so most classes stay
/// quiet — the data-granularity counterpart of the fleet's endpoint-level
/// churn. All picks are pure functions of (seed, day, store content), so a
/// given (seed, day) sequence produces bit-identical stores regardless of
/// thread count or query batching.
struct MutationModel {
  /// Fraction of the store's triples churned per day; 0 disables mutation.
  double daily_churn_fraction = 0.0;
  /// Share of churn operations that add triples (the rest retract).
  double add_fraction = 0.5;
  /// Fraction of classes eligible for churn ("hot"); the rest never
  /// change, mirroring how real LD updates concentrate on a few classes.
  /// At least one class is always hot when churn is enabled.
  double hot_class_fraction = 0.25;
  uint64_t seed = 0;
  /// Per-day probability that a brand-new class (with a few instances) is
  /// born. Structural churn runs even when `daily_churn_fraction` is 0 and
  /// even on an empty store — it models schema evolution, not data volume.
  double class_birth_probability = 0.0;
  /// Per-day probability that one existing class is retired wholesale
  /// (every instance's triples removed).
  double class_retire_probability = 0.0;
  /// Adversarial: structural changes (births/retires) happen "behind a
  /// quiet generation" — the endpoint keeps answering probes from a stale
  /// snapshot taken before the change, so the probe reports the old
  /// generation and the old class list until a non-structural mutation day
  /// refreshes the snapshot. Honest endpoints leave this off.
  bool quiet_structural_changes = false;
  /// Day after which all churn (data and structural) stops. <0 = never.
  /// Convergence tests freeze the world and let the staleness bound
  /// catch the system up to byte-identity.
  int64_t freeze_after_day = -1;
};

/// Seeded adversarial faults injected into ProbeChanges(). Every coin is a
/// pure function of (seed, day, per-day attempt index), so a fleet replays
/// bit-identically across shard x parallelism deployments: within one
/// simulated day, probe attempt k against this endpoint sees the same fate
/// no matter which worker thread issues it. (Probes for one endpoint are
/// issued sequentially by its own pipeline, so the attempt index is itself
/// deterministic.)
struct ProbeFaultModel {
  /// Probability a probe lies about the store generation: it reports the
  /// previous generation even though data changed (the "quiet liar").
  double lie_generation_probability = 0.0;
  /// Probability each class fingerprint is reported stale (version from
  /// before the last change), hiding a dirty class.
  double lie_fingerprint_probability = 0.0;
  /// Probability the probe omits a random subset of classes entirely
  /// (partial fingerprint set — absence must not be read as removal).
  double partial_probability = 0.0;
  /// When a partial fault fires, each class survives with this probability.
  double partial_keep_fraction = 0.5;
  /// Probability the probe is truncated after a prefix of the class list;
  /// the probe carries truncated=true (an honest row cap would too).
  double truncate_probability = 0.0;
  /// Probability one probe attempt fails transiently (Timeout) even though
  /// the endpoint is up — distinct from a day-level outage; an immediate
  /// retry may succeed.
  double transient_failure_probability = 0.0;
  uint64_t seed = 0;
  /// Day after which fault injection stops and probes answer truthfully.
  /// <0 = never. Pairs with MutationModel::freeze_after_day: convergence
  /// tests freeze both the world and the adversary, then assert the
  /// staleness-bounded pipeline catches back up to byte-identity.
  int64_t freeze_after_day = -1;

  bool Enabled() const {
    return lie_generation_probability > 0 ||
           lie_fingerprint_probability > 0 || partial_probability > 0 ||
           truncate_probability > 0 || transient_failure_probability > 0;
  }
};

/// Latency model: constant per-query overhead plus a per-binding cost, so
/// big scans on big datasets are slow the way remote endpoints are.
struct LatencyModel {
  double base_ms = 50.0;           // connection + parsing overhead
  double per_binding_us = 2.0;     // join work
  double per_row_us = 5.0;         // serialization of results

  double Cost(size_t intermediate_bindings, size_t rows) const {
    return base_ms + intermediate_bindings * per_binding_us / 1000.0 +
           rows * per_row_us / 1000.0;
  }
};

/// A remote SPARQL endpoint simulation: an in-process store behind an
/// availability calendar, a latency model, and a dialect with feature gaps.
/// The wall clock is a SimClock owned by the caller, so a whole fleet of
/// endpoints shares one simulated timeline.
///
/// Thread safety: Query() runs fully concurrently — the dialect gate and
/// availability check are read-only, per-query execution stats live on the
/// caller's stack (the inner LocalEndpoint's QueryWithStats form), and the
/// served counter is atomic. The latency the simulation *charges* is still
/// computed from the deterministic cost model, not slept, so concurrent
/// batched queries stay bit-identical to sequential ones while the real
/// CPU work overlaps.
class SimulatedRemoteEndpoint : public SparqlEndpoint {
 public:
  /// `store` and `clock` must outlive the endpoint. The store is mutable:
  /// the endpoint owns its day-to-day evolution via the mutation model
  /// (AdvanceDataDay), which is why churn now happens at data granularity
  /// instead of endpoint granularity.
  SimulatedRemoteEndpoint(std::string url, std::string name,
                          rdf::TripleStore* store, const SimClock* clock,
                          Dialect dialect = Dialect::Full(),
                          AvailabilityModel availability = {},
                          LatencyModel latency = {},
                          MutationModel mutation = {},
                          ProbeFaultModel probe_faults = {});

  Result<QueryOutcome> Query(const std::string& query_text) override;

  const std::string& url() const override { return local_.url(); }
  const std::string& name() const override { return local_.name(); }
  size_t queries_served() const override {
    return queries_served_.load(std::memory_order_relaxed);
  }

  /// The inner local executor's plan-cache / hash-join counters.
  QueryEngineStats engine_stats() const override {
    return local_.engine_stats();
  }

  /// Applies the seeded churn for every un-applied day up to `day`,
  /// exactly once per day (idempotent catch-up, so endpoints that detach
  /// and recover replay the missed days deterministically). Write-side
  /// call — must not overlap Query()/ProbeChanges(). Rebuilds the store
  /// index once per churning day, so `generation()` moves iff data moved.
  void AdvanceDataDay(int64_t day) override;

  /// One batched probe round-trip: current store generation plus per-class
  /// version fingerprints (ascending IRI). Availability-gated and counted
  /// as one served query, like any real request.
  Result<ChangeProbe> ProbeChanges() override;

  const Dialect& dialect() const { return dialect_; }
  const AvailabilityModel& availability() const { return availability_; }
  const LatencyModel& latency_model() const { return latency_; }
  const MutationModel& mutation_model() const { return mutation_; }
  const ProbeFaultModel& probe_faults() const { return probe_faults_; }

  /// True if the endpoint answers queries on `day`.
  bool IsUpOn(int64_t day) const { return availability_.IsUp(day); }

 private:
  /// Plans and applies one day of churn. Reads first (all picks from the
  /// pre-day snapshot), then stages writes, then rebuilds once.
  void ApplyMutationDay(int64_t day);

  /// The truthful probe body (generation + fingerprints) from live state.
  ChangeProbe TruthfulProbe() const;

  rdf::TripleStore* store_;
  LocalEndpoint local_;
  const SimClock* clock_;
  Dialect dialect_;
  AvailabilityModel availability_;
  LatencyModel latency_;
  MutationModel mutation_;
  ProbeFaultModel probe_faults_;
  /// Per-class change counters backing ProbeChanges(): bumped for every
  /// class whose instance data changed on a mutation day. Written only by
  /// AdvanceDataDay (sequential phase), read concurrently by probes.
  std::map<std::string, uint64_t> class_versions_;
  /// Previous version of each class fingerprint, kept so a lying probe can
  /// report the value from before the last change.
  std::map<std::string, uint64_t> prev_class_versions_;
  int64_t last_mutation_day_ = 0;
  /// Quiet-structural snapshot: when MutationModel::quiet_structural_changes
  /// is set, probes answer from this stale copy (refreshed only on days
  /// whose mutations were non-structural). Unused (and probes stay live)
  /// otherwise, preserving honest behavior bit-for-bit.
  bool have_probe_snapshot_ = false;
  ChangeProbe probe_snapshot_;
  uint64_t prev_generation_ = 0;
  /// Per-day probe attempt counter (salts fault coins so a retry or a
  /// validation echo can see a different fate than the first attempt).
  /// Guarded by probe_mutex_; probes for one endpoint are sequential
  /// within its pipeline, so the sequence is deterministic.
  mutable std::mutex probe_mutex_;
  int64_t probe_attempt_day_ = -1;
  uint64_t probe_attempts_today_ = 0;
  std::atomic<size_t> queries_served_{0};
};

}  // namespace hbold::endpoint

#endif  // HBOLD_ENDPOINT_SIMULATED_ENDPOINT_H_
