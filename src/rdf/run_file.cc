#include "rdf/run_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>
#include <queue>
#include <utility>

#include "common/hash.h"
#include "common/io_util.h"

namespace hbold::rdf {

namespace {

// Runs start with one 4 KiB header page so the triple array behind them is
// page-aligned; the remainder of the page is zero.
constexpr size_t kRunHeaderBytes = 4096;
constexpr char kRunMagic[8] = {'H', 'B', 'R', 'U', 'N', '1', '\0', '\0'};
constexpr char kChunkMagic[8] = {'H', 'B', 'C', 'H', 'K', '1', '\0', '\0'};
constexpr uint32_t kRunVersion = 1;

struct RunFileHeader {
  char magic[8];
  uint32_t version;
  uint32_t order;
  uint64_t count;
  uint64_t checksum;  // Fnv64 over the 24 bytes above
};
static_assert(sizeof(RunFileHeader) == 32, "header layout");
static_assert(sizeof(Triple) == 12, "runs assume packed 3x u32 triples");

uint64_t HeaderChecksum(const RunFileHeader& h) {
  return Fnv64(std::string_view(reinterpret_cast<const char*>(&h), 24));
}

struct ChunkHeader {
  char magic[8];
  uint32_t version;
  uint32_t order;
  uint64_t count;
};
static_assert(sizeof(ChunkHeader) == 24, "chunk header layout");

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

inline void Permute(RunOrder order, const Triple& t, uint32_t k[3]) {
  switch (order) {
    case RunOrder::kSpo:
      k[0] = t.s; k[1] = t.p; k[2] = t.o;
      return;
    case RunOrder::kPos:
      k[0] = t.p; k[1] = t.o; k[2] = t.s;
      return;
    case RunOrder::kOsp:
      k[0] = t.o; k[1] = t.s; k[2] = t.p;
      return;
  }
}

inline Triple Unpermute(RunOrder order, const uint32_t k[3]) {
  Triple t;
  switch (order) {
    case RunOrder::kSpo:
      t.s = k[0]; t.p = k[1]; t.o = k[2];
      return t;
    case RunOrder::kPos:
      t.p = k[0]; t.o = k[1]; t.s = k[2];
      return t;
    case RunOrder::kOsp:
      t.o = k[0]; t.s = k[1]; t.p = k[2];
      return t;
  }
  return t;
}

void AppendVarint(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

Status WriteAll(int fd, const void* data, size_t len, const std::string& path) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write failed for", path);
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

bool RunLess(RunOrder order, const Triple& a, const Triple& b) {
  uint32_t ka[3], kb[3];
  Permute(order, a, ka);
  Permute(order, b, kb);
  return std::lexicographical_compare(ka, ka + 3, kb, kb + 3);
}

// ---------------------------------------------------------- MappedTripleRun

MappedTripleRun::~MappedTripleRun() { Close(); }

MappedTripleRun::MappedTripleRun(MappedTripleRun&& other) noexcept
    : map_(other.map_), map_len_(other.map_len_), data_(other.data_),
      count_(other.count_), path_(std::move(other.path_)) {
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.data_ = nullptr;
  other.count_ = 0;
}

MappedTripleRun& MappedTripleRun::operator=(MappedTripleRun&& other) noexcept {
  if (this != &other) {
    Close();
    map_ = other.map_;
    map_len_ = other.map_len_;
    data_ = other.data_;
    count_ = other.count_;
    path_ = std::move(other.path_);
    other.map_ = nullptr;
    other.map_len_ = 0;
    other.data_ = nullptr;
    other.count_ = 0;
  }
  return *this;
}

void MappedTripleRun::Close() {
  if (map_ != nullptr) ::munmap(map_, map_len_);
  map_ = nullptr;
  map_len_ = 0;
  data_ = nullptr;
  count_ = 0;
  path_.clear();
}

Status MappedTripleRun::Open(const std::string& path) {
  Close();
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("cannot open run", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("cannot stat run", path);
  }
  RunFileHeader header;
  if (st.st_size < static_cast<off_t>(kRunHeaderBytes) ||
      ::pread(fd, &header, sizeof(header), 0) !=
          static_cast<ssize_t>(sizeof(header))) {
    ::close(fd);
    return Status::ParseError("run '" + path + "': truncated header");
  }
  if (std::memcmp(header.magic, kRunMagic, sizeof(kRunMagic)) != 0) {
    ::close(fd);
    return Status::ParseError("run '" + path + "': bad magic");
  }
  if (header.version != kRunVersion) {
    ::close(fd);
    return Status::Unsupported("run '" + path + "': version " +
                               std::to_string(header.version));
  }
  if (header.checksum != HeaderChecksum(header)) {
    ::close(fd);
    return Status::ParseError("run '" + path + "': header checksum mismatch");
  }
  const uint64_t expected =
      kRunHeaderBytes + header.count * sizeof(Triple);
  if (static_cast<uint64_t>(st.st_size) != expected) {
    ::close(fd);
    return Status::ParseError(
        "run '" + path + "': size " + std::to_string(st.st_size) +
        " does not match header count " + std::to_string(header.count));
  }
  count_ = header.count;
  path_ = path;
  if (count_ > 0) {
    void* base = ::mmap(nullptr, expected, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base == MAP_FAILED) {
      ::close(fd);
      count_ = 0;
      path_.clear();
      return ErrnoStatus("mmap failed for run", path);
    }
    map_ = base;
    map_len_ = expected;
    data_ = reinterpret_cast<const Triple*>(static_cast<char*>(base) +
                                            kRunHeaderBytes);
  }
  ::close(fd);
  return Status::OK();
}

// --------------------------------------------------------------- RunWriter

RunWriter::~RunWriter() { Abort(); }

void RunWriter::Abort() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    ::unlink(tmp_.c_str());
  }
}

Status RunWriter::Open(const std::string& path, RunOrder order) {
  Abort();
  path_ = path;
  tmp_ = path + ".tmp";
  order_ = order;
  count_ = 0;
  buffer_.clear();
  buffer_.reserve(size_t{64} << 10);
  fd_ = ::open(tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) return ErrnoStatus("cannot open", tmp_);
  // Reserve the header page; the real header lands in Finish().
  char zeros[kRunHeaderBytes] = {};
  Status st = WriteAll(fd_, zeros, sizeof(zeros), tmp_);
  if (!st.ok()) Abort();
  return st;
}

Status RunWriter::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  Status st = WriteAll(fd_, buffer_.data(), buffer_.size() * sizeof(Triple),
                       tmp_);
  buffer_.clear();
  return st;
}

Status RunWriter::Append(const Triple& t) {
  buffer_.push_back(t);
  ++count_;
  if (buffer_.size() >= (size_t{64} << 10)) {
    Status st = FlushBuffer();
    if (!st.ok()) {
      Abort();
      return st;
    }
  }
  return Status::OK();
}

Status RunWriter::Finish(MappedTripleRun* out) {
  if (fd_ < 0) return Status::Internal("RunWriter::Finish without Open");
  Status st = FlushBuffer();
  if (!st.ok()) {
    Abort();
    return st;
  }
  RunFileHeader header = {};
  std::memcpy(header.magic, kRunMagic, sizeof(kRunMagic));
  header.version = kRunVersion;
  header.order = static_cast<uint32_t>(order_);
  header.count = count_;
  header.checksum = HeaderChecksum(header);
  if (::pwrite(fd_, &header, sizeof(header), 0) !=
      static_cast<ssize_t>(sizeof(header))) {
    st = ErrnoStatus("header write failed for", tmp_);
    Abort();
    return st;
  }
  if (::fsync(fd_) != 0) {
    st = ErrnoStatus("fsync failed for", tmp_);
    Abort();
    return st;
  }
  ::close(fd_);
  fd_ = -1;
  if (::rename(tmp_.c_str(), path_.c_str()) != 0) {
    st = ErrnoStatus("cannot rename", tmp_);
    ::unlink(tmp_.c_str());
    return st;
  }
  std::string parent = path_;
  size_t slash = parent.find_last_of('/');
  parent = slash == std::string::npos ? "." : parent.substr(0, slash);
  HBOLD_RETURN_NOT_OK(io::FsyncDirectory(parent));
  if (out != nullptr) return out->Open(path_);
  return Status::OK();
}

// ------------------------------------------------------------ delta chunks

Status WriteDeltaChunk(const std::string& path, RunOrder order,
                       const Triple* data, size_t n) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return ErrnoStatus("cannot open chunk", path);
  ChunkHeader header = {};
  std::memcpy(header.magic, kChunkMagic, sizeof(kChunkMagic));
  header.version = kRunVersion;
  header.order = static_cast<uint32_t>(order);
  header.count = n;
  std::vector<uint8_t> buf;
  buf.reserve(size_t{1} << 20);
  buf.insert(buf.end(), reinterpret_cast<uint8_t*>(&header),
             reinterpret_cast<uint8_t*>(&header) + sizeof(header));
  uint32_t prev[3] = {0, 0, 0};
  for (size_t i = 0; i < n; ++i) {
    uint32_t k[3];
    Permute(order, data[i], k);
    if (i == 0) {
      AppendVarint(&buf, k[0]);
      AppendVarint(&buf, k[1]);
      AppendVarint(&buf, k[2]);
    } else {
      // Strictly increasing tuples: encode the delta of the first changed
      // component, then the later components raw.
      const uint32_t d0 = k[0] - prev[0];
      AppendVarint(&buf, d0);
      if (d0 != 0) {
        AppendVarint(&buf, k[1]);
        AppendVarint(&buf, k[2]);
      } else {
        const uint32_t d1 = k[1] - prev[1];
        AppendVarint(&buf, d1);
        if (d1 != 0) {
          AppendVarint(&buf, k[2]);
        } else {
          AppendVarint(&buf, k[2] - prev[2]);
        }
      }
    }
    prev[0] = k[0];
    prev[1] = k[1];
    prev[2] = k[2];
    if (buf.size() >= (size_t{1} << 20)) {
      if (std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
        std::fclose(f);
        ::unlink(path.c_str());
        return ErrnoStatus("chunk write failed for", path);
      }
      buf.clear();
    }
  }
  if (!buf.empty() &&
      std::fwrite(buf.data(), 1, buf.size(), f) != buf.size()) {
    std::fclose(f);
    ::unlink(path.c_str());
    return ErrnoStatus("chunk write failed for", path);
  }
  if (std::fclose(f) != 0) {
    ::unlink(path.c_str());
    return ErrnoStatus("chunk close failed for", path);
  }
  return Status::OK();
}

DeltaChunkReader::~DeltaChunkReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status DeltaChunkReader::Open(const std::string& path) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) return ErrnoStatus("cannot open chunk", path);
  ChunkHeader header;
  if (std::fread(&header, sizeof(header), 1, file_) != 1 ||
      std::memcmp(header.magic, kChunkMagic, sizeof(kChunkMagic)) != 0 ||
      header.version != kRunVersion || header.order > 2) {
    std::fclose(file_);
    file_ = nullptr;
    return Status::ParseError("chunk '" + path + "': bad header");
  }
  order_ = static_cast<RunOrder>(header.order);
  count_ = header.count;
  produced_ = 0;
  prev_[0] = prev_[1] = prev_[2] = 0;
  buf_.assign(size_t{256} << 10, 0);
  buf_pos_ = buf_len_ = 0;
  status_ = Status::OK();
  return Status::OK();
}

bool DeltaChunkReader::ReadByte(uint8_t* b) {
  if (buf_pos_ >= buf_len_) {
    buf_len_ = std::fread(buf_.data(), 1, buf_.size(), file_);
    buf_pos_ = 0;
    if (buf_len_ == 0) {
      status_ = Status::ParseError("chunk truncated mid-triple");
      return false;
    }
  }
  *b = buf_[buf_pos_++];
  return true;
}

bool DeltaChunkReader::ReadVarint(uint32_t* v) {
  uint32_t result = 0;
  int shift = 0;
  uint8_t byte = 0;
  do {
    if (shift > 28 || !ReadByte(&byte)) {
      if (status_.ok()) status_ = Status::ParseError("chunk varint overflow");
      return false;
    }
    result |= static_cast<uint32_t>(byte & 0x7F) << shift;
    shift += 7;
  } while (byte & 0x80);
  *v = result;
  return true;
}

bool DeltaChunkReader::Next(Triple* t) {
  if (file_ == nullptr || !status_.ok() || produced_ >= count_) return false;
  uint32_t k[3];
  if (produced_ == 0) {
    if (!ReadVarint(&k[0]) || !ReadVarint(&k[1]) || !ReadVarint(&k[2])) {
      return false;
    }
  } else {
    uint32_t d0;
    if (!ReadVarint(&d0)) return false;
    if (d0 != 0) {
      k[0] = prev_[0] + d0;
      if (!ReadVarint(&k[1]) || !ReadVarint(&k[2])) return false;
    } else {
      uint32_t d1;
      k[0] = prev_[0];
      if (!ReadVarint(&d1)) return false;
      if (d1 != 0) {
        k[1] = prev_[1] + d1;
        if (!ReadVarint(&k[2])) return false;
      } else {
        uint32_t d2;
        k[1] = prev_[1];
        if (!ReadVarint(&d2)) return false;
        k[2] = prev_[2] + d2;
      }
    }
  }
  prev_[0] = k[0];
  prev_[1] = k[1];
  prev_[2] = k[2];
  *t = Unpermute(order_, k);
  ++produced_;
  return true;
}

// ----------------------------------------------------------- external sort

namespace {

/// Raw fixed-width chunk reader for the generic-comparator sort.
class RawChunkReader {
 public:
  ~RawChunkReader() {
    if (file_ != nullptr) std::fclose(file_);
  }
  Status Open(const std::string& path) {
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr) return ErrnoStatus("cannot open chunk", path);
    buf_.reserve(size_t{16} << 10);
    return Status::OK();
  }
  bool Next(Triple* t) {
    if (pos_ >= buf_.size()) {
      buf_.resize(size_t{16} << 10);
      size_t n = std::fread(buf_.data(), sizeof(Triple), buf_.size(), file_);
      buf_.resize(n);
      pos_ = 0;
      if (n == 0) return false;
    }
    *t = buf_[pos_++];
    return true;
  }

 private:
  std::FILE* file_ = nullptr;
  std::vector<Triple> buf_;
  size_t pos_ = 0;
};

template <typename Reader, typename Less>
Status MergeChunksToRun(std::vector<std::unique_ptr<Reader>>* readers,
                        const Less& less, RunOrder order,
                        const std::string& out_path, MappedTripleRun* out) {
  RunWriter writer;
  HBOLD_RETURN_NOT_OK(writer.Open(out_path, order));
  struct HeapItem {
    Triple t;
    size_t src;
  };
  auto heap_after = [&](const HeapItem& a, const HeapItem& b) {
    // priority_queue pops the largest; invert, tie-break on source index
    // for a deterministic merge of equal triples (generic comparators may
    // see distinct triples as equivalent).
    if (less(a.t, b.t)) return false;
    if (less(b.t, a.t)) return true;
    return a.src > b.src;
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(heap_after)>
      heap(heap_after);
  for (size_t i = 0; i < readers->size(); ++i) {
    Triple t;
    if ((*readers)[i]->Next(&t)) heap.push(HeapItem{t, i});
  }
  while (!heap.empty()) {
    HeapItem item = heap.top();
    heap.pop();
    HBOLD_RETURN_NOT_OK(writer.Append(item.t));
    Triple t;
    if ((*readers)[item.src]->Next(&t)) heap.push(HeapItem{t, item.src});
  }
  return writer.Finish(out);
}

size_t FragmentCapacity(size_t budget_bytes) {
  // Half the budget for the in-RAM sort fragment, the rest for merge-side
  // buffers; floor keeps pathological tiny budgets from exploding the
  // chunk count.
  return std::max<size_t>(4096, budget_bytes / sizeof(Triple) / 2);
}

}  // namespace

Status ExternalSortToRun(TripleSpan source, RunOrder order,
                         size_t budget_bytes, const std::string& scratch_dir,
                         const std::string& out_path, MappedTripleRun* out) {
  const size_t fragment = FragmentCapacity(budget_bytes);
  if (source.size <= fragment) {
    std::vector<Triple> sorted(source.begin(), source.end());
    std::sort(sorted.begin(), sorted.end(),
              [order](const Triple& a, const Triple& b) {
                return RunLess(order, a, b);
              });
    RunWriter writer;
    HBOLD_RETURN_NOT_OK(writer.Open(out_path, order));
    for (const Triple& t : sorted) HBOLD_RETURN_NOT_OK(writer.Append(t));
    return writer.Finish(out);
  }
  std::vector<std::string> chunk_paths;
  std::vector<Triple> fragment_buf;
  fragment_buf.reserve(fragment);
  Status st = Status::OK();
  for (size_t i = 0; i < source.size && st.ok(); i += fragment) {
    const size_t n = std::min(fragment, source.size - i);
    fragment_buf.assign(source.data + i, source.data + i + n);
    std::sort(fragment_buf.begin(), fragment_buf.end(),
              [order](const Triple& a, const Triple& b) {
                return RunLess(order, a, b);
              });
    std::string path = scratch_dir + "/sort-" +
                       std::to_string(chunk_paths.size()) + ".chunk";
    st = WriteDeltaChunk(path, order, fragment_buf.data(), fragment_buf.size());
    if (st.ok()) chunk_paths.push_back(std::move(path));
  }
  fragment_buf = std::vector<Triple>();
  if (st.ok()) {
    std::vector<std::unique_ptr<DeltaChunkReader>> readers;
    for (const std::string& path : chunk_paths) {
      auto reader = std::make_unique<DeltaChunkReader>();
      st = reader->Open(path);
      if (!st.ok()) break;
      readers.push_back(std::move(reader));
    }
    if (st.ok()) {
      st = MergeChunksToRun(
          &readers,
          [order](const Triple& a, const Triple& b) {
            return RunLess(order, a, b);
          },
          order, out_path, out);
      for (const auto& reader : readers) {
        if (st.ok() && !reader->status().ok()) st = reader->status();
      }
    }
  }
  for (const std::string& path : chunk_paths) ::unlink(path.c_str());
  return st;
}

Status ExternalSortToRunBy(
    TripleSpan source,
    const std::function<bool(const Triple&, const Triple&)>& less,
    size_t budget_bytes, const std::string& scratch_dir,
    const std::string& out_path, MappedTripleRun* out) {
  const size_t fragment = FragmentCapacity(budget_bytes);
  if (source.size <= fragment) {
    std::vector<Triple> sorted(source.begin(), source.end());
    std::sort(sorted.begin(), sorted.end(), less);
    RunWriter writer;
    HBOLD_RETURN_NOT_OK(writer.Open(out_path, RunOrder::kSpo));
    for (const Triple& t : sorted) HBOLD_RETURN_NOT_OK(writer.Append(t));
    return writer.Finish(out);
  }
  std::vector<std::string> chunk_paths;
  std::vector<Triple> fragment_buf;
  fragment_buf.reserve(fragment);
  Status st = Status::OK();
  for (size_t i = 0; i < source.size && st.ok(); i += fragment) {
    const size_t n = std::min(fragment, source.size - i);
    fragment_buf.assign(source.data + i, source.data + i + n);
    std::sort(fragment_buf.begin(), fragment_buf.end(), less);
    std::string path = scratch_dir + "/sort-" +
                       std::to_string(chunk_paths.size()) + ".chunk";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      st = ErrnoStatus("cannot open chunk", path);
      break;
    }
    if (std::fwrite(fragment_buf.data(), sizeof(Triple), fragment_buf.size(),
                    f) != fragment_buf.size()) {
      std::fclose(f);
      ::unlink(path.c_str());
      st = ErrnoStatus("chunk write failed for", path);
      break;
    }
    if (std::fclose(f) != 0) {
      ::unlink(path.c_str());
      st = ErrnoStatus("chunk close failed for", path);
      break;
    }
    chunk_paths.push_back(std::move(path));
  }
  fragment_buf = std::vector<Triple>();
  if (st.ok()) {
    std::vector<std::unique_ptr<RawChunkReader>> readers;
    for (const std::string& path : chunk_paths) {
      auto reader = std::make_unique<RawChunkReader>();
      st = reader->Open(path);
      if (!st.ok()) break;
      readers.push_back(std::move(reader));
    }
    if (st.ok()) {
      st = MergeChunksToRun(&readers, less, RunOrder::kSpo, out_path, out);
    }
  }
  for (const std::string& path : chunk_paths) ::unlink(path.c_str());
  return st;
}

}  // namespace hbold::rdf
