#include "rdf/term.h"

#include <cstdio>
#include <functional>

#include "common/string_util.h"
#include "rdf/vocab.h"

namespace hbold::rdf {

Term Term::IntLiteral(int64_t v) {
  return Literal(std::to_string(v), vocab::kXsdInteger);
}

Term Term::DoubleLiteral(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return Literal(buf, vocab::kXsdDouble);
}

Term Term::BoolLiteral(bool v) {
  return Literal(v ? "true" : "false", vocab::kXsdBoolean);
}

namespace {
// Escapes a literal lexical form per N-Triples rules.
std::string EscapeLiteral(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out;
}
}  // namespace

std::string Term::ToNTriples() const {
  switch (kind_) {
    case Kind::kIri:
      return "<" + lexical_ + ">";
    case Kind::kBlank:
      return "_:" + lexical_;
    case Kind::kLiteral: {
      std::string out = "\"" + EscapeLiteral(lexical_) + "\"";
      if (!lang_.empty()) {
        out += "@" + lang_;
      } else if (!datatype_.empty() && datatype_ != vocab::kXsdString) {
        out += "^^<" + datatype_ + ">";
      }
      return out;
    }
  }
  return "";
}

std::string Term::ToDisplay() const {
  switch (kind_) {
    case Kind::kIri:
      return IriLocalName(lexical_);
    case Kind::kBlank:
      return "_:" + lexical_;
    case Kind::kLiteral:
      return "\"" + lexical_ + "\"";
  }
  return "";
}

size_t Term::Hash() const {
  size_t h = std::hash<std::string>()(lexical_);
  h = h * 31 + static_cast<size_t>(kind_);
  if (!datatype_.empty()) h = h * 31 + std::hash<std::string>()(datatype_);
  if (!lang_.empty()) h = h * 31 + std::hash<std::string>()(lang_);
  return h;
}

}  // namespace hbold::rdf
