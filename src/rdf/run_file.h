#ifndef HBOLD_RDF_RUN_FILE_H_
#define HBOLD_RDF_RUN_FILE_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/graph.h"
#include "rdf/triple.h"

namespace hbold::rdf {

/// Sort order of an on-disk triple run — mirrors the three in-memory
/// indexes. The order permutes the triple into the (k1, k2, k3) tuple the
/// file is sorted by.
enum class RunOrder : uint32_t { kSpo = 0, kPos = 1, kOsp = 2 };

/// Comparator for `order` (lexicographic over the permuted tuple).
bool RunLess(RunOrder order, const Triple& a, const Triple& b);

/// A finalized sorted run: a 4 KiB header page followed by the triples as a
/// raw fixed-width array. The fixed width is what lets a memory-mapped run
/// back TripleSpan directly (zero-copy contiguous `const Triple*` ranges,
/// O(log n) binary search); the delta-varint compression lives in the chunk
/// tier (see WriteDeltaChunk) that feeds run merges.
class MappedTripleRun {
 public:
  MappedTripleRun() = default;
  ~MappedTripleRun();
  MappedTripleRun(const MappedTripleRun&) = delete;
  MappedTripleRun& operator=(const MappedTripleRun&) = delete;
  MappedTripleRun(MappedTripleRun&& other) noexcept;
  MappedTripleRun& operator=(MappedTripleRun&& other) noexcept;

  /// Maps `path` read-only. Validates magic, version, checksum, and that
  /// the file size matches the header's triple count exactly.
  Status Open(const std::string& path);

  /// Unmaps (does not delete the file).
  void Close();

  bool mapped() const { return data_ != nullptr || count_ == 0; }
  uint64_t count() const { return count_; }
  const std::string& path() const { return path_; }

  /// The whole run as a span (sorted by the run's order).
  TripleSpan view() const { return TripleSpan{data_, count_}; }

 private:
  void* map_ = nullptr;
  size_t map_len_ = 0;
  const Triple* data_ = nullptr;
  size_t count_ = 0;
  std::string path_;
};

/// Streams triples (already sorted by `order`) into a run file. Writes to
/// `<path>.tmp`, then Finish() fsyncs, renames into place, and fsyncs the
/// parent directory — a crashed build never leaves a readable half-run
/// under the final name.
class RunWriter {
 public:
  RunWriter() = default;
  ~RunWriter();
  RunWriter(const RunWriter&) = delete;
  RunWriter& operator=(const RunWriter&) = delete;

  Status Open(const std::string& path, RunOrder order);
  Status Append(const Triple& t);
  /// Finalizes the run; when `out` is non-null, opens the mapped result.
  Status Finish(MappedTripleRun* out = nullptr);
  /// Removes the temp file of an unfinished run (safe to call always).
  void Abort();

  uint64_t count() const { return count_; }

 private:
  Status FlushBuffer();

  int fd_ = -1;
  std::string path_;
  std::string tmp_;
  RunOrder order_ = RunOrder::kSpo;
  uint64_t count_ = 0;
  std::vector<Triple> buffer_;
};

/// Writes `data[0, n)` — sorted by `order`, duplicate-free — as a
/// delta-varint compressed chunk: the permuted (k1, k2, k3) tuples are
/// strictly increasing, so each triple stores only the components after the
/// first one that changed, as LEB128 deltas. Chunks are transient merge
/// inputs (staging spills, external-sort fragments), not durability
/// artifacts, so they are not fsynced.
Status WriteDeltaChunk(const std::string& path, RunOrder order,
                       const Triple* data, size_t n);

/// Streaming decoder for WriteDeltaChunk files.
class DeltaChunkReader {
 public:
  DeltaChunkReader() = default;
  ~DeltaChunkReader();
  DeltaChunkReader(const DeltaChunkReader&) = delete;
  DeltaChunkReader& operator=(const DeltaChunkReader&) = delete;

  Status Open(const std::string& path);
  /// Decodes the next triple; false at end-of-chunk or on error (check
  /// status()).
  bool Next(Triple* t);
  const Status& status() const { return status_; }
  uint64_t count() const { return count_; }
  RunOrder order() const { return order_; }

 private:
  bool ReadByte(uint8_t* b);
  bool ReadVarint(uint32_t* v);

  std::FILE* file_ = nullptr;
  Status status_;
  RunOrder order_ = RunOrder::kSpo;
  uint64_t count_ = 0;
  uint64_t produced_ = 0;
  uint32_t prev_[3] = {0, 0, 0};
  std::vector<uint8_t> buf_;
  size_t buf_pos_ = 0;
  size_t buf_len_ = 0;
};

/// Sorts `source` by `order` into the run file `out_path`, holding at most
/// ~`budget_bytes` of triples in memory at a time: budget-sized fragments
/// are sorted in RAM, spilled as delta chunks under `scratch_dir`, and
/// k-way merged into the run. `source` must be duplicate-free (the three
/// index orders permute the same triple set, so sorting preserves that).
Status ExternalSortToRun(TripleSpan source, RunOrder order,
                         size_t budget_bytes, const std::string& scratch_dir,
                         const std::string& out_path, MappedTripleRun* out);

/// Like ExternalSortToRun but with an arbitrary strict-weak-order
/// comparator (the hash-join spill sorts by (join key, probe order), which
/// is not one of the three index permutations). Fragments spill as raw
/// fixed-width chunks since delta coding needs a known component
/// permutation.
Status ExternalSortToRunBy(
    TripleSpan source, const std::function<bool(const Triple&, const Triple&)>& less,
    size_t budget_bytes, const std::string& scratch_dir,
    const std::string& out_path, MappedTripleRun* out);

}  // namespace hbold::rdf

#endif  // HBOLD_RDF_RUN_FILE_H_
