#ifndef HBOLD_RDF_TURTLE_H_
#define HBOLD_RDF_TURTLE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "rdf/graph.h"

namespace hbold::rdf {

/// Parses a practical subset of Turtle into `store`:
///   - @prefix / PREFIX declarations, prefixed names (ex:Thing)
///   - `a` keyword for rdf:type
///   - predicate lists with ';' and object lists with ','
///   - IRIs, blank nodes, string literals ("..." with escapes, @lang, ^^dt)
///   - numeric literals (integer / decimal / double) and true/false
///   - comments
/// Not supported: collections, [] anonymous blank nodes, multiline strings.
/// Returns the number of triples added.
Result<size_t> ParseTurtle(std::string_view text, TripleStore* store);

/// Serializes `store` as Turtle. Prefixes are derived automatically from
/// the most frequent IRI namespaces (split at the last '#' or '/') plus
/// the well-known rdf/rdfs/xsd prefixes; triples are grouped by subject
/// with ';' predicate lists and ',' object lists, in sorted SPO order.
std::string WriteTurtle(const TripleStore& store);

}  // namespace hbold::rdf

#endif  // HBOLD_RDF_TURTLE_H_
