#include "rdf/dictionary.h"

namespace hbold::rdf {

TermId Dictionary::Intern(const Term& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(term, id);
  return id;
}

TermId Dictionary::Lookup(const Term& term) const {
  auto it = index_.find(term);
  if (it == index_.end()) return kInvalidTermId;
  return it->second;
}

}  // namespace hbold::rdf
