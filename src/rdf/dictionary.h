#ifndef HBOLD_RDF_DICTIONARY_H_
#define HBOLD_RDF_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"

namespace hbold::rdf {

/// Interned term id. 0 is reserved as "invalid / unbound".
using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = 0;

/// Bidirectional Term <-> TermId mapping. Ids are dense, starting at 1, and
/// stable for the dictionary's lifetime.
class Dictionary {
 public:
  Dictionary() { terms_.emplace_back(); /* slot 0 = invalid */ }

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Interns `term`, returning its id (existing id if already present).
  TermId Intern(const Term& term);

  /// Returns the id of `term` or kInvalidTermId if absent.
  TermId Lookup(const Term& term) const;

  /// Returns the term for a valid id. Precondition: 0 < id < size().
  const Term& Get(TermId id) const { return terms_[id]; }

  /// Number of slots including the reserved invalid slot; valid ids are
  /// 1..size()-1.
  size_t size() const { return terms_.size(); }

  /// Convenience: intern an IRI string.
  TermId InternIri(const std::string& iri) { return Intern(Term::Iri(iri)); }

 private:
  std::vector<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> index_;
};

}  // namespace hbold::rdf

#endif  // HBOLD_RDF_DICTIONARY_H_
