#include "rdf/turtle.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <vector>

#include "common/string_util.h"
#include "rdf/vocab.h"

namespace hbold::rdf {

namespace {

class TurtleParser {
 public:
  TurtleParser(std::string_view text, TripleStore* store)
      : text_(text), store_(store) {}

  Result<size_t> Run() {
    while (true) {
      SkipWsAndComments();
      if (pos_ >= text_.size()) break;
      if (Peek() == '@' || PeekKeyword("PREFIX") || PeekKeyword("prefix")) {
        HBOLD_RETURN_NOT_OK(ParsePrefix());
        continue;
      }
      HBOLD_RETURN_NOT_OK(ParseStatement());
    }
    return added_;
  }

 private:
  char Peek() const { return text_[pos_]; }

  bool PeekKeyword(std::string_view kw) const {
    if (text_.substr(pos_, kw.size()) != kw) return false;
    size_t after = pos_ + kw.size();
    return after >= text_.size() ||
           std::isspace(static_cast<unsigned char>(text_[after]));
  }

  Status ParsePrefix() {
    bool at_form = Peek() == '@';
    if (at_form) ++pos_;
    // Skip "prefix"/"PREFIX".
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    SkipWsAndComments();
    // Prefix label up to ':'.
    size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != ':') ++pos_;
    if (pos_ >= text_.size()) return ErrSt("expected ':' in prefix");
    std::string label(Trim(text_.substr(start, pos_ - start)));
    ++pos_;  // ':'
    SkipWsAndComments();
    if (pos_ >= text_.size() || Peek() != '<') {
      return ErrSt("expected IRI in prefix declaration");
    }
    HBOLD_ASSIGN_OR_RETURN(Term iri, ParseIriRef());
    prefixes_[label] = iri.lexical();
    SkipWsAndComments();
    if (at_form) {
      if (pos_ >= text_.size() || Peek() != '.') {
        return ErrSt("expected '.' after @prefix");
      }
      ++pos_;
    } else if (pos_ < text_.size() && Peek() == '.') {
      ++pos_;  // SPARQL-style PREFIX permits omitting the dot.
    }
    return Status::OK();
  }

  Status ParseStatement() {
    HBOLD_ASSIGN_OR_RETURN(Term subject, ParseTerm(/*allow_literal=*/false));
    while (true) {
      SkipWsAndComments();
      HBOLD_ASSIGN_OR_RETURN(Term predicate, ParsePredicate());
      while (true) {
        SkipWsAndComments();
        HBOLD_ASSIGN_OR_RETURN(Term object, ParseTerm(/*allow_literal=*/true));
        store_->Add(subject, predicate, object);
        ++added_;
        SkipWsAndComments();
        if (pos_ < text_.size() && Peek() == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      if (pos_ < text_.size() && Peek() == ';') {
        ++pos_;
        SkipWsAndComments();
        // A ';' may be followed directly by '.' (trailing semicolon).
        if (pos_ < text_.size() && Peek() == '.') break;
        continue;
      }
      break;
    }
    SkipWsAndComments();
    if (pos_ >= text_.size() || Peek() != '.') {
      return ErrSt("expected '.' at end of statement");
    }
    ++pos_;
    return Status::OK();
  }

  Result<Term> ParsePredicate() {
    if (PeekKeyword("a")) {
      ++pos_;
      return Term::Iri(vocab::kRdfType);
    }
    return ParseTerm(/*allow_literal=*/false);
  }

  Result<Term> ParseTerm(bool allow_literal) {
    SkipWsAndComments();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = Peek();
    if (c == '<') return ParseIriRef();
    if (c == '_') return ParseBlank();
    if (allow_literal && c == '"') return ParseStringLiteral();
    if (allow_literal &&
        (c == '+' || c == '-' ||
         std::isdigit(static_cast<unsigned char>(c)))) {
      return ParseNumericLiteral();
    }
    if (allow_literal && (PeekKeyword("true") || PeekKeyword("false"))) {
      bool v = PeekKeyword("true");
      pos_ += v ? 4 : 5;
      return Term::BoolLiteral(v);
    }
    return ParsePrefixedName();
  }

  Result<Term> ParseIriRef() {
    ++pos_;  // '<'
    size_t start = pos_;
    while (pos_ < text_.size() && Peek() != '>') ++pos_;
    if (pos_ >= text_.size()) return Err("unterminated IRI");
    Term t = Term::Iri(std::string(text_.substr(start, pos_ - start)));
    ++pos_;
    return t;
  }

  Result<Term> ParseBlank() {
    if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != ':') {
      return Err("malformed blank node");
    }
    pos_ += 2;
    size_t start = pos_;
    while (pos_ < text_.size() && (IsNameChar(Peek()) || Peek() == '.')) ++pos_;
    // A trailing '.' terminates the statement, not the label.
    size_t end = pos_;
    while (end > start && text_[end - 1] == '.') --end;
    pos_ = end;
    if (end == start) return Err("empty blank node label");
    return Term::Blank(std::string(text_.substr(start, end - start)));
  }

  Result<Term> ParseStringLiteral() {
    ++pos_;  // '"'
    std::string value;
    while (true) {
      if (pos_ >= text_.size()) return Err("unterminated literal");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          case 'r':
            value += '\r';
            break;
          case '"':
            value += '"';
            break;
          case '\\':
            value += '\\';
            break;
          default:
            return Err("unknown escape");
        }
      } else {
        value += c;
      }
    }
    if (pos_ < text_.size() && Peek() == '@') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(Peek())) ||
              Peek() == '-')) {
        ++pos_;
      }
      return Term::Literal(std::move(value), vocab::kRdfLangString,
                           std::string(text_.substr(start, pos_ - start)));
    }
    if (pos_ + 1 < text_.size() && Peek() == '^' && text_[pos_ + 1] == '^') {
      pos_ += 2;
      SkipWsAndComments();
      Term dt;
      if (pos_ < text_.size() && Peek() == '<') {
        HBOLD_ASSIGN_OR_RETURN(dt, ParseIriRef());
      } else {
        HBOLD_ASSIGN_OR_RETURN(dt, ParsePrefixedName());
      }
      return Term::Literal(std::move(value), dt.lexical());
    }
    return Term::Literal(std::move(value));
  }

  Result<Term> ParseNumericLiteral() {
    size_t start = pos_;
    if (Peek() == '+' || Peek() == '-') ++pos_;
    bool has_dot = false;
    bool has_exp = false;
    while (pos_ < text_.size()) {
      char c = Peek();
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !has_dot && pos_ + 1 < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
        // Only consume '.' when followed by a digit — otherwise it is the
        // statement terminator.
        has_dot = true;
        ++pos_;
      } else if ((c == 'e' || c == 'E') && !has_exp) {
        has_exp = true;
        ++pos_;
        if (pos_ < text_.size() && (Peek() == '+' || Peek() == '-')) ++pos_;
      } else {
        break;
      }
    }
    std::string lex(text_.substr(start, pos_ - start));
    if (has_exp) return Term::Literal(lex, vocab::kXsdDouble);
    if (has_dot) {
      return Term::Literal(lex, "http://www.w3.org/2001/XMLSchema#decimal");
    }
    return Term::Literal(lex, vocab::kXsdInteger);
  }

  Result<Term> ParsePrefixedName() {
    size_t start = pos_;
    while (pos_ < text_.size() && Peek() != ':' &&
           (IsNameChar(Peek()) || Peek() == '.')) {
      ++pos_;
    }
    if (pos_ >= text_.size() || Peek() != ':') {
      return Err("expected prefixed name");
    }
    std::string prefix(text_.substr(start, pos_ - start));
    ++pos_;  // ':'
    size_t lstart = pos_;
    while (pos_ < text_.size() && (IsNameChar(Peek()) || Peek() == '.')) ++pos_;
    size_t lend = pos_;
    while (lend > lstart && text_[lend - 1] == '.') --lend;
    pos_ = lend;
    std::string local(text_.substr(lstart, lend - lstart));
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) return Err("unknown prefix '" + prefix + "'");
    return Term::Iri(it->second + local);
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
  }

  void SkipWsAndComments() {
    while (pos_ < text_.size()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (c == '\n') ++line_;
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && Peek() != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Result<Term> Err(std::string msg) const { return ErrSt(std::move(msg)); }
  Status ErrSt(std::string msg) const {
    return Status::ParseError("turtle line " + std::to_string(line_) + ": " +
                              std::move(msg));
  }

  std::string_view text_;
  TripleStore* store_;
  std::map<std::string, std::string> prefixes_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t added_ = 0;
};

}  // namespace

Result<size_t> ParseTurtle(std::string_view text, TripleStore* store) {
  TurtleParser p(text, store);
  return p.Run();
}

namespace {

bool IsSimpleNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

/// Splits an IRI at its last '#' or '/' into (namespace, local). The local
/// part must be a simple name for prefixed serialization to be valid.
bool SplitIri(const std::string& iri, std::string* ns, std::string* local) {
  size_t cut = iri.find_last_of("#/");
  if (cut == std::string::npos || cut + 1 >= iri.size()) return false;
  std::string candidate = iri.substr(cut + 1);
  for (char c : candidate) {
    if (!IsSimpleNameChar(c)) return false;
  }
  *ns = iri.substr(0, cut + 1);
  *local = std::move(candidate);
  return true;
}

}  // namespace

std::string WriteTurtle(const TripleStore& store) {
  const Dictionary& dict = store.dict();

  // Collect namespace frequencies across all IRI positions.
  std::map<std::string, size_t> ns_count;
  store.Match(TriplePattern{}, [&](const Triple& t) {
    for (TermId id : {t.s, t.p, t.o}) {
      const Term& term = dict.Get(id);
      if (!term.is_iri()) continue;
      std::string ns, local;
      if (SplitIri(term.lexical(), &ns, &local)) ++ns_count[ns];
    }
    return true;
  });

  // Assign prefixes: well-known ones by name, the rest ns1, ns2, ... in
  // descending frequency (only namespaces used at least twice earn one).
  std::map<std::string, std::string> prefix_of;  // namespace -> label
  prefix_of[vocab::kRdfNs] = "rdf";
  prefix_of[vocab::kRdfsNs] = "rdfs";
  prefix_of[vocab::kXsdNs] = "xsd";
  std::vector<std::pair<size_t, std::string>> ranked;
  for (const auto& [ns, n] : ns_count) {
    if (prefix_of.count(ns) == 0 && n >= 2) ranked.emplace_back(n, ns);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  size_t next_label = 1;
  for (const auto& [n, ns] : ranked) {
    prefix_of[ns] = "ns" + std::to_string(next_label++);
  }

  std::set<std::string> used_ns;
  auto render = [&](TermId id) -> std::string {
    const Term& term = dict.Get(id);
    if (term.is_iri()) {
      if (term.lexical() == vocab::kRdfType) return "a";
      std::string ns, local;
      if (SplitIri(term.lexical(), &ns, &local)) {
        auto it = prefix_of.find(ns);
        if (it != prefix_of.end()) {
          used_ns.insert(ns);
          return it->second + ":" + local;
        }
      }
    }
    return term.ToNTriples();
  };

  // Dry pass to discover which prefixes the body will actually use.
  std::string out;
  store.Match(TriplePattern{}, [&](const Triple& t) {
    render(t.s);
    render(t.p);
    render(t.o);
    return true;
  });
  for (const std::string& ns : used_ns) {
    out += "@prefix " + prefix_of[ns] + ": <" + ns + "> .\n";
  }
  if (!out.empty()) out += "\n";

  // Group by subject, then by predicate (SPO order is already sorted).
  TermId cur_s = kInvalidTermId;
  TermId cur_p = kInvalidTermId;
  bool open = false;
  store.Match(TriplePattern{}, [&](const Triple& t) {
    if (t.s != cur_s) {
      if (open) out += " .\n";
      out += render(t.s) + " " + render(t.p) + " " + render(t.o);
      cur_s = t.s;
      cur_p = t.p;
      open = true;
    } else if (t.p != cur_p) {
      out += " ;\n    " + render(t.p) + " " + render(t.o);
      cur_p = t.p;
    } else {
      out += ", " + render(t.o);
    }
    return true;
  });
  if (open) out += " .\n";
  return out;
}

}  // namespace hbold::rdf
