#ifndef HBOLD_RDF_TRIPLE_H_
#define HBOLD_RDF_TRIPLE_H_

#include <tuple>

#include "rdf/dictionary.h"

namespace hbold::rdf {

/// One triple in interned-id form.
struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
  friend bool operator<(const Triple& a, const Triple& b) {
    return std::tie(a.s, a.p, a.o) < std::tie(b.s, b.p, b.o);
  }
};

/// A match pattern: kInvalidTermId means wildcard in that position.
struct TriplePattern {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  bool Matches(const Triple& t) const {
    return (s == kInvalidTermId || s == t.s) &&
           (p == kInvalidTermId || p == t.p) &&
           (o == kInvalidTermId || o == t.o);
  }
};

}  // namespace hbold::rdf

#endif  // HBOLD_RDF_TRIPLE_H_
