#ifndef HBOLD_RDF_NTRIPLES_H_
#define HBOLD_RDF_NTRIPLES_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "rdf/graph.h"

namespace hbold::rdf {

/// Parses N-Triples text into `store`. Returns the number of triples added.
/// Supports comments (# ...), IRIs, blank nodes, plain/typed/lang literals
/// with \-escapes. Fails with ParseError on the first malformed line
/// (message includes the line number).
Result<size_t> ParseNTriples(std::string_view text, TripleStore* store);

/// Serializes the whole store as N-Triples (sorted SPO order, one triple
/// per line).
std::string WriteNTriples(const TripleStore& store);

}  // namespace hbold::rdf

#endif  // HBOLD_RDF_NTRIPLES_H_
