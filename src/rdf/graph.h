#ifndef HBOLD_RDF_GRAPH_H_
#define HBOLD_RDF_GRAPH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace hbold::rdf {

/// In-memory RDF graph: a term dictionary plus three sorted triple indexes
/// (SPO, POS, OSP) so that any triple pattern with at least one bound
/// position is answered with a binary search + contiguous range scan.
///
/// Writes append to a staging buffer; indexes are (re)built lazily on first
/// read after a write (sort + dedup), which makes bulk loading linearithmic
/// instead of per-insert logarithmic.
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Adds a triple of terms (interning them). Duplicate triples are stored
  /// once.
  void Add(const Term& s, const Term& p, const Term& o);
  /// Adds a triple of already-interned ids.
  void AddIds(TermId s, TermId p, TermId o);

  /// Number of distinct triples.
  size_t size() const;
  bool empty() const { return size() == 0; }

  /// True if the exact triple is present.
  bool Contains(const Term& s, const Term& p, const Term& o) const;

  /// Enumerates all triples matching `pattern` (wildcard = kInvalidTermId).
  /// The callback returns false to stop early.
  void Match(const TriplePattern& pattern,
             const std::function<bool(const Triple&)>& fn) const;

  /// Collects matches into a vector (convenience over Match).
  std::vector<Triple> MatchAll(const TriplePattern& pattern) const;

  /// Number of triples matching `pattern`.
  size_t Count(const TriplePattern& pattern) const;

  /// All distinct objects of (s=*, p, o=?) — e.g. the class list via
  /// p = rdf:type.
  std::vector<TermId> DistinctObjects(TermId p) const;
  /// All distinct subjects with predicate p.
  std::vector<TermId> DistinctSubjects(TermId p) const;

 private:
  enum class Order { kSpo, kPos, kOsp };

  void EnsureIndexed() const;
  // Returns the [begin, end) range of `index` whose first `bound` key
  // components equal those of `key` under `order`.
  static std::pair<size_t, size_t> EqualRange(const std::vector<Triple>& index,
                                              Order order, TermId k1,
                                              TermId k2);

  Dictionary dict_;
  mutable std::vector<Triple> spo_;
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  mutable std::vector<Triple> staged_;
  mutable bool dirty_ = false;
};

}  // namespace hbold::rdf

#endif  // HBOLD_RDF_GRAPH_H_
