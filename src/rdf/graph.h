#ifndef HBOLD_RDF_GRAPH_H_
#define HBOLD_RDF_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace hbold::rdf {

/// Cardinality statistics for one predicate, computed while the indexes are
/// (re)built. The executor's join planner uses these for selectivity
/// estimates (count / distinct_subjects is the average subject fan-out).
struct PredicateStats {
  size_t triples = 0;
  size_t distinct_subjects = 0;
  size_t distinct_objects = 0;
};

/// Position selector for CountDistinct.
enum class TriplePos { kS, kP, kO };

/// In-memory RDF graph: a term dictionary plus three sorted triple indexes
/// (SPO, POS, OSP) so that any triple pattern with at least one bound
/// position is answered with a binary search + contiguous range scan.
///
/// Writes append to a staging buffer; indexes are (re)built lazily on first
/// read after a write (sort + dedup), which makes bulk loading linearithmic
/// instead of per-insert logarithmic.
///
/// Thread safety: writes (Add/AddIds) require external synchronization and
/// must not overlap reads. Concurrent *reads* are safe: the lazy rebuild is
/// guarded by double-checked locking (atomic dirty flag + mutex), so the
/// first reader after a write performs the rebuild while the others wait.
/// Endpoints that serve queries concurrently call FinalizeIndex() up front
/// so no query ever pays (or blocks on) the rebuild.
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&& other) noexcept;
  TripleStore& operator=(TripleStore&& other) noexcept;

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Adds a triple of terms (interning them). Duplicate triples are stored
  /// once.
  void Add(const Term& s, const Term& p, const Term& o);
  /// Adds a triple of already-interned ids.
  void AddIds(TermId s, TermId p, TermId o);

  /// Eagerly (re)builds the indexes if any writes are staged. Call once
  /// before serving concurrent readers so the mutable lazy rebuild cannot
  /// run inside a query.
  void FinalizeIndex() const { EnsureIndexed(); }

  /// Number of distinct triples.
  size_t size() const;
  bool empty() const { return size() == 0; }

  /// True if the exact triple is present.
  bool Contains(const Term& s, const Term& p, const Term& o) const;

  /// Enumerates all triples matching `pattern` (wildcard = kInvalidTermId).
  /// The callback returns false to stop early.
  void Match(const TriplePattern& pattern,
             const std::function<bool(const Triple&)>& fn) const;

  /// Collects matches into a vector (convenience over Match).
  std::vector<Triple> MatchAll(const TriplePattern& pattern) const;

  /// Number of triples matching `pattern`. Every bound-position combination
  /// maps onto a contiguous prefix range of one of the three indexes (or a
  /// binary search for a fully bound triple), so this is O(log n) index
  /// range arithmetic — no callback walk, ever.
  size_t Count(const TriplePattern& pattern) const;

  /// Number of distinct ids occupying `pos` among the triples matching
  /// `pattern`. Resolved with index arithmetic / boundary jumps where the
  /// chosen index sorts `pos` inside the matched range (the count-query
  /// family always lands there); falls back to a collect+sort over the
  /// range otherwise. Never materializes binding rows.
  size_t CountDistinct(const TriplePattern& pattern, TriplePos pos) const;

  /// Grouped-count primitive: for a fixed predicate, walks the POS
  /// sub-range boundaries and returns one (object, count) pair per distinct
  /// object, in ascending object-id order — per-class instance counts for
  /// `?s a ?c` in one pass, without materializing rows. Objects are found
  /// by binary-search boundary jumps, so the cost is O(groups * log n).
  std::vector<std::pair<TermId, size_t>> GroupedCountByObject(TermId p) const;

  /// Statistics for `p` (zeros when the predicate is absent). Valid after
  /// FinalizeIndex() or any read; recomputed on index rebuild.
  PredicateStats StatsForPredicate(TermId p) const;

  /// All distinct objects of (s=*, p, o=?) — e.g. the class list via
  /// p = rdf:type.
  std::vector<TermId> DistinctObjects(TermId p) const;
  /// All distinct subjects with predicate p.
  std::vector<TermId> DistinctSubjects(TermId p) const;

 private:
  enum class Order { kSpo, kPos, kOsp };

  void EnsureIndexed() const;
  void RebuildLocked() const;
  // Returns the [begin, end) range of `index` whose first `bound` key
  // components equal those of `key` under `order`.
  static std::pair<size_t, size_t> EqualRange(const std::vector<Triple>& index,
                                              Order order, TermId k1,
                                              TermId k2);
  // Picks the index/order/keys for `pattern` the way Match does. Returns
  // false for the full-scan case. `residual` is set when the range still
  // needs a per-triple pattern check.
  bool PlanRange(const TriplePattern& pattern, const std::vector<Triple>** index,
                 Order* order, TermId* k1, TermId* k2, bool* residual) const;

  Dictionary dict_;
  mutable std::vector<Triple> spo_;
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  mutable std::vector<Triple> staged_;
  mutable std::unordered_map<TermId, PredicateStats> pred_stats_;
  mutable std::atomic<bool> dirty_{false};
  mutable std::mutex index_mu_;
};

}  // namespace hbold::rdf

#endif  // HBOLD_RDF_GRAPH_H_
