#ifndef HBOLD_RDF_GRAPH_H_
#define HBOLD_RDF_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace hbold::rdf {

/// Cardinality statistics for one predicate, computed while the indexes are
/// (re)built. The executor's join planner uses these for selectivity
/// estimates (count / distinct_subjects is the average subject fan-out).
///
/// `exact` is false when the stats were produced by the sampled refresh (a
/// small incremental batch appended to a large index — see
/// SetStatsSamplingThreshold). Sampled stats are deterministic for a given
/// store content and good enough for join ordering, but CountDistinct must
/// not serve them as query answers and falls back to index walks instead.
struct PredicateStats {
  size_t triples = 0;
  size_t distinct_subjects = 0;
  size_t distinct_objects = 0;
  bool exact = true;
};

/// Position selector for CountDistinct.
enum class TriplePos { kS, kP, kO };

/// A contiguous slice of one internal sorted index — the zero-overhead
/// sub-range scan primitive. Unlike Match there is no per-triple callback
/// and no residual filtering: every triple in [begin, end) matches the
/// pattern the span was built for. Iteration order is the owning index's
/// sort order (see TripleStore::Span). Invalidated by the next write +
/// rebuild, like any other read.
struct TripleSpan {
  const Triple* data = nullptr;
  size_t size = 0;

  const Triple* begin() const { return data; }
  const Triple* end() const { return data + size; }
  bool empty() const { return size == 0; }
};

/// Options for the out-of-core backend (see
/// TripleStore::EnableDiskBackend). `directory` holds the three run files
/// plus transient merge chunks; it is created if absent and treated as
/// scratch owned by this store (stale files from a previous incarnation are
/// overwritten). `memory_budget_bytes` bounds the triple buffers the
/// backend holds in RAM at any one time: the staging buffer spills to
/// sorted delta chunks past ~budget/4, and index rebuilds externally sort
/// in ~budget/2 fragments. The term dictionary always stays in RAM (it
/// scales with distinct terms, not triples).
struct DiskBackendOptions {
  std::string directory;
  size_t memory_budget_bytes = size_t{64} << 20;
};

/// An RDF graph: a term dictionary plus three sorted triple indexes
/// (SPO, POS, OSP) so that any triple pattern with at least one bound
/// position is answered with a binary search + contiguous range scan.
///
/// Writes append to a staging buffer; indexes are (re)built lazily on first
/// read after a write (sort + dedup), which makes bulk loading linearithmic
/// instead of per-insert logarithmic.
///
/// The three indexes live either in RAM (default) or, after
/// EnableDiskBackend(), as memory-mapped sorted run files on disk. Both
/// backends serve the same read primitives (Span/Count/CountDistinct/
/// GroupedCountByObject/...) over TripleSpan views, so callers cannot tell
/// them apart except by memory footprint.
///
/// Thread safety: writes (Add/AddIds) require external synchronization and
/// must not overlap reads. Concurrent *reads* are safe: the lazy rebuild is
/// guarded by double-checked locking (atomic dirty flag + mutex), so the
/// first reader after a write performs the rebuild while the others wait.
/// Endpoints that serve queries concurrently call FinalizeIndex() up front
/// so no query ever pays (or blocks on) the rebuild.
class TripleStore {
 public:
  TripleStore();
  ~TripleStore();

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&& other) noexcept;
  TripleStore& operator=(TripleStore&& other) noexcept;

  /// Switches the index backend to dictionary-compressed sorted runs on
  /// disk, accessed via memory-mapped binary search. Existing content is
  /// converted in place (indexes written out as runs, the in-RAM vectors
  /// freed); later writes stage in RAM, spill to sorted delta chunks past
  /// the memory budget, and merge into fresh runs on the next rebuild.
  /// Call with the same write-side synchronization as Add. Fails if the
  /// backend is already enabled or the directory cannot be prepared; on
  /// failure the store stays fully in RAM and remains usable.
  Status EnableDiskBackend(const DiskBackendOptions& options);

  /// True when the indexes are disk-resident.
  bool on_disk() const { return disk_ != nullptr; }

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Adds a triple of terms (interning them). Duplicate triples are stored
  /// once.
  void Add(const Term& s, const Term& p, const Term& o);
  /// Adds a triple of already-interned ids.
  void AddIds(TermId s, TermId p, TermId o);

  /// Stages the retraction of a triple. Removing an absent triple is a
  /// no-op; terms stay interned (dictionary ids are stable for the life of
  /// the store). Within one staged batch a removal wins over an add of the
  /// same triple — the batch describes the *end state* of a day's churn,
  /// not an ordered log. Same write-side synchronization rules as Add.
  void Remove(const Term& s, const Term& p, const Term& o);
  /// Stages the retraction of a triple of already-interned ids.
  void RemoveIds(TermId s, TermId p, TermId o);

  /// Eagerly (re)builds the indexes if any writes are staged. Call once
  /// before serving concurrent readers so the mutable lazy rebuild cannot
  /// run inside a query.
  void FinalizeIndex() const { EnsureIndexed(); }

  /// Monotonic rebuild generation: incremented every time the indexes are
  /// (re)built from staged writes. Cached artifacts derived from the store
  /// (plan caches, statistics snapshots) key on this to invalidate after
  /// incremental loads. Triggers the rebuild itself if writes are staged,
  /// so the returned generation always describes the indexes a subsequent
  /// read would see.
  uint64_t generation() const {
    EnsureIndexed();
    return generation_.load(std::memory_order_acquire);
  }

  /// Number of distinct triples.
  size_t size() const;
  bool empty() const { return size() == 0; }

  /// True if the exact triple is present.
  bool Contains(const Term& s, const Term& p, const Term& o) const;

  /// Enumerates all triples matching `pattern` (wildcard = kInvalidTermId).
  /// The callback returns false to stop early.
  void Match(const TriplePattern& pattern,
             const std::function<bool(const Triple&)>& fn) const;

  /// Sub-range scan primitive: the contiguous sorted index slice holding
  /// exactly the triples matching `pattern`, in O(log n), with no callback
  /// and no residual filtering. Every bound-position combination maps to a
  /// prefix range of one index (the (s, o) shape routes through OSP, the
  /// fully bound shape through a binary search), so this never fails.
  /// Iteration order by bound combination:
  ///   (), (s), (s,p), (s,p,o)  -> SPO order
  ///   (p), (p,o)               -> POS order
  ///   (o), (s,o)               -> OSP order
  /// The star/range pushdown and the hash-join build side iterate these
  /// spans directly instead of materializing binding rows.
  TripleSpan Span(const TriplePattern& pattern) const;

  /// Collects matches into a vector (convenience over Match).
  std::vector<Triple> MatchAll(const TriplePattern& pattern) const;

  /// Number of triples matching `pattern`. Every bound-position combination
  /// maps onto a contiguous prefix range of one of the three indexes (or a
  /// binary search for a fully bound triple), so this is O(log n) index
  /// range arithmetic — no callback walk, ever.
  size_t Count(const TriplePattern& pattern) const;

  /// Number of distinct ids occupying `pos` among the triples matching
  /// `pattern`. Resolved with index arithmetic / boundary jumps where the
  /// chosen index sorts `pos` inside the matched range (the count-query
  /// family always lands there); falls back to a collect+sort over the
  /// range otherwise. Never materializes binding rows.
  size_t CountDistinct(const TriplePattern& pattern, TriplePos pos) const;

  /// Grouped-count primitive: for a fixed predicate, walks the POS
  /// sub-range boundaries and returns one (object, count) pair per distinct
  /// object, in ascending object-id order — per-class instance counts for
  /// `?s a ?c` in one pass, without materializing rows. Objects are found
  /// by binary-search boundary jumps, so the cost is O(groups * log n).
  std::vector<std::pair<TermId, size_t>> GroupedCountByObject(TermId p) const;

  /// Statistics for `p` (zeros when the predicate is absent). Valid after
  /// FinalizeIndex() or any read; refreshed on every index rebuild —
  /// incremental loads after FinalizeIndex() trigger a rebuild on the next
  /// read, so stats (and the join orders derived from them) never serve a
  /// stale snapshot. Large indexes absorbing a small batch refresh via
  /// deterministic sampling (PredicateStats::exact == false) instead of
  /// the full two-pass recompute.
  PredicateStats StatsForPredicate(TermId p) const;

  /// Minimum indexed size at which a small incremental batch (< 1/8 of the
  /// index) — or an initial bulk load at least this large — refreshes
  /// statistics by sampling instead of the exact two-pass recompute.
  /// Defaults to kDefaultStatsSamplingThreshold; tests lower it to exercise
  /// the sampled path on small stores. Call before serving readers (same
  /// write-side discipline as Add).
  void SetStatsSamplingThreshold(size_t min_indexed_size) {
    stats_sampling_threshold_ = min_indexed_size;
  }

  static constexpr size_t kDefaultStatsSamplingThreshold = size_t{1} << 18;

  /// All distinct objects of (s=*, p, o=?) — e.g. the class list via
  /// p = rdf:type.
  std::vector<TermId> DistinctObjects(TermId p) const;
  /// All distinct subjects with predicate p.
  std::vector<TermId> DistinctSubjects(TermId p) const;

 private:
  enum class Order { kSpo, kPos, kOsp };
  struct DiskIndexes;  // defined in graph.cc (owns the mmapped runs)

  void EnsureIndexed() const;
  void RebuildLocked() const;
  /// Disk-backend rebuild: k-way merges the previous SPO run, spilled
  /// staging chunks, and the in-RAM staging tail (removals subtracted)
  /// into a fresh SPO run, then externally sorts it into POS/OSP runs.
  void RebuildDiskLocked() const;
  /// Spills the in-RAM staging buffer to a sorted delta chunk once it
  /// exceeds the backend's budget share (write side, like Add).
  void SpillStagedChunk();
  /// Exact per-predicate statistics: two linear passes (POS + SPO).
  void RefreshStatsExactLocked() const;
  /// Sampled refresh for incremental batches on large indexes: per
  /// predicate, exact triple counts from range arithmetic plus capped
  /// boundary-jump / stride-sample estimates for the distinct counts.
  /// Deterministic for a given store content.
  void RefreshStatsSampledLocked() const;
  /// The three indexes as views — in-RAM vectors or mmapped runs,
  /// depending on the backend. Callers must hold the indexed invariant
  /// (EnsureIndexed ran, or inside the rebuild after installation).
  TripleSpan SpoView() const;
  TripleSpan PosView() const;
  TripleSpan OspView() const;
  // Returns the [begin, end) range of `index` whose first `bound` key
  // components equal those of `key` under `order`.
  static std::pair<size_t, size_t> EqualRange(TripleSpan index, Order order,
                                              TermId k1, TermId k2);
  // Picks the index/order/keys for `pattern` the way Match does. Returns
  // false for the full-scan case. `residual` is set when the range still
  // needs a per-triple pattern check.
  bool PlanRange(const TriplePattern& pattern, TripleSpan* index,
                 Order* order, TermId* k1, TermId* k2, bool* residual) const;

  Dictionary dict_;
  mutable std::vector<Triple> spo_;
  mutable std::vector<Triple> pos_;
  mutable std::vector<Triple> osp_;
  mutable std::vector<Triple> staged_;
  mutable std::vector<Triple> staged_removals_;
  mutable std::unordered_map<TermId, PredicateStats> pred_stats_;
  mutable std::atomic<bool> dirty_{false};
  mutable std::atomic<uint64_t> generation_{0};
  size_t stats_sampling_threshold_ = kDefaultStatsSamplingThreshold;
  mutable std::mutex index_mu_;
  /// Non-null iff the disk backend is enabled. Mutated under the same
  /// rebuild discipline as the index vectors (write side or index_mu_).
  mutable std::unique_ptr<DiskIndexes> disk_;
};

}  // namespace hbold::rdf

#endif  // HBOLD_RDF_GRAPH_H_
