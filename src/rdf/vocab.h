#ifndef HBOLD_RDF_VOCAB_H_
#define HBOLD_RDF_VOCAB_H_

namespace hbold::rdf::vocab {

// RDF / RDFS / XSD core terms used throughout the pipeline.
inline constexpr const char* kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr const char* kRdfsLabel =
    "http://www.w3.org/2000/01/rdf-schema#label";
inline constexpr const char* kRdfsClass =
    "http://www.w3.org/2000/01/rdf-schema#Class";
inline constexpr const char* kRdfsDomain =
    "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr const char* kRdfsRange =
    "http://www.w3.org/2000/01/rdf-schema#range";
inline constexpr const char* kXsdString =
    "http://www.w3.org/2001/XMLSchema#string";
inline constexpr const char* kXsdInteger =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr const char* kXsdDouble =
    "http://www.w3.org/2001/XMLSchema#double";
inline constexpr const char* kXsdBoolean =
    "http://www.w3.org/2001/XMLSchema#boolean";
inline constexpr const char* kXsdDateTime =
    "http://www.w3.org/2001/XMLSchema#dateTime";
inline constexpr const char* kRdfLangString =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString";

// DCAT / Dublin Core terms used by the open-data-portal crawler (Listing 1).
inline constexpr const char* kDcatDataset = "http://www.w3.org/ns/dcat#Dataset";
inline constexpr const char* kDcatDistribution =
    "http://www.w3.org/ns/dcat#distribution";
inline constexpr const char* kDcatAccessUrl =
    "http://www.w3.org/ns/dcat#accessURL";
inline constexpr const char* kDcTitle = "http://purl.org/dc/terms/title";

// SPARQLES-like endpoint-metadata vocabulary (used by the §5 future-work
// metadata-repository discovery).
inline constexpr const char* kSqEndpointClass =
    "http://sparqles.example.org/ns#Endpoint";
inline constexpr const char* kSqUrl = "http://sparqles.example.org/ns#url";
inline constexpr const char* kSqAvailability =
    "http://sparqles.example.org/ns#availability";

// Namespace prefixes for the Turtle writer / parser defaults.
inline constexpr const char* kRdfNs =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
inline constexpr const char* kRdfsNs = "http://www.w3.org/2000/01/rdf-schema#";
inline constexpr const char* kXsdNs = "http://www.w3.org/2001/XMLSchema#";
inline constexpr const char* kDcatNs = "http://www.w3.org/ns/dcat#";
inline constexpr const char* kDcNs = "http://purl.org/dc/terms/";

}  // namespace hbold::rdf::vocab

#endif  // HBOLD_RDF_VOCAB_H_
