#ifndef HBOLD_RDF_TERM_H_
#define HBOLD_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>

namespace hbold::rdf {

/// One RDF term: an IRI, a blank node, or a literal (with optional datatype
/// IRI and language tag). Terms are immutable value types; the TripleStore
/// interns them in a Dictionary and works with integer ids.
class Term {
 public:
  enum class Kind : uint8_t { kIri = 0, kBlank = 1, kLiteral = 2 };

  Term() : kind_(Kind::kIri) {}

  static Term Iri(std::string iri) {
    Term t;
    t.kind_ = Kind::kIri;
    t.lexical_ = std::move(iri);
    return t;
  }
  static Term Blank(std::string label) {
    Term t;
    t.kind_ = Kind::kBlank;
    t.lexical_ = std::move(label);
    return t;
  }
  static Term Literal(std::string value, std::string datatype = "",
                      std::string lang = "") {
    Term t;
    t.kind_ = Kind::kLiteral;
    t.lexical_ = std::move(value);
    t.datatype_ = std::move(datatype);
    t.lang_ = std::move(lang);
    return t;
  }
  /// Convenience constructors for typed literals.
  static Term IntLiteral(int64_t v);
  static Term DoubleLiteral(double v);
  static Term BoolLiteral(bool v);

  Kind kind() const { return kind_; }
  bool is_iri() const { return kind_ == Kind::kIri; }
  bool is_blank() const { return kind_ == Kind::kBlank; }
  bool is_literal() const { return kind_ == Kind::kLiteral; }

  /// The IRI string, blank node label, or literal lexical form.
  const std::string& lexical() const { return lexical_; }
  const std::string& datatype() const { return datatype_; }
  const std::string& lang() const { return lang_; }

  /// N-Triples serialization: <iri>, _:label, "value"^^<dt> / "value"@lang.
  std::string ToNTriples() const;

  /// Human-readable short form (local name for IRIs, quoted literals).
  std::string ToDisplay() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.lexical_ == b.lexical_ &&
           a.datatype_ == b.datatype_ && a.lang_ == b.lang_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    return std::tie(a.kind_, a.lexical_, a.datatype_, a.lang_) <
           std::tie(b.kind_, b.lexical_, b.datatype_, b.lang_);
  }

  /// Stable hash for unordered containers.
  size_t Hash() const;

 private:
  Kind kind_;
  std::string lexical_;
  std::string datatype_;  // literals only
  std::string lang_;      // literals only
};

struct TermHash {
  size_t operator()(const Term& t) const { return t.Hash(); }
};

}  // namespace hbold::rdf

#endif  // HBOLD_RDF_TERM_H_
