#include "rdf/graph.h"

#include <algorithm>
#include <iterator>

namespace hbold::rdf {

namespace {

// Key extractors per index order.
inline std::tuple<TermId, TermId, TermId> KeySpo(const Triple& t) {
  return {t.s, t.p, t.o};
}
inline std::tuple<TermId, TermId, TermId> KeyPos(const Triple& t) {
  return {t.p, t.o, t.s};
}
inline std::tuple<TermId, TermId, TermId> KeyOsp(const Triple& t) {
  return {t.o, t.s, t.p};
}

template <typename KeyFn>
void SortIndex(std::vector<Triple>* index, KeyFn key) {
  std::sort(index->begin(), index->end(),
            [&](const Triple& a, const Triple& b) { return key(a) < key(b); });
}

/// Counts the distinct values of `key` within index[b, e). Valid only when
/// `key` is non-decreasing over the range (it is the next sort component
/// after the bound prefix); finds each group's end with a binary-search
/// jump, so runs in O(groups * log(range)).
template <typename KeyFn>
size_t CountGroups(const std::vector<Triple>& index, size_t b, size_t e,
                   KeyFn key) {
  size_t groups = 0;
  size_t i = b;
  while (i < e) {
    ++groups;
    TermId k = key(index[i]);
    i = static_cast<size_t>(
        std::upper_bound(index.begin() + static_cast<long>(i),
                         index.begin() + static_cast<long>(e), k,
                         [&](TermId v, const Triple& t) { return v < key(t); }) -
        index.begin());
  }
  return groups;
}

}  // namespace

TripleStore::TripleStore(TripleStore&& other) noexcept
    : dict_(std::move(other.dict_)),
      spo_(std::move(other.spo_)),
      pos_(std::move(other.pos_)),
      osp_(std::move(other.osp_)),
      staged_(std::move(other.staged_)),
      staged_removals_(std::move(other.staged_removals_)),
      pred_stats_(std::move(other.pred_stats_)),
      dirty_(other.dirty_.load(std::memory_order_relaxed)),
      generation_(other.generation_.load(std::memory_order_relaxed)),
      stats_sampling_threshold_(other.stats_sampling_threshold_) {}

TripleStore& TripleStore::operator=(TripleStore&& other) noexcept {
  if (this != &other) {
    dict_ = std::move(other.dict_);
    spo_ = std::move(other.spo_);
    pos_ = std::move(other.pos_);
    osp_ = std::move(other.osp_);
    staged_ = std::move(other.staged_);
    staged_removals_ = std::move(other.staged_removals_);
    pred_stats_ = std::move(other.pred_stats_);
    dirty_.store(other.dirty_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    generation_.store(other.generation_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    stats_sampling_threshold_ = other.stats_sampling_threshold_;
  }
  return *this;
}

void TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  AddIds(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
}

void TripleStore::AddIds(TermId s, TermId p, TermId o) {
  staged_.push_back(Triple{s, p, o});
  dirty_.store(true, std::memory_order_release);
}

void TripleStore::Remove(const Term& s, const Term& p, const Term& o) {
  // Intern (not Lookup): removing a never-seen triple must still be a
  // deterministic no-op, and interning keeps id assignment a pure function
  // of the term-arrival sequence regardless of whether the triple existed.
  RemoveIds(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
}

void TripleStore::RemoveIds(TermId s, TermId p, TermId o) {
  staged_removals_.push_back(Triple{s, p, o});
  dirty_.store(true, std::memory_order_release);
}

void TripleStore::EnsureIndexed() const {
  // Double-checked locking: readers that observe !dirty_ (acquire) see the
  // fully built indexes (released by the builder); the first reader after a
  // write rebuilds under the mutex while concurrent readers wait.
  if (!dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mu_);
  if (!dirty_.load(std::memory_order_relaxed)) return;
  RebuildLocked();
  dirty_.store(false, std::memory_order_release);
}

void TripleStore::RebuildLocked() const {
  const size_t indexed_before = spo_.size();
  const size_t batch = staged_.size() + staged_removals_.size();
  spo_.insert(spo_.end(), staged_.begin(), staged_.end());
  staged_.clear();
  SortIndex(&spo_, KeySpo);
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  if (!staged_removals_.empty()) {
    // Removals win over same-batch adds: the batch describes the end state
    // of a churn step, so subtract the removal set after the merge.
    SortIndex(&staged_removals_, KeySpo);
    staged_removals_.erase(
        std::unique(staged_removals_.begin(), staged_removals_.end()),
        staged_removals_.end());
    std::vector<Triple> kept;
    kept.reserve(spo_.size());
    std::set_difference(spo_.begin(), spo_.end(), staged_removals_.begin(),
                        staged_removals_.end(), std::back_inserter(kept));
    spo_ = std::move(kept);
    staged_removals_.clear();
  }
  pos_ = spo_;
  SortIndex(&pos_, KeyPos);
  osp_ = spo_;
  SortIndex(&osp_, KeyOsp);

  // Statistics refresh policy: a small incremental batch (adds + removals)
  // against an already-large index refreshes by deterministic sampling
  // (O(P * log n)) instead of the exact two-pass recompute (O(n)), and so
  // does an initial bulk load at least threshold-sized (the per-predicate
  // figures only steer join orders there, and the sampled refresh is a
  // pure function of the sorted content, so determinism holds). Small
  // stores recompute exactly. Either way the stats are *refreshed*:
  // incremental loads never leave a frozen snapshot driving join orders.
  const bool small_batch_on_large_index =
      indexed_before >= stats_sampling_threshold_ &&
      batch * 8 <= indexed_before;
  const bool bulk_load =
      indexed_before == 0 && batch >= stats_sampling_threshold_;
  const bool sampled = small_batch_on_large_index || bulk_load;
  if (sampled) {
    RefreshStatsSampledLocked();
  } else {
    RefreshStatsExactLocked();
  }
  generation_.fetch_add(1, std::memory_order_release);
}

void TripleStore::RefreshStatsExactLocked() const {
  // Per-predicate cardinality statistics in two linear passes: POS yields
  // triple counts and (p, o) boundaries, SPO yields (s, p) boundaries.
  pred_stats_.clear();
  for (size_t i = 0; i < pos_.size(); ++i) {
    PredicateStats& st = pred_stats_[pos_[i].p];
    ++st.triples;
    if (i == 0 || pos_[i - 1].p != pos_[i].p || pos_[i - 1].o != pos_[i].o) {
      ++st.distinct_objects;
    }
  }
  for (size_t i = 0; i < spo_.size(); ++i) {
    if (i == 0 || spo_[i - 1].s != spo_[i].s || spo_[i - 1].p != spo_[i].p) {
      ++pred_stats_[spo_[i].p].distinct_subjects;
    }
  }
}

void TripleStore::RefreshStatsSampledLocked() const {
  // Caps chosen so a refresh costs O(P * kCap * log n) regardless of index
  // size. Everything here is a pure function of the sorted index content,
  // so two stores with identical triples produce identical (sampled)
  // stats — the planner property the deterministic-accounting contracts
  // rely on.
  constexpr size_t kJumpCap = 64;    // max o-group boundary jumps
  constexpr size_t kSampleCap = 64;  // stride samples for subject counts
  pred_stats_.clear();
  size_t i = 0;
  while (i < pos_.size()) {
    const TermId p = pos_[i].p;
    const size_t begin = i;
    i = static_cast<size_t>(
        std::upper_bound(pos_.begin() + static_cast<long>(i), pos_.end(), p,
                         [](TermId v, const Triple& t) { return v < t.p; }) -
        pos_.begin());
    const size_t end = i;
    const size_t range = end - begin;
    PredicateStats st;
    st.triples = range;  // exact: the range itself
    bool objects_exact = true;
    bool subjects_exact = true;

    // distinct_objects: boundary jumps over the (p)-range's o groups,
    // capped; exact when the predicate has few object classes (the common
    // rdf:type case), extrapolated from covered prefix fraction otherwise.
    size_t groups = 0;
    size_t j = begin;
    while (j < end && groups < kJumpCap) {
      ++groups;
      const TermId o = pos_[j].o;
      j = static_cast<size_t>(
          std::upper_bound(pos_.begin() + static_cast<long>(j),
                           pos_.begin() + static_cast<long>(end), o,
                           [](TermId v, const Triple& t) { return v < t.o; }) -
          pos_.begin());
    }
    if (j >= end) {
      st.distinct_objects = groups;  // walked every boundary: exact figure
    } else {
      const size_t covered = j - begin;
      st.distinct_objects = std::min(
          range, std::max<size_t>(groups, groups * range / covered));
      objects_exact = false;
    }

    // distinct_subjects: subjects are not sorted within a POS range, so
    // stride-sample positions and scale the deduped sample count by the
    // sampling fraction (clamped to [1, range]).
    if (range <= kSampleCap) {
      std::vector<TermId> subjects;
      subjects.reserve(range);
      for (size_t k = begin; k < end; ++k) subjects.push_back(pos_[k].s);
      std::sort(subjects.begin(), subjects.end());
      subjects.erase(std::unique(subjects.begin(), subjects.end()),
                     subjects.end());
      st.distinct_subjects = subjects.size();
    } else {
      std::vector<TermId> sample;
      sample.reserve(kSampleCap);
      const size_t stride = range / kSampleCap;
      for (size_t k = 0; k < kSampleCap; ++k) {
        sample.push_back(pos_[begin + k * stride].s);
      }
      std::sort(sample.begin(), sample.end());
      sample.erase(std::unique(sample.begin(), sample.end()), sample.end());
      st.distinct_subjects =
          std::min(range, std::max<size_t>(1, sample.size() * stride));
      subjects_exact = false;
    }
    st.exact = objects_exact && subjects_exact;
    pred_stats_[p] = st;
  }
}

size_t TripleStore::size() const {
  EnsureIndexed();
  return spo_.size();
}

bool TripleStore::Contains(const Term& s, const Term& p, const Term& o) const {
  TermId si = dict_.Lookup(s);
  TermId pi = dict_.Lookup(p);
  TermId oi = dict_.Lookup(o);
  if (si == kInvalidTermId || pi == kInvalidTermId || oi == kInvalidTermId) {
    return false;
  }
  EnsureIndexed();
  Triple t{si, pi, oi};
  return std::binary_search(spo_.begin(), spo_.end(), t);
}

std::pair<size_t, size_t> TripleStore::EqualRange(
    const std::vector<Triple>& index, Order order, TermId k1, TermId k2) {
  // Comparators considering only the bound prefix of the key.
  auto key = [order](const Triple& t) -> std::pair<TermId, TermId> {
    switch (order) {
      case Order::kSpo:
        return {t.s, t.p};
      case Order::kPos:
        return {t.p, t.o};
      case Order::kOsp:
        return {t.o, t.s};
    }
    return {0, 0};
  };
  std::pair<TermId, TermId> lo{k1, k2 == kInvalidTermId ? 0 : k2};
  auto begin = std::lower_bound(
      index.begin(), index.end(), lo,
      [&](const Triple& t, const std::pair<TermId, TermId>& v) {
        auto k = key(t);
        if (k.first != v.first) return k.first < v.first;
        if (v.second == 0) return false;  // only first component bound
        return k.second < v.second;
      });
  // Upper bound: increment the most specific bound component.
  std::pair<TermId, TermId> hi = lo;
  if (k2 == kInvalidTermId) {
    hi.first += 1;
    hi.second = 0;
  } else {
    hi.second += 1;
  }
  auto end = std::lower_bound(
      begin, index.end(), hi,
      [&](const Triple& t, const std::pair<TermId, TermId>& v) {
        auto k = key(t);
        if (k.first != v.first) return k.first < v.first;
        if (v.second == 0) return false;
        return k.second < v.second;
      });
  return {static_cast<size_t>(begin - index.begin()),
          static_cast<size_t>(end - index.begin())};
}

bool TripleStore::PlanRange(const TriplePattern& pattern,
                            const std::vector<Triple>** index, Order* order,
                            TermId* k1, TermId* k2, bool* residual) const {
  const bool bs = pattern.s != kInvalidTermId;
  const bool bp = pattern.p != kInvalidTermId;
  const bool bo = pattern.o != kInvalidTermId;
  if (bs) {
    *index = &spo_;
    *order = Order::kSpo;
    *k1 = pattern.s;
    *k2 = bp ? pattern.p : kInvalidTermId;
    // (s, ?, o) needs a residual filter on o; (s, p, o) on o as well.
    *residual = bo;
    return true;
  }
  if (bp) {
    *index = &pos_;
    *order = Order::kPos;
    *k1 = pattern.p;
    *k2 = bo ? pattern.o : kInvalidTermId;
    *residual = false;
    return true;
  }
  if (bo) {
    *index = &osp_;
    *order = Order::kOsp;
    *k1 = pattern.o;
    *k2 = kInvalidTermId;
    *residual = false;
    return true;
  }
  return false;  // full scan
}

void TripleStore::Match(const TriplePattern& pattern,
                        const std::function<bool(const Triple&)>& fn) const {
  EnsureIndexed();
  const std::vector<Triple>* index = &spo_;
  Order order = Order::kSpo;
  TermId k1 = kInvalidTermId;
  TermId k2 = kInvalidTermId;
  bool residual = false;

  if (!PlanRange(pattern, &index, &order, &k1, &k2, &residual)) {
    for (const Triple& t : spo_) {
      if (!fn(t)) return;
    }
    return;
  }

  auto [begin, end] = EqualRange(*index, order, k1, k2);
  for (size_t i = begin; i < end; ++i) {
    const Triple& t = (*index)[i];
    // Residual position filter — only the (s, o)/(s, p, o) shapes need it;
    // every other bound combination is exactly the prefix range.
    if (residual && !pattern.Matches(t)) continue;
    if (!fn(t)) return;
  }
}

TripleSpan TripleStore::Span(const TriplePattern& pattern) const {
  EnsureIndexed();
  const bool bs = pattern.s != kInvalidTermId;
  const bool bp = pattern.p != kInvalidTermId;
  const bool bo = pattern.o != kInvalidTermId;
  // Unlike Match/PlanRange, every bound combination routes to the index
  // whose prefix range is exactly the match set — no residual shapes.
  if (bs && bp && bo) {
    Triple t{pattern.s, pattern.p, pattern.o};
    auto it = std::lower_bound(spo_.begin(), spo_.end(), t);
    const bool hit = it != spo_.end() && *it == t;
    return TripleSpan{spo_.data() + (it - spo_.begin()), hit ? 1u : 0u};
  }
  const std::vector<Triple>* index = &spo_;
  Order order = Order::kSpo;
  TermId k1 = kInvalidTermId;
  TermId k2 = kInvalidTermId;
  if (bs && bp) {
    k1 = pattern.s;
    k2 = pattern.p;
  } else if (bs && bo) {
    index = &osp_;
    order = Order::kOsp;
    k1 = pattern.o;
    k2 = pattern.s;
  } else if (bs) {
    k1 = pattern.s;
  } else if (bp) {
    index = &pos_;
    order = Order::kPos;
    k1 = pattern.p;
    k2 = bo ? pattern.o : kInvalidTermId;
  } else if (bo) {
    index = &osp_;
    order = Order::kOsp;
    k1 = pattern.o;
  } else {
    return TripleSpan{spo_.data(), spo_.size()};
  }
  auto [b, e] = EqualRange(*index, order, k1, k2);
  return TripleSpan{index->data() + b, e - b};
}

std::vector<Triple> TripleStore::MatchAll(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  Match(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

size_t TripleStore::Count(const TriplePattern& pattern) const {
  EnsureIndexed();
  const bool bs = pattern.s != kInvalidTermId;
  const bool bp = pattern.p != kInvalidTermId;
  const bool bo = pattern.o != kInvalidTermId;
  // Every bound combination is a contiguous prefix range of one index:
  // unlike Match (which keeps its historical iteration orders), counting
  // routes (s, o) through OSP and (s, p, o) through a binary search, so no
  // combination ever needs a residual walk.
  if (bs && bp && bo) {
    Triple t{pattern.s, pattern.p, pattern.o};
    return std::binary_search(spo_.begin(), spo_.end(), t) ? 1 : 0;
  }
  std::pair<size_t, size_t> r;
  if (bs && bp) {
    r = EqualRange(spo_, Order::kSpo, pattern.s, pattern.p);
  } else if (bs && bo) {
    r = EqualRange(osp_, Order::kOsp, pattern.o, pattern.s);
  } else if (bs) {
    r = EqualRange(spo_, Order::kSpo, pattern.s, kInvalidTermId);
  } else if (bp && bo) {
    r = EqualRange(pos_, Order::kPos, pattern.p, pattern.o);
  } else if (bp) {
    r = EqualRange(pos_, Order::kPos, pattern.p, kInvalidTermId);
  } else if (bo) {
    r = EqualRange(osp_, Order::kOsp, pattern.o, kInvalidTermId);
  } else {
    return spo_.size();
  }
  return r.second - r.first;
}

size_t TripleStore::CountDistinct(const TriplePattern& pattern,
                                  TriplePos pos) const {
  EnsureIndexed();
  const bool bs = pattern.s != kInvalidTermId;
  const bool bp = pattern.p != kInvalidTermId;
  const bool bo = pattern.o != kInvalidTermId;

  // A bound position has one value among the matches (if any).
  if ((pos == TriplePos::kS && bs) || (pos == TriplePos::kP && bp) ||
      (pos == TriplePos::kO && bo)) {
    return Count(pattern) > 0 ? 1 : 0;
  }

  switch (pos) {
    case TriplePos::kS:
      if (bp && bo) {
        // POS(p, o): s is the remaining sort key, distinct per triple.
        return Count(pattern);
      }
      if (bp && !bo) {
        auto it = pred_stats_.find(pattern.p);
        if (it == pred_stats_.end()) return 0;
        // Sampled stats are planner estimates, never query answers — fall
        // through to the exact collect+sort below when inexact.
        if (it->second.exact) return it->second.distinct_subjects;
        break;
      }
      if (!bp && bo) {
        // OSP(o): s is the next sort component.
        auto [b, e] = EqualRange(osp_, Order::kOsp, pattern.o, kInvalidTermId);
        return CountGroups(osp_, b, e, [](const Triple& t) { return t.s; });
      }
      return CountGroups(spo_, 0, spo_.size(),
                         [](const Triple& t) { return t.s; });
    case TriplePos::kP:
      if (bs && bo) {
        // OSP(o, s): p is the remaining sort key, distinct per triple.
        return Count(pattern);
      }
      if (bs && !bo) {
        auto [b, e] = EqualRange(spo_, Order::kSpo, pattern.s, kInvalidTermId);
        return CountGroups(spo_, b, e, [](const Triple& t) { return t.p; });
      }
      if (!bs && !bo) {
        return CountGroups(pos_, 0, pos_.size(),
                           [](const Triple& t) { return t.p; });
      }
      break;  // (o) bound only: p not sorted in OSP(o) — fall through
    case TriplePos::kO:
      if (bs && bp) {
        // SPO(s, p): o is the remaining sort key, distinct per triple.
        return Count(pattern);
      }
      if (!bs && bp) {
        auto it = pred_stats_.find(pattern.p);
        if (it == pred_stats_.end()) return 0;
        if (it->second.exact) return it->second.distinct_objects;
        // Inexact (sampled) stats: o is the next sort component of the
        // POS range, so the boundary-jump count stays exact and cheap.
        auto [b, e] = EqualRange(pos_, Order::kPos, pattern.p, kInvalidTermId);
        return CountGroups(pos_, b, e, [](const Triple& t) { return t.o; });
      }
      if (bs && !bp) {
        break;  // o not sorted within SPO(s) — fall through
      }
      return CountGroups(osp_, 0, osp_.size(),
                         [](const Triple& t) { return t.o; });
  }

  // Fallback: collect the position's ids over the matched range. Still no
  // binding-row materialization, just a flat id vector.
  std::vector<TermId> ids;
  Match(pattern, [&](const Triple& t) {
    ids.push_back(pos == TriplePos::kS ? t.s
                                       : (pos == TriplePos::kP ? t.p : t.o));
    return true;
  });
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

std::vector<std::pair<TermId, size_t>> TripleStore::GroupedCountByObject(
    TermId p) const {
  EnsureIndexed();
  std::vector<std::pair<TermId, size_t>> out;
  auto [b, e] = EqualRange(pos_, Order::kPos, p, kInvalidTermId);
  size_t i = b;
  while (i < e) {
    TermId o = pos_[i].o;
    size_t next = static_cast<size_t>(
        std::upper_bound(
            pos_.begin() + static_cast<long>(i),
            pos_.begin() + static_cast<long>(e), o,
            [](TermId v, const Triple& t) { return v < t.o; }) -
        pos_.begin());
    out.emplace_back(o, next - i);
    i = next;
  }
  return out;
}

PredicateStats TripleStore::StatsForPredicate(TermId p) const {
  EnsureIndexed();
  auto it = pred_stats_.find(p);
  return it == pred_stats_.end() ? PredicateStats{} : it->second;
}

std::vector<TermId> TripleStore::DistinctObjects(TermId p) const {
  EnsureIndexed();
  std::vector<TermId> out;
  TriplePattern pat;
  pat.p = p;
  TermId last = kInvalidTermId;
  // POS index yields objects in sorted order for fixed p.
  Match(pat, [&](const Triple& t) {
    if (t.o != last) {
      out.push_back(t.o);
      last = t.o;
    }
    return true;
  });
  return out;
}

std::vector<TermId> TripleStore::DistinctSubjects(TermId p) const {
  EnsureIndexed();
  std::vector<TermId> out;
  TriplePattern pat;
  pat.p = p;
  Match(pat, [&](const Triple& t) {
    out.push_back(t.s);
    return true;
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace hbold::rdf
