#include "rdf/graph.h"

#include <algorithm>
#include <filesystem>
#include <iterator>
#include <memory>
#include <queue>

#include "common/logging.h"
#include "rdf/run_file.h"

namespace hbold::rdf {

namespace {

namespace fs = std::filesystem;

// Key extractors per index order.
inline std::tuple<TermId, TermId, TermId> KeySpo(const Triple& t) {
  return {t.s, t.p, t.o};
}
inline std::tuple<TermId, TermId, TermId> KeyPos(const Triple& t) {
  return {t.p, t.o, t.s};
}
inline std::tuple<TermId, TermId, TermId> KeyOsp(const Triple& t) {
  return {t.o, t.s, t.p};
}

template <typename KeyFn>
void SortIndex(std::vector<Triple>* index, KeyFn key) {
  std::sort(index->begin(), index->end(),
            [&](const Triple& a, const Triple& b) { return key(a) < key(b); });
}

/// Counts the distinct values of `key` within index[b, e). Valid only when
/// `key` is non-decreasing over the range (it is the next sort component
/// after the bound prefix); finds each group's end with a binary-search
/// jump, so runs in O(groups * log(range)).
template <typename KeyFn>
size_t CountGroups(TripleSpan index, size_t b, size_t e, KeyFn key) {
  size_t groups = 0;
  size_t i = b;
  while (i < e) {
    ++groups;
    TermId k = key(index.data[i]);
    i = static_cast<size_t>(
        std::upper_bound(index.begin() + i, index.begin() + e, k,
                         [&](TermId v, const Triple& t) { return v < key(t); }) -
        index.begin());
  }
  return groups;
}

/// Ascending-SPO triple streams feeding the disk rebuild merge.
class SpoSource {
 public:
  virtual ~SpoSource() = default;
  virtual bool Next(Triple* t) = 0;
};

class SpanSource : public SpoSource {
 public:
  explicit SpanSource(TripleSpan span) : it_(span.begin()), end_(span.end()) {}
  bool Next(Triple* t) override {
    if (it_ == end_) return false;
    *t = *it_++;
    return true;
  }

 private:
  const Triple* it_;
  const Triple* end_;
};

class ChunkSource : public SpoSource {
 public:
  Status Open(const std::string& path) { return reader_.Open(path); }
  bool Next(Triple* t) override { return reader_.Next(t); }
  const Status& status() const { return reader_.status(); }

 private:
  DeltaChunkReader reader_;
};

/// How many staged triples the disk backend holds in RAM before spilling
/// them to a sorted delta chunk.
size_t StagingCapacity(const DiskBackendOptions& options) {
  return std::max<size_t>(4096,
                          options.memory_budget_bytes / sizeof(Triple) / 4);
}

}  // namespace

/// The disk-resident incarnation of the three indexes: one mmapped sorted
/// run per order plus the spilled staging chunks awaiting the next rebuild.
struct TripleStore::DiskIndexes {
  DiskBackendOptions options;
  uint64_t serial = 0;        // names each rebuild's run files
  uint64_t chunk_serial = 0;  // names staging spill chunks
  MappedTripleRun spo;
  MappedTripleRun pos;
  MappedTripleRun osp;
  std::vector<std::string> chunks;  // spilled staged adds (SPO delta chunks)
  size_t spilled = 0;               // triples across `chunks`

  std::string RunPath(const char* order) const {
    return options.directory + "/" + order + "-" + std::to_string(serial) +
           ".run";
  }
};

TripleStore::TripleStore() = default;
TripleStore::~TripleStore() = default;

TripleStore::TripleStore(TripleStore&& other) noexcept
    : dict_(std::move(other.dict_)),
      spo_(std::move(other.spo_)),
      pos_(std::move(other.pos_)),
      osp_(std::move(other.osp_)),
      staged_(std::move(other.staged_)),
      staged_removals_(std::move(other.staged_removals_)),
      pred_stats_(std::move(other.pred_stats_)),
      dirty_(other.dirty_.load(std::memory_order_relaxed)),
      generation_(other.generation_.load(std::memory_order_relaxed)),
      stats_sampling_threshold_(other.stats_sampling_threshold_),
      disk_(std::move(other.disk_)) {}

TripleStore& TripleStore::operator=(TripleStore&& other) noexcept {
  if (this != &other) {
    dict_ = std::move(other.dict_);
    spo_ = std::move(other.spo_);
    pos_ = std::move(other.pos_);
    osp_ = std::move(other.osp_);
    staged_ = std::move(other.staged_);
    staged_removals_ = std::move(other.staged_removals_);
    pred_stats_ = std::move(other.pred_stats_);
    dirty_.store(other.dirty_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    generation_.store(other.generation_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    stats_sampling_threshold_ = other.stats_sampling_threshold_;
    disk_ = std::move(other.disk_);
  }
  return *this;
}

TripleSpan TripleStore::SpoView() const {
  return disk_ != nullptr ? disk_->spo.view()
                          : TripleSpan{spo_.data(), spo_.size()};
}

TripleSpan TripleStore::PosView() const {
  return disk_ != nullptr ? disk_->pos.view()
                          : TripleSpan{pos_.data(), pos_.size()};
}

TripleSpan TripleStore::OspView() const {
  return disk_ != nullptr ? disk_->osp.view()
                          : TripleSpan{osp_.data(), osp_.size()};
}

void TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  AddIds(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
}

void TripleStore::AddIds(TermId s, TermId p, TermId o) {
  staged_.push_back(Triple{s, p, o});
  dirty_.store(true, std::memory_order_release);
  if (disk_ != nullptr && staged_.size() >= StagingCapacity(disk_->options)) {
    SpillStagedChunk();
  }
}

void TripleStore::Remove(const Term& s, const Term& p, const Term& o) {
  // Intern (not Lookup): removing a never-seen triple must still be a
  // deterministic no-op, and interning keeps id assignment a pure function
  // of the term-arrival sequence regardless of whether the triple existed.
  RemoveIds(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
}

void TripleStore::RemoveIds(TermId s, TermId p, TermId o) {
  staged_removals_.push_back(Triple{s, p, o});
  dirty_.store(true, std::memory_order_release);
}

void TripleStore::SpillStagedChunk() {
  DiskIndexes& d = *disk_;
  SortIndex(&staged_, KeySpo);
  staged_.erase(std::unique(staged_.begin(), staged_.end()), staged_.end());
  std::string path = d.options.directory + "/chunk-" +
                     std::to_string(d.chunk_serial++) + ".spill";
  Status st =
      WriteDeltaChunk(path, RunOrder::kSpo, staged_.data(), staged_.size());
  if (!st.ok()) {
    // Degrade to keeping the batch in RAM; the rebuild still sees it.
    HBOLD_LOG(kError) << "staging spill failed, keeping batch in RAM: "
                      << st.message();
    return;
  }
  d.chunks.push_back(std::move(path));
  d.spilled += staged_.size();
  staged_.clear();
}

Status TripleStore::EnableDiskBackend(const DiskBackendOptions& options) {
  if (disk_ != nullptr) {
    return Status::InvalidArgument("disk backend already enabled");
  }
  if (options.directory.empty()) {
    return Status::InvalidArgument("disk backend needs a directory");
  }
  std::error_code ec;
  fs::create_directories(options.directory, ec);
  if (ec) {
    return Status::IOError("cannot create '" + options.directory +
                           "': " + ec.message());
  }
  // Convert whatever is already here: build the in-RAM indexes one last
  // time, write them out as runs, then drop the vectors.
  EnsureIndexed();
  auto d = std::make_unique<DiskIndexes>();
  d->options = options;
  d->serial = 1;
  struct OrderSpec {
    const char* name;
    RunOrder order;
    const std::vector<Triple>* source;
    MappedTripleRun* target;
  };
  const OrderSpec specs[] = {
      {"spo", RunOrder::kSpo, &spo_, &d->spo},
      {"pos", RunOrder::kPos, &pos_, &d->pos},
      {"osp", RunOrder::kOsp, &osp_, &d->osp},
  };
  for (const OrderSpec& spec : specs) {
    RunWriter writer;
    Status st = writer.Open(d->RunPath(spec.name), spec.order);
    for (const Triple& t : *spec.source) {
      if (!st.ok()) break;
      st = writer.Append(t);
    }
    if (st.ok()) st = writer.Finish(spec.target);
    if (!st.ok()) return st;  // store stays fully in RAM
  }
  disk_ = std::move(d);
  std::vector<Triple>().swap(spo_);
  std::vector<Triple>().swap(pos_);
  std::vector<Triple>().swap(osp_);
  // Span pointers moved from the vectors to the mappings: bump the
  // generation so anything keyed on it (plan caches, layout snapshots)
  // drops the dangling views.
  generation_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

void TripleStore::EnsureIndexed() const {
  // Double-checked locking: readers that observe !dirty_ (acquire) see the
  // fully built indexes (released by the builder); the first reader after a
  // write rebuilds under the mutex while concurrent readers wait.
  if (!dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mu_);
  if (!dirty_.load(std::memory_order_relaxed)) return;
  RebuildLocked();
  dirty_.store(false, std::memory_order_release);
}

void TripleStore::RebuildLocked() const {
  const size_t indexed_before =
      disk_ != nullptr ? disk_->spo.count() : spo_.size();
  const size_t batch = staged_.size() + staged_removals_.size() +
                       (disk_ != nullptr ? disk_->spilled : 0);
  if (disk_ != nullptr) {
    RebuildDiskLocked();
  } else {
    spo_.insert(spo_.end(), staged_.begin(), staged_.end());
    staged_.clear();
    SortIndex(&spo_, KeySpo);
    spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
    if (!staged_removals_.empty()) {
      // Removals win over same-batch adds: the batch describes the end state
      // of a churn step, so subtract the removal set after the merge.
      SortIndex(&staged_removals_, KeySpo);
      staged_removals_.erase(
          std::unique(staged_removals_.begin(), staged_removals_.end()),
          staged_removals_.end());
      std::vector<Triple> kept;
      kept.reserve(spo_.size());
      std::set_difference(spo_.begin(), spo_.end(), staged_removals_.begin(),
                          staged_removals_.end(), std::back_inserter(kept));
      spo_ = std::move(kept);
      staged_removals_.clear();
    }
    pos_ = spo_;
    SortIndex(&pos_, KeyPos);
    osp_ = spo_;
    SortIndex(&osp_, KeyOsp);
  }

  // Statistics refresh policy: a small incremental batch (adds + removals)
  // against an already-large index refreshes by deterministic sampling
  // (O(P * log n)) instead of the exact two-pass recompute (O(n)), and so
  // does an initial bulk load at least threshold-sized (the per-predicate
  // figures only steer join orders there, and the sampled refresh is a
  // pure function of the sorted content, so determinism holds). Small
  // stores recompute exactly. Either way the stats are *refreshed*:
  // incremental loads never leave a frozen snapshot driving join orders.
  const bool small_batch_on_large_index =
      indexed_before >= stats_sampling_threshold_ &&
      batch * 8 <= indexed_before;
  const bool bulk_load =
      indexed_before == 0 && batch >= stats_sampling_threshold_;
  const bool sampled = small_batch_on_large_index || bulk_load;
  if (sampled) {
    RefreshStatsSampledLocked();
  } else {
    RefreshStatsExactLocked();
  }
  generation_.fetch_add(1, std::memory_order_release);
}

void TripleStore::RebuildDiskLocked() const {
  DiskIndexes& d = *disk_;
  SortIndex(&staged_, KeySpo);
  staged_.erase(std::unique(staged_.begin(), staged_.end()), staged_.end());
  SortIndex(&staged_removals_, KeySpo);
  staged_removals_.erase(
      std::unique(staged_removals_.begin(), staged_removals_.end()),
      staged_removals_.end());

  const std::string old_spo = d.spo.path();
  const std::string old_pos = d.pos.path();
  const std::string old_osp = d.osp.path();
  ++d.serial;

  // Merge sources, all ascending SPO: the previous run, every spilled
  // chunk, and the staging tail. Dedup on emit; a triple in the removal
  // set is dropped (removals win over same-batch adds, as in RAM).
  std::vector<std::unique_ptr<SpoSource>> sources;
  sources.push_back(std::make_unique<SpanSource>(d.spo.view()));
  Status st = Status::OK();
  std::vector<ChunkSource*> chunk_sources;
  for (const std::string& path : d.chunks) {
    auto chunk = std::make_unique<ChunkSource>();
    st = chunk->Open(path);
    if (!st.ok()) break;
    chunk_sources.push_back(chunk.get());
    sources.push_back(std::move(chunk));
  }
  sources.push_back(
      std::make_unique<SpanSource>(TripleSpan{staged_.data(), staged_.size()}));

  MappedTripleRun new_spo;
  if (st.ok()) {
    RunWriter writer;
    st = writer.Open(d.RunPath("spo"), RunOrder::kSpo);
    if (st.ok()) {
      struct HeapItem {
        Triple t;
        size_t src;
      };
      auto heap_after = [](const HeapItem& a, const HeapItem& b) {
        if (a.t < b.t) return false;
        if (b.t < a.t) return true;
        return a.src > b.src;
      };
      std::priority_queue<HeapItem, std::vector<HeapItem>,
                          decltype(heap_after)>
          heap(heap_after);
      for (size_t i = 0; i < sources.size(); ++i) {
        Triple t;
        if (sources[i]->Next(&t)) heap.push(HeapItem{t, i});
      }
      bool have_last = false;
      Triple last;
      while (!heap.empty() && st.ok()) {
        HeapItem item = heap.top();
        heap.pop();
        const bool duplicate = have_last && item.t == last;
        have_last = true;
        last = item.t;
        if (!duplicate &&
            !std::binary_search(staged_removals_.begin(),
                                staged_removals_.end(), item.t)) {
          st = writer.Append(item.t);
        }
        Triple t;
        if (sources[item.src]->Next(&t)) heap.push(HeapItem{t, item.src});
      }
      for (ChunkSource* chunk : chunk_sources) {
        if (st.ok() && !chunk->status().ok()) st = chunk->status();
      }
      if (st.ok()) st = writer.Finish(&new_spo);
    }
  }
  sources.clear();

  MappedTripleRun new_pos;
  MappedTripleRun new_osp;
  if (st.ok()) {
    st = ExternalSortToRun(new_spo.view(), RunOrder::kPos,
                           d.options.memory_budget_bytes, d.options.directory,
                           d.RunPath("pos"), &new_pos);
  }
  if (st.ok()) {
    st = ExternalSortToRun(new_spo.view(), RunOrder::kOsp,
                           d.options.memory_budget_bytes, d.options.directory,
                           d.RunPath("osp"), &new_osp);
  }
  if (!st.ok()) {
    // Leave the previous generation of runs (and the staged batch) in
    // place: reads keep serving the last successfully built indexes.
    HBOLD_LOG(kError) << "disk index rebuild failed: " << st.message();
    --d.serial;
    std::error_code ec;
    fs::remove(d.RunPath("spo"), ec);
    return;
  }

  d.spo = std::move(new_spo);
  d.pos = std::move(new_pos);
  d.osp = std::move(new_osp);
  std::error_code ec;
  if (!old_spo.empty()) fs::remove(old_spo, ec);
  if (!old_pos.empty()) fs::remove(old_pos, ec);
  if (!old_osp.empty()) fs::remove(old_osp, ec);
  for (const std::string& path : d.chunks) fs::remove(path, ec);
  d.chunks.clear();
  d.spilled = 0;
  std::vector<Triple>().swap(staged_);
  std::vector<Triple>().swap(staged_removals_);
}

void TripleStore::RefreshStatsExactLocked() const {
  // Per-predicate cardinality statistics in two linear passes: POS yields
  // triple counts and (p, o) boundaries, SPO yields (s, p) boundaries.
  pred_stats_.clear();
  const TripleSpan pos = PosView();
  for (size_t i = 0; i < pos.size; ++i) {
    PredicateStats& st = pred_stats_[pos.data[i].p];
    ++st.triples;
    if (i == 0 || pos.data[i - 1].p != pos.data[i].p ||
        pos.data[i - 1].o != pos.data[i].o) {
      ++st.distinct_objects;
    }
  }
  const TripleSpan spo = SpoView();
  for (size_t i = 0; i < spo.size; ++i) {
    if (i == 0 || spo.data[i - 1].s != spo.data[i].s ||
        spo.data[i - 1].p != spo.data[i].p) {
      ++pred_stats_[spo.data[i].p].distinct_subjects;
    }
  }
}

void TripleStore::RefreshStatsSampledLocked() const {
  // Caps chosen so a refresh costs O(P * kCap * log n) regardless of index
  // size. Everything here is a pure function of the sorted index content,
  // so two stores with identical triples produce identical (sampled)
  // stats — the planner property the deterministic-accounting contracts
  // rely on.
  constexpr size_t kJumpCap = 64;    // max o-group boundary jumps
  constexpr size_t kSampleCap = 64;  // stride samples for subject counts
  pred_stats_.clear();
  const TripleSpan pos = PosView();
  size_t i = 0;
  while (i < pos.size) {
    const TermId p = pos.data[i].p;
    const size_t begin = i;
    i = static_cast<size_t>(
        std::upper_bound(pos.begin() + i, pos.end(), p,
                         [](TermId v, const Triple& t) { return v < t.p; }) -
        pos.begin());
    const size_t end = i;
    const size_t range = end - begin;
    PredicateStats st;
    st.triples = range;  // exact: the range itself
    bool objects_exact = true;
    bool subjects_exact = true;

    // distinct_objects: boundary jumps over the (p)-range's o groups,
    // capped; exact when the predicate has few object classes (the common
    // rdf:type case), extrapolated from covered prefix fraction otherwise.
    size_t groups = 0;
    size_t j = begin;
    while (j < end && groups < kJumpCap) {
      ++groups;
      const TermId o = pos.data[j].o;
      j = static_cast<size_t>(
          std::upper_bound(pos.begin() + j, pos.begin() + end, o,
                           [](TermId v, const Triple& t) { return v < t.o; }) -
          pos.begin());
    }
    if (j >= end) {
      st.distinct_objects = groups;  // walked every boundary: exact figure
    } else {
      const size_t covered = j - begin;
      st.distinct_objects = std::min(
          range, std::max<size_t>(groups, groups * range / covered));
      objects_exact = false;
    }

    // distinct_subjects: subjects are not sorted within a POS range, so
    // stride-sample positions and scale the deduped sample count by the
    // sampling fraction (clamped to [1, range]).
    if (range <= kSampleCap) {
      std::vector<TermId> subjects;
      subjects.reserve(range);
      for (size_t k = begin; k < end; ++k) subjects.push_back(pos.data[k].s);
      std::sort(subjects.begin(), subjects.end());
      subjects.erase(std::unique(subjects.begin(), subjects.end()),
                     subjects.end());
      st.distinct_subjects = subjects.size();
    } else {
      std::vector<TermId> sample;
      sample.reserve(kSampleCap);
      const size_t stride = range / kSampleCap;
      for (size_t k = 0; k < kSampleCap; ++k) {
        sample.push_back(pos.data[begin + k * stride].s);
      }
      std::sort(sample.begin(), sample.end());
      sample.erase(std::unique(sample.begin(), sample.end()), sample.end());
      st.distinct_subjects =
          std::min(range, std::max<size_t>(1, sample.size() * stride));
      subjects_exact = false;
    }
    st.exact = objects_exact && subjects_exact;
    pred_stats_[p] = st;
  }
}

size_t TripleStore::size() const {
  EnsureIndexed();
  return disk_ != nullptr ? disk_->spo.count() : spo_.size();
}

bool TripleStore::Contains(const Term& s, const Term& p, const Term& o) const {
  TermId si = dict_.Lookup(s);
  TermId pi = dict_.Lookup(p);
  TermId oi = dict_.Lookup(o);
  if (si == kInvalidTermId || pi == kInvalidTermId || oi == kInvalidTermId) {
    return false;
  }
  EnsureIndexed();
  Triple t{si, pi, oi};
  const TripleSpan spo = SpoView();
  return std::binary_search(spo.begin(), spo.end(), t);
}

std::pair<size_t, size_t> TripleStore::EqualRange(TripleSpan index,
                                                  Order order, TermId k1,
                                                  TermId k2) {
  // Comparators considering only the bound prefix of the key.
  auto key = [order](const Triple& t) -> std::pair<TermId, TermId> {
    switch (order) {
      case Order::kSpo:
        return {t.s, t.p};
      case Order::kPos:
        return {t.p, t.o};
      case Order::kOsp:
        return {t.o, t.s};
    }
    return {0, 0};
  };
  std::pair<TermId, TermId> lo{k1, k2 == kInvalidTermId ? 0 : k2};
  auto begin = std::lower_bound(
      index.begin(), index.end(), lo,
      [&](const Triple& t, const std::pair<TermId, TermId>& v) {
        auto k = key(t);
        if (k.first != v.first) return k.first < v.first;
        if (v.second == 0) return false;  // only first component bound
        return k.second < v.second;
      });
  // Upper bound: increment the most specific bound component.
  std::pair<TermId, TermId> hi = lo;
  if (k2 == kInvalidTermId) {
    hi.first += 1;
    hi.second = 0;
  } else {
    hi.second += 1;
  }
  auto end = std::lower_bound(
      begin, index.end(), hi,
      [&](const Triple& t, const std::pair<TermId, TermId>& v) {
        auto k = key(t);
        if (k.first != v.first) return k.first < v.first;
        if (v.second == 0) return false;
        return k.second < v.second;
      });
  return {static_cast<size_t>(begin - index.begin()),
          static_cast<size_t>(end - index.begin())};
}

bool TripleStore::PlanRange(const TriplePattern& pattern, TripleSpan* index,
                            Order* order, TermId* k1, TermId* k2,
                            bool* residual) const {
  const bool bs = pattern.s != kInvalidTermId;
  const bool bp = pattern.p != kInvalidTermId;
  const bool bo = pattern.o != kInvalidTermId;
  if (bs) {
    *index = SpoView();
    *order = Order::kSpo;
    *k1 = pattern.s;
    *k2 = bp ? pattern.p : kInvalidTermId;
    // (s, ?, o) needs a residual filter on o; (s, p, o) on o as well.
    *residual = bo;
    return true;
  }
  if (bp) {
    *index = PosView();
    *order = Order::kPos;
    *k1 = pattern.p;
    *k2 = bo ? pattern.o : kInvalidTermId;
    *residual = false;
    return true;
  }
  if (bo) {
    *index = OspView();
    *order = Order::kOsp;
    *k1 = pattern.o;
    *k2 = kInvalidTermId;
    *residual = false;
    return true;
  }
  return false;  // full scan
}

void TripleStore::Match(const TriplePattern& pattern,
                        const std::function<bool(const Triple&)>& fn) const {
  EnsureIndexed();
  TripleSpan index;
  Order order = Order::kSpo;
  TermId k1 = kInvalidTermId;
  TermId k2 = kInvalidTermId;
  bool residual = false;

  if (!PlanRange(pattern, &index, &order, &k1, &k2, &residual)) {
    for (const Triple& t : SpoView()) {
      if (!fn(t)) return;
    }
    return;
  }

  auto [begin, end] = EqualRange(index, order, k1, k2);
  for (size_t i = begin; i < end; ++i) {
    const Triple& t = index.data[i];
    // Residual position filter — only the (s, o)/(s, p, o) shapes need it;
    // every other bound combination is exactly the prefix range.
    if (residual && !pattern.Matches(t)) continue;
    if (!fn(t)) return;
  }
}

TripleSpan TripleStore::Span(const TriplePattern& pattern) const {
  EnsureIndexed();
  const bool bs = pattern.s != kInvalidTermId;
  const bool bp = pattern.p != kInvalidTermId;
  const bool bo = pattern.o != kInvalidTermId;
  // Unlike Match/PlanRange, every bound combination routes to the index
  // whose prefix range is exactly the match set — no residual shapes.
  if (bs && bp && bo) {
    Triple t{pattern.s, pattern.p, pattern.o};
    const TripleSpan spo = SpoView();
    auto it = std::lower_bound(spo.begin(), spo.end(), t);
    const bool hit = it != spo.end() && *it == t;
    return TripleSpan{it, hit ? 1u : 0u};
  }
  TripleSpan index = SpoView();
  Order order = Order::kSpo;
  TermId k1 = kInvalidTermId;
  TermId k2 = kInvalidTermId;
  if (bs && bp) {
    k1 = pattern.s;
    k2 = pattern.p;
  } else if (bs && bo) {
    index = OspView();
    order = Order::kOsp;
    k1 = pattern.o;
    k2 = pattern.s;
  } else if (bs) {
    k1 = pattern.s;
  } else if (bp) {
    index = PosView();
    order = Order::kPos;
    k1 = pattern.p;
    k2 = bo ? pattern.o : kInvalidTermId;
  } else if (bo) {
    index = OspView();
    order = Order::kOsp;
    k1 = pattern.o;
  } else {
    return index;
  }
  auto [b, e] = EqualRange(index, order, k1, k2);
  return TripleSpan{index.data + b, e - b};
}

std::vector<Triple> TripleStore::MatchAll(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  Match(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

size_t TripleStore::Count(const TriplePattern& pattern) const {
  EnsureIndexed();
  const bool bs = pattern.s != kInvalidTermId;
  const bool bp = pattern.p != kInvalidTermId;
  const bool bo = pattern.o != kInvalidTermId;
  // Every bound combination is a contiguous prefix range of one index:
  // unlike Match (which keeps its historical iteration orders), counting
  // routes (s, o) through OSP and (s, p, o) through a binary search, so no
  // combination ever needs a residual walk.
  if (bs && bp && bo) {
    Triple t{pattern.s, pattern.p, pattern.o};
    const TripleSpan spo = SpoView();
    return std::binary_search(spo.begin(), spo.end(), t) ? 1 : 0;
  }
  std::pair<size_t, size_t> r;
  if (bs && bp) {
    r = EqualRange(SpoView(), Order::kSpo, pattern.s, pattern.p);
  } else if (bs && bo) {
    r = EqualRange(OspView(), Order::kOsp, pattern.o, pattern.s);
  } else if (bs) {
    r = EqualRange(SpoView(), Order::kSpo, pattern.s, kInvalidTermId);
  } else if (bp && bo) {
    r = EqualRange(PosView(), Order::kPos, pattern.p, pattern.o);
  } else if (bp) {
    r = EqualRange(PosView(), Order::kPos, pattern.p, kInvalidTermId);
  } else if (bo) {
    r = EqualRange(OspView(), Order::kOsp, pattern.o, kInvalidTermId);
  } else {
    return SpoView().size;
  }
  return r.second - r.first;
}

size_t TripleStore::CountDistinct(const TriplePattern& pattern,
                                  TriplePos pos) const {
  EnsureIndexed();
  const bool bs = pattern.s != kInvalidTermId;
  const bool bp = pattern.p != kInvalidTermId;
  const bool bo = pattern.o != kInvalidTermId;

  // A bound position has one value among the matches (if any).
  if ((pos == TriplePos::kS && bs) || (pos == TriplePos::kP && bp) ||
      (pos == TriplePos::kO && bo)) {
    return Count(pattern) > 0 ? 1 : 0;
  }

  switch (pos) {
    case TriplePos::kS:
      if (bp && bo) {
        // POS(p, o): s is the remaining sort key, distinct per triple.
        return Count(pattern);
      }
      if (bp && !bo) {
        auto it = pred_stats_.find(pattern.p);
        if (it == pred_stats_.end()) return 0;
        // The documented PredicateStats contract: sampled figures are
        // planner estimates, never query answers. Serve the cached count
        // only when the whole stats entry is exact; any inexact entry
        // (including one whose *other* figure was the sampled one) takes
        // the exact collect+sort fallback below.
        if (it->second.exact) return it->second.distinct_subjects;
        break;
      }
      if (!bp && bo) {
        // OSP(o): s is the next sort component.
        auto [b, e] =
            EqualRange(OspView(), Order::kOsp, pattern.o, kInvalidTermId);
        return CountGroups(OspView(), b, e,
                           [](const Triple& t) { return t.s; });
      }
      return CountGroups(SpoView(), 0, SpoView().size,
                         [](const Triple& t) { return t.s; });
    case TriplePos::kP:
      if (bs && bo) {
        // OSP(o, s): p is the remaining sort key, distinct per triple.
        return Count(pattern);
      }
      if (bs && !bo) {
        auto [b, e] =
            EqualRange(SpoView(), Order::kSpo, pattern.s, kInvalidTermId);
        return CountGroups(SpoView(), b, e,
                           [](const Triple& t) { return t.p; });
      }
      if (!bs && !bo) {
        return CountGroups(PosView(), 0, PosView().size,
                           [](const Triple& t) { return t.p; });
      }
      break;  // (o) bound only: p not sorted in OSP(o) — fall through
    case TriplePos::kO:
      if (bs && bp) {
        // SPO(s, p): o is the remaining sort key, distinct per triple.
        return Count(pattern);
      }
      if (!bs && bp) {
        auto it = pred_stats_.find(pattern.p);
        if (it == pred_stats_.end()) return 0;
        if (it->second.exact) return it->second.distinct_objects;
        // Inexact (sampled) stats must not be served: o is the next sort
        // component of the POS range, so the boundary-jump count stays
        // exact and cheap.
        auto [b, e] =
            EqualRange(PosView(), Order::kPos, pattern.p, kInvalidTermId);
        return CountGroups(PosView(), b, e,
                           [](const Triple& t) { return t.o; });
      }
      if (bs && !bp) {
        break;  // o not sorted within SPO(s) — fall through
      }
      return CountGroups(OspView(), 0, OspView().size,
                         [](const Triple& t) { return t.o; });
  }

  // Fallback: collect the position's ids over the matched range. Still no
  // binding-row materialization, just a flat id vector.
  std::vector<TermId> ids;
  Match(pattern, [&](const Triple& t) {
    ids.push_back(pos == TriplePos::kS ? t.s
                                       : (pos == TriplePos::kP ? t.p : t.o));
    return true;
  });
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

std::vector<std::pair<TermId, size_t>> TripleStore::GroupedCountByObject(
    TermId p) const {
  EnsureIndexed();
  std::vector<std::pair<TermId, size_t>> out;
  const TripleSpan pos = PosView();
  auto [b, e] = EqualRange(pos, Order::kPos, p, kInvalidTermId);
  size_t i = b;
  while (i < e) {
    TermId o = pos.data[i].o;
    size_t next = static_cast<size_t>(
        std::upper_bound(pos.begin() + i, pos.begin() + e, o,
                         [](TermId v, const Triple& t) { return v < t.o; }) -
        pos.begin());
    out.emplace_back(o, next - i);
    i = next;
  }
  return out;
}

PredicateStats TripleStore::StatsForPredicate(TermId p) const {
  EnsureIndexed();
  auto it = pred_stats_.find(p);
  return it == pred_stats_.end() ? PredicateStats{} : it->second;
}

std::vector<TermId> TripleStore::DistinctObjects(TermId p) const {
  EnsureIndexed();
  std::vector<TermId> out;
  TriplePattern pat;
  pat.p = p;
  TermId last = kInvalidTermId;
  // POS index yields objects in sorted order for fixed p.
  Match(pat, [&](const Triple& t) {
    if (t.o != last) {
      out.push_back(t.o);
      last = t.o;
    }
    return true;
  });
  return out;
}

std::vector<TermId> TripleStore::DistinctSubjects(TermId p) const {
  EnsureIndexed();
  std::vector<TermId> out;
  TriplePattern pat;
  pat.p = p;
  Match(pat, [&](const Triple& t) {
    out.push_back(t.s);
    return true;
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace hbold::rdf
