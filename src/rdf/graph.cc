#include "rdf/graph.h"

#include <algorithm>

namespace hbold::rdf {

namespace {

// Key extractors per index order.
inline std::tuple<TermId, TermId, TermId> KeySpo(const Triple& t) {
  return {t.s, t.p, t.o};
}
inline std::tuple<TermId, TermId, TermId> KeyPos(const Triple& t) {
  return {t.p, t.o, t.s};
}
inline std::tuple<TermId, TermId, TermId> KeyOsp(const Triple& t) {
  return {t.o, t.s, t.p};
}

template <typename KeyFn>
void SortIndex(std::vector<Triple>* index, KeyFn key) {
  std::sort(index->begin(), index->end(),
            [&](const Triple& a, const Triple& b) { return key(a) < key(b); });
}

}  // namespace

void TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  AddIds(dict_.Intern(s), dict_.Intern(p), dict_.Intern(o));
}

void TripleStore::AddIds(TermId s, TermId p, TermId o) {
  staged_.push_back(Triple{s, p, o});
  dirty_ = true;
}

void TripleStore::EnsureIndexed() const {
  if (!dirty_) return;
  spo_.insert(spo_.end(), staged_.begin(), staged_.end());
  staged_.clear();
  SortIndex(&spo_, KeySpo);
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  SortIndex(&pos_, KeyPos);
  osp_ = spo_;
  SortIndex(&osp_, KeyOsp);
  dirty_ = false;
}

size_t TripleStore::size() const {
  EnsureIndexed();
  return spo_.size();
}

bool TripleStore::Contains(const Term& s, const Term& p, const Term& o) const {
  TermId si = dict_.Lookup(s);
  TermId pi = dict_.Lookup(p);
  TermId oi = dict_.Lookup(o);
  if (si == kInvalidTermId || pi == kInvalidTermId || oi == kInvalidTermId) {
    return false;
  }
  EnsureIndexed();
  Triple t{si, pi, oi};
  return std::binary_search(spo_.begin(), spo_.end(), t);
}

std::pair<size_t, size_t> TripleStore::EqualRange(
    const std::vector<Triple>& index, Order order, TermId k1, TermId k2) {
  // Comparators considering only the bound prefix of the key.
  auto key = [order](const Triple& t) -> std::pair<TermId, TermId> {
    switch (order) {
      case Order::kSpo:
        return {t.s, t.p};
      case Order::kPos:
        return {t.p, t.o};
      case Order::kOsp:
        return {t.o, t.s};
    }
    return {0, 0};
  };
  std::pair<TermId, TermId> lo{k1, k2 == kInvalidTermId ? 0 : k2};
  auto begin = std::lower_bound(
      index.begin(), index.end(), lo,
      [&](const Triple& t, const std::pair<TermId, TermId>& v) {
        auto k = key(t);
        if (k.first != v.first) return k.first < v.first;
        if (v.second == 0) return false;  // only first component bound
        return k.second < v.second;
      });
  // Upper bound: increment the most specific bound component.
  std::pair<TermId, TermId> hi = lo;
  if (k2 == kInvalidTermId) {
    hi.first += 1;
    hi.second = 0;
  } else {
    hi.second += 1;
  }
  auto end = std::lower_bound(
      begin, index.end(), hi,
      [&](const Triple& t, const std::pair<TermId, TermId>& v) {
        auto k = key(t);
        if (k.first != v.first) return k.first < v.first;
        if (v.second == 0) return false;
        return k.second < v.second;
      });
  return {static_cast<size_t>(begin - index.begin()),
          static_cast<size_t>(end - index.begin())};
}

void TripleStore::Match(const TriplePattern& pattern,
                        const std::function<bool(const Triple&)>& fn) const {
  EnsureIndexed();
  const bool bs = pattern.s != kInvalidTermId;
  const bool bp = pattern.p != kInvalidTermId;
  const bool bo = pattern.o != kInvalidTermId;

  const std::vector<Triple>* index = &spo_;
  Order order = Order::kSpo;
  TermId k1 = kInvalidTermId;
  TermId k2 = kInvalidTermId;
  bool full_scan = false;

  if (bs) {
    index = &spo_;
    order = Order::kSpo;
    k1 = pattern.s;
    k2 = bp ? pattern.p : kInvalidTermId;
    // (s, ?, o) needs a residual filter on o.
  } else if (bp) {
    index = &pos_;
    order = Order::kPos;
    k1 = pattern.p;
    k2 = bo ? pattern.o : kInvalidTermId;
  } else if (bo) {
    index = &osp_;
    order = Order::kOsp;
    k1 = pattern.o;
    k2 = kInvalidTermId;
  } else {
    full_scan = true;
  }

  if (full_scan) {
    for (const Triple& t : spo_) {
      if (!fn(t)) return;
    }
    return;
  }

  auto [begin, end] = EqualRange(*index, order, k1, k2);
  for (size_t i = begin; i < end; ++i) {
    const Triple& t = (*index)[i];
    if (!pattern.Matches(t)) continue;  // residual position filter
    if (!fn(t)) return;
  }
}

std::vector<Triple> TripleStore::MatchAll(const TriplePattern& pattern) const {
  std::vector<Triple> out;
  Match(pattern, [&](const Triple& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

size_t TripleStore::Count(const TriplePattern& pattern) const {
  size_t n = 0;
  Match(pattern, [&](const Triple&) {
    ++n;
    return true;
  });
  return n;
}

std::vector<TermId> TripleStore::DistinctObjects(TermId p) const {
  EnsureIndexed();
  std::vector<TermId> out;
  TriplePattern pat;
  pat.p = p;
  TermId last = kInvalidTermId;
  // POS index yields objects in sorted order for fixed p.
  Match(pat, [&](const Triple& t) {
    if (t.o != last) {
      out.push_back(t.o);
      last = t.o;
    }
    return true;
  });
  return out;
}

std::vector<TermId> TripleStore::DistinctSubjects(TermId p) const {
  EnsureIndexed();
  std::vector<TermId> out;
  TriplePattern pat;
  pat.p = p;
  Match(pat, [&](const Triple& t) {
    out.push_back(t.s);
    return true;
  });
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace hbold::rdf
