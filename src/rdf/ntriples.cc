#include "rdf/ntriples.h"

#include <cctype>

#include "common/string_util.h"
#include "rdf/vocab.h"

namespace hbold::rdf {

namespace {

/// Cursor over one N-Triples line.
class LineParser {
 public:
  LineParser(std::string_view line, size_t line_no)
      : line_(line), line_no_(line_no) {}

  Result<Term> ParseTerm() {
    SkipWs();
    if (pos_ >= line_.size()) return Err("unexpected end of line");
    char c = line_[pos_];
    if (c == '<') return ParseIri();
    if (c == '_') return ParseBlank();
    if (c == '"') return ParseLiteral();
    return Err(std::string("unexpected character '") + c + "'");
  }

  Status ExpectDot() {
    SkipWs();
    if (pos_ >= line_.size() || line_[pos_] != '.') {
      return Err("expected '.'").status();
    }
    ++pos_;
    SkipWs();
    if (pos_ != line_.size()) return Err("trailing characters").status();
    return Status::OK();
  }

 private:
  Result<Term> ParseIri() {
    ++pos_;  // '<'
    size_t start = pos_;
    while (pos_ < line_.size() && line_[pos_] != '>') ++pos_;
    if (pos_ >= line_.size()) return Err("unterminated IRI");
    Term t = Term::Iri(std::string(line_.substr(start, pos_ - start)));
    ++pos_;  // '>'
    return t;
  }

  Result<Term> ParseBlank() {
    if (pos_ + 1 >= line_.size() || line_[pos_ + 1] != ':') {
      return Err("malformed blank node");
    }
    pos_ += 2;
    size_t start = pos_;
    while (pos_ < line_.size() &&
           (std::isalnum(static_cast<unsigned char>(line_[pos_])) ||
            line_[pos_] == '_' || line_[pos_] == '-' || line_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) return Err("empty blank node label");
    return Term::Blank(std::string(line_.substr(start, pos_ - start)));
  }

  Result<Term> ParseLiteral() {
    ++pos_;  // '"'
    std::string value;
    while (true) {
      if (pos_ >= line_.size()) return Err("unterminated literal");
      char c = line_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= line_.size()) return Err("bad escape");
        char e = line_[pos_++];
        switch (e) {
          case 'n':
            value += '\n';
            break;
          case 't':
            value += '\t';
            break;
          case 'r':
            value += '\r';
            break;
          case '"':
            value += '"';
            break;
          case '\\':
            value += '\\';
            break;
          default:
            return Err("unknown escape");
        }
      } else {
        value += c;
      }
    }
    // Optional @lang or ^^<datatype>.
    if (pos_ < line_.size() && line_[pos_] == '@') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < line_.size() &&
             (std::isalnum(static_cast<unsigned char>(line_[pos_])) ||
              line_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ == start) return Err("empty language tag");
      return Term::Literal(std::move(value), vocab::kRdfLangString,
                           std::string(line_.substr(start, pos_ - start)));
    }
    if (pos_ + 1 < line_.size() && line_[pos_] == '^' &&
        line_[pos_ + 1] == '^') {
      pos_ += 2;
      HBOLD_ASSIGN_OR_RETURN(Term dt, ParseIri());
      return Term::Literal(std::move(value), dt.lexical());
    }
    return Term::Literal(std::move(value));
  }

  void SkipWs() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  Result<Term> Err(std::string msg) {
    return Status::ParseError("line " + std::to_string(line_no_) + ": " +
                              std::move(msg));
  }

  std::string_view line_;
  size_t line_no_;
  size_t pos_ = 0;
};

}  // namespace

Result<size_t> ParseNTriples(std::string_view text, TripleStore* store) {
  size_t added = 0;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (!trimmed.empty() && trimmed[0] != '#') {
      LineParser lp(trimmed, line_no);
      HBOLD_ASSIGN_OR_RETURN(Term s, lp.ParseTerm());
      HBOLD_ASSIGN_OR_RETURN(Term p, lp.ParseTerm());
      HBOLD_ASSIGN_OR_RETURN(Term o, lp.ParseTerm());
      HBOLD_RETURN_NOT_OK(lp.ExpectDot());
      if (!p.is_iri()) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": predicate must be an IRI");
      }
      if (o.is_literal() && s.is_literal()) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": subject must not be a literal");
      }
      store->Add(s, p, o);
      ++added;
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return added;
}

std::string WriteNTriples(const TripleStore& store) {
  std::string out;
  TriplePattern all;
  store.Match(all, [&](const Triple& t) {
    out += store.dict().Get(t.s).ToNTriples();
    out += ' ';
    out += store.dict().Get(t.p).ToNTriples();
    out += ' ';
    out += store.dict().Get(t.o).ToNTriples();
    out += " .\n";
    return true;
  });
  return out;
}

}  // namespace hbold::rdf
