#ifndef HBOLD_COMMON_CLOCK_H_
#define HBOLD_COMMON_CLOCK_H_

#include <cstdint>
#include <string>

namespace hbold {

/// Simulated wall-clock used by the refresh scheduler and the endpoint
/// availability model. Time is measured in milliseconds since an arbitrary
/// epoch; days matter for the §3.1 refresh policy (weekly re-extraction,
/// daily retry after failure).
class SimClock {
 public:
  static constexpr int64_t kMillisPerSecond = 1000;
  static constexpr int64_t kMillisPerMinute = 60 * kMillisPerSecond;
  static constexpr int64_t kMillisPerHour = 60 * kMillisPerMinute;
  static constexpr int64_t kMillisPerDay = 24 * kMillisPerHour;

  SimClock() = default;
  explicit SimClock(int64_t start_ms) : now_ms_(start_ms) {}

  int64_t NowMs() const { return now_ms_; }
  int64_t NowDay() const { return now_ms_ / kMillisPerDay; }

  void AdvanceMs(int64_t ms) { now_ms_ += ms; }
  void AdvanceDays(int64_t days) { now_ms_ += days * kMillisPerDay; }

  /// Human-readable "day D hh:mm:ss.mmm" timestamp for logs.
  std::string ToString() const;

 private:
  int64_t now_ms_ = 0;
};

/// Monotonic real-time stopwatch (nanosecond resolution) used by benchmarks
/// and the §3.2 display-time measurements.
class Stopwatch {
 public:
  Stopwatch();
  /// Restarts the stopwatch.
  void Reset();
  /// Elapsed time since construction/Reset, in nanoseconds / milliseconds.
  int64_t ElapsedNanos() const;
  double ElapsedMillis() const;

 private:
  int64_t start_ns_;
};

}  // namespace hbold

#endif  // HBOLD_COMMON_CLOCK_H_
