#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace hbold {

uint64_t Rng::Next() {
  // splitmix64 (public domain, Sebastiano Vigna).
  state_ += 0x9E3779B97f4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Bound > 0 expected; modulo bias is negligible for our bounds (<< 2^64).
  return Next() % bound;
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Chance(double p) { return NextDouble() < p; }

size_t Rng::Zipf(size_t n, double s) {
  if (n == 0) return 0;
  if (n != zipf_n_ || s != zipf_s_) {
    zipf_n_ = n;
    zipf_s_ = s;
    zipf_cdf_.resize(n);
    double sum = 0;
    for (size_t r = 0; r < n; ++r) {
      sum += 1.0 / std::pow(static_cast<double>(r + 1), s);
      zipf_cdf_[r] = sum;
    }
    for (size_t r = 0; r < n; ++r) zipf_cdf_[r] /= sum;
  }
  double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return n - 1;
  return static_cast<size_t>(it - zipf_cdf_.begin());
}

}  // namespace hbold
