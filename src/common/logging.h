#ifndef HBOLD_COMMON_LOGGING_H_
#define HBOLD_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace hbold {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. The threshold is global;
/// benchmarks raise it to kWarn to keep output machine-readable.
class Logger {
 public:
  static LogLevel threshold();
  static void set_threshold(LogLevel level);
  static void Log(LogLevel level, const std::string& message);
};

/// Stream-style log statement: HBOLD_LOG(kInfo) << "x=" << x;
#define HBOLD_LOG(level)                                               \
  for (bool _hbold_log_once =                                          \
           ::hbold::LogLevel::level >= ::hbold::Logger::threshold();   \
       _hbold_log_once; _hbold_log_once = false)                       \
  ::hbold::internal_logging::LogMessage(::hbold::LogLevel::level).stream()

namespace internal_logging {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace hbold

#endif  // HBOLD_COMMON_LOGGING_H_
