#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace hbold {

namespace {

// Serializes a double the way JSON expects: integers without a fraction,
// otherwise shortest round-trip-ish representation.
void AppendNumber(std::string* out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out->append(buf);
  } else if (std::isfinite(d)) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out->append(buf);
  } else {
    out->append("null");  // JSON has no Inf/NaN.
  }
}

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\b':
        out->append("\\b");
        break;
      case '\f':
        out->append("\\f");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
  out->push_back('"');
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    SkipWs();
    Json value;
    Status st = ParseValue(&value);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters at offset " +
                                std::to_string(pos_));
    }
    return value;
  }

 private:
  Status ParseValue(Json* out) {
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"': {
        std::string s;
        Status st = ParseString(&s);
        if (!st.ok()) return st;
        *out = Json(std::move(s));
        return Status::OK();
      }
      case 't':
        return ParseLiteral("true", Json(true), out);
      case 'f':
        return ParseLiteral("false", Json(false), out);
      case 'n':
        return ParseLiteral("null", Json(nullptr), out);
      default:
        return ParseNumber(out);
    }
  }

  Status ParseLiteral(std::string_view lit, Json value, Json* out) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Err("invalid literal");
    }
    pos_ += lit.size();
    *out = std::move(value);
    return Status::OK();
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Err("invalid number");
    std::string num(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Err("invalid number");
    *out = Json(d);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (text_[pos_] != '"') return Err("expected string");
    ++pos_;
    std::string s;
    while (true) {
      if (pos_ >= text_.size()) return Err("unterminated string");
      char c = text_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            s += '"';
            break;
          case '\\':
            s += '\\';
            break;
          case '/':
            s += '/';
            break;
          case 'n':
            s += '\n';
            break;
          case 't':
            s += '\t';
            break;
          case 'r':
            s += '\r';
            break;
          case 'b':
            s += '\b';
            break;
          case 'f':
            s += '\f';
            break;
          case 'u': {
            unsigned cp = 0;
            Status st = ParseHex4(&cp);
            if (!st.ok()) return st;
            // Combine surrogate pairs.
            if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
                text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              st = ParseHex4(&lo);
              if (!st.ok()) return st;
              if (lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              } else {
                return Err("invalid surrogate pair");
              }
            }
            AppendUtf8(&s, cp);
            break;
          }
          default:
            return Err("bad escape");
        }
      } else {
        s += c;
      }
    }
    *out = std::move(s);
    return Status::OK();
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Err("bad \\u escape");
      }
    }
    *out = v;
    return Status::OK();
  }

  static void AppendUtf8(std::string* s, unsigned cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseObject(Json* out) {
    ++pos_;  // '{'
    Json::Object obj;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = Json(std::move(obj));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      std::string key;
      Status st = ParseString(&key);
      if (!st.ok()) return st;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Err("expected ':'");
      ++pos_;
      SkipWs();
      Json value;
      st = ParseValue(&value);
      if (!st.ok()) return st;
      obj[std::move(key)] = std::move(value);
      SkipWs();
      if (pos_ >= text_.size()) return Err("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        break;
      }
      return Err("expected ',' or '}'");
    }
    *out = Json(std::move(obj));
    return Status::OK();
  }

  Status ParseArray(Json* out) {
    ++pos_;  // '['
    Json::Array arr;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = Json(std::move(arr));
      return Status::OK();
    }
    while (true) {
      SkipWs();
      Json value;
      Status st = ParseValue(&value);
      if (!st.ok()) return st;
      arr.push_back(std::move(value));
      SkipWs();
      if (pos_ >= text_.size()) return Err("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        break;
      }
      return Err("expected ',' or ']'");
    }
    *out = Json(std::move(arr));
    return Status::OK();
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Err(std::string msg) {
    return Status::ParseError(msg + " at offset " + std::to_string(pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const Json* Json::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  auto it = obj_.find(std::string(key));
  if (it == obj_.end()) return nullptr;
  return &it->second;
}

std::string Json::GetString(std::string_view key,
                            std::string default_value) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_string()) return default_value;
  return v->as_string();
}

double Json::GetNumber(std::string_view key, double default_value) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_number()) return default_value;
  return v->as_number();
}

int64_t Json::GetInt(std::string_view key, int64_t default_value) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_number()) return default_value;
  return v->as_int();
}

bool Json::GetBool(std::string_view key, bool default_value) const {
  const Json* v = Find(key);
  if (v == nullptr || !v->is_bool()) return default_value;
  return v->as_bool();
}

Json& Json::Set(std::string key, Json value) {
  obj_[std::move(key)] = std::move(value);
  return *this;
}

Json& Json::Append(Json value) {
  arr_.push_back(std::move(value));
  return *this;
}

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent * d), ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      AppendNumber(out, num_);
      break;
    case Type::kString:
      AppendEscaped(out, str_);
      break;
    case Type::kArray: {
      out->push_back('[');
      bool first = true;
      for (const Json& v : arr_) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        v.DumpTo(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        AppendEscaped(out, k);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        v.DumpTo(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<Json> Json::Parse(std::string_view text) {
  Parser p(text);
  return p.Parse();
}

bool operator==(const Json& a, const Json& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kNumber:
      return a.num_ == b.num_;
    case Json::Type::kString:
      return a.str_ == b.str_;
    case Json::Type::kArray:
      return a.arr_ == b.arr_;
    case Json::Type::kObject:
      return a.obj_ == b.obj_;
  }
  return false;
}

}  // namespace hbold
