#ifndef HBOLD_COMMON_IO_UTIL_H_
#define HBOLD_COMMON_IO_UTIL_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace hbold::io {

/// Durably replaces `path` with `data`: writes to `path + ".tmp"`, fsyncs
/// the file, renames it into place, then fsyncs the parent directory so the
/// rename itself survives a crash. A failure at any step removes the temp
/// file (best effort) and leaves any previous `path` intact.
Status WriteFileDurable(const std::string& path, std::string_view data);

/// fsyncs a directory so previously renamed entries are durable. No-op
/// success on platforms where directories cannot be opened for sync.
Status FsyncDirectory(const std::string& dir);

/// Reads a whole file into a string.
Result<std::string> ReadFile(const std::string& path);

}  // namespace hbold::io

#endif  // HBOLD_COMMON_IO_UTIL_H_
