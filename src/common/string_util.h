#ifndef HBOLD_COMMON_STRING_UTIL_H_
#define HBOLD_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace hbold {

/// Splits `s` on `sep` (single character). Empty pieces are kept, so
/// Split("a,,b", ',') == {"a", "", "b"}. Split("", ',') == {""}.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII-only lowercase copy.
std::string ToLower(std::string_view s);

/// True if `needle` occurs in `haystack` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Extracts a human-friendly local name from an IRI: the fragment after '#'
/// if present, else the last path segment. "http://x.org/onto#Person" ->
/// "Person"; "http://x.org/Person" -> "Person".
std::string IriLocalName(std::string_view iri);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Escapes a string for embedding in XML/SVG text or attribute content.
std::string XmlEscape(std::string_view s);

}  // namespace hbold

#endif  // HBOLD_COMMON_STRING_UTIL_H_
