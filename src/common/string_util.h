#ifndef HBOLD_COMMON_STRING_UTIL_H_
#define HBOLD_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hbold {

/// Splits `s` on `sep` (single character). Empty pieces are kept, so
/// Split("a,,b", ',') == {"a", "", "b"}. Split("", ',') == {""}.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// ASCII-only lowercase copy.
std::string ToLower(std::string_view s);

/// True if `needle` occurs in `haystack` ignoring ASCII case.
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Extracts a human-friendly local name from an IRI: the fragment after '#'
/// if present, else the last path segment. "http://x.org/onto#Person" ->
/// "Person"; "http://x.org/Person" -> "Person".
std::string IriLocalName(std::string_view iri);

/// Fixed-width lowercase hex of a 64-bit value ("%016llx") — the JSON-safe
/// encoding for 64-bit figures (content hashes, store generations, class
/// fingerprints): JSON numbers are doubles and silently lose precision
/// past 2^53.
std::string HexU64(uint64_t v);

/// Inverse of HexU64. Returns false (leaving *out untouched) unless `s` is
/// entirely 1-16 lowercase/uppercase hex digits.
bool ParseHexU64(std::string_view s, uint64_t* out);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// Escapes a string for embedding in XML/SVG text or attribute content.
std::string XmlEscape(std::string_view s);

/// Matches `text` against a regex subset without ever constructing a
/// std::regex (which allocates and compiles an NFA per call — far too
/// expensive for the per-row SPARQL FILTER path). Supported syntax:
///   ^        anchor at start        $      anchor at end
///   .        any single character   [a-z]  character class ([^...] negates)
///   * + ?    quantifiers on the preceding atom
///   a|b      alternation (top-level; groups are not supported)
///   \c       literal character c (escapes the metacharacters above)
/// Every other character matches itself. Without a leading '^' an
/// alternative may match anywhere in `text` (regex_search semantics).
/// `ignore_case` compares ASCII case-insensitively (the REGEX "i" flag).
///
/// Callers handing through arbitrary user patterns must gate on
/// LitePatternSupported first: patterns using features outside the subset
/// (groups, braces, backreferences, ...) would otherwise be matched with
/// the metacharacters taken literally.
bool LitePatternMatch(std::string_view text, std::string_view pattern,
                      bool ignore_case = false);

/// True when `pattern` stays within the LitePatternMatch subset AND would
/// mean the same thing to ECMAScript: no unescaped '(' ')' '{' '}', no
/// shorthand class / backreference escapes (\d \w \s \1 ...), no
/// quantifier with nothing to repeat ("+39", "a**"), anchors only at
/// alternative boundaries, every '[' class closed, no trailing
/// backslash. Callers should treat unsupported patterns as errors rather
/// than silently matching them literally.
bool LitePatternSupported(std::string_view pattern);

}  // namespace hbold

#endif  // HBOLD_COMMON_STRING_UTIL_H_
