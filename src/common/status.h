#ifndef HBOLD_COMMON_STATUS_H_
#define HBOLD_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace hbold {

/// Error categories used across the library. Modeled on the Arrow/RocksDB
/// convention: no exceptions cross public API boundaries; fallible
/// operations return Status (or Result<T>, see result.h).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  kIOError,
  kUnavailable,   // endpoint offline / transient failure
  kTimeout,       // endpoint exceeded its deadline
  kUnsupported,   // endpoint dialect rejects the query feature
  kCancelled,     // work abandoned because a sibling batch job failed
  kInternal,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Value type describing the outcome of a fallible operation.
///
/// A Status is either OK (no message) or an error carrying a code and a
/// message. Statuses are cheap to copy for the OK case and small otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller. Usage:
///   HBOLD_RETURN_NOT_OK(DoThing());
#define HBOLD_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::hbold::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

}  // namespace hbold

#endif  // HBOLD_COMMON_STATUS_H_
