#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace hbold {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  std::string h = ToLower(haystack);
  std::string n = ToLower(needle);
  return h.find(n) != std::string::npos;
}

std::string IriLocalName(std::string_view iri) {
  size_t hash = iri.rfind('#');
  if (hash != std::string_view::npos && hash + 1 < iri.size()) {
    return std::string(iri.substr(hash + 1));
  }
  // Ignore a trailing slash.
  size_t end = iri.size();
  while (end > 0 && iri[end - 1] == '/') --end;
  size_t slash = iri.rfind('/', end == 0 ? std::string_view::npos : end - 1);
  if (slash != std::string_view::npos && slash + 1 < end) {
    return std::string(iri.substr(slash + 1, end - slash - 1));
  }
  return std::string(iri.substr(0, end));
}

std::string HexU64(uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

bool ParseHexU64(std::string_view s, uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

bool CharEq(char a, char b, bool icase) {
  if (!icase) return a == b;
  return std::tolower(static_cast<unsigned char>(a)) ==
         std::tolower(static_cast<unsigned char>(b));
}

bool CharInRange(char c, char lo, char hi, bool icase) {
  if (lo <= c && c <= hi) return true;
  if (!icase) return false;
  char l = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  char u = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return (lo <= l && l <= hi) || (lo <= u && u <= hi);
}

/// One pattern atom: a literal char, '.', or a character class.
struct Atom {
  char ch = 0;                 // literal (when not dot/class)
  bool is_dot = false;
  bool is_class = false;
  std::string_view cls;        // class body, brackets stripped
  size_t len = 0;              // characters consumed from the pattern
};

/// Parses the atom at the front of `p` (non-empty). Returns false on a
/// malformed pattern (unclosed class, trailing backslash).
bool ParseAtom(std::string_view p, Atom* atom) {
  if (p[0] == '\\') {
    if (p.size() < 2) return false;
    atom->ch = p[1];
    atom->len = 2;
    return true;
  }
  if (p[0] == '[') {
    size_t close = std::string_view::npos;
    for (size_t i = 1; i < p.size(); ++i) {
      if (p[i] == '\\') {
        ++i;
      } else if (p[i] == ']') {
        close = i;
        break;
      }
    }
    if (close == std::string_view::npos) return false;
    atom->is_class = true;
    atom->cls = p.substr(1, close - 1);
    atom->len = close + 1;
    return true;
  }
  atom->is_dot = p[0] == '.';
  atom->ch = p[0];
  atom->len = 1;
  return true;
}

/// True when `c` is in the class body `cls` ('^' prefix negates; 'a-z'
/// ranges; '\x' escapes).
bool ClassMatch(std::string_view cls, char c, bool icase) {
  bool negate = false;
  size_t i = 0;
  if (!cls.empty() && cls[0] == '^') {
    negate = true;
    i = 1;
  }
  bool hit = false;
  while (i < cls.size()) {
    char lo = cls[i];
    if (lo == '\\' && i + 1 < cls.size()) {
      lo = cls[++i];
    }
    if (i + 2 < cls.size() && cls[i + 1] == '-' && cls[i + 2] != ']') {
      if (CharInRange(c, lo, cls[i + 2], icase)) hit = true;
      i += 3;
    } else {
      if (CharEq(c, lo, icase)) hit = true;
      ++i;
    }
  }
  return hit != negate;
}

bool AtomMatch(const Atom& atom, char c, bool icase) {
  if (atom.is_dot) return true;
  if (atom.is_class) return ClassMatch(atom.cls, c, icase);
  return CharEq(c, atom.ch, icase);
}

/// Matches `p` (one alternative, '^' stripped) against the start of `t`.
bool MatchHere(std::string_view p, std::string_view t, bool icase) {
  if (p.empty()) return true;
  if (p[0] == '$' && p.size() == 1) return t.empty();
  Atom atom;
  if (!ParseAtom(p, &atom)) return false;  // malformed: match nothing
  std::string_view rest = p.substr(atom.len);
  char quant = rest.empty() ? '\0' : rest[0];
  if (quant == '*' || quant == '+' || quant == '?') {
    rest = rest.substr(1);
    const size_t min_reps = quant == '+' ? 1 : 0;
    const size_t max_reps = quant == '?' ? 1 : t.size();
    for (size_t i = 0;; ++i) {
      if (i >= min_reps && MatchHere(rest, t.substr(i), icase)) return true;
      if (i >= max_reps || i >= t.size() || !AtomMatch(atom, t[i], icase)) {
        return false;
      }
    }
  }
  if (t.empty() || !AtomMatch(atom, t[0], icase)) return false;
  return MatchHere(rest, t.substr(1), icase);
}

/// Matches one '|'-free alternative with regex_search semantics.
bool MatchAlternative(std::string_view text, std::string_view p, bool icase) {
  if (!p.empty() && p[0] == '^') {
    return MatchHere(p.substr(1), text, icase);
  }
  for (size_t i = 0;; ++i) {
    if (MatchHere(p, text.substr(i), icase)) return true;
    if (i >= text.size()) return false;
  }
}

/// Calls `fn(alternative)` for each top-level '|'-separated piece of
/// `pattern` until one returns true ('|' inside classes or escaped is
/// not a separator).
template <typename Fn>
bool AnyAlternative(std::string_view pattern, Fn fn) {
  size_t start = 0;
  for (size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == '\\') {
      ++i;
    } else if (pattern[i] == '[') {
      while (i + 1 < pattern.size()) {
        ++i;
        if (pattern[i] == '\\') {
          ++i;
        } else if (pattern[i] == ']') {
          break;
        }
      }
    } else if (pattern[i] == '|') {
      if (fn(pattern.substr(start, i - start))) return true;
      start = i + 1;
    }
  }
  return fn(pattern.substr(start));
}

}  // namespace

bool LitePatternMatch(std::string_view text, std::string_view pattern,
                      bool ignore_case) {
  return AnyAlternative(pattern, [&](std::string_view alt) {
    return MatchAlternative(text, alt, ignore_case);
  });
}

bool LitePatternSupported(std::string_view pattern) {
  // prev_atom: the previous position produced an atom a quantifier may
  // legally apply to (ECMAScript rejects "a**" / leading "+").
  // at_alt_start: we are at the first position of an alternative, where
  // '^' is an anchor; anywhere else the matcher would take it literally
  // while ECMAScript treats it as an assertion — reject the mismatch.
  bool prev_atom = false;
  bool at_alt_start = true;
  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    if (c == '|') {
      prev_atom = false;
      at_alt_start = true;
      continue;
    }
    if (c == '^') {
      if (!at_alt_start) return false;  // mid-pattern assertion
      prev_atom = false;
      at_alt_start = false;
      continue;
    }
    at_alt_start = false;
    if (c == '\\') {
      if (i + 1 >= pattern.size()) return false;  // trailing backslash
      char e = pattern[i + 1];
      // Escaped metacharacters are literals; alphanumeric escapes are
      // shorthand classes / backreferences (\d \w \s \b \1 ...) that the
      // matcher would take literally — reject those.
      if (std::isalnum(static_cast<unsigned char>(e))) return false;
      ++i;
      prev_atom = true;
      continue;
    }
    if (c == '(' || c == ')' || c == '{' || c == '}') return false;
    if (c == '[') {
      bool closed = false;
      while (i + 1 < pattern.size()) {
        ++i;
        if (pattern[i] == '\\') {
          ++i;
        } else if (pattern[i] == ']') {
          closed = true;
          break;
        }
      }
      if (!closed) return false;
      prev_atom = true;
      continue;
    }
    if (c == '*' || c == '+' || c == '?') {
      if (!prev_atom) return false;  // nothing to repeat
      prev_atom = false;
      continue;
    }
    if (c == '$') {
      // Only an anchor at an alternative end, for the same reason as '^'.
      if (i + 1 != pattern.size() && pattern[i + 1] != '|') return false;
      prev_atom = false;
      continue;
    }
    prev_atom = true;
  }
  return true;
}

}  // namespace hbold
