#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace hbold {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  std::string h = ToLower(haystack);
  std::string n = ToLower(needle);
  return h.find(n) != std::string::npos;
}

std::string IriLocalName(std::string_view iri) {
  size_t hash = iri.rfind('#');
  if (hash != std::string_view::npos && hash + 1 < iri.size()) {
    return std::string(iri.substr(hash + 1));
  }
  // Ignore a trailing slash.
  size_t end = iri.size();
  while (end > 0 && iri[end - 1] == '/') --end;
  size_t slash = iri.rfind('/', end == 0 ? std::string_view::npos : end - 1);
  if (slash != std::string_view::npos && slash + 1 < end) {
    return std::string(iri.substr(slash + 1, end - slash - 1));
  }
  return std::string(iri.substr(0, end));
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace hbold
