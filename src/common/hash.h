#ifndef HBOLD_COMMON_HASH_H_
#define HBOLD_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace hbold {

/// FNV-1a 64-bit hash — stable across runs/platforms, used for content
/// fingerprints (e.g. detecting an unchanged Schema Summary, §3.2).
inline uint64_t Fnv64(std::string_view data) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace hbold

#endif  // HBOLD_COMMON_HASH_H_
