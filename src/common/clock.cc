#include "common/clock.h"

#include <chrono>
#include <cstdio>

namespace hbold {

std::string SimClock::ToString() const {
  int64_t day = now_ms_ / kMillisPerDay;
  int64_t rem = now_ms_ % kMillisPerDay;
  int64_t h = rem / kMillisPerHour;
  rem %= kMillisPerHour;
  int64_t m = rem / kMillisPerMinute;
  rem %= kMillisPerMinute;
  int64_t s = rem / kMillisPerSecond;
  int64_t ms = rem % kMillisPerSecond;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "day %lld %02lld:%02lld:%02lld.%03lld",
                static_cast<long long>(day), static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s),
                static_cast<long long>(ms));
  return buf;
}

namespace {
int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

Stopwatch::Stopwatch() : start_ns_(MonotonicNowNs()) {}

void Stopwatch::Reset() { start_ns_ = MonotonicNowNs(); }

int64_t Stopwatch::ElapsedNanos() const { return MonotonicNowNs() - start_ns_; }

double Stopwatch::ElapsedMillis() const {
  return static_cast<double>(ElapsedNanos()) / 1e6;
}

}  // namespace hbold
