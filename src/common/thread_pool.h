#ifndef HBOLD_COMMON_THREAD_POOL_H_
#define HBOLD_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace hbold {

/// Fixed-size worker pool with a FIFO task queue. Tasks are arbitrary
/// callables; Submit returns a future for the callable's result. The pool
/// is the concurrency primitive behind the server's parallel daily cycle
/// (one endpoint pipeline per task) and any future fan-out work (sharded
/// crawls, batched extraction).
///
/// `num_workers == 0` is clamped to 1. Destruction drains the queue: all
/// already-submitted tasks run to completion before the workers join.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` are captured in the future.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(0) .. fn(n-1) across the pool and blocks until all complete.
  /// With `pool == nullptr` (or a 1-worker pool, or n <= 1) the calls run
  /// inline on the caller's thread — the degenerate sequential mode used
  /// when `parallelism <= 1`. Exceptions from any iteration propagate
  /// (first one wins) after all iterations finish.
  ///
  /// Nesting-safe: iterations are claimed from a shared cursor by helper
  /// tasks AND by the calling thread, so a pool worker that calls
  /// ParallelFor on its own pool drives its iterations itself even when
  /// every other worker is blocked the same way. This is what lets the
  /// fleet layer run per-shard daily cycles as tasks on one shared pool
  /// while each cycle fans its endpoint pipelines out over that same pool.
  static void ParallelFor(ThreadPool* pool, size_t n,
                          const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

/// Deterministic per-worker accounting of *simulated* latency under
/// concurrency.
///
/// The sequential daily cycle attributes cost trivially: the cycle's
/// simulated latency is the sum of every endpoint's simulated latency.
/// Under a pool of N workers the sum is still the right *cost* figure
/// (total endpoint-side work is unchanged) but the wrong *duration*
/// figure: pipelines overlap, so the cycle's simulated wall-clock is the
/// makespan of the schedule, not the sum.
///
/// Real thread completion order is nondeterministic, so the ledger does
/// NOT observe threads. It replays classic list scheduling: tasks are
/// assigned, in submission order, to the worker that becomes free
/// earliest. Given the same per-task latencies and worker count the
/// makespan is bit-identical on every run — which keeps SimClock cost
/// attribution reproducible no matter how the OS interleaved the real
/// threads.
class WorkerLatencyLedger {
 public:
  explicit WorkerLatencyLedger(size_t num_workers);

  size_t num_workers() const { return busy_until_ms_.size(); }

  /// Assigns a task of `latency_ms` simulated milliseconds to the worker
  /// with the smallest accumulated load (ties broken by lowest worker id).
  /// Returns the worker id chosen.
  size_t Assign(double latency_ms);

  /// Sum of all assigned latencies — the cost figure, identical to the
  /// sequential cycle's total.
  double TotalMs() const;

  /// Largest per-worker accumulated latency — the simulated duration of
  /// the parallel cycle (what a SimClock should advance by).
  double MakespanMs() const;

  /// Accumulated simulated latency of one worker.
  double WorkerMs(size_t worker) const { return busy_until_ms_[worker]; }

 private:
  std::vector<double> busy_until_ms_;
};

}  // namespace hbold

#endif  // HBOLD_COMMON_THREAD_POOL_H_
