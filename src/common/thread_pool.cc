#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace hbold {

ThreadPool::ThreadPool(size_t num_workers) {
  num_workers = std::max<size_t>(1, num_workers);
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(ThreadPool* pool, size_t n,
                             const std::function<void(size_t)>& fn) {
  if (pool == nullptr || pool->size() <= 1) {
    // Same contract as the pooled branch: every iteration runs even when
    // an earlier one throws; the first exception propagates at the end.
    std::exception_ptr first_error;
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    futures.push_back(pool->Submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

WorkerLatencyLedger::WorkerLatencyLedger(size_t num_workers)
    : busy_until_ms_(std::max<size_t>(1, num_workers), 0.0) {}

size_t WorkerLatencyLedger::Assign(double latency_ms) {
  size_t best = 0;
  for (size_t i = 1; i < busy_until_ms_.size(); ++i) {
    if (busy_until_ms_[i] < busy_until_ms_[best]) best = i;
  }
  busy_until_ms_[best] += latency_ms;
  return best;
}

double WorkerLatencyLedger::TotalMs() const {
  double total = 0;
  for (double ms : busy_until_ms_) total += ms;
  return total;
}

double WorkerLatencyLedger::MakespanMs() const {
  return *std::max_element(busy_until_ms_.begin(), busy_until_ms_.end());
}

}  // namespace hbold
