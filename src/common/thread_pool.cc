#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

namespace hbold {

ThreadPool::ThreadPool(size_t num_workers) {
  num_workers = std::max<size_t>(1, num_workers);
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one ParallelFor call. Heap-allocated and shared with the
/// helper tasks submitted into the pool: helpers that only get scheduled
/// after the caller has already returned (every index claimed by faster
/// lanes) must find the state — and the callable — still alive.
struct ParallelForState {
  ParallelForState(size_t n, std::function<void(size_t)> fn)
      : n(n), fn(std::move(fn)) {}

  const size_t n;
  const std::function<void(size_t)> fn;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex mu;
  std::condition_variable done_cv;
  size_t first_error_index = SIZE_MAX;  // guarded by mu
  std::exception_ptr first_error;       // guarded by mu

  /// Claims indices until none are left. Never blocks — a lane with
  /// nothing to claim exits.
  void RunLane() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        // Lowest index wins, matching the inline branch — which error
        // surfaces must not depend on how lanes raced.
        std::lock_guard<std::mutex> lock(mu);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
      // The mutex is touched only by the final iteration (and on errors):
      // the completion count itself is atomic, so lanes running cheap
      // iterations don't serialize on a lock.
      if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard<std::mutex> lock(mu);
        done_cv.notify_all();
      }
    }
  }
};

}  // namespace

void ThreadPool::ParallelFor(ThreadPool* pool, size_t n,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1 || n == 1) {
    // Same contract as the pooled branch: every iteration runs even when
    // an earlier one throws; the first exception propagates at the end.
    std::exception_ptr first_error;
    for (size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  // Caller-participates fan-out: iterations are claimed from a shared
  // atomic cursor by up to pool->size() helper lanes AND by the calling
  // thread itself. The caller always makes progress on its own loop, so
  // nested ParallelFor calls from inside pool workers can never deadlock
  // even when every pool thread is blocked in an outer ParallelFor —
  // the same claim-loop design QueryBatch uses for nested submission.
  auto state = std::make_shared<ParallelForState>(n, fn);
  const size_t helpers = std::min(pool->size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    pool->Submit([state] { state->RunLane(); });
  }
  state->RunLane();
  std::unique_lock<std::mutex> lock(state->mu);
  state->done_cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->n;
  });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

WorkerLatencyLedger::WorkerLatencyLedger(size_t num_workers)
    : busy_until_ms_(std::max<size_t>(1, num_workers), 0.0) {}

size_t WorkerLatencyLedger::Assign(double latency_ms) {
  size_t best = 0;
  for (size_t i = 1; i < busy_until_ms_.size(); ++i) {
    if (busy_until_ms_[i] < busy_until_ms_[best]) best = i;
  }
  busy_until_ms_[best] += latency_ms;
  return best;
}

double WorkerLatencyLedger::TotalMs() const {
  double total = 0;
  for (double ms : busy_until_ms_) total += ms;
  return total;
}

double WorkerLatencyLedger::MakespanMs() const {
  return *std::max_element(busy_until_ms_.begin(), busy_until_ms_.end());
}

}  // namespace hbold
