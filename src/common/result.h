#ifndef HBOLD_COMMON_RESULT_H_
#define HBOLD_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace hbold {

/// Either a value of type T or an error Status. The library's counterpart to
/// arrow::Result. A Result constructed from an OK status is a programming
/// error (asserted in debug builds, normalized to Internal otherwise).
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit by design so functions
  /// can `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error (implicit so functions can
  /// `return Status::NotFound(...);`).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok());
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Unwraps a Result into `lhs`, propagating errors. Usage:
///   HBOLD_ASSIGN_OR_RETURN(auto table, endpoint->Query(q));
#define HBOLD_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define HBOLD_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define HBOLD_ASSIGN_OR_RETURN_NAME(x, y) HBOLD_ASSIGN_OR_RETURN_CONCAT(x, y)

#define HBOLD_ASSIGN_OR_RETURN(lhs, expr) \
  HBOLD_ASSIGN_OR_RETURN_IMPL(            \
      HBOLD_ASSIGN_OR_RETURN_NAME(_result_tmp_, __LINE__), lhs, expr)

}  // namespace hbold

#endif  // HBOLD_COMMON_RESULT_H_
