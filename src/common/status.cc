#include "common/status.h"

namespace hbold {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace hbold
