#ifndef HBOLD_COMMON_RANDOM_H_
#define HBOLD_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hbold {

/// Deterministic pseudo-random generator (splitmix64 core). Every source of
/// randomness in the library goes through an explicitly seeded Rng so tests
/// and benchmarks reproduce bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : state_(seed) {}

  /// Next 64 uniform random bits.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p of true.
  bool Chance(double p);

  /// Zipf-distributed rank in [0, n): rank r drawn with probability
  /// proportional to 1/(r+1)^s. Used to generate skewed class-size and
  /// degree distributions typical of real Linked Data.
  size_t Zipf(size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = Uniform(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks a uniformly random element. Requires non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

 private:
  uint64_t state_;
  // Cached Zipf normalization (recomputed when (n, s) changes).
  size_t zipf_n_ = 0;
  double zipf_s_ = 0;
  std::vector<double> zipf_cdf_;
};

}  // namespace hbold

#endif  // HBOLD_COMMON_RANDOM_H_
