#ifndef HBOLD_COMMON_JSON_H_
#define HBOLD_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hbold {

/// A JSON value: null, bool, number (double), string, array, or object.
///
/// This is the document representation used by the embedded document store
/// (our MongoDB substitute) and by the export layer. Objects keep keys in
/// sorted order (std::map) so serialization is deterministic.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}  // NOLINT(runtime/explicit)
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(double d) : type_(Type::kNumber), num_(d) {}  // NOLINT
  Json(int i) : type_(Type::kNumber), num_(i) {}  // NOLINT
  Json(int64_t i)  // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(uint64_t i)  // NOLINT
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT
  Json(std::string s)  // NOLINT
      : type_(Type::kString), str_(std::move(s)) {}
  Json(std::string_view s)  // NOLINT
      : type_(Type::kString), str_(s) {}
  Json(Array a) : type_(Type::kArray), arr_(std::move(a)) {}  // NOLINT
  Json(Object o) : type_(Type::kObject), obj_(std::move(o)) {}  // NOLINT

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Accessors; preconditions checked with assert in debug builds. Use the
  /// typed Get* helpers for checked access.
  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  int64_t as_int() const { return static_cast<int64_t>(num_); }
  const std::string& as_string() const { return str_; }
  const Array& as_array() const { return arr_; }
  Array& as_array() { return arr_; }
  const Object& as_object() const { return obj_; }
  Object& as_object() { return obj_; }

  /// Object field access. Returns nullptr if not an object or key missing.
  const Json* Find(std::string_view key) const;

  /// Object field access with defaults (convenience for store documents).
  std::string GetString(std::string_view key,
                        std::string default_value = "") const;
  double GetNumber(std::string_view key, double default_value = 0) const;
  int64_t GetInt(std::string_view key, int64_t default_value = 0) const;
  bool GetBool(std::string_view key, bool default_value = false) const;

  /// Sets a field on an object (value must be an object).
  Json& Set(std::string key, Json value);

  /// Appends to an array (value must be an array).
  Json& Append(Json value);

  /// Serializes to compact JSON. `indent` > 0 pretty-prints.
  std::string Dump(int indent = 0) const;

  /// Parses a JSON document. Supports the full JSON grammar with
  /// \uXXXX escapes (BMP only; surrogate pairs combined).
  static Result<Json> Parse(std::string_view text);

  /// Deep structural equality.
  friend bool operator==(const Json& a, const Json& b);
  friend bool operator!=(const Json& a, const Json& b) { return !(a == b); }

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace hbold

#endif  // HBOLD_COMMON_JSON_H_
