#include "common/io_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace hbold::io {

namespace fs = std::filesystem;

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

Status FsyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    // Some filesystems refuse O_RDONLY on directories; a missing dir is a
    // real error, anything else degrades to best-effort.
    if (errno == ENOENT) return ErrnoStatus("cannot open directory", dir);
    return Status::OK();
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return ErrnoStatus("fsync failed for directory", dir);
  return Status::OK();
}

Status WriteFileDurable(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("cannot open", tmp);
  const char* p = data.data();
  size_t left = data.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return ErrnoStatus("write failed for", tmp);
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  // The content must be on stable storage *before* the rename publishes it:
  // rename-then-crash may otherwise expose a zero-length or partial file
  // under the final name.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return ErrnoStatus("fsync failed for", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return ErrnoStatus("close failed for", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = ErrnoStatus("cannot rename", tmp);
    ::unlink(tmp.c_str());
    return st;
  }
  // And the rename itself must be durable: fsync the parent directory.
  fs::path parent = fs::path(path).parent_path();
  return FsyncDirectory(parent.empty() ? "." : parent.string());
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::IOError("read failed for '" + path + "'");
  }
  return buffer.str();
}

}  // namespace hbold::io
