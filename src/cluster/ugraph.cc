#include "cluster/ugraph.h"

#include <map>

namespace hbold::cluster {

void UGraph::AddEdge(size_t u, size_t v, double weight) {
  // Merge parallel edges: look for an existing neighbor entry.
  for (Neighbor& n : adj_[u]) {
    if (n.node == v) {
      n.weight += weight;
      if (u != v) {
        for (Neighbor& m : adj_[v]) {
          if (m.node == u) {
            m.weight += weight;
            break;
          }
        }
      }
      total_weight_ += weight;
      return;
    }
  }
  adj_[u].push_back(Neighbor{v, weight});
  if (u != v) adj_[v].push_back(Neighbor{u, weight});
  total_weight_ += weight;
}

double UGraph::Degree(size_t u) const {
  double d = 0;
  for (const Neighbor& n : adj_[u]) {
    d += n.weight;
    if (n.node == u) d += n.weight;  // self-loop counts twice
  }
  return d;
}

double UGraph::SelfLoop(size_t u) const {
  for (const Neighbor& n : adj_[u]) {
    if (n.node == u) return n.weight;
  }
  return 0;
}

size_t NormalizePartition(Partition* partition) {
  std::map<size_t, size_t> remap;
  for (size_t& c : *partition) {
    auto it = remap.find(c);
    if (it == remap.end()) {
      size_t next = remap.size();
      it = remap.emplace(c, next).first;
    }
    c = it->second;
  }
  return remap.size();
}

size_t CommunityCount(const Partition& partition) {
  Partition copy = partition;
  return NormalizePartition(&copy);
}

}  // namespace hbold::cluster
