#include "cluster/louvain.h"

#include <map>
#include <numeric>
#include <vector>

namespace hbold::cluster {

namespace {

/// One level of local moves. Returns true if anything moved.
bool LocalMoves(const UGraph& g, Partition* part, const LouvainOptions& opt,
                Rng* rng) {
  const size_t n = g.NodeCount();
  const double m2 = 2 * g.TotalWeight();
  if (m2 <= 0) return false;

  // Community degree sums.
  std::vector<double> comm_degree(n, 0);
  for (size_t u = 0; u < n; ++u) comm_degree[(*part)[u]] += g.Degree(u);

  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  rng->Shuffle(&order);

  bool any_move = false;
  for (size_t sweep = 0; sweep < opt.max_sweeps_per_level; ++sweep) {
    bool moved = false;
    for (size_t u : order) {
      size_t current = (*part)[u];
      double ku = g.Degree(u);

      // Weight from u to each neighboring community (self-loops excluded —
      // they move with u and cancel in the gain).
      std::map<size_t, double> links;
      links[current];  // staying is always an option
      for (const UGraph::Neighbor& nb : g.NeighborsOf(u)) {
        if (nb.node == u) continue;
        links[(*part)[nb.node]] += nb.weight;
      }

      // Remove u from its community for the gain computation.
      comm_degree[current] -= ku;
      double base = links[current] - comm_degree[current] * ku / m2;

      size_t best = current;
      double best_gain = 0;
      for (const auto& [comm, w] : links) {
        if (comm == current) continue;
        double gain = (w - comm_degree[comm] * ku / m2) - base;
        if (gain > best_gain + opt.min_gain) {
          best_gain = gain;
          best = comm;
        }
      }
      (*part)[u] = best;
      comm_degree[best] += ku;
      if (best != current) moved = true;
    }
    if (!moved) break;
    any_move = true;
  }
  return any_move;
}

/// Builds the community-aggregated graph and the node->supernode map.
UGraph Aggregate(const UGraph& g, const Partition& part, size_t k) {
  UGraph agg(k);
  // Accumulate pairwise weights first to avoid O(E^2) AddEdge merging.
  std::map<std::pair<size_t, size_t>, double> weights;
  for (size_t u = 0; u < g.NodeCount(); ++u) {
    for (const UGraph::Neighbor& nb : g.NeighborsOf(u)) {
      size_t cu = part[u];
      size_t cv = part[nb.node];
      if (nb.node == u) {
        weights[{cu, cu}] += nb.weight;  // self-loop carried over
      } else if (nb.node > u) {
        auto key = cu <= cv ? std::make_pair(cu, cv) : std::make_pair(cv, cu);
        weights[key] += nb.weight;
      }
    }
  }
  for (const auto& [pair, w] : weights) {
    agg.AddEdge(pair.first, pair.second, w);
  }
  return agg;
}

}  // namespace

Partition Louvain(const UGraph& graph, const LouvainOptions& options) {
  const size_t n = graph.NodeCount();
  Partition result(n);
  std::iota(result.begin(), result.end(), 0);
  if (n == 0 || graph.TotalWeight() <= 0) return result;

  Rng rng(options.seed);
  UGraph level_graph(0);
  const UGraph* current = &graph;
  while (true) {
    Partition part(current->NodeCount());
    std::iota(part.begin(), part.end(), 0);
    bool improved = LocalMoves(*current, &part, options, &rng);
    size_t k = NormalizePartition(&part);
    if (!improved || k == current->NodeCount()) break;
    // Project the level partition onto the original nodes.
    for (size_t u = 0; u < n; ++u) result[u] = part[result[u]];
    if (k <= 1) break;
    level_graph = Aggregate(*current, part, k);
    current = &level_graph;
  }
  NormalizePartition(&result);
  return result;
}

}  // namespace hbold::cluster
