#ifndef HBOLD_CLUSTER_UGRAPH_H_
#define HBOLD_CLUSTER_UGRAPH_H_

#include <cstddef>
#include <vector>

namespace hbold::cluster {

/// Weighted undirected graph for community detection. Parallel edges are
/// merged by accumulating weight; self-loops are kept (weight counts once
/// in adjacency, twice in degree, per the modularity convention).
class UGraph {
 public:
  explicit UGraph(size_t n = 0) : adj_(n) {}

  size_t NodeCount() const { return adj_.size(); }

  /// Adds (or reinforces) the undirected edge {u, v} with `weight`.
  void AddEdge(size_t u, size_t v, double weight = 1.0);

  struct Neighbor {
    size_t node;
    double weight;
  };
  const std::vector<Neighbor>& NeighborsOf(size_t u) const { return adj_[u]; }

  /// Weighted degree: sum of incident edge weights, self-loops twice.
  double Degree(size_t u) const;

  /// Sum of all edge weights (m). Self-loop weight counts once.
  double TotalWeight() const { return total_weight_; }

  /// Weight of the self-loop at u (0 if none).
  double SelfLoop(size_t u) const;

 private:
  std::vector<std::vector<Neighbor>> adj_;
  double total_weight_ = 0;
};

/// A partition of graph nodes into communities: partition[node] = community
/// id (ids need not be dense).
using Partition = std::vector<size_t>;

/// Renumbers community ids to dense 0..k-1 (order of first appearance).
/// Returns the number of communities.
size_t NormalizePartition(Partition* partition);

/// Number of distinct communities.
size_t CommunityCount(const Partition& partition);

}  // namespace hbold::cluster

#endif  // HBOLD_CLUSTER_UGRAPH_H_
