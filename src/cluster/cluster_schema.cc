#include "cluster/cluster_schema.h"

#include <algorithm>
#include <map>

namespace hbold::cluster {

UGraph BuildClassGraph(const schema::SchemaSummary& summary) {
  UGraph g(summary.NodeCount());
  for (const schema::PropertyArc& arc : summary.arcs()) {
    if (arc.src == arc.dst) continue;
    g.AddEdge(arc.src, arc.dst, static_cast<double>(arc.count));
  }
  return g;
}

namespace {

/// Primary labeling score of a node under a policy (ties broken by
/// instance count then IRI so labeling is deterministic).
size_t LabelScore(const schema::SchemaSummary& summary, size_t node,
                  LabelPolicy policy) {
  switch (policy) {
    case LabelPolicy::kHighestDegree:
      return summary.Degree(node);
    case LabelPolicy::kMostInstances:
      return summary.nodes()[node].instance_count;
    case LabelPolicy::kMostAttributes: {
      size_t total = 0;
      for (const schema::Attribute& a : summary.nodes()[node].attributes) {
        total += a.count;
      }
      return total;
    }
  }
  return 0;
}

}  // namespace

ClusterSchema ClusterSchema::FromPartition(
    const schema::SchemaSummary& summary, const Partition& partition,
    LabelPolicy label_policy) {
  ClusterSchema cs;
  cs.endpoint_url_ = summary.endpoint_url();

  Partition normalized = partition;
  size_t k = NormalizePartition(&normalized);
  cs.clusters_.resize(k);
  cs.cluster_of_ = normalized;

  for (size_t node = 0; node < normalized.size(); ++node) {
    Cluster& cluster = cs.clusters_[normalized[node]];
    cluster.class_nodes.push_back(node);
    cluster.total_instances += summary.nodes()[node].instance_count;
  }

  // Label: by default the local name of the member with the highest degree
  // in the Schema Summary pseudograph (§2.1).
  for (Cluster& cluster : cs.clusters_) {
    size_t best = cluster.class_nodes.empty() ? 0 : cluster.class_nodes[0];
    for (size_t node : cluster.class_nodes) {
      size_t s_node = LabelScore(summary, node, label_policy);
      size_t s_best = LabelScore(summary, best, label_policy);
      if (s_node > s_best) {
        best = node;
      } else if (s_node == s_best) {
        const auto& a = summary.nodes()[node];
        const auto& b = summary.nodes()[best];
        if (a.instance_count > b.instance_count ||
            (a.instance_count == b.instance_count && a.iri < b.iri)) {
          best = node;
        }
      }
    }
    if (!cluster.class_nodes.empty()) {
      cluster.label = summary.nodes()[best].label;
    }
  }

  // Aggregate arcs across cluster boundaries.
  std::map<std::pair<size_t, size_t>, ClusterArc> arcs;
  for (const schema::PropertyArc& arc : summary.arcs()) {
    size_t cs_src = normalized[arc.src];
    size_t cs_dst = normalized[arc.dst];
    if (cs_src == cs_dst) continue;
    auto key = std::make_pair(cs_src, cs_dst);
    ClusterArc& ca = arcs[key];
    ca.src = cs_src;
    ca.dst = cs_dst;
    ca.weight += arc.count;
    ca.property_count += 1;
  }
  for (auto& [key, arc] : arcs) cs.arcs_.push_back(arc);
  return cs;
}

int ClusterSchema::ClusterOf(size_t node) const {
  if (node >= cluster_of_.size()) return -1;
  return static_cast<int>(cluster_of_[node]);
}

Json ClusterSchema::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("endpoint_url", endpoint_url_);
  Json clusters = Json::MakeArray();
  for (const Cluster& c : clusters_) {
    Json cj = Json::MakeObject();
    cj.Set("label", c.label);
    cj.Set("total_instances", c.total_instances);
    Json members = Json::MakeArray();
    for (size_t node : c.class_nodes) members.Append(Json(node));
    cj.Set("classes", std::move(members));
    clusters.Append(std::move(cj));
  }
  j.Set("clusters", std::move(clusters));
  Json arcs = Json::MakeArray();
  for (const ClusterArc& a : arcs_) {
    Json aj = Json::MakeObject();
    aj.Set("src", a.src);
    aj.Set("dst", a.dst);
    aj.Set("weight", a.weight);
    aj.Set("properties", a.property_count);
    arcs.Append(std::move(aj));
  }
  j.Set("arcs", std::move(arcs));
  return j;
}

Result<ClusterSchema> ClusterSchema::FromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("ClusterSchema JSON must be an object");
  }
  ClusterSchema cs;
  cs.endpoint_url_ = j.GetString("endpoint_url");
  const Json* clusters = j.Find("clusters");
  size_t max_node = 0;
  if (clusters != nullptr && clusters->is_array()) {
    for (const Json& cj : clusters->as_array()) {
      Cluster c;
      c.label = cj.GetString("label");
      c.total_instances = static_cast<size_t>(cj.GetInt("total_instances"));
      const Json* members = cj.Find("classes");
      if (members != nullptr && members->is_array()) {
        for (const Json& m : members->as_array()) {
          if (!m.is_number()) continue;
          size_t node = static_cast<size_t>(m.as_int());
          c.class_nodes.push_back(node);
          max_node = std::max(max_node, node);
        }
      }
      cs.clusters_.push_back(std::move(c));
    }
  }
  cs.cluster_of_.assign(max_node + 1, 0);
  for (size_t ci = 0; ci < cs.clusters_.size(); ++ci) {
    for (size_t node : cs.clusters_[ci].class_nodes) {
      cs.cluster_of_[node] = ci;
    }
  }
  const Json* arcs = j.Find("arcs");
  if (arcs != nullptr && arcs->is_array()) {
    for (const Json& aj : arcs->as_array()) {
      ClusterArc a;
      a.src = static_cast<size_t>(aj.GetInt("src"));
      a.dst = static_cast<size_t>(aj.GetInt("dst"));
      a.weight = static_cast<size_t>(aj.GetInt("weight"));
      a.property_count = static_cast<size_t>(aj.GetInt("properties"));
      if (a.src >= cs.clusters_.size() || a.dst >= cs.clusters_.size()) {
        return Status::InvalidArgument("cluster arc endpoint out of range");
      }
      cs.arcs_.push_back(a);
    }
  }
  return cs;
}

}  // namespace hbold::cluster
