#ifndef HBOLD_CLUSTER_GREEDY_MERGE_H_
#define HBOLD_CLUSTER_GREEDY_MERGE_H_

#include "cluster/ugraph.h"

namespace hbold::cluster {

/// Greedy agglomerative modularity optimization in the spirit of
/// Clauset-Newman-Moore: start with singleton communities and repeatedly
/// merge the connected pair with the largest modularity gain until no merge
/// improves Q. Simpler (O(n^2)-ish) than the heap-based CNM — adequate for
/// schema graphs, and a second baseline for E9.
Partition GreedyMerge(const UGraph& graph);

}  // namespace hbold::cluster

#endif  // HBOLD_CLUSTER_GREEDY_MERGE_H_
