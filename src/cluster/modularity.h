#ifndef HBOLD_CLUSTER_MODULARITY_H_
#define HBOLD_CLUSTER_MODULARITY_H_

#include "cluster/ugraph.h"

namespace hbold::cluster {

/// Newman-Girvan modularity of `partition` on `graph`:
///   Q = (1/2m) * sum_ij [A_ij - k_i k_j / 2m] * delta(c_i, c_j)
/// Returns 0 for an empty graph.
double Modularity(const UGraph& graph, const Partition& partition);

}  // namespace hbold::cluster

#endif  // HBOLD_CLUSTER_MODULARITY_H_
