#ifndef HBOLD_CLUSTER_LABEL_PROPAGATION_H_
#define HBOLD_CLUSTER_LABEL_PROPAGATION_H_

#include "cluster/ugraph.h"
#include "common/random.h"

namespace hbold::cluster {

struct LabelPropagationOptions {
  size_t max_iterations = 100;
  uint64_t seed = 42;
};

/// Asynchronous label propagation (Raghavan et al. 2007): every node
/// repeatedly adopts the label with the largest weighted frequency among
/// its neighbors, until stable. Fast, no objective, noisier than Louvain —
/// a baseline for the E9 community-detection comparison.
Partition LabelPropagation(const UGraph& graph,
                           const LabelPropagationOptions& options = {});

}  // namespace hbold::cluster

#endif  // HBOLD_CLUSTER_LABEL_PROPAGATION_H_
