#ifndef HBOLD_CLUSTER_LOUVAIN_H_
#define HBOLD_CLUSTER_LOUVAIN_H_

#include "cluster/ugraph.h"
#include "common/random.h"

namespace hbold::cluster {

/// Options for the Louvain method.
struct LouvainOptions {
  /// Minimum modularity gain to keep iterating a level.
  double min_gain = 1e-7;
  /// Safety cap on local-move sweeps per level.
  size_t max_sweeps_per_level = 100;
  /// Node visiting order is shuffled with this seed (deterministic).
  uint64_t seed = 42;
};

/// Louvain community detection (Blondel et al. 2008): greedy local moves
/// maximizing modularity, then graph aggregation, repeated until no gain.
/// This is the community detection applied to the Schema Summary to build
/// the Cluster Schema [Po & Malvezzi 2018]. Every node ends in exactly one
/// community — the paper's "a node belongs to several Clusters is avoided".
Partition Louvain(const UGraph& graph, const LouvainOptions& options = {});

}  // namespace hbold::cluster

#endif  // HBOLD_CLUSTER_LOUVAIN_H_
