#ifndef HBOLD_CLUSTER_CLUSTER_SCHEMA_H_
#define HBOLD_CLUSTER_CLUSTER_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/ugraph.h"
#include "common/json.h"
#include "common/result.h"
#include "schema/schema_summary.h"

namespace hbold::cluster {

/// One cluster: a group of classes of the Schema Summary. The label is the
/// local name of the member class with the highest degree (sum of in- and
/// out-degree), per §2.1.
struct Cluster {
  std::string label;
  std::vector<size_t> class_nodes;  // indexes into the SchemaSummary nodes
  size_t total_instances = 0;
};

/// An aggregated arc between clusters (sum of the property-arc counts
/// crossing the two groups). Self-arcs (within one cluster) are omitted —
/// the Cluster Schema shows connections *among* clusters.
struct ClusterArc {
  size_t src = 0;
  size_t dst = 0;
  size_t weight = 0;  // total property usage across the cut
  size_t property_count = 0;  // number of distinct property arcs aggregated
};

/// How a cluster chooses its display label among member classes. The paper
/// (§2.1) uses the degree criterion; the alternatives exist for the
/// labeling ablation (bench_ablation_labeling).
enum class LabelPolicy {
  /// Member with the highest degree in the Schema Summary (the paper).
  kHighestDegree,
  /// Member with the most instances.
  kMostInstances,
  /// Member whose attribute usage count is largest (most described).
  kMostAttributes,
};

/// The paper's Cluster Schema (§2.1): the Schema Summary shrunk by a
/// community detection partition. Every class belongs to exactly one
/// cluster.
class ClusterSchema {
 public:
  ClusterSchema() = default;

  /// Builds the Cluster Schema from `summary` and a community `partition`
  /// over its nodes (partition.size() == summary.NodeCount()).
  static ClusterSchema FromPartition(
      const schema::SchemaSummary& summary, const Partition& partition,
      LabelPolicy label_policy = LabelPolicy::kHighestDegree);

  const std::string& endpoint_url() const { return endpoint_url_; }
  const std::vector<Cluster>& clusters() const { return clusters_; }
  const std::vector<ClusterArc>& arcs() const { return arcs_; }
  size_t ClusterCount() const { return clusters_.size(); }

  /// Cluster index containing schema node `node`, or -1.
  int ClusterOf(size_t node) const;

  hbold::Json ToJson() const;
  static Result<ClusterSchema> FromJson(const hbold::Json& j);

 private:
  std::string endpoint_url_;
  std::vector<Cluster> clusters_;
  std::vector<ClusterArc> arcs_;
  std::vector<size_t> cluster_of_;  // schema node -> cluster index
};

/// Convenience: builds the undirected weighted graph over which community
/// detection runs (one node per class, arcs collapsed; self-loops dropped —
/// a class's self-links say nothing about which cluster it joins).
UGraph BuildClassGraph(const schema::SchemaSummary& summary);

}  // namespace hbold::cluster

#endif  // HBOLD_CLUSTER_CLUSTER_SCHEMA_H_
