#include "cluster/modularity.h"

#include <map>

namespace hbold::cluster {

double Modularity(const UGraph& graph, const Partition& partition) {
  double m = graph.TotalWeight();
  if (m <= 0) return 0;
  // Per community: total internal weight (each internal edge once,
  // self-loops once) and total degree.
  std::map<size_t, double> internal;
  std::map<size_t, double> degree;
  for (size_t u = 0; u < graph.NodeCount(); ++u) {
    degree[partition[u]] += graph.Degree(u);
    for (const UGraph::Neighbor& n : graph.NeighborsOf(u)) {
      if (partition[n.node] != partition[u]) continue;
      if (n.node == u) {
        internal[partition[u]] += n.weight;  // self-loop seen once
      } else if (n.node > u) {
        internal[partition[u]] += n.weight;  // each pair once
      }
    }
  }
  double q = 0;
  for (const auto& [c, deg] : degree) {
    double in = internal.count(c) > 0 ? internal.at(c) : 0.0;
    q += in / m - (deg / (2 * m)) * (deg / (2 * m));
  }
  return q;
}

}  // namespace hbold::cluster
