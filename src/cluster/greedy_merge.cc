#include "cluster/greedy_merge.h"

#include <map>
#include <numeric>
#include <vector>

namespace hbold::cluster {

Partition GreedyMerge(const UGraph& graph) {
  const size_t n = graph.NodeCount();
  Partition part(n);
  std::iota(part.begin(), part.end(), 0);
  double m = graph.TotalWeight();
  if (n == 0 || m <= 0) return part;

  // Community state: degree sum and pairwise inter-community weights.
  std::vector<double> degree(n, 0);
  for (size_t u = 0; u < n; ++u) degree[u] = graph.Degree(u);
  // links[{a,b}] with a < b: total weight between communities a and b.
  std::map<std::pair<size_t, size_t>, double> links;
  for (size_t u = 0; u < n; ++u) {
    for (const UGraph::Neighbor& nb : graph.NeighborsOf(u)) {
      if (nb.node <= u) continue;
      auto key = std::make_pair(u, nb.node);
      links[key] += nb.weight;
    }
  }

  std::vector<bool> alive(n, true);
  while (true) {
    // Find the merge with the best modularity gain:
    //   dQ = e_ab / m - k_a k_b / (2 m^2)   (merging a and b)
    double best_gain = 0;
    std::pair<size_t, size_t> best_pair{0, 0};
    for (const auto& [pair, w] : links) {
      auto [a, b] = pair;
      if (!alive[a] || !alive[b]) continue;
      double gain = w / m - degree[a] * degree[b] / (2 * m * m);
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_pair = pair;
      }
    }
    if (best_gain <= 0) break;
    auto [a, b] = best_pair;
    // Merge b into a.
    for (size_t& c : part) {
      if (c == b) c = a;
    }
    degree[a] += degree[b];
    alive[b] = false;
    // Fold b's links into a's.
    std::map<std::pair<size_t, size_t>, double> updated;
    for (const auto& [pair, w] : links) {
      auto [x, y] = pair;
      if (!alive[x] && x != b) continue;
      if (!alive[y] && y != b) continue;
      size_t nx = (x == b) ? a : x;
      size_t ny = (y == b) ? a : y;
      if (nx == ny) continue;  // became internal
      auto key = nx < ny ? std::make_pair(nx, ny) : std::make_pair(ny, nx);
      updated[key] += w;
    }
    links = std::move(updated);
  }
  NormalizePartition(&part);
  return part;
}

}  // namespace hbold::cluster
