#include "cluster/label_propagation.h"

#include <map>
#include <numeric>

namespace hbold::cluster {

Partition LabelPropagation(const UGraph& graph,
                           const LabelPropagationOptions& options) {
  const size_t n = graph.NodeCount();
  Partition labels(n);
  std::iota(labels.begin(), labels.end(), 0);
  if (n == 0) return labels;

  Rng rng(options.seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    rng.Shuffle(&order);
    bool changed = false;
    for (size_t u : order) {
      const auto& neighbors = graph.NeighborsOf(u);
      if (neighbors.empty()) continue;
      std::map<size_t, double> freq;
      for (const UGraph::Neighbor& nb : neighbors) {
        if (nb.node == u) continue;
        freq[labels[nb.node]] += nb.weight;
      }
      if (freq.empty()) continue;
      // Pick the heaviest label; ties broken by smallest label id for
      // determinism.
      size_t best = labels[u];
      double best_w = -1;
      for (const auto& [label, w] : freq) {
        if (w > best_w) {
          best_w = w;
          best = label;
        }
      }
      if (best != labels[u]) {
        labels[u] = best;
        changed = true;
      }
    }
    if (!changed) break;
  }
  NormalizePartition(&labels);
  return labels;
}

}  // namespace hbold::cluster
