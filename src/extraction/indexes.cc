#include "extraction/indexes.h"

#include <algorithm>
#include <set>

namespace hbold::extraction {

size_t IndexSummary::TotalClassInstances() const {
  size_t total = 0;
  for (const ClassInfo& c : classes) total += c.instance_count;
  return total;
}

const ClassInfo* IndexSummary::FindClass(const std::string& iri) const {
  for (const ClassInfo& c : classes) {
    if (c.iri == iri) return &c;
  }
  return nullptr;
}

Json IndexSummary::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("endpoint_url", endpoint_url);
  j.Set("num_triples", num_triples);
  j.Set("num_instances", num_instances);
  j.Set("num_classes", num_classes);
  j.Set("extracted_day", extracted_day);
  Json class_arr = Json::MakeArray();
  for (const ClassInfo& c : classes) {
    Json cj = Json::MakeObject();
    cj.Set("iri", c.iri);
    cj.Set("instance_count", c.instance_count);
    Json props = Json::MakeArray();
    for (const PropertyInfo& p : c.properties) {
      Json pj = Json::MakeObject();
      pj.Set("iri", p.iri);
      pj.Set("count", p.count);
      pj.Set("object_property", p.is_object_property);
      if (!p.range_classes.empty()) {
        Json ranges = Json::MakeObject();
        for (const auto& [range, n] : p.range_classes) ranges.Set(range, n);
        pj.Set("ranges", std::move(ranges));
      }
      props.Append(std::move(pj));
    }
    cj.Set("properties", std::move(props));
    class_arr.Append(std::move(cj));
  }
  j.Set("classes", std::move(class_arr));
  return j;
}

Result<IndexSummary> IndexSummary::FromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("IndexSummary JSON must be an object");
  }
  IndexSummary s;
  s.endpoint_url = j.GetString("endpoint_url");
  s.num_triples = static_cast<size_t>(j.GetInt("num_triples"));
  s.num_instances = static_cast<size_t>(j.GetInt("num_instances"));
  s.num_classes = static_cast<size_t>(j.GetInt("num_classes"));
  s.extracted_day = j.GetInt("extracted_day", -1);
  const Json* classes = j.Find("classes");
  if (classes != nullptr && classes->is_array()) {
    for (const Json& cj : classes->as_array()) {
      ClassInfo c;
      c.iri = cj.GetString("iri");
      c.instance_count = static_cast<size_t>(cj.GetInt("instance_count"));
      const Json* props = cj.Find("properties");
      if (props != nullptr && props->is_array()) {
        for (const Json& pj : props->as_array()) {
          PropertyInfo p;
          p.iri = pj.GetString("iri");
          p.count = static_cast<size_t>(pj.GetInt("count"));
          p.is_object_property = pj.GetBool("object_property");
          const Json* ranges = pj.Find("ranges");
          if (ranges != nullptr && ranges->is_object()) {
            for (const auto& [range, n] : ranges->as_object()) {
              p.range_classes[range] =
                  n.is_number() ? static_cast<size_t>(n.as_int()) : 0;
            }
          }
          c.properties.push_back(std::move(p));
        }
      }
      s.classes.push_back(std::move(c));
    }
  }
  return s;
}

void CanonicalizeIndexSummary(IndexSummary* s) {
  std::sort(s->classes.begin(), s->classes.end(),
            [](const ClassInfo& a, const ClassInfo& b) {
              if (a.instance_count != b.instance_count) {
                return a.instance_count > b.instance_count;
              }
              return a.iri < b.iri;
            });
  for (ClassInfo& c : s->classes) {
    std::sort(c.properties.begin(), c.properties.end(),
              [](const PropertyInfo& a, const PropertyInfo& b) {
                return a.iri < b.iri;
              });
  }
  s->num_classes = s->classes.size();
}

IndexSummary MergeDirtyClasses(const IndexSummary& prior,
                               const IndexSummary& partial,
                               const std::vector<std::string>& dirty,
                               const std::vector<std::string>& removed) {
  std::set<std::string> drop(dirty.begin(), dirty.end());
  drop.insert(removed.begin(), removed.end());

  IndexSummary merged;
  merged.endpoint_url = partial.endpoint_url.empty() ? prior.endpoint_url
                                                     : partial.endpoint_url;
  merged.num_triples = partial.num_triples;
  merged.num_instances = partial.num_instances;
  merged.extracted_day = partial.extracted_day;
  for (const ClassInfo& c : prior.classes) {
    if (drop.count(c.iri) == 0) merged.classes.push_back(c);
  }
  for (const ClassInfo& c : partial.classes) {
    merged.classes.push_back(c);
  }
  CanonicalizeIndexSummary(&merged);
  return merged;
}

}  // namespace hbold::extraction
