#ifndef HBOLD_EXTRACTION_STRATEGIES_H_
#define HBOLD_EXTRACTION_STRATEGIES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "endpoint/endpoint.h"
#include "extraction/indexes.h"

namespace hbold::extraction {

/// Cost accounting for one extraction run (per strategy attempt or total).
struct ExtractionReport {
  std::string strategy_used;
  size_t queries_issued = 0;
  /// Result rows received from the endpoint across all queries — the
  /// network volume a strategy implies (aggregation-pushdown strategies
  /// transfer little; the paginated scan transfers the whole dataset).
  size_t rows_transferred = 0;
  double total_latency_ms = 0;
  /// Names of strategies that were tried and rejected before the one that
  /// succeeded (Unsupported/Timeout fallbacks).
  std::vector<std::string> fallbacks;
};

/// One "pattern strategy" [1]: a way of phrasing the index-extraction
/// queries that matches what a given endpoint implementation can answer.
class ExtractionStrategy {
 public:
  virtual ~ExtractionStrategy() = default;
  virtual const char* name() const = 0;

  /// Runs the full index extraction against `ep`. Returns Unsupported when
  /// the endpoint's dialect cannot answer this strategy's query shapes
  /// (callers then fall back to the next strategy).
  virtual Result<IndexSummary> Extract(endpoint::SparqlEndpoint* ep,
                                       ExtractionReport* report) const = 0;
};

/// Strategy 1 — aggregation pushed to the endpoint: COUNT + GROUP BY do the
/// heavy lifting server-side. Fewest queries, needs a full-featured
/// endpoint (Virtuoso-class).
class DirectAggregationStrategy : public ExtractionStrategy {
 public:
  const char* name() const override { return "direct-aggregation"; }
  Result<IndexSummary> Extract(endpoint::SparqlEndpoint* ep,
                               ExtractionReport* report) const override;
};

/// Strategy 2 — plain COUNT without GROUP BY: enumerate classes with
/// SELECT DISTINCT, then issue one COUNT per class/property. Many more
/// queries; works on endpoints whose aggregation support is partial.
class PerClassCountStrategy : public ExtractionStrategy {
 public:
  const char* name() const override { return "per-class-count"; }
  Result<IndexSummary> Extract(endpoint::SparqlEndpoint* ep,
                               ExtractionReport* report) const override;
};

/// Strategy 3 — no aggregates at all: page through raw triples with
/// LIMIT/OFFSET and count client-side. Slowest, works everywhere, and is
/// the only strategy that tolerates hard result-row caps.
class PaginatedScanStrategy : public ExtractionStrategy {
 public:
  explicit PaginatedScanStrategy(size_t page_size = 10000)
      : page_size_(page_size) {}
  const char* name() const override { return "paginated-scan"; }
  Result<IndexSummary> Extract(endpoint::SparqlEndpoint* ep,
                               ExtractionReport* report) const override;

 private:
  size_t page_size_;
};

}  // namespace hbold::extraction

#endif  // HBOLD_EXTRACTION_STRATEGIES_H_
