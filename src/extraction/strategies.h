#ifndef HBOLD_EXTRACTION_STRATEGIES_H_
#define HBOLD_EXTRACTION_STRATEGIES_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "endpoint/endpoint.h"
#include "extraction/indexes.h"

namespace hbold {
class ThreadPool;
}  // namespace hbold

namespace hbold::extraction {

/// How a strategy is allowed to talk to its endpoint: the shared worker
/// pool the whole daily cycle runs on, plus the endpoint "politeness" cap.
/// Default-constructed context means strictly sequential queries — the
/// pre-batching behavior.
struct ExtractionContext {
  /// Pool shared with the inter-pipeline fan-out; null runs batch jobs on
  /// the calling thread. Strategies submit batch work through
  /// endpoint::QueryBatch, whose caller-participates design makes nested
  /// submission from a pool worker deadlock-free.
  ThreadPool* pool = nullptr;
  /// Max concurrent queries against the endpoint (and the width used for
  /// the deterministic intra-pipeline makespan model). <= 1 disables
  /// batching.
  size_t batch_width = 1;

  /// Prior-summary magnitudes for dirty-class re-extraction (0 = unknown).
  /// Restricted strategies whose dirty-class path is not obviously cheaper
  /// than their full scan (the paginated scan) use these to price the two
  /// and decline (Unsupported) when the full chain would win.
  size_t prior_num_triples = 0;
  size_t prior_num_instances = 0;
  size_t prior_class_count = 0;

  bool batching_enabled() const { return batch_width > 1; }
};

/// Cost accounting for one extraction run (per strategy attempt or total).
///
/// Deterministic-accounting contract: every figure below depends only on
/// the endpoint's content/dialect and the configured batch width — never
/// on the pool size, thread scheduling, or whether batch jobs physically
/// overlapped. Batched strategies charge the *logical* sequential query
/// stream in submission order; when a batch aborts mid-way, outcomes up
/// to and including the first failure (in submission order) are charged
/// and later jobs are not, which is exactly what a sequential run would
/// have issued.
struct ExtractionReport {
  std::string strategy_used;
  size_t queries_issued = 0;
  /// Result rows received from the endpoint across all queries — the
  /// network volume a strategy implies (aggregation-pushdown strategies
  /// transfer little; the paginated scan transfers the whole dataset).
  size_t rows_transferred = 0;
  double total_latency_ms = 0;
  /// Simulated *duration* of the extraction when batched queries overlap:
  /// sequential queries contribute their full latency, every batch its
  /// list-scheduled makespan over `batch_width` lanes. Equals
  /// total_latency_ms when batching is off; the cost figure
  /// total_latency_ms is unchanged by batching.
  double intra_makespan_ms = 0;
  /// Query batches fanned out through the shared pool (0 when batching is
  /// off or the strategy had nothing to batch).
  size_t batches_issued = 0;
  /// Names of strategies that were tried and rejected before the one that
  /// succeeded (Unsupported/Timeout fallbacks).
  std::vector<std::string> fallbacks;
  /// Strategy attempts the endpoint pushed back on with Timeout (work
  /// budget blown) — the throttling signal an adaptive batch-width policy
  /// reacts to. Deterministic per endpoint content/dialect: whether a
  /// strategy times out depends on query results, never on wall clock or
  /// batch width.
  size_t throttle_events = 0;
};

/// One "pattern strategy" [1]: a way of phrasing the index-extraction
/// queries that matches what a given endpoint implementation can answer.
class ExtractionStrategy {
 public:
  virtual ~ExtractionStrategy() = default;
  virtual const char* name() const = 0;

  /// Runs the full index extraction against `ep`, fanning independent
  /// query sets out per `context`. Returns Unsupported when the
  /// endpoint's dialect cannot answer this strategy's query shapes
  /// (callers then fall back to the next strategy).
  virtual Result<IndexSummary> Extract(endpoint::SparqlEndpoint* ep,
                                       const ExtractionContext& context,
                                       ExtractionReport* report) const = 0;

  /// Sequential convenience overload (the pre-batching call shape).
  Result<IndexSummary> Extract(endpoint::SparqlEndpoint* ep,
                               ExtractionReport* report) const {
    return Extract(ep, ExtractionContext{}, report);
  }

  /// Dirty-class re-extraction mode: re-runs this strategy's query shapes
  /// restricted to `class_iris` (skipping the class-enumeration step
  /// entirely), plus the cheap global counts. The returned summary holds
  /// ONLY the requested classes (those re-extracted to zero instances are
  /// dropped) with fresh num_triples/num_instances; callers merge it into
  /// the prior full summary via MergeDirtyClasses. Per-class figures are
  /// value-identical to what a full Extract would produce, so merge ==
  /// full re-extraction. Default: Unsupported (strategies without a cheap
  /// restricted form fall back to the full chain).
  virtual Result<IndexSummary> ExtractClasses(
      endpoint::SparqlEndpoint* ep, const ExtractionContext& context,
      const std::vector<std::string>& class_iris,
      ExtractionReport* report) const {
    (void)context;
    (void)class_iris;
    (void)report;
    return Status::Unsupported(std::string(name()) +
                               " has no dirty-class re-extraction mode for " +
                               ep->url());
  }
};

/// Strategy 1 — aggregation pushed to the endpoint: COUNT + GROUP BY do the
/// heavy lifting server-side. Fewest queries, needs a full-featured
/// endpoint (Virtuoso-class).
class DirectAggregationStrategy : public ExtractionStrategy {
 public:
  using ExtractionStrategy::Extract;
  const char* name() const override { return "direct-aggregation"; }
  Result<IndexSummary> Extract(endpoint::SparqlEndpoint* ep,
                               const ExtractionContext& context,
                               ExtractionReport* report) const override;
  Result<IndexSummary> ExtractClasses(
      endpoint::SparqlEndpoint* ep, const ExtractionContext& context,
      const std::vector<std::string>& class_iris,
      ExtractionReport* report) const override;
};

/// Strategy 2 — plain COUNT without GROUP BY: enumerate classes with
/// SELECT DISTINCT, then issue one COUNT per class/property. Many more
/// queries; works on endpoints whose aggregation support is partial.
class PerClassCountStrategy : public ExtractionStrategy {
 public:
  using ExtractionStrategy::Extract;
  const char* name() const override { return "per-class-count"; }
  Result<IndexSummary> Extract(endpoint::SparqlEndpoint* ep,
                               const ExtractionContext& context,
                               ExtractionReport* report) const override;
  Result<IndexSummary> ExtractClasses(
      endpoint::SparqlEndpoint* ep, const ExtractionContext& context,
      const std::vector<std::string>& class_iris,
      ExtractionReport* report) const override;
};

/// Strategy 3 — no aggregates at all: page through raw triples with
/// LIMIT/OFFSET and count client-side. Slowest, works everywhere, and is
/// the only strategy that tolerates hard result-row caps.
class PaginatedScanStrategy : public ExtractionStrategy {
 public:
  using ExtractionStrategy::Extract;
  explicit PaginatedScanStrategy(size_t page_size = 10000)
      : page_size_(page_size) {}
  const char* name() const override { return "paginated-scan"; }
  Result<IndexSummary> Extract(endpoint::SparqlEndpoint* ep,
                               const ExtractionContext& context,
                               ExtractionReport* report) const override;
  /// Restricted dirty-class form for aggregate-free / row-capped dialects:
  /// one full type scan (for instance counts and the range map), an exact
  /// global triple count via LIMIT 1 OFFSET probes galloping out from the
  /// prior count, then one paged scan per dirty class. Declines
  /// (Unsupported) when the prior-summary hints say the full scan is
  /// cheaper or are absent.
  Result<IndexSummary> ExtractClasses(
      endpoint::SparqlEndpoint* ep, const ExtractionContext& context,
      const std::vector<std::string>& class_iris,
      ExtractionReport* report) const override;

 private:
  size_t page_size_;
};

}  // namespace hbold::extraction

#endif  // HBOLD_EXTRACTION_STRATEGIES_H_
