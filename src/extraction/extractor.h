#ifndef HBOLD_EXTRACTION_EXTRACTOR_H_
#define HBOLD_EXTRACTION_EXTRACTOR_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "endpoint/endpoint.h"
#include "extraction/indexes.h"
#include "extraction/strategies.h"

namespace hbold::extraction {

/// Runs the index extraction against an endpoint by trying pattern
/// strategies in order of decreasing efficiency: direct aggregation, then
/// per-class counting, then paginated scanning. A strategy rejected by the
/// endpoint's dialect (Unsupported) or blown past its work budget (Timeout)
/// falls through to the next; Unavailable aborts immediately (§3.1: retry
/// tomorrow).
class IndexExtractor {
 public:
  IndexExtractor();

  /// Custom strategy chain (owned). Used by benchmarks to force a single
  /// strategy.
  explicit IndexExtractor(
      std::vector<std::unique_ptr<ExtractionStrategy>> strategies);

  /// Extracts the indexes; fills `report` (strategy used, fallbacks,
  /// query count, simulated latency). `context` carries the shared worker
  /// pool and the per-endpoint batch width; every strategy in the chain
  /// fans its independent query sets out through it.
  Result<IndexSummary> Extract(endpoint::SparqlEndpoint* ep,
                               const ExtractionContext& context,
                               ExtractionReport* report) const;

  /// Sequential convenience overload (the pre-batching call shape).
  Result<IndexSummary> Extract(endpoint::SparqlEndpoint* ep,
                               ExtractionReport* report) const {
    return Extract(ep, ExtractionContext{}, report);
  }

  /// Dirty-class re-extraction through the same fallback chain: strategies
  /// without a restricted mode (or whose restricted queries the dialect
  /// rejects) fall through exactly like Extract. Returns the partial
  /// summary holding only the requested classes; callers merge it with
  /// MergeDirtyClasses. When every strategy falls through (e.g. a
  /// no-aggregates endpoint whose only working strategy is the paginated
  /// scan), the error is Unsupported and callers run a full Extract
  /// instead.
  Result<IndexSummary> ExtractClasses(endpoint::SparqlEndpoint* ep,
                                      const ExtractionContext& context,
                                      const std::vector<std::string>& classes,
                                      ExtractionReport* report) const;

 private:
  std::vector<std::unique_ptr<ExtractionStrategy>> strategies_;
};

}  // namespace hbold::extraction

#endif  // HBOLD_EXTRACTION_EXTRACTOR_H_
