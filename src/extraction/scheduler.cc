#include "extraction/scheduler.h"

namespace hbold::extraction {

bool RefreshScheduler::IsDue(const endpoint::EndpointRecord& record,
                             int64_t today) const {
  if (record.last_attempt_day < 0) return true;  // never attempted
  if (record.last_attempt_day >= today) return false;  // already ran today
  if (record.last_attempt_failed) return true;         // daily retry
  if (record.last_success_day < 0) return true;
  return today - record.last_success_day >= refresh_age_days_;
}

std::vector<std::string> RefreshScheduler::DueToday(
    const endpoint::EndpointRegistry& registry, int64_t today) const {
  std::vector<std::string> due;
  for (const endpoint::EndpointRecord* r : registry.All()) {
    if (IsDue(*r, today)) due.push_back(r->url);
  }
  return due;
}

std::vector<std::string> RefreshScheduler::DueToday(
    const std::vector<endpoint::EndpointRecord>& snapshot,
    int64_t today) const {
  std::vector<std::string> due;
  for (const endpoint::EndpointRecord& r : snapshot) {
    if (IsDue(r, today)) due.push_back(r.url);
  }
  return due;
}

void RefreshScheduler::RecordAttempt(endpoint::EndpointRecord* record,
                                     int64_t today, bool success) {
  record->last_attempt_day = today;
  record->last_attempt_failed = !success;
  if (success) {
    record->last_success_day = today;
    record->indexed = true;
  }
}

}  // namespace hbold::extraction
