#include "extraction/scheduler.h"

namespace hbold::extraction {

bool RefreshScheduler::IsDue(const endpoint::EndpointRecord& record,
                             int64_t today) const {
  // Endpoints registered mid-cycle carry an eligibility horizon: they are
  // invisible to the scheduler until that day, which makes the snapshot
  // and live paths agree no matter when during a cycle the record landed.
  if (record.first_eligible_day >= 0 && today < record.first_eligible_day) {
    return false;
  }
  if (record.last_attempt_day < 0) return true;  // never attempted
  if (record.last_attempt_day >= today) return false;  // already ran today
  if (record.last_attempt_failed) return true;         // daily retry
  if (record.last_success_day < 0) return true;
  return today - record.last_success_day >= refresh_age_days_;
}

std::vector<std::string> RefreshScheduler::DueToday(
    const endpoint::EndpointRegistry& registry, int64_t today) const {
  // Delegate to the snapshot form so both overloads evaluate one
  // point-in-time view of the registry. Before this, the live path read
  // records one by one under a shared lock while writers could interleave
  // — two calls in the same cycle could disagree about a record added
  // mid-iteration.
  return DueToday(registry.Snapshot(), today);
}

std::vector<std::string> RefreshScheduler::DueToday(
    const std::vector<endpoint::EndpointRecord>& snapshot,
    int64_t today) const {
  std::vector<std::string> due;
  for (const endpoint::EndpointRecord& r : snapshot) {
    if (IsDue(r, today)) due.push_back(r.url);
  }
  return due;
}

void RefreshScheduler::RecordAttempt(endpoint::EndpointRecord* record,
                                     int64_t today, bool success) {
  record->last_attempt_day = today;
  record->last_attempt_failed = !success;
  if (success) {
    record->last_success_day = today;
    record->indexed = true;
  }
}

}  // namespace hbold::extraction
