#include "extraction/extractor.h"

#include "common/logging.h"

namespace hbold::extraction {

IndexExtractor::IndexExtractor() {
  strategies_.push_back(std::make_unique<DirectAggregationStrategy>());
  strategies_.push_back(std::make_unique<PerClassCountStrategy>());
  strategies_.push_back(std::make_unique<PaginatedScanStrategy>());
}

IndexExtractor::IndexExtractor(
    std::vector<std::unique_ptr<ExtractionStrategy>> strategies)
    : strategies_(std::move(strategies)) {}

Result<IndexSummary> IndexExtractor::Extract(endpoint::SparqlEndpoint* ep,
                                             const ExtractionContext& context,
                                             ExtractionReport* report) const {
  ExtractionReport local;
  ExtractionReport* r = report != nullptr ? report : &local;
  Status last_error = Status::Internal("no extraction strategies configured");
  for (const auto& strategy : strategies_) {
    Result<IndexSummary> result = strategy->Extract(ep, context, r);
    if (result.ok()) return result;
    last_error = result.status();
    if (last_error.IsUnsupported() || last_error.IsTimeout()) {
      HBOLD_LOG(kDebug) << "strategy " << strategy->name() << " on "
                        << ep->url() << " fell back: "
                        << last_error.ToString();
      r->fallbacks.push_back(strategy->name());
      // Timeouts are the endpoint refusing the *work*, not the shape —
      // count them separately as throttling pressure.
      if (last_error.IsTimeout()) ++r->throttle_events;
      continue;  // try the next, cheaper-assumption strategy
    }
    return last_error;  // Unavailable / parse / internal: abort
  }
  return last_error;
}

Result<IndexSummary> IndexExtractor::ExtractClasses(
    endpoint::SparqlEndpoint* ep, const ExtractionContext& context,
    const std::vector<std::string>& classes, ExtractionReport* report) const {
  ExtractionReport local;
  ExtractionReport* r = report != nullptr ? report : &local;
  Status last_error = Status::Internal("no extraction strategies configured");
  for (const auto& strategy : strategies_) {
    Result<IndexSummary> result =
        strategy->ExtractClasses(ep, context, classes, r);
    if (result.ok()) return result;
    last_error = result.status();
    if (last_error.IsUnsupported() || last_error.IsTimeout()) {
      HBOLD_LOG(kDebug) << "restricted strategy " << strategy->name() << " on "
                        << ep->url() << " fell back: "
                        << last_error.ToString();
      r->fallbacks.push_back(strategy->name());
      if (last_error.IsTimeout()) ++r->throttle_events;
      continue;
    }
    return last_error;  // Unavailable / parse / internal: abort
  }
  return last_error;
}

}  // namespace hbold::extraction
