#include "extraction/strategies.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/thread_pool.h"
#include "endpoint/query_batch.h"
#include "rdf/vocab.h"

namespace hbold::extraction {

namespace {

using endpoint::QueryBatch;
using endpoint::QueryBatchOptions;
using endpoint::QueryOutcome;
using endpoint::SparqlEndpoint;
using sparql::ResultTable;

/// Issues one query sequentially, accumulating report cost. A sequential
/// query contributes its full latency to the intra-pipeline makespan —
/// nothing overlaps it.
Result<QueryOutcome> Run(SparqlEndpoint* ep, const std::string& q,
                         ExtractionReport* report) {
  auto outcome = ep->Query(q);
  if (report != nullptr) {
    ++report->queries_issued;
    if (outcome.ok()) {
      report->total_latency_ms += outcome->latency_ms;
      report->intra_makespan_ms += outcome->latency_ms;
      report->rows_transferred += outcome->table.num_rows();
    }
  }
  return outcome;
}

/// Extracts the single COUNT cell of an aggregate query result.
Result<int64_t> RunCount(SparqlEndpoint* ep, const std::string& q,
                         ExtractionReport* report) {
  HBOLD_ASSIGN_OR_RETURN(QueryOutcome outcome, Run(ep, q, report));
  std::optional<int64_t> n = outcome.table.ScalarInt("n");
  if (!n.has_value()) {
    return Status::Internal("count query returned no scalar: " + q);
  }
  return *n;
}

/// The COUNT cell of an already-fetched batch outcome.
Result<int64_t> ScalarOf(const QueryOutcome& outcome) {
  std::optional<int64_t> n = outcome.table.ScalarInt("n");
  if (!n.has_value()) {
    return Status::Internal("count query returned no scalar");
  }
  return *n;
}

/// Runs `queries` against `ep` as one fan-out batch (with a null pool —
/// i.e. strictly on this thread — when the context disables batching)
/// and charges `report` per the deterministic-accounting contract in
/// strategies.h: outcomes are charged in submission order up to and
/// including the first failure OR first truncated outcome (both abort
/// the batch — every RunBatch caller treats truncation as Unsupported,
/// so later queries would be wasted endpoint work). Returned outcomes
/// are in submission order; callers must treat the first non-ok or
/// truncated entry as the abort point and ignore everything after it.
/// The batch contributes its width-scheduled makespan (not its latency
/// sum) to intra_makespan_ms.
std::vector<Result<QueryOutcome>> RunBatch(SparqlEndpoint* ep,
                                           const std::vector<std::string>& qs,
                                           const ExtractionContext& ctx,
                                           ExtractionReport* report) {
  std::vector<Result<QueryOutcome>> outcomes;
  if (qs.empty()) return outcomes;
  // One implementation for both modes: QueryBatch with a null pool is
  // exactly the sequential walk (caller-only claim loop), so the abort
  // rule cannot drift between batching on and off.
  const bool batched = ctx.batching_enabled() && qs.size() > 1;
  QueryBatchOptions options;
  options.pool = batched ? ctx.pool : nullptr;
  options.per_endpoint_limit = batched ? ctx.batch_width : 1;
  options.abort_on_truncation = true;
  outcomes = QueryBatch::RunOnOne(ep, qs, options);
  if (report != nullptr) {
    if (batched) ++report->batches_issued;
    // With batching off, intra makespan accrues query by query — the
    // exact addition sequence total_latency_ms sees — so the two stay
    // bit-identical, not merely close.
    WorkerLatencyLedger ledger(ctx.batch_width);
    for (const Result<QueryOutcome>& outcome : outcomes) {
      ++report->queries_issued;
      if (!outcome.ok()) break;  // failure charged as issued, no latency
      report->total_latency_ms += outcome->latency_ms;
      report->rows_transferred += outcome->table.num_rows();
      if (batched) {
        ledger.Assign(outcome->latency_ms);
      } else {
        report->intra_makespan_ms += outcome->latency_ms;
      }
      if (outcome->truncated) break;  // abort point: charged, then stop
    }
    if (batched) report->intra_makespan_ms += ledger.MakespanMs();
  }
  return outcomes;
}

std::string IriRef(const std::string& iri) { return "<" + iri + ">"; }

/// Canonical ordering shared by every strategy and the delta merge.
void Canonicalize(IndexSummary* s) { CanonicalizeIndexSummary(s); }

/// Parses one class's (props, ranges) outcome pair from the direct-
/// aggregation per-class batch into `cls` — shared by the full and the
/// dirty-class-restricted paths so their per-class figures cannot drift.
Status ParseClassPropsRanges(ClassInfo* cls,
                             Result<QueryOutcome>& props_result,
                             Result<QueryOutcome>& ranges_result) {
  if (!props_result.ok()) return props_result.status();
  QueryOutcome& props = *props_result;
  if (props.truncated) {
    return Status::Unsupported("property list truncated");
  }
  for (size_t i = 0; i < props.table.num_rows(); ++i) {
    auto p = props.table.Cell(i, "p");
    auto n = props.table.Cell(i, "n");
    if (!p.has_value() || !n.has_value()) continue;
    if (p->lexical() == rdf::vocab::kRdfType) continue;
    PropertyInfo info;
    info.iri = p->lexical();
    info.count =
        static_cast<size_t>(std::strtoll(n->lexical().c_str(), nullptr, 10));
    cls->properties.push_back(std::move(info));
  }
  if (!ranges_result.ok()) return ranges_result.status();
  QueryOutcome& ranges = *ranges_result;
  if (ranges.truncated) {
    return Status::Unsupported("range list truncated");
  }
  for (size_t i = 0; i < ranges.table.num_rows(); ++i) {
    auto p = ranges.table.Cell(i, "p");
    auto rc = ranges.table.Cell(i, "rc");
    auto n = ranges.table.Cell(i, "n");
    if (!p.has_value() || !rc.has_value() || !n.has_value()) continue;
    if (p->lexical() == rdf::vocab::kRdfType) continue;
    for (PropertyInfo& info : cls->properties) {
      if (info.iri == p->lexical()) {
        info.is_object_property = true;
        info.range_classes[rc->lexical()] = static_cast<size_t>(
            std::strtoll(n->lexical().c_str(), nullptr, 10));
        break;
      }
    }
  }
  return Status::OK();
}

/// The two direct-aggregation per-class query texts (props, ranges).
std::string DirectPropsQuery(const std::string& cls_iri) {
  return "SELECT ?p (COUNT(?o) AS ?n) WHERE { ?s a " + IriRef(cls_iri) +
         " . ?s ?p ?o . } GROUP BY ?p";
}
std::string DirectRangesQuery(const std::string& cls_iri) {
  return "SELECT ?p ?rc (COUNT(?o) AS ?n) WHERE { ?s a " + IriRef(cls_iri) +
         " . ?s ?p ?o . ?o a ?rc . } GROUP BY ?p ?rc";
}

/// The global counts every strategy (full or restricted) re-queries.
Status RunGlobalCounts(SparqlEndpoint* ep, ExtractionReport* report,
                       IndexSummary* s) {
  HBOLD_ASSIGN_OR_RETURN(
      int64_t triples,
      RunCount(ep, "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }", report));
  s->num_triples = static_cast<size_t>(triples);
  HBOLD_ASSIGN_OR_RETURN(
      int64_t instances,
      RunCount(ep, "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a ?c . }",
               report));
  s->num_instances = static_cast<size_t>(instances);
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------------------------
// Strategy 1: direct aggregation.
// ------------------------------------------------------------------------

Result<IndexSummary> DirectAggregationStrategy::Extract(
    SparqlEndpoint* ep, const ExtractionContext& context,
    ExtractionReport* report) const {
  IndexSummary s;
  s.endpoint_url = ep->url();
  HBOLD_RETURN_NOT_OK(RunGlobalCounts(ep, report, &s));

  // Class list with per-class instance counts in one grouped query.
  HBOLD_ASSIGN_OR_RETURN(
      QueryOutcome classes,
      Run(ep,
          "SELECT ?c (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a ?c . } "
          "GROUP BY ?c",
          report));
  if (classes.truncated) {
    return Status::Unsupported("class list truncated by endpoint row cap");
  }
  for (size_t i = 0; i < classes.table.num_rows(); ++i) {
    auto c = classes.table.Cell(i, "c");
    auto n = classes.table.Cell(i, "n");
    if (!c.has_value() || !n.has_value()) continue;
    ClassInfo info;
    info.iri = c->lexical();
    info.instance_count =
        static_cast<size_t>(std::strtoll(n->lexical().c_str(), nullptr, 10));
    s.classes.push_back(std::move(info));
  }

  // Per class: property usage counts and object-property ranges. The 2C
  // queries are independent given the class list, so they fan out as one
  // batch; outcomes are processed in submission order (props_i, ranges_i
  // per class) so truncation and failures surface deterministically.
  std::vector<std::string> class_queries;
  class_queries.reserve(s.classes.size() * 2);
  for (const ClassInfo& cls : s.classes) {
    class_queries.push_back(DirectPropsQuery(cls.iri));
    class_queries.push_back(DirectRangesQuery(cls.iri));
  }
  std::vector<Result<QueryOutcome>> outcomes =
      RunBatch(ep, class_queries, context, report);

  for (size_t ci = 0; ci < s.classes.size(); ++ci) {
    HBOLD_RETURN_NOT_OK(ParseClassPropsRanges(
        &s.classes[ci], outcomes[ci * 2], outcomes[ci * 2 + 1]));
  }

  Canonicalize(&s);
  if (report != nullptr) report->strategy_used = name();
  return s;
}

Result<IndexSummary> DirectAggregationStrategy::ExtractClasses(
    SparqlEndpoint* ep, const ExtractionContext& context,
    const std::vector<std::string>& class_iris,
    ExtractionReport* report) const {
  IndexSummary s;
  s.endpoint_url = ep->url();
  HBOLD_RETURN_NOT_OK(RunGlobalCounts(ep, report, &s));

  // 3 queries per dirty class — fresh instance count (the grouped class
  // enumeration the full path pays for is exactly what this mode skips),
  // then the same props/ranges shapes as the full path.
  std::vector<std::string> queries;
  queries.reserve(class_iris.size() * 3);
  for (const std::string& iri : class_iris) {
    queries.push_back("SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a " +
                      IriRef(iri) + " . }");
    queries.push_back(DirectPropsQuery(iri));
    queries.push_back(DirectRangesQuery(iri));
  }
  std::vector<Result<QueryOutcome>> outcomes =
      RunBatch(ep, queries, context, report);

  for (size_t ci = 0; ci < class_iris.size(); ++ci) {
    Result<QueryOutcome>& count_result = outcomes[ci * 3];
    if (!count_result.ok()) return count_result.status();
    HBOLD_ASSIGN_OR_RETURN(int64_t count, ScalarOf(*count_result));
    ClassInfo cls;
    cls.iri = class_iris[ci];
    cls.instance_count = static_cast<size_t>(count);
    HBOLD_RETURN_NOT_OK(ParseClassPropsRanges(&cls, outcomes[ci * 3 + 1],
                                              outcomes[ci * 3 + 2]));
    // A dirty class re-extracted to zero instances no longer exists on the
    // endpoint; the merge drops it from the prior summary.
    if (cls.instance_count > 0) s.classes.push_back(std::move(cls));
  }

  Canonicalize(&s);
  if (report != nullptr) report->strategy_used = name();
  return s;
}

// ------------------------------------------------------------------------
// Strategy 2: per-class COUNT, no GROUP BY.
// ------------------------------------------------------------------------

namespace {

/// The three per-class query waves of the per-class-count strategy, run
/// over whatever class list `s` already holds (the full path enumerates
/// all classes first; the dirty-class path seeds only the dirty ones).
/// Fills instance counts, property lists, usage counts, and ranges.
Status RunPerClassWaves(SparqlEndpoint* ep, const ExtractionContext& context,
                        IndexSummary* sp, ExtractionReport* report) {
  IndexSummary& s = *sp;
  // Wave 1 — per class: instance count + property enumeration. Both
  // depend only on the class list, so the 2C queries are one batch.
  std::vector<std::string> wave1;
  wave1.reserve(s.classes.size() * 2);
  for (const ClassInfo& cls : s.classes) {
    wave1.push_back("SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a " +
                    IriRef(cls.iri) + " . }");
    wave1.push_back("SELECT DISTINCT ?p WHERE { ?s a " + IriRef(cls.iri) +
                    " . ?s ?p ?o . }");
  }
  std::vector<Result<QueryOutcome>> wave1_out =
      RunBatch(ep, wave1, context, report);
  for (size_t ci = 0; ci < s.classes.size(); ++ci) {
    ClassInfo& cls = s.classes[ci];
    Result<QueryOutcome>& count_result = wave1_out[ci * 2];
    if (!count_result.ok()) return count_result.status();
    HBOLD_ASSIGN_OR_RETURN(int64_t count, ScalarOf(*count_result));
    cls.instance_count = static_cast<size_t>(count);

    Result<QueryOutcome>& props_result = wave1_out[ci * 2 + 1];
    if (!props_result.ok()) return props_result.status();
    if (props_result->truncated) {
      return Status::Unsupported("property enumeration truncated");
    }
    for (size_t pi = 0; pi < props_result->table.num_rows(); ++pi) {
      auto p = props_result->table.Cell(pi, "p");
      if (!p.has_value() || p->lexical() == rdf::vocab::kRdfType) continue;
      PropertyInfo info;
      info.iri = p->lexical();
      cls.properties.push_back(std::move(info));
    }
  }

  // Wave 2 — per (class, property): usage count + object-range
  // enumeration.
  std::vector<std::string> wave2;
  std::vector<std::pair<size_t, size_t>> wave2_at;  // (class, property)
  for (size_t ci = 0; ci < s.classes.size(); ++ci) {
    const ClassInfo& cls = s.classes[ci];
    for (size_t pi = 0; pi < cls.properties.size(); ++pi) {
      const std::string& prop = cls.properties[pi].iri;
      wave2.push_back("SELECT (COUNT(?o) AS ?n) WHERE { ?s a " +
                      IriRef(cls.iri) + " . ?s " + IriRef(prop) + " ?o . }");
      wave2.push_back("SELECT DISTINCT ?rc WHERE { ?s a " + IriRef(cls.iri) +
                      " . ?s " + IriRef(prop) + " ?o . ?o a ?rc . }");
      wave2_at.emplace_back(ci, pi);
    }
  }
  std::vector<Result<QueryOutcome>> wave2_out =
      RunBatch(ep, wave2, context, report);

  // Wave 3 — per (class, property, range class): range usage count.
  std::vector<std::string> wave3;
  std::vector<std::pair<std::pair<size_t, size_t>, std::string>> wave3_at;
  for (size_t wi = 0; wi < wave2_at.size(); ++wi) {
    auto [ci, pi] = wave2_at[wi];
    PropertyInfo& info = s.classes[ci].properties[pi];

    Result<QueryOutcome>& usage_result = wave2_out[wi * 2];
    if (!usage_result.ok()) return usage_result.status();
    HBOLD_ASSIGN_OR_RETURN(int64_t usage, ScalarOf(*usage_result));
    info.count = static_cast<size_t>(usage);

    Result<QueryOutcome>& ranges_result = wave2_out[wi * 2 + 1];
    if (!ranges_result.ok()) return ranges_result.status();
    if (ranges_result->truncated) {
      return Status::Unsupported("range enumeration truncated");
    }
    for (size_t ri = 0; ri < ranges_result->table.num_rows(); ++ri) {
      auto rc = ranges_result->table.Cell(ri, "rc");
      if (!rc.has_value()) continue;
      wave3.push_back("SELECT (COUNT(?o) AS ?n) WHERE { ?s a " +
                      IriRef(s.classes[ci].iri) + " . ?s " +
                      IriRef(info.iri) + " ?o . ?o a " +
                      IriRef(rc->lexical()) + " . }");
      wave3_at.emplace_back(std::make_pair(ci, pi), rc->lexical());
    }
  }
  std::vector<Result<QueryOutcome>> wave3_out =
      RunBatch(ep, wave3, context, report);
  for (size_t wi = 0; wi < wave3_at.size(); ++wi) {
    auto& [at, range_class] = wave3_at[wi];
    Result<QueryOutcome>& rn_result = wave3_out[wi];
    if (!rn_result.ok()) return rn_result.status();
    HBOLD_ASSIGN_OR_RETURN(int64_t rn, ScalarOf(*rn_result));
    PropertyInfo& info = s.classes[at.first].properties[at.second];
    info.is_object_property = true;
    info.range_classes[range_class] = static_cast<size_t>(rn);
  }
  return Status::OK();
}

}  // namespace

Result<IndexSummary> PerClassCountStrategy::Extract(
    SparqlEndpoint* ep, const ExtractionContext& context,
    ExtractionReport* report) const {
  IndexSummary s;
  s.endpoint_url = ep->url();
  HBOLD_RETURN_NOT_OK(RunGlobalCounts(ep, report, &s));

  HBOLD_ASSIGN_OR_RETURN(
      QueryOutcome classes,
      Run(ep, "SELECT DISTINCT ?c WHERE { ?s a ?c . }", report));
  if (classes.truncated) {
    return Status::Unsupported("class enumeration truncated");
  }
  for (size_t i = 0; i < classes.table.num_rows(); ++i) {
    auto c = classes.table.Cell(i, "c");
    if (!c.has_value()) continue;
    ClassInfo cls;
    cls.iri = c->lexical();
    s.classes.push_back(std::move(cls));
  }

  HBOLD_RETURN_NOT_OK(RunPerClassWaves(ep, context, &s, report));

  Canonicalize(&s);
  if (report != nullptr) report->strategy_used = name();
  return s;
}

Result<IndexSummary> PerClassCountStrategy::ExtractClasses(
    SparqlEndpoint* ep, const ExtractionContext& context,
    const std::vector<std::string>& class_iris,
    ExtractionReport* report) const {
  IndexSummary s;
  s.endpoint_url = ep->url();
  HBOLD_RETURN_NOT_OK(RunGlobalCounts(ep, report, &s));

  // Seed the class list with the dirty classes (skipping the class
  // enumeration query) and run the same three waves the full path runs.
  for (const std::string& iri : class_iris) {
    ClassInfo cls;
    cls.iri = iri;
    s.classes.push_back(std::move(cls));
  }
  HBOLD_RETURN_NOT_OK(RunPerClassWaves(ep, context, &s, report));

  // Dirty classes re-extracted to zero instances no longer exist; the
  // merge drops them from the prior summary.
  s.classes.erase(std::remove_if(s.classes.begin(), s.classes.end(),
                                 [](const ClassInfo& c) {
                                   return c.instance_count == 0;
                                 }),
                  s.classes.end());

  Canonicalize(&s);
  if (report != nullptr) report->strategy_used = name();
  return s;
}

// ------------------------------------------------------------------------
// Strategy 3: paginated scan, all counting client-side.
// ------------------------------------------------------------------------

namespace {

/// Pages through `base_query LIMIT page_size OFFSET <o>`, handing every
/// page's table to `page_fn`. With batching on, up to batch_width page
/// requests fly speculatively; the logical page stream (and everything
/// charged to `report`) is identical to the sequential walk — speculative
/// pages past the terminal page are discarded uncharged, and a truncated
/// page (row-capped endpoint, offsets no longer predictable) drops the
/// scan back to sequential paging for good.
template <typename PageFn>
Status ScanPages(SparqlEndpoint* ep, const std::string& base_query,
                 size_t page_size, const ExtractionContext& ctx,
                 ExtractionReport* report, PageFn page_fn) {
  auto page_query = [&](size_t offset) {
    return base_query + " LIMIT " + std::to_string(page_size) + " OFFSET " +
           std::to_string(offset);
  };

  size_t offset = 0;
  bool sequential = !ctx.batching_enabled();
  while (true) {
    if (sequential) {
      HBOLD_ASSIGN_OR_RETURN(QueryOutcome page,
                             Run(ep, page_query(offset), report));
      page_fn(page.table);
      // A row-capped endpoint may return fewer rows than LIMIT asked
      // for; advance by what actually arrived and keep paging.
      if (page.truncated) {
        offset += page.table.num_rows();
        continue;
      }
      if (page.table.num_rows() < page_size) return Status::OK();
      offset += page_size;
      continue;
    }

    // Speculative wave: batch_width pages at the offsets the sequential
    // walk would visit if every page comes back full.
    std::vector<std::string> wave;
    wave.reserve(ctx.batch_width);
    for (size_t k = 0; k < ctx.batch_width; ++k) {
      wave.push_back(page_query(offset + k * page_size));
    }
    QueryBatchOptions options;
    options.pool = ctx.pool;
    options.per_endpoint_limit = ctx.batch_width;
    // A truncated page ends the wave's usefulness (offsets past it are
    // wrong); stop launching speculative pages once one comes back so.
    options.abort_on_truncation = true;
    std::vector<Result<QueryOutcome>> pages =
        QueryBatch::RunOnOne(ep, wave, options);
    if (report != nullptr) ++report->batches_issued;

    // Consume in order; charge only the pages the sequential walk would
    // have issued. The wave overlapped, so it adds the max (not the sum)
    // of the used pages' latencies to the intra-pipeline makespan.
    double wave_makespan_ms = 0;
    auto charge = [&](const QueryOutcome& page) {
      if (report == nullptr) return;
      ++report->queries_issued;
      report->total_latency_ms += page.latency_ms;
      report->rows_transferred += page.table.num_rows();
      wave_makespan_ms = std::max(wave_makespan_ms, page.latency_ms);
    };
    auto wave_done = [&] {
      if (report != nullptr) report->intra_makespan_ms += wave_makespan_ms;
    };
    for (size_t k = 0; k < pages.size(); ++k) {
      Result<QueryOutcome>& page_result = pages[k];
      if (!page_result.ok()) {
        // The sequential walk reached (and was charged for) this page.
        if (report != nullptr) ++report->queries_issued;
        wave_done();
        return page_result.status();
      }
      QueryOutcome& page = *page_result;
      charge(page);
      page_fn(page.table);
      if (page.truncated) {
        offset += k * page_size + page.table.num_rows();
        sequential = true;  // offsets no longer predictable
        break;
      }
      if (page.table.num_rows() < page_size) {
        wave_done();
        return Status::OK();  // terminal page; rest of wave discarded
      }
    }
    wave_done();
    if (!sequential) offset += ctx.batch_width * page_size;
  }
}

}  // namespace

Result<IndexSummary> PaginatedScanStrategy::Extract(
    SparqlEndpoint* ep, const ExtractionContext& context,
    ExtractionReport* report) const {
  IndexSummary s;
  s.endpoint_url = ep->url();

  // Pass 1: page through typed subjects to build the instance->classes map.
  std::map<std::string, std::set<std::string>> types_of;  // subject -> classes
  HBOLD_RETURN_NOT_OK(ScanPages(
      ep, "SELECT ?s ?c WHERE { ?s a ?c . }", page_size_, context, report,
      [&](const ResultTable& table) {
        for (size_t i = 0; i < table.num_rows(); ++i) {
          auto subj = table.Cell(i, "s");
          auto cls = table.Cell(i, "c");
          if (subj.has_value() && cls.has_value()) {
            types_of[subj->ToNTriples()].insert(cls->lexical());
          }
        }
      }));

  s.num_instances = types_of.size();
  std::map<std::string, ClassInfo> classes;
  for (const auto& [subj, cls_set] : types_of) {
    for (const std::string& c : cls_set) {
      ClassInfo& info = classes[c];
      info.iri = c;
      ++info.instance_count;
    }
  }

  // Pass 2: page through all triples; attribute properties to the classes
  // of their subject, detect object properties via the type map.
  std::map<std::string, std::map<std::string, PropertyInfo>> props_by_class;
  size_t total_triples = 0;
  HBOLD_RETURN_NOT_OK(ScanPages(
      ep, "SELECT ?s ?p ?o WHERE { ?s ?p ?o . }", page_size_, context, report,
      [&](const ResultTable& table) {
        total_triples += table.num_rows();
        for (size_t i = 0; i < table.num_rows(); ++i) {
          auto subj = table.Cell(i, "s");
          auto pred = table.Cell(i, "p");
          auto obj = table.Cell(i, "o");
          if (!subj.has_value() || !pred.has_value() || !obj.has_value()) {
            continue;
          }
          if (pred->lexical() == rdf::vocab::kRdfType) continue;
          auto it = types_of.find(subj->ToNTriples());
          if (it == types_of.end()) continue;  // untyped subject
          auto obj_types = types_of.find(obj->ToNTriples());
          for (const std::string& cls : it->second) {
            PropertyInfo& info = props_by_class[cls][pred->lexical()];
            info.iri = pred->lexical();
            ++info.count;
            if (obj_types != types_of.end()) {
              info.is_object_property = true;
              for (const std::string& range : obj_types->second) {
                ++info.range_classes[range];
              }
            }
          }
        }
      }));

  s.num_triples = total_triples;
  for (auto& [iri, info] : classes) {
    auto props = props_by_class.find(iri);
    if (props != props_by_class.end()) {
      for (auto& [piri, pinfo] : props->second) {
        info.properties.push_back(pinfo);
      }
    }
    s.classes.push_back(std::move(info));
  }

  Canonicalize(&s);
  if (report != nullptr) report->strategy_used = name();
  return s;
}

Result<IndexSummary> PaginatedScanStrategy::ExtractClasses(
    SparqlEndpoint* ep, const ExtractionContext& context,
    const std::vector<std::string>& class_iris,
    ExtractionReport* report) const {
  // Price the restricted path against the full scan before issuing a
  // single query, using last cycle's magnitudes. Both pay the type scan;
  // the full scan then pages through ALL triples, while the restricted
  // path pays ~2*log2(T) one-row offset probes for the exact global
  // triple count plus one paged scan per dirty class. On small stores
  // (or without hints) the full scan wins and this mode declines, so
  // dialects that always ran the full chain keep doing exactly that.
  const size_t page = std::max<size_t>(1, page_size_);
  if (context.prior_num_triples == 0 || context.prior_class_count == 0) {
    return Status::Unsupported(
        "paginated dirty-class scan needs prior-summary magnitudes for " +
        ep->url());
  }
  auto pages_of = [&](size_t rows) { return rows / page + 1; };
  size_t probe_queries = 4;  // bracket overhead beyond the log2 walks
  for (size_t t = context.prior_num_triples; t > 0; t >>= 1) {
    probe_queries += 2;
  }
  const size_t avg_class_rows =
      context.prior_num_triples / context.prior_class_count;
  const size_t restricted_pages =
      probe_queries + class_iris.size() * pages_of(avg_class_rows);
  if (restricted_pages >= pages_of(context.prior_num_triples)) {
    return Status::Unsupported(
        "paginated dirty-class scan would cost more than the full scan on " +
        ep->url());
  }

  IndexSummary s;
  s.endpoint_url = ep->url();

  // Pass 1: the same full type scan the unrestricted path runs — it is
  // what prices instance counts and object-property ranges, and the
  // restricted path cannot do without either.
  std::map<std::string, std::set<std::string>> types_of;  // subject -> classes
  HBOLD_RETURN_NOT_OK(ScanPages(
      ep, "SELECT ?s ?c WHERE { ?s a ?c . }", page_size_, context, report,
      [&](const ResultTable& table) {
        for (size_t i = 0; i < table.num_rows(); ++i) {
          auto subj = table.Cell(i, "s");
          auto cls = table.Cell(i, "c");
          if (subj.has_value() && cls.has_value()) {
            types_of[subj->ToNTriples()].insert(cls->lexical());
          }
        }
      }));
  s.num_instances = types_of.size();
  std::map<std::string, size_t> instance_counts;
  for (const auto& [subj, cls_set] : types_of) {
    for (const std::string& c : cls_set) ++instance_counts[c];
  }

  // Exact global triple count WITHOUT scanning every triple: LIMIT 1
  // OFFSET probes answer "are there more than m rows?", so galloping out
  // from the prior count and binary-searching the bracket finds the exact
  // total in ~2*log2(|T - prior|) one-row queries. Exactness matters: the
  // merge takes its globals from this partial summary.
  auto probe_beyond = [&](size_t m) -> Result<bool> {
    HBOLD_ASSIGN_OR_RETURN(
        QueryOutcome o,
        Run(ep,
            "SELECT ?s ?p ?o WHERE { ?s ?p ?o . } LIMIT 1 OFFSET " +
                std::to_string(m),
            report));
    return o.table.num_rows() > 0;  // true iff total > m
  };
  size_t total_triples = 0;
  {
    size_t lo = 0;  // once bracketed: total > lo
    size_t hi = 0;  // once bracketed: total <= hi
    bool bracketed = false;
    const size_t hint = context.prior_num_triples;
    HBOLD_ASSIGN_OR_RETURN(bool above_hint, probe_beyond(hint));
    if (above_hint) {
      lo = hint;
      size_t step = 1;
      size_t next = hint + 1;
      while (true) {
        HBOLD_ASSIGN_OR_RETURN(bool above, probe_beyond(next));
        if (!above) {
          hi = next;
          bracketed = true;
          break;
        }
        lo = next;
        next += step;
        step *= 2;
      }
    } else if (hint > 0) {
      hi = hint;
      size_t step = 1;
      while (true) {
        const size_t next = hi > step ? hi - step : 0;
        HBOLD_ASSIGN_OR_RETURN(bool above, probe_beyond(next));
        if (above) {
          lo = next;
          bracketed = true;
          break;
        }
        hi = next;
        if (next == 0) break;  // empty store
        step *= 2;
      }
    }
    if (bracketed) {
      while (hi - lo > 1) {
        const size_t mid = lo + (hi - lo) / 2;
        HBOLD_ASSIGN_OR_RETURN(bool above, probe_beyond(mid));
        if (above) {
          lo = mid;
        } else {
          hi = mid;
        }
      }
      total_triples = hi;
    }
  }
  s.num_triples = total_triples;

  // One paged scan per dirty class, restricted server-side to that class's
  // subjects. Each non-type triple of a member arrives exactly once, so
  // the client-side counting below is value-identical to what the full
  // scan's pass 2 attributes to this class. Classes the type scan saw no
  // instances of are skipped outright (and dropped from the summary —
  // they no longer exist on the endpoint).
  for (const std::string& cls_iri : class_iris) {
    if (instance_counts.find(cls_iri) == instance_counts.end()) continue;
    std::map<std::string, PropertyInfo> props;
    HBOLD_RETURN_NOT_OK(ScanPages(
        ep,
        "SELECT ?s ?p ?o WHERE { ?s a " + IriRef(cls_iri) +
            " . ?s ?p ?o . }",
        page_size_, context, report, [&](const ResultTable& table) {
          for (size_t i = 0; i < table.num_rows(); ++i) {
            auto pred = table.Cell(i, "p");
            auto obj = table.Cell(i, "o");
            if (!pred.has_value() || !obj.has_value()) continue;
            if (pred->lexical() == rdf::vocab::kRdfType) continue;
            PropertyInfo& info = props[pred->lexical()];
            info.iri = pred->lexical();
            ++info.count;
            auto obj_types = types_of.find(obj->ToNTriples());
            if (obj_types != types_of.end()) {
              info.is_object_property = true;
              for (const std::string& range : obj_types->second) {
                ++info.range_classes[range];
              }
            }
          }
        }));
    ClassInfo cls;
    cls.iri = cls_iri;
    cls.instance_count = instance_counts[cls_iri];
    for (auto& [piri, pinfo] : props) cls.properties.push_back(pinfo);
    s.classes.push_back(std::move(cls));
  }

  Canonicalize(&s);
  if (report != nullptr) report->strategy_used = name();
  return s;
}

}  // namespace hbold::extraction
