#include "extraction/strategies.h"

#include <algorithm>
#include <map>
#include <set>

#include "rdf/vocab.h"

namespace hbold::extraction {

namespace {

using endpoint::QueryOutcome;
using endpoint::SparqlEndpoint;
using sparql::ResultTable;

/// Issues one query, accumulating report cost.
Result<QueryOutcome> Run(SparqlEndpoint* ep, const std::string& q,
                         ExtractionReport* report) {
  auto outcome = ep->Query(q);
  if (report != nullptr) {
    ++report->queries_issued;
    if (outcome.ok()) {
      report->total_latency_ms += outcome->latency_ms;
      report->rows_transferred += outcome->table.num_rows();
    }
  }
  return outcome;
}

/// Extracts the single COUNT cell of an aggregate query result.
Result<int64_t> RunCount(SparqlEndpoint* ep, const std::string& q,
                         ExtractionReport* report) {
  HBOLD_ASSIGN_OR_RETURN(QueryOutcome outcome, Run(ep, q, report));
  std::optional<int64_t> n = outcome.table.ScalarInt("n");
  if (!n.has_value()) {
    return Status::Internal("count query returned no scalar: " + q);
  }
  return *n;
}

std::string IriRef(const std::string& iri) { return "<" + iri + ">"; }

/// Sorts classes by descending instance count, then IRI, so every strategy
/// produces the summary in the same canonical order.
void Canonicalize(IndexSummary* s) {
  std::sort(s->classes.begin(), s->classes.end(),
            [](const ClassInfo& a, const ClassInfo& b) {
              if (a.instance_count != b.instance_count) {
                return a.instance_count > b.instance_count;
              }
              return a.iri < b.iri;
            });
  for (ClassInfo& c : s->classes) {
    std::sort(c.properties.begin(), c.properties.end(),
              [](const PropertyInfo& a, const PropertyInfo& b) {
                return a.iri < b.iri;
              });
  }
  s->num_classes = s->classes.size();
}

}  // namespace

// ------------------------------------------------------------------------
// Strategy 1: direct aggregation.
// ------------------------------------------------------------------------

Result<IndexSummary> DirectAggregationStrategy::Extract(
    SparqlEndpoint* ep, ExtractionReport* report) const {
  IndexSummary s;
  s.endpoint_url = ep->url();

  HBOLD_ASSIGN_OR_RETURN(
      int64_t triples,
      RunCount(ep, "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }", report));
  s.num_triples = static_cast<size_t>(triples);

  HBOLD_ASSIGN_OR_RETURN(
      int64_t instances,
      RunCount(ep, "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a ?c . }",
               report));
  s.num_instances = static_cast<size_t>(instances);

  // Class list with per-class instance counts in one grouped query.
  HBOLD_ASSIGN_OR_RETURN(
      QueryOutcome classes,
      Run(ep,
          "SELECT ?c (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a ?c . } "
          "GROUP BY ?c",
          report));
  if (classes.truncated) {
    return Status::Unsupported("class list truncated by endpoint row cap");
  }
  for (size_t i = 0; i < classes.table.num_rows(); ++i) {
    auto c = classes.table.Cell(i, "c");
    auto n = classes.table.Cell(i, "n");
    if (!c.has_value() || !n.has_value()) continue;
    ClassInfo info;
    info.iri = c->lexical();
    info.instance_count =
        static_cast<size_t>(std::strtoll(n->lexical().c_str(), nullptr, 10));
    s.classes.push_back(std::move(info));
  }

  // Per class: property usage counts, then object-property ranges.
  for (ClassInfo& cls : s.classes) {
    HBOLD_ASSIGN_OR_RETURN(
        QueryOutcome props,
        Run(ep,
            "SELECT ?p (COUNT(?o) AS ?n) WHERE { ?s a " + IriRef(cls.iri) +
                " . ?s ?p ?o . } GROUP BY ?p",
            report));
    if (props.truncated) {
      return Status::Unsupported("property list truncated");
    }
    for (size_t i = 0; i < props.table.num_rows(); ++i) {
      auto p = props.table.Cell(i, "p");
      auto n = props.table.Cell(i, "n");
      if (!p.has_value() || !n.has_value()) continue;
      if (p->lexical() == rdf::vocab::kRdfType) continue;
      PropertyInfo info;
      info.iri = p->lexical();
      info.count =
          static_cast<size_t>(std::strtoll(n->lexical().c_str(), nullptr, 10));
      cls.properties.push_back(std::move(info));
    }
    // Range histogram for properties whose objects are typed resources.
    HBOLD_ASSIGN_OR_RETURN(
        QueryOutcome ranges,
        Run(ep,
            "SELECT ?p ?rc (COUNT(?o) AS ?n) WHERE { ?s a " + IriRef(cls.iri) +
                " . ?s ?p ?o . ?o a ?rc . } GROUP BY ?p ?rc",
            report));
    if (ranges.truncated) {
      return Status::Unsupported("range list truncated");
    }
    for (size_t i = 0; i < ranges.table.num_rows(); ++i) {
      auto p = ranges.table.Cell(i, "p");
      auto rc = ranges.table.Cell(i, "rc");
      auto n = ranges.table.Cell(i, "n");
      if (!p.has_value() || !rc.has_value() || !n.has_value()) continue;
      if (p->lexical() == rdf::vocab::kRdfType) continue;
      for (PropertyInfo& info : cls.properties) {
        if (info.iri == p->lexical()) {
          info.is_object_property = true;
          info.range_classes[rc->lexical()] = static_cast<size_t>(
              std::strtoll(n->lexical().c_str(), nullptr, 10));
          break;
        }
      }
    }
  }

  Canonicalize(&s);
  if (report != nullptr) report->strategy_used = name();
  return s;
}

// ------------------------------------------------------------------------
// Strategy 2: per-class COUNT, no GROUP BY.
// ------------------------------------------------------------------------

Result<IndexSummary> PerClassCountStrategy::Extract(
    SparqlEndpoint* ep, ExtractionReport* report) const {
  IndexSummary s;
  s.endpoint_url = ep->url();

  HBOLD_ASSIGN_OR_RETURN(
      int64_t triples,
      RunCount(ep, "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o . }", report));
  s.num_triples = static_cast<size_t>(triples);

  HBOLD_ASSIGN_OR_RETURN(
      int64_t instances,
      RunCount(ep, "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a ?c . }",
               report));
  s.num_instances = static_cast<size_t>(instances);

  HBOLD_ASSIGN_OR_RETURN(
      QueryOutcome classes,
      Run(ep, "SELECT DISTINCT ?c WHERE { ?s a ?c . }", report));
  if (classes.truncated) {
    return Status::Unsupported("class enumeration truncated");
  }

  for (size_t i = 0; i < classes.table.num_rows(); ++i) {
    auto c = classes.table.Cell(i, "c");
    if (!c.has_value()) continue;
    ClassInfo cls;
    cls.iri = c->lexical();
    HBOLD_ASSIGN_OR_RETURN(
        int64_t count,
        RunCount(ep,
                 "SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s a " +
                     IriRef(cls.iri) + " . }",
                 report));
    cls.instance_count = static_cast<size_t>(count);

    HBOLD_ASSIGN_OR_RETURN(
        QueryOutcome props,
        Run(ep,
            "SELECT DISTINCT ?p WHERE { ?s a " + IriRef(cls.iri) +
                " . ?s ?p ?o . }",
            report));
    if (props.truncated) {
      return Status::Unsupported("property enumeration truncated");
    }
    for (size_t pi = 0; pi < props.table.num_rows(); ++pi) {
      auto p = props.table.Cell(pi, "p");
      if (!p.has_value() || p->lexical() == rdf::vocab::kRdfType) continue;
      PropertyInfo info;
      info.iri = p->lexical();
      HBOLD_ASSIGN_OR_RETURN(
          int64_t usage,
          RunCount(ep,
                   "SELECT (COUNT(?o) AS ?n) WHERE { ?s a " + IriRef(cls.iri) +
                       " . ?s " + IriRef(info.iri) + " ?o . }",
                   report));
      info.count = static_cast<size_t>(usage);

      HBOLD_ASSIGN_OR_RETURN(
          QueryOutcome ranges,
          Run(ep,
              "SELECT DISTINCT ?rc WHERE { ?s a " + IriRef(cls.iri) + " . ?s " +
                  IriRef(info.iri) + " ?o . ?o a ?rc . }",
              report));
      for (size_t ri = 0; ri < ranges.table.num_rows(); ++ri) {
        auto rc = ranges.table.Cell(ri, "rc");
        if (!rc.has_value()) continue;
        HBOLD_ASSIGN_OR_RETURN(
            int64_t rn,
            RunCount(ep,
                     "SELECT (COUNT(?o) AS ?n) WHERE { ?s a " +
                         IriRef(cls.iri) + " . ?s " + IriRef(info.iri) +
                         " ?o . ?o a " + IriRef(rc->lexical()) + " . }",
                     report));
        info.is_object_property = true;
        info.range_classes[rc->lexical()] = static_cast<size_t>(rn);
      }
      cls.properties.push_back(std::move(info));
    }
    s.classes.push_back(std::move(cls));
  }

  Canonicalize(&s);
  if (report != nullptr) report->strategy_used = name();
  return s;
}

// ------------------------------------------------------------------------
// Strategy 3: paginated scan, all counting client-side.
// ------------------------------------------------------------------------

Result<IndexSummary> PaginatedScanStrategy::Extract(
    SparqlEndpoint* ep, ExtractionReport* report) const {
  IndexSummary s;
  s.endpoint_url = ep->url();

  // Pass 1: page through typed subjects to build the instance->classes map.
  std::map<std::string, std::set<std::string>> types_of;  // subject -> classes
  size_t offset = 0;
  while (true) {
    HBOLD_ASSIGN_OR_RETURN(
        QueryOutcome page,
        Run(ep,
            "SELECT ?s ?c WHERE { ?s a ?c . } LIMIT " +
                std::to_string(page_size_) + " OFFSET " +
                std::to_string(offset),
            report));
    for (size_t i = 0; i < page.table.num_rows(); ++i) {
      auto subj = page.table.Cell(i, "s");
      auto cls = page.table.Cell(i, "c");
      if (subj.has_value() && cls.has_value()) {
        types_of[subj->ToNTriples()].insert(cls->lexical());
      }
    }
    // A row-capped endpoint may return fewer rows than LIMIT asked for;
    // advance by what actually arrived and keep paging.
    if (page.truncated) {
      offset += page.table.num_rows();
      continue;
    }
    if (page.table.num_rows() < page_size_) break;
    offset += page_size_;
  }

  s.num_instances = types_of.size();
  std::map<std::string, ClassInfo> classes;
  for (const auto& [subj, cls_set] : types_of) {
    for (const std::string& c : cls_set) {
      ClassInfo& info = classes[c];
      info.iri = c;
      ++info.instance_count;
    }
  }

  // Pass 2: page through all triples; attribute properties to the classes
  // of their subject, detect object properties via the type map.
  std::map<std::string, std::map<std::string, PropertyInfo>> props_by_class;
  offset = 0;
  size_t total_triples = 0;
  while (true) {
    HBOLD_ASSIGN_OR_RETURN(
        QueryOutcome page,
        Run(ep,
            "SELECT ?s ?p ?o WHERE { ?s ?p ?o . } LIMIT " +
                std::to_string(page_size_) + " OFFSET " +
                std::to_string(offset),
            report));
    total_triples += page.table.num_rows();
    for (size_t i = 0; i < page.table.num_rows(); ++i) {
      auto subj = page.table.Cell(i, "s");
      auto pred = page.table.Cell(i, "p");
      auto obj = page.table.Cell(i, "o");
      if (!subj.has_value() || !pred.has_value() || !obj.has_value()) continue;
      if (pred->lexical() == rdf::vocab::kRdfType) continue;
      auto it = types_of.find(subj->ToNTriples());
      if (it == types_of.end()) continue;  // untyped subject
      auto obj_types = types_of.find(obj->ToNTriples());
      for (const std::string& cls : it->second) {
        PropertyInfo& info = props_by_class[cls][pred->lexical()];
        info.iri = pred->lexical();
        ++info.count;
        if (obj_types != types_of.end()) {
          info.is_object_property = true;
          for (const std::string& range : obj_types->second) {
            ++info.range_classes[range];
          }
        }
      }
    }
    if (page.truncated) {
      offset += page.table.num_rows();
      continue;
    }
    if (page.table.num_rows() < page_size_) break;
    offset += page_size_;
  }

  s.num_triples = total_triples;
  for (auto& [iri, info] : classes) {
    auto props = props_by_class.find(iri);
    if (props != props_by_class.end()) {
      for (auto& [piri, pinfo] : props->second) {
        info.properties.push_back(pinfo);
      }
    }
    s.classes.push_back(std::move(info));
  }

  Canonicalize(&s);
  if (report != nullptr) report->strategy_used = name();
  return s;
}

}  // namespace hbold::extraction
