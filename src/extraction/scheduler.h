#ifndef HBOLD_EXTRACTION_SCHEDULER_H_
#define HBOLD_EXTRACTION_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "endpoint/registry.h"

namespace hbold::extraction {

/// The §3.1 refresh policy.
///
/// Linked Data changes weekly/monthly at most, but endpoints flap daily, so
/// H-BOLD runs the extraction job every day and decides per endpoint:
///   - first_eligible_day in the future -> skip (mid-cycle newcomers wait
///     for the next simulated day, deterministically)
///   - never attempted            -> extract today
///   - last attempt failed        -> retry daily until it succeeds
///   - last success >= N days ago -> refresh (N = 7 in the paper)
///   - otherwise                  -> skip
class RefreshScheduler {
 public:
  explicit RefreshScheduler(int64_t refresh_age_days = 7)
      : refresh_age_days_(refresh_age_days) {}

  int64_t refresh_age_days() const { return refresh_age_days_; }

  /// True if `record` is due for extraction on `today`.
  bool IsDue(const endpoint::EndpointRecord& record, int64_t today) const;

  /// URLs due for extraction today, in registry order.
  std::vector<std::string> DueToday(const endpoint::EndpointRegistry& registry,
                                    int64_t today) const;

  /// Same policy over an immutable registry snapshot (insertion order) —
  /// the form the parallel daily cycle uses so the due list is fixed
  /// before any worker starts mutating bookkeeping.
  std::vector<std::string> DueToday(
      const std::vector<endpoint::EndpointRecord>& snapshot,
      int64_t today) const;

  /// Updates a record's bookkeeping after an extraction attempt.
  static void RecordAttempt(endpoint::EndpointRecord* record, int64_t today,
                            bool success);

 private:
  int64_t refresh_age_days_;
};

}  // namespace hbold::extraction

#endif  // HBOLD_EXTRACTION_SCHEDULER_H_
