#ifndef HBOLD_EXTRACTION_INDEXES_H_
#define HBOLD_EXTRACTION_INDEXES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"

namespace hbold::extraction {

/// One property observed on instances of a class, with usage count. Object
/// properties record the classes of their objects (range histogram), which
/// the Schema Summary turns into edges.
struct PropertyInfo {
  std::string iri;
  size_t count = 0;
  bool is_object_property = false;
  /// Range class IRI -> number of (instance, value) pairs landing in it.
  std::map<std::string, size_t> range_classes;
};

/// Per-class slice of the index: instance count plus property list.
struct ClassInfo {
  std::string iri;
  size_t instance_count = 0;
  std::vector<PropertyInfo> properties;
};

/// The paper's "indexes" (§2.1): the structural and statistical summary
/// extracted from one endpoint — number of instances, number of classes,
/// the class list with properties, and per-class instance counts.
struct IndexSummary {
  std::string endpoint_url;
  size_t num_triples = 0;
  size_t num_instances = 0;   // distinct typed subjects
  size_t num_classes = 0;
  std::vector<ClassInfo> classes;
  int64_t extracted_day = -1;

  /// Sum of instance counts (>= num_instances when instances are
  /// multi-typed).
  size_t TotalClassInstances() const;

  const ClassInfo* FindClass(const std::string& iri) const;

  hbold::Json ToJson() const;
  static Result<IndexSummary> FromJson(const hbold::Json& j);
};

/// Canonical ordering every extraction path must end with: classes sorted
/// by descending instance count then IRI, properties by IRI, num_classes
/// synced. Two summaries describing the same endpoint content serialize
/// identically after this regardless of which strategy (or which
/// full/incremental path) produced them.
void CanonicalizeIndexSummary(IndexSummary* s);

/// Delta-extraction merge: `prior` (the last persisted summary) with the
/// `dirty` classes replaced by their freshly re-extracted versions from
/// `partial` and the `removed` classes erased. Dirty classes absent from
/// `partial` (re-extracted to zero instances) are dropped; global counts
/// (num_triples / num_instances) are taken from `partial`, whose globals
/// were re-queried this cycle. The result is canonicalized, so merging a
/// partial extraction over yesterday's summary is byte-identical to a full
/// re-extraction — the differential contract the delta pipeline is gated
/// on.
IndexSummary MergeDirtyClasses(const IndexSummary& prior,
                               const IndexSummary& partial,
                               const std::vector<std::string>& dirty,
                               const std::vector<std::string>& removed);

}  // namespace hbold::extraction

#endif  // HBOLD_EXTRACTION_INDEXES_H_
