#ifndef HBOLD_HBOLD_MANUAL_INSERT_H_
#define HBOLD_HBOLD_MANUAL_INSERT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "hbold/server.h"

namespace hbold {

/// Notification sink abstraction (production: SMTP; here: an in-memory
/// mailbox the tests inspect).
class Notifier {
 public:
  virtual ~Notifier() = default;
  virtual void Send(const std::string& to, const std::string& subject,
                    const std::string& body) = 0;
};

/// In-memory notifier recording every message.
class MemoryMailbox : public Notifier {
 public:
  struct Mail {
    std::string to;
    std::string subject;
    std::string body;
  };
  void Send(const std::string& to, const std::string& subject,
            const std::string& body) override {
    mails_.push_back(Mail{to, subject, body});
  }
  const std::vector<Mail>& mails() const { return mails_; }

 private:
  std::vector<Mail> mails_;
};

/// A queued user submission.
struct PendingInsertion {
  std::string url;
  std::string email;
};

/// §3.4: users submit the URL of a SPARQL endpoint together with an e-mail
/// address; the extraction runs asynchronously, the user is notified about
/// the outcome, and the address is deleted afterwards ("we do not want to
/// keep person data").
class ManualInsertionService {
 public:
  /// `server` and `notifier` must outlive the service.
  ManualInsertionService(Server* server, Notifier* notifier)
      : server_(server), notifier_(notifier) {}

  /// Validates and queues a submission. Rejects malformed URLs/e-mails and
  /// URLs already registered.
  Status Submit(const std::string& url, const std::string& email);

  /// Number of submissions waiting for processing.
  size_t PendingCount() const { return pending_.size(); }

  /// Processes every queued submission: registers the endpoint, runs the
  /// pipeline, notifies, forgets the address. Returns the number that
  /// extracted successfully.
  size_t ProcessPending();

 private:
  Server* server_;
  Notifier* notifier_;
  std::vector<PendingInsertion> pending_;
};

}  // namespace hbold

#endif  // HBOLD_HBOLD_MANUAL_INSERT_H_
