#include "hbold/server.h"

#include <algorithm>
#include <cstdio>
#include <optional>

#include "cluster/cluster_schema.h"
#include "cluster/louvain.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "schema/schema_summary.h"

namespace hbold {

namespace {
ServerOptions WithRefreshAge(int64_t refresh_age_days) {
  ServerOptions options;
  options.refresh_age_days = refresh_age_days;
  return options;
}
}  // namespace

Server::Server(store::Database* db, SimClock* clock, int64_t refresh_age_days)
    : Server(db, clock, WithRefreshAge(refresh_age_days)) {}

Server::Server(store::Database* db, SimClock* clock,
               const ServerOptions& options)
    : db_(db),
      clock_(clock),
      options_(options),
      scheduler_(options.refresh_age_days) {}

void Server::AttachEndpoint(const std::string& url,
                            endpoint::SparqlEndpoint* ep) {
  network_[url] = ep;
}

void Server::DetachEndpoint(const std::string& url) { network_.erase(url); }

void Server::SetQueryBatchWidthOverride(const std::string& url, int width) {
  if (width <= 0) {
    width_overrides_.erase(url);
  } else {
    width_overrides_[url] = width;
  }
}

int Server::QueryBatchWidthFor(const std::string& url) const {
  auto it = width_overrides_.find(url);
  int width = it != width_overrides_.end() ? it->second
                                           : options_.query_batch_width;
  return std::max(1, width);
}

bool Server::RegisterEndpoint(endpoint::EndpointRecord record) {
  return registry_.Add(std::move(record));
}

Result<PipelineReport> Server::ProcessEndpoint(const std::string& url) {
  return ProcessEndpointImpl(url, nullptr, nullptr);
}

Result<PipelineReport> Server::ProcessEndpointImpl(const std::string& url,
                                                   ThreadPool* pool,
                                                   PipelineCost* cost) {
  PipelineReport report;
  report.url = url;
  const int64_t today = clock_->NowDay();

  // Bookkeeping writes go through the registry's serialized update path so
  // concurrent pipelines never race on a shared record.
  auto record_attempt = [&](bool success) {
    registry_.UpdateRecord(url, [&](endpoint::EndpointRecord& r) {
      extraction::RefreshScheduler::RecordAttempt(&r, today, success);
    });
  };
  auto charge = [&] {
    if (cost != nullptr) {
      cost->latency_ms = report.extraction.total_latency_ms;
      cost->intra_ms = report.extraction.intra_makespan_ms;
    }
  };
  auto fail = [&](Status status) -> Result<PipelineReport> {
    charge();
    record_attempt(false);
    return status;
  };
  if (cost != nullptr) *cost = PipelineCost{};

  auto net = network_.find(url);
  if (net == network_.end()) {
    return fail(Status::Unavailable("no route to endpoint " + url));
  }

  // Stage 1: index extraction (pattern strategies with fallback). The
  // batch width comes from the server options; the pool is the daily
  // cycle's own, so intra-pipeline fan-out never spawns extra threads.
  extraction::ExtractionContext context;
  context.pool = pool;
  context.batch_width = static_cast<size_t>(QueryBatchWidthFor(url));
  auto indexes = extractor_.Extract(net->second, context, &report.extraction);
  if (!indexes.ok()) return fail(indexes.status());
  indexes->extracted_day = today;
  report.extraction_ms = report.extraction.total_latency_ms;
  charge();

  // Stage 2: Schema Summary.
  Stopwatch sw;
  schema::SchemaSummary summary = schema::SchemaSummary::FromIndexes(*indexes);
  report.summary_ms = sw.ElapsedMillis();
  report.classes = summary.NodeCount();
  report.arcs = summary.ArcCount();

  // §3.2 reuse: when the extracted Schema Summary is bit-identical to the
  // stored one, the Cluster Schema cannot have changed — skip clustering
  // and persist, just refresh the bookkeeping.
  Json summary_doc = summary.ToJson();
  // The hash is stored as a hex string: JSON numbers are doubles and would
  // truncate 64-bit fingerprints.
  char hash_hex[24];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(Fnv64(summary_doc.Dump())));
  std::string content_hash = hash_hex;
  {
    const store::Collection* summaries =
        db_->FindCollection(kSummariesCollection);
    if (summaries != nullptr) {
      Json url_filter = Json::MakeObject();
      url_filter.Set("endpoint_url", url);
      auto stored = summaries->FindOne(url_filter);
      if (stored.has_value() &&
          stored->GetString("content_hash") == content_hash) {
        report.reused_cluster_schema = true;
        record_attempt(true);
        return report;
      }
    }
  }

  // Stage 3: community detection + Cluster Schema (precomputed server-side
  // per §3.2, instead of on-the-fly in the presentation layer).
  sw.Reset();
  cluster::UGraph graph = cluster::BuildClassGraph(summary);
  cluster::Partition partition = cluster::Louvain(graph);
  cluster::ClusterSchema clusters =
      cluster::ClusterSchema::FromPartition(summary, partition);
  report.cluster_ms = sw.ElapsedMillis();
  report.clusters = clusters.ClusterCount();

  // Stage 4: persist both artifacts, replacing any previous version.
  sw.Reset();
  store::Collection* summaries = db_->GetCollection(kSummariesCollection);
  store::Collection* cluster_docs = db_->GetCollection(kClustersCollection);
  // Retrieval during display is by endpoint URL; keep it indexed (§2.1:
  // the store "improv[es] data recovery performance").
  summaries->CreateIndex("endpoint_url");
  cluster_docs->CreateIndex("endpoint_url");
  Json url_filter = Json::MakeObject();
  url_filter.Set("endpoint_url", url);
  summaries->Remove(url_filter);
  cluster_docs->Remove(url_filter);
  {
    Json doc = std::move(summary_doc);
    doc.Set("extracted_day", today);
    doc.Set("content_hash", content_hash);
    Status persisted = summaries->Insert(std::move(doc)).status();
    if (!persisted.ok()) return fail(std::move(persisted));
  }
  {
    Json doc = clusters.ToJson();
    doc.Set("extracted_day", today);
    Status persisted = cluster_docs->Insert(std::move(doc)).status();
    if (!persisted.ok()) return fail(std::move(persisted));
  }
  report.persist_ms = sw.ElapsedMillis();

  record_attempt(true);
  HBOLD_LOG(kDebug) << "processed " << url << " classes=" << report.classes
                    << " clusters=" << report.clusters << " strategy="
                    << report.extraction.strategy_used;
  return report;
}

DailyReport Server::RunDailyUpdate() {
  return RunDailyCycle(options_.parallelism);
}

DailyReport Server::RunDailyCycle(int parallelism) {
  // One pool serves both layers: pipelines fan out over it AND each
  // pipeline's query batches are submitted back into it (the
  // caller-participates claim loops of ParallelFor and QueryBatch make
  // that nesting deadlock-free). The pool is sized to `parallelism` and
  // never grown for batching, so total threads honor the ServerOptions
  // contract; at parallelism 1 batch jobs simply run inline on the
  // cycle's own thread — the simulated overlap figures are computed from
  // the batch width either way, so reports do not depend on the pool's
  // existence.
  if (parallelism <= 1) return RunDailyCycleOn(nullptr, 1);
  // No pool when there is at most one pipeline to run — spawning and
  // joining workers for zero overlap would be pure overhead on the quiet
  // days of a multi-day simulation. (The due list is recomputed inside
  // RunDailyCycleOn from the same registry state; DueToday is read-only,
  // so the two computations agree.)
  if (scheduler_.DueToday(registry_.Snapshot(), clock_->NowDay()).size() <=
      1) {
    return RunDailyCycleOn(nullptr, parallelism);
  }
  ThreadPool pool(static_cast<size_t>(parallelism));
  return RunDailyCycleOn(&pool, parallelism);
}

endpoint::QueryEngineStats Server::SumEngineStats() const {
  endpoint::QueryEngineStats total;
  for (const auto& [url, ep] : network_) {
    if (ep != nullptr) total += ep->engine_stats();
  }
  return total;
}

DailyReport Server::RunDailyCycleOn(ThreadPool* pool, int parallelism) {
  DailyReport daily;
  daily.day = clock_->NowDay();
  daily.parallelism = std::max(1, parallelism);
  const endpoint::QueryEngineStats engine_before = SumEngineStats();

  // Fix the due list from an immutable snapshot before any worker starts
  // mutating bookkeeping; `due` is in registry (insertion) order.
  std::vector<std::string> due =
      scheduler_.DueToday(registry_.Snapshot(), daily.day);
  daily.due = due.size();

  Stopwatch wall;
  std::vector<std::optional<Result<PipelineReport>>> slots(due.size());
  std::vector<PipelineCost> costs(due.size());
  ThreadPool* pool_ptr = daily.parallelism > 1 ? pool : nullptr;
  ThreadPool::ParallelFor(pool_ptr, due.size(), [&](size_t i) {
    slots[i] = ProcessEndpointImpl(due[i], pool_ptr, &costs[i]);
  });
  daily.wall_ms = wall.ElapsedMillis();

  // Merge in due-list order — the report is independent of worker
  // completion order. The latency ledger replays deterministic list
  // scheduling over the simulated extraction latencies — failed attempts
  // included: a timed-out extraction still spent its queries' latency —
  // giving the cycle's simulated duration (makespan) next to its cost
  // (sum). A second ledger replays the same schedule with each pipeline
  // shortened to its intra-pipeline makespan — the duration when batched
  // queries overlap inside pipelines too.
  WorkerLatencyLedger ledger(static_cast<size_t>(daily.parallelism));
  WorkerLatencyLedger batched_ledger(static_cast<size_t>(daily.parallelism));
  daily.outcomes.reserve(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    Result<PipelineReport>& result = *slots[i];
    ledger.Assign(costs[i].latency_ms);
    batched_ledger.Assign(costs[i].intra_ms);
    daily.outcomes.push_back(DueOutcome{due[i], result.ok(),
                                        costs[i].latency_ms,
                                        costs[i].intra_ms});
    if (result.ok()) {
      ++daily.succeeded;
      if (result->reused_cluster_schema) ++daily.reused;
      daily.reports.push_back(std::move(*result));
    } else {
      ++daily.failed;
      HBOLD_LOG(kDebug) << "daily update failed for " << due[i] << ": "
                        << result.status().ToString();
    }
  }
  daily.sum_latency_ms = ledger.TotalMs();
  daily.makespan_ms = ledger.MakespanMs();
  daily.batched_makespan_ms = batched_ledger.MakespanMs();
  // Engine counters are cumulative per endpoint; the cycle's share is the
  // delta. No queries are in flight here (all workers joined above).
  const endpoint::QueryEngineStats engine_delta =
      SumEngineStats() - engine_before;
  daily.plan_cache_hits = engine_delta.plan_cache_hits;
  daily.plan_cache_misses = engine_delta.plan_cache_misses;
  daily.hash_join_builds = engine_delta.hash_join_builds;
  return daily;
}

Status Server::PersistRegistry() {
  store::Collection* c = db_->GetCollection(kRegistryCollection);
  c->Remove(Json::MakeObject());
  Json wrapper = Json::MakeObject();
  wrapper.Set("records", registry_.ToJson());
  return c->Insert(std::move(wrapper)).status();
}

Status Server::LoadRegistry() {
  const store::Collection* c = db_->FindCollection(kRegistryCollection);
  if (c == nullptr) return Status::NotFound("no registry collection");
  auto doc = c->FindOne(Json::MakeObject());
  if (!doc.has_value()) return Status::NotFound("registry document missing");
  const Json* records = doc->Find("records");
  if (records == nullptr) {
    return Status::InvalidArgument("registry document malformed");
  }
  return registry_.LoadJson(*records);
}

}  // namespace hbold
