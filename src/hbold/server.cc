#include "hbold/server.h"

#include <cstdio>

#include "cluster/cluster_schema.h"
#include "cluster/louvain.h"
#include "common/hash.h"
#include "common/logging.h"
#include "schema/schema_summary.h"

namespace hbold {

Server::Server(store::Database* db, SimClock* clock, int64_t refresh_age_days)
    : db_(db), clock_(clock), scheduler_(refresh_age_days) {}

void Server::AttachEndpoint(const std::string& url,
                            endpoint::SparqlEndpoint* ep) {
  network_[url] = ep;
}

bool Server::RegisterEndpoint(endpoint::EndpointRecord record) {
  return registry_.Add(std::move(record));
}

Result<PipelineReport> Server::ProcessEndpoint(const std::string& url) {
  PipelineReport report;
  report.url = url;
  const int64_t today = clock_->NowDay();

  endpoint::EndpointRecord* record = registry_.FindMutable(url);
  auto fail = [&](Status status) -> Result<PipelineReport> {
    if (record != nullptr) {
      extraction::RefreshScheduler::RecordAttempt(record, today, false);
    }
    return status;
  };

  auto net = network_.find(url);
  if (net == network_.end()) {
    return fail(Status::Unavailable("no route to endpoint " + url));
  }

  // Stage 1: index extraction (pattern strategies with fallback).
  auto indexes = extractor_.Extract(net->second, &report.extraction);
  if (!indexes.ok()) return fail(indexes.status());
  indexes->extracted_day = today;
  report.extraction_ms = report.extraction.total_latency_ms;

  // Stage 2: Schema Summary.
  Stopwatch sw;
  schema::SchemaSummary summary = schema::SchemaSummary::FromIndexes(*indexes);
  report.summary_ms = sw.ElapsedMillis();
  report.classes = summary.NodeCount();
  report.arcs = summary.ArcCount();

  // §3.2 reuse: when the extracted Schema Summary is bit-identical to the
  // stored one, the Cluster Schema cannot have changed — skip clustering
  // and persist, just refresh the bookkeeping.
  Json summary_doc = summary.ToJson();
  // The hash is stored as a hex string: JSON numbers are doubles and would
  // truncate 64-bit fingerprints.
  char hash_hex[24];
  std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                static_cast<unsigned long long>(Fnv64(summary_doc.Dump())));
  std::string content_hash = hash_hex;
  {
    const store::Collection* summaries =
        db_->FindCollection(kSummariesCollection);
    if (summaries != nullptr) {
      Json url_filter = Json::MakeObject();
      url_filter.Set("endpoint_url", url);
      auto stored = summaries->FindOne(url_filter);
      if (stored.has_value() &&
          stored->GetString("content_hash") == content_hash) {
        report.reused_cluster_schema = true;
        if (record != nullptr) {
          extraction::RefreshScheduler::RecordAttempt(record, today, true);
        }
        return report;
      }
    }
  }

  // Stage 3: community detection + Cluster Schema (precomputed server-side
  // per §3.2, instead of on-the-fly in the presentation layer).
  sw.Reset();
  cluster::UGraph graph = cluster::BuildClassGraph(summary);
  cluster::Partition partition = cluster::Louvain(graph);
  cluster::ClusterSchema clusters =
      cluster::ClusterSchema::FromPartition(summary, partition);
  report.cluster_ms = sw.ElapsedMillis();
  report.clusters = clusters.ClusterCount();

  // Stage 4: persist both artifacts, replacing any previous version.
  sw.Reset();
  store::Collection* summaries = db_->GetCollection(kSummariesCollection);
  store::Collection* cluster_docs = db_->GetCollection(kClustersCollection);
  // Retrieval during display is by endpoint URL; keep it indexed (§2.1:
  // the store "improv[es] data recovery performance").
  summaries->CreateIndex("endpoint_url");
  cluster_docs->CreateIndex("endpoint_url");
  Json url_filter = Json::MakeObject();
  url_filter.Set("endpoint_url", url);
  summaries->Remove(url_filter);
  cluster_docs->Remove(url_filter);
  {
    Json doc = std::move(summary_doc);
    doc.Set("extracted_day", today);
    doc.Set("content_hash", content_hash);
    HBOLD_RETURN_NOT_OK(summaries->Insert(std::move(doc)).status());
  }
  {
    Json doc = clusters.ToJson();
    doc.Set("extracted_day", today);
    HBOLD_RETURN_NOT_OK(cluster_docs->Insert(std::move(doc)).status());
  }
  report.persist_ms = sw.ElapsedMillis();

  if (record != nullptr) {
    extraction::RefreshScheduler::RecordAttempt(record, today, true);
  }
  HBOLD_LOG(kDebug) << "processed " << url << " classes=" << report.classes
                    << " clusters=" << report.clusters << " strategy="
                    << report.extraction.strategy_used;
  return report;
}

DailyReport Server::RunDailyUpdate() {
  DailyReport daily;
  daily.day = clock_->NowDay();
  std::vector<std::string> due = scheduler_.DueToday(registry_, daily.day);
  daily.due = due.size();
  for (const std::string& url : due) {
    auto report = ProcessEndpoint(url);
    if (report.ok()) {
      ++daily.succeeded;
      if (report->reused_cluster_schema) ++daily.reused;
      daily.reports.push_back(std::move(*report));
    } else {
      ++daily.failed;
      HBOLD_LOG(kDebug) << "daily update failed for " << url << ": "
                        << report.status().ToString();
    }
  }
  return daily;
}

Status Server::PersistRegistry() {
  store::Collection* c = db_->GetCollection(kRegistryCollection);
  c->Remove(Json::MakeObject());
  Json wrapper = Json::MakeObject();
  wrapper.Set("records", registry_.ToJson());
  return c->Insert(std::move(wrapper)).status();
}

Status Server::LoadRegistry() {
  const store::Collection* c = db_->FindCollection(kRegistryCollection);
  if (c == nullptr) return Status::NotFound("no registry collection");
  auto doc = c->FindOne(Json::MakeObject());
  if (!doc.has_value()) return Status::NotFound("registry document missing");
  const Json* records = doc->Find("records");
  if (records == nullptr) {
    return Status::InvalidArgument("registry document malformed");
  }
  return registry_.LoadJson(*records);
}

}  // namespace hbold
