#include "hbold/server.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "cluster/cluster_schema.h"
#include "cluster/louvain.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "schema/schema_summary.h"

namespace hbold {

namespace {
ServerOptions WithRefreshAge(int64_t refresh_age_days) {
  ServerOptions options;
  options.refresh_age_days = refresh_age_days;
  return options;
}

extraction::IndexExtractor MakeExtractor(const ServerOptions& options) {
  if (options.paginated_page_size == 0) return extraction::IndexExtractor();
  std::vector<std::unique_ptr<extraction::ExtractionStrategy>> chain;
  chain.push_back(std::make_unique<extraction::DirectAggregationStrategy>());
  chain.push_back(std::make_unique<extraction::PerClassCountStrategy>());
  chain.push_back(std::make_unique<extraction::PaginatedScanStrategy>(
      options.paginated_page_size));
  return extraction::IndexExtractor(std::move(chain));
}
}  // namespace

Server::Server(store::Database* db, const sim::Timeline* timeline,
               const ServerOptions& options)
    : db_(db),
      timeline_(timeline),
      options_(options),
      scheduler_(options.refresh_age_days),
      extractor_(MakeExtractor(options)) {}

Server::Server(store::Database* db, SimClock* clock, int64_t refresh_age_days)
    : Server(db, clock, WithRefreshAge(refresh_age_days)) {}

Server::Server(store::Database* db, SimClock* clock,
               const ServerOptions& options)
    : Server(db, static_cast<const sim::Timeline*>(nullptr), options) {
  owned_timeline_ = std::make_unique<sim::ClockTimeline>(clock);
  timeline_ = owned_timeline_.get();
}

void Server::AttachEndpoint(const std::string& url,
                            endpoint::SparqlEndpoint* ep) {
  network_[url] = ep;
}

void Server::DetachEndpoint(const std::string& url) { network_.erase(url); }

void Server::SetQueryBatchWidthOverride(const std::string& url, int width) {
  if (width <= 0) {
    width_overrides_.erase(url);
  } else {
    width_overrides_[url] = width;
  }
}

int Server::QueryBatchWidthFor(const std::string& url) const {
  auto it = width_overrides_.find(url);
  int width = it != width_overrides_.end() ? it->second
                                           : options_.query_batch_width;
  return std::max(1, width);
}

bool Server::RegisterEndpoint(endpoint::EndpointRecord record) {
  return registry_.Add(std::move(record));
}

Result<PipelineReport> Server::ProcessEndpoint(const std::string& url) {
  return ProcessEndpointImpl(url, nullptr, nullptr);
}

Result<PipelineReport> Server::ProcessEndpointImpl(const std::string& url,
                                                   ThreadPool* pool,
                                                   PipelineCost* cost) {
  PipelineReport report;
  report.url = url;
  const int64_t today = timeline_->NowDay();

  // Bookkeeping writes go through the registry's serialized update path so
  // concurrent pipelines never race on a shared record.
  auto record_attempt = [&](bool success) {
    registry_.UpdateRecord(url, [&](endpoint::EndpointRecord& r) {
      extraction::RefreshScheduler::RecordAttempt(&r, today, success);
    });
  };
  auto charge = [&] {
    if (cost != nullptr) {
      cost->latency_ms = report.extraction.total_latency_ms;
      cost->intra_ms = report.extraction.intra_makespan_ms;
    }
  };
  auto fail = [&](Status status) -> Result<PipelineReport> {
    charge();
    record_attempt(false);
    return status;
  };
  if (cost != nullptr) *cost = PipelineCost{};

  auto net = network_.find(url);
  if (net == network_.end()) {
    return fail(Status::Unavailable("no route to endpoint " + url));
  }

  const IncrementalOptions& inc = options_.incremental;
  const bool delta_mode = inc.mode == IncrementalMode::kDelta ||
                          inc.mode == IncrementalMode::kBounded;
  Json url_filter = Json::MakeObject();
  url_filter.Set("endpoint_url", url);

  // Trust + staleness snapshot, read once at pipeline start so every
  // decision below sees one fixed record state.
  const std::optional<endpoint::EndpointRecord> rec0 = registry_.GetRecord(url);
  const endpoint::TrustState trust =
      rec0.has_value() ? rec0->trust_state : endpoint::TrustState::kTrusted;
  const int64_t last_full =
      rec0.has_value() ? rec0->last_full_refresh_day : -1;
  if (delta_mode) {
    report.staleness_days =
        (last_full >= 0 && today > last_full) ? today - last_full : 0;
  }
  report.quarantined = trust == endpoint::TrustState::kQuarantined;

  // A full refresh is forced — whatever the probe claims — while the
  // endpoint is quarantined, and under kBounded once the unverified drift
  // window exceeds the staleness budget. The effective budget is adaptive
  // when strike_budget_penalty_days is set: every lifetime strike the
  // record carries tightens it, so endpoints with a divergence history
  // get re-verified sooner than clean ones.
  bool force_full = report.quarantined;
  if (inc.mode == IncrementalMode::kBounded && last_full >= 0) {
    int64_t budget = inc.staleness_budget_days;
    if (inc.strike_budget_penalty_days > 0 && rec0.has_value() &&
        rec0->lifetime_strikes > 0) {
      budget = std::max(
          inc.min_staleness_budget_days,
          budget - rec0->lifetime_strikes * inc.strike_budget_penalty_days);
    }
    if (today - last_full >= budget) force_full = true;
  }

  // Divergence bookkeeping: a probe claim was contradicted by evidence.
  // The endpoint takes a strike (trusted -> suspect -> quarantined), its
  // persisted fingerprints are dropped (claims from a contradicted probe
  // are worthless), and this cycle runs a full refresh.
  auto strike = [&](const char* what) {
    report.probe_mismatch = true;
    report.forced_refresh = true;
    HBOLD_LOG(kDebug) << url << " probe divergence (" << what << ")";
    registry_.UpdateRecord(url, [&](endpoint::EndpointRecord& r) {
      r.clean_streak = 0;
      ++r.suspect_strikes;
      ++r.lifetime_strikes;
      if (r.trust_state == endpoint::TrustState::kTrusted) {
        r.trust_state = endpoint::TrustState::kSuspect;
      }
      if (r.suspect_strikes >= inc.quarantine_strikes &&
          r.trust_state != endpoint::TrustState::kQuarantined) {
        r.trust_state = endpoint::TrustState::kQuarantined;
        report.quarantine_entered = true;
      }
      if (r.trust_state == endpoint::TrustState::kQuarantined) {
        r.quarantine_until_day = today + inc.quarantine_days;
      }
      r.class_fingerprints.clear();
      r.probed_generation.clear();
    });
  };

  // Incremental prelude: one batched change probe, diffed against the
  // fingerprints the registry kept from the last successful run. The
  // probe is charged like any other query, so the accounting ledgers see
  // its cost.
  endpoint::ChangeProbe probe;
  bool have_probe = false;
  bool generation_match = false;
  std::vector<std::string> dirty;
  std::vector<std::string> removed;
  if (inc.mode != IncrementalMode::kOff) {
    Status probe_status = Status::OK();
    for (int attempt = 0;; ++attempt) {
      auto probed = net->second->ProbeChanges();
      if (probed.ok()) {
        probe = std::move(*probed);
        have_probe = true;
        break;
      }
      probe_status = probed.status();
      // A transient mid-cycle failure (Timeout while the endpoint is up)
      // is retried deterministically — the endpoint's fault coins are
      // salted by the per-day attempt index, so the retry sequence
      // replays bit-identically on any deployment. A day-level outage
      // (Unavailable) is not retried: §3.1 says try again tomorrow.
      if (probe_status.IsTimeout() && attempt < inc.max_probe_retries) {
        ++report.probe_retries;
        continue;
      }
      break;
    }
    if (!have_probe) {
      if (probe_status.IsTimeout()) {
        // Retries exhausted: the endpoint is up but its probe channel is
        // flapping. Degrade to a probe-less full extraction instead of
        // failing the day — queries still work, only the shortcut is
        // gone. No strike: flakiness is not dishonesty.
        registry_.UpdateRecord(url, [](endpoint::EndpointRecord& r) {
          ++r.probe_failure_streak;
        });
      } else if (!probe_status.IsUnsupported()) {
        // A dark endpoint aborts the attempt like any other query would;
        // endpoints without probe support just take the full pipeline.
        return fail(probe_status);
      }
    } else {
      report.probed = true;
      report.extraction.queries_issued += 1;
      report.extraction.rows_transferred += probe.classes.size();
      report.extraction.total_latency_ms += probe.latency_ms;
      report.extraction.intra_makespan_ms += probe.latency_ms;
      std::set<std::string> current;
      for (const endpoint::ClassFingerprint& cf : probe.classes) {
        current.insert(cf.class_iri);
        uint64_t prev = 0;
        bool known = false;
        if (rec0.has_value()) {
          auto it = rec0->class_fingerprints.find(cf.class_iri);
          known = it != rec0->class_fingerprints.end() &&
                  ParseHexU64(it->second, &prev);
        }
        // Classes the fingerprints have never seen are dirty defensively.
        if (!known || prev != cf.version) dirty.push_back(cf.class_iri);
      }
      if (rec0.has_value()) {
        uint64_t prev_gen = 0;
        generation_match = !rec0->probed_generation.empty() &&
                           ParseHexU64(rec0->probed_generation, &prev_gen) &&
                           prev_gen == probe.store_generation;
        // A truncated probe proves nothing about the classes it omitted —
        // never infer removals from one.
        if (!probe.truncated) {
          for (const auto& [iri, version] : rec0->class_fingerprints) {
            if (current.count(iri) == 0) removed.push_back(iri);
          }
        }
      }
      report.dirty_classes = dirty.size();
      report.removed_classes = removed.size();
    }
  }

  // Fingerprints advance only on success, so a failed attempt leaves its
  // classes dirty for tomorrow's probe. A truncated probe's partial view
  // and a contradicted probe's claims are never persisted — the record
  // keeps (or, post-strike, loses) its previous fingerprints instead.
  auto store_fingerprints = [&] {
    if (!have_probe || probe.truncated || report.probe_mismatch) return;
    registry_.UpdateRecord(url, [&](endpoint::EndpointRecord& r) {
      r.probed_generation = HexU64(probe.store_generation);
      r.class_fingerprints.clear();
      for (const endpoint::ClassFingerprint& cf : probe.classes) {
        r.class_fingerprints[cf.class_iri] = HexU64(cf.version);
      }
    });
  };

  // Success-side trust bookkeeping: verified full refreshes reset the
  // staleness clock, divergence-free cycles build the clean streak that
  // paroles suspect endpoints, and a served-out quarantine ends once a
  // full refresh lands. Skipped entirely under kOff so pre-incremental
  // registries stay byte-identical.
  bool ran_full_extraction = false;
  auto record_defense = [&] {
    if (inc.mode == IncrementalMode::kOff) return;
    registry_.UpdateRecord(url, [&](endpoint::EndpointRecord& r) {
      if (ran_full_extraction) r.last_full_refresh_day = today;
      if (have_probe) r.probe_failure_streak = 0;
      if (report.probe_mismatch) return;  // strike() already booked this
      ++r.clean_streak;
      // Strike decay: a long-enough clean streak forgives one recorded
      // strike per interval, relaxing the adaptive staleness budget back
      // toward the configured one.
      if (inc.strike_decay_clean_cycles > 0 && r.lifetime_strikes > 0 &&
          r.clean_streak % inc.strike_decay_clean_cycles == 0) {
        --r.lifetime_strikes;
        if (r.suspect_strikes > 0) --r.suspect_strikes;
      }
      if (r.trust_state == endpoint::TrustState::kQuarantined) {
        if (today >= r.quarantine_until_day && ran_full_extraction) {
          r.trust_state = endpoint::TrustState::kSuspect;
          r.suspect_strikes = 0;
          r.clean_streak = 0;
          r.quarantine_until_day = -1;
          report.quarantine_exited = true;
        }
      } else if (r.trust_state == endpoint::TrustState::kSuspect &&
                 r.clean_streak >= inc.parole_clean_cycles) {
        r.trust_state = endpoint::TrustState::kTrusted;
        r.suspect_strikes = 0;
      }
    });
  };

  const store::Collection* summaries_ro =
      db_->FindCollection(kSummariesCollection);
  std::optional<Json> stored_summary_doc;
  if (summaries_ro != nullptr) {
    stored_summary_doc = summaries_ro->FindOne(url_filter);
  }

  // Probe-skip: the digest is quiet AND the store generation has not
  // moved since the last probe — nothing downstream can have changed, so
  // the whole pipeline collapses to the one probe query. A moved
  // generation with a quiet digest means something wrote to the store
  // outside the fingerprinted model (the external-writes safety valve):
  // fall through to a full re-extraction instead of trusting the digest.
  //
  // The skip takes a probe's word for everything, so it demands the most:
  // a fully trusted endpoint, an untruncated probe with at least one
  // class (an empty store's generation can collide with a stale persisted
  // one while the content provenance differs — never a skip), and no
  // forced refresh pending.
  if (delta_mode && !force_full &&
      trust == endpoint::TrustState::kTrusted && have_probe &&
      !probe.truncated && !probe.classes.empty() && generation_match &&
      dirty.empty() && removed.empty() && stored_summary_doc.has_value()) {
    const Json* nodes = stored_summary_doc->Find("nodes");
    const Json* arcs = stored_summary_doc->Find("arcs");
    report.classes =
        nodes != nullptr && nodes->is_array() ? nodes->as_array().size() : 0;
    report.arcs =
        arcs != nullptr && arcs->is_array() ? arcs->as_array().size() : 0;
    report.probe_skipped = true;
    report.reused_cluster_schema = true;
    report.extraction_ms = report.extraction.total_latency_ms;
    charge();
    store_fingerprints();
    record_defense();
    record_attempt(true);
    return report;
  }

  // Stage 1: index extraction (pattern strategies with fallback). The
  // batch width comes from the server options; the pool is the daily
  // cycle's own, so intra-pipeline fan-out never spawns extra threads.
  extraction::ExtractionContext context;
  context.pool = pool;
  context.batch_width = static_cast<size_t>(QueryBatchWidthFor(url));

  // kDelta with a dirty digest below the threshold: re-extract ONLY the
  // dirty classes and merge into the stored prior summary. The merge is
  // value-identical to a full extraction by construction (differential
  // tested), so everything downstream is agnostic to which path ran.
  Result<extraction::IndexSummary> indexes =
      Status::Internal("extraction never ran");
  bool delta_ok = false;
  // Deltas need an untruncated probe (a partial class list cannot anchor
  // a merge) and an endpoint that is not quarantined — suspect endpoints
  // may still delta because every delta is validated below.
  if (delta_mode && !force_full &&
      trust != endpoint::TrustState::kQuarantined && have_probe &&
      !probe.truncated && (!dirty.empty() || !removed.empty())) {
    const double fraction =
        static_cast<double>(dirty.size() + removed.size()) /
        static_cast<double>(std::max<size_t>(1, probe.classes.size()));
    const store::Collection* indexes_ro =
        db_->FindCollection(kIndexesCollection);
    std::optional<Json> prior_doc;
    if (fraction <= inc.full_refresh_fraction && indexes_ro != nullptr) {
      prior_doc = indexes_ro->FindOne(url_filter);
    }
    if (prior_doc.has_value()) {
      auto prior = extraction::IndexSummary::FromJson(*prior_doc);
      if (prior.ok()) {
        // Restricted strategies (paginated scan) price the dirty-class
        // path against a full scan using last cycle's magnitudes.
        context.prior_num_triples = prior->num_triples;
        context.prior_num_instances = prior->num_instances;
        context.prior_class_count = prior->classes.size();
        auto partial = extractor_.ExtractClasses(net->second, context, dirty,
                                                 &report.extraction);
        if (partial.ok()) {
          indexes = extraction::MergeDirtyClasses(*prior, *partial, dirty,
                                                  removed);
          delta_ok = true;
          report.delta_extracted = true;
        } else if (!partial.status().IsUnsupported() &&
                   !partial.status().IsTimeout()) {
          return fail(partial.status());
        }
        // Unsupported/Timeout: every restricted strategy fell through
        // (e.g. a paginated-scan-only dialect) — run the full chain.
      }
    }
  }

  // Delta validation: before trusting a merge built on a probe's claims,
  // echo the probe and cross-check. The echo must agree with the first
  // probe on generation and on every common fingerprint, and (when it is
  // untruncated) list exactly the same classes, with every merged class
  // among them. Any contradiction discards the merge: the endpoint lied
  // to one of the two probes, so only a full re-extraction is safe.
  if (delta_ok && inc.validate_deltas) {
    auto echo = net->second->ProbeChanges();
    if (echo.ok()) {
      report.extraction.queries_issued += 1;
      report.extraction.rows_transferred += echo->classes.size();
      report.extraction.total_latency_ms += echo->latency_ms;
      report.extraction.intra_makespan_ms += echo->latency_ms;
      const char* what = nullptr;
      if (echo->store_generation != probe.store_generation) {
        what = "generation echo mismatch";
      }
      const size_t common =
          std::min(echo->classes.size(), probe.classes.size());
      for (size_t i = 0; what == nullptr && i < common; ++i) {
        if (echo->classes[i].class_iri != probe.classes[i].class_iri ||
            echo->classes[i].version != probe.classes[i].version) {
          what = "fingerprint echo mismatch";
        }
      }
      if (what == nullptr && !echo->truncated) {
        if (echo->classes.size() != probe.classes.size()) {
          what = "class count mismatch";
        } else {
          // Every class the merge kept must exist on the endpoint.
          std::set<std::string> echoed;
          for (const endpoint::ClassFingerprint& cf : echo->classes) {
            echoed.insert(cf.class_iri);
          }
          for (const extraction::ClassInfo& cls : indexes->classes) {
            if (echoed.count(cls.iri) == 0) {
              what = "merged class unknown to endpoint";
              break;
            }
          }
        }
      } else if (what == nullptr && echo->truncated &&
                 echo->classes.size() > probe.classes.size()) {
        what = "class count mismatch";
      }
      if (what != nullptr) {
        strike(what);
        delta_ok = false;
        report.delta_extracted = false;
      }
    }
    // An echo that fails outright cannot validate anything; the merge
    // stands unvalidated and kBounded's staleness budget backstops it.
  }

  if (!delta_ok) {
    indexes = extractor_.Extract(net->second, context, &report.extraction);
    if (!indexes.ok()) return fail(indexes.status());
    ran_full_extraction = true;
    if (delta_mode && force_full) report.forced_refresh = true;
  }
  indexes->extracted_day = today;
  report.extraction_ms = report.extraction.total_latency_ms;
  charge();

  // Stage 2: Schema Summary — patched in place after a delta merge (quiet
  // class nodes are reused verbatim), rebuilt from scratch otherwise.
  // Both forms are value-identical to FromIndexes on the same summary.
  Stopwatch sw;
  schema::SchemaSummary summary;
  bool patched = false;
  if (delta_ok && stored_summary_doc.has_value()) {
    auto prior_summary = schema::SchemaSummary::FromJson(*stored_summary_doc);
    if (prior_summary.ok()) {
      summary =
          schema::SchemaSummary::PatchedFromIndexes(*prior_summary, *indexes,
                                                    dirty);
      patched = true;
    }
  }
  if (!patched) summary = schema::SchemaSummary::FromIndexes(*indexes);
  report.summary_ms = sw.ElapsedMillis();
  report.classes = summary.NodeCount();
  report.arcs = summary.ArcCount();

  // §3.2 reuse: when the extracted Schema Summary is bit-identical to the
  // stored one, the Cluster Schema cannot have changed — skip clustering
  // and persist, just refresh the bookkeeping. The stored index summary
  // stays untouched too: an unchanged Schema Summary under the simulated
  // mutation model implies unchanged data, so the prior is still exact.
  Json summary_doc = summary.ToJson();
  // The hash is stored as a hex string: JSON numbers are doubles and would
  // truncate 64-bit fingerprints.
  std::string content_hash = HexU64(Fnv64(summary_doc.Dump()));
  if (stored_summary_doc.has_value() &&
      stored_summary_doc->GetString("content_hash") == content_hash) {
    report.reused_cluster_schema = true;
    store_fingerprints();
    record_defense();
    record_attempt(true);
    return report;
  }

  // Lying-quiet detection: this full extraction produced *different*
  // content while the probe claimed nothing changed (matching generation,
  // clean untruncated digest). The probe lied — only a forced refresh
  // (staleness bound, quarantine) ever exposes this, which is exactly why
  // kBounded bounds the trust window.
  if (ran_full_extraction && have_probe && !probe.truncated &&
      generation_match && dirty.empty() && removed.empty() &&
      stored_summary_doc.has_value()) {
    strike("content changed behind a quiet probe");
  }

  // Stage 3: community detection + Cluster Schema (precomputed server-side
  // per §3.2, instead of on-the-fly in the presentation layer). After a
  // delta merge whose class-graph is unchanged (node sequence and arcs
  // identical — e.g. only attribute counts moved), the prior partition is
  // recovered from the stored cluster document instead of re-running
  // Louvain; Louvain is deterministic on the same graph, so the rebuilt
  // Cluster Schema is identical either way.
  sw.Reset();
  cluster::Partition partition;
  bool partition_reused = false;
  if (delta_ok && stored_summary_doc.has_value()) {
    auto prior_summary = schema::SchemaSummary::FromJson(*stored_summary_doc);
    if (prior_summary.ok() &&
        prior_summary->NodeCount() == summary.NodeCount() &&
        prior_summary->ArcCount() == summary.ArcCount()) {
      bool same_graph = true;
      for (size_t i = 0; same_graph && i < summary.NodeCount(); ++i) {
        same_graph = prior_summary->nodes()[i].iri == summary.nodes()[i].iri;
      }
      for (size_t i = 0; same_graph && i < summary.ArcCount(); ++i) {
        const schema::PropertyArc& a = prior_summary->arcs()[i];
        const schema::PropertyArc& b = summary.arcs()[i];
        same_graph = a.src == b.src && a.dst == b.dst && a.iri == b.iri &&
                     a.count == b.count;
      }
      if (same_graph) {
        const store::Collection* clusters_ro =
            db_->FindCollection(kClustersCollection);
        std::optional<Json> prior_cluster_doc;
        if (clusters_ro != nullptr) {
          prior_cluster_doc = clusters_ro->FindOne(url_filter);
        }
        if (prior_cluster_doc.has_value()) {
          auto prior_clusters =
              cluster::ClusterSchema::FromJson(*prior_cluster_doc);
          if (prior_clusters.ok()) {
            partition.reserve(summary.NodeCount());
            partition_reused = true;
            for (size_t i = 0; i < summary.NodeCount(); ++i) {
              int c = prior_clusters->ClusterOf(i);
              if (c < 0) {
                partition.clear();
                partition_reused = false;
                break;
              }
              partition.push_back(static_cast<size_t>(c));
            }
          }
        }
      }
    }
  }
  if (!partition_reused) {
    cluster::UGraph graph = cluster::BuildClassGraph(summary);
    partition = cluster::Louvain(graph);
  }
  cluster::ClusterSchema clusters =
      cluster::ClusterSchema::FromPartition(summary, partition);
  report.cluster_ms = sw.ElapsedMillis();
  report.clusters = clusters.ClusterCount();

  // Stage 4: persist the artifacts, replacing any previous version. Under
  // incremental modes the raw index summary is persisted too — it is the
  // `prior` the next dirty-class merge starts from.
  sw.Reset();
  store::Collection* summaries = db_->GetCollection(kSummariesCollection);
  store::Collection* cluster_docs = db_->GetCollection(kClustersCollection);
  // Retrieval during display is by endpoint URL; keep it indexed (§2.1:
  // the store "improv[es] data recovery performance").
  summaries->CreateIndex("endpoint_url");
  cluster_docs->CreateIndex("endpoint_url");
  // Each artifact is swapped in with an atomic Replace: presentation-layer
  // readers running concurrently with the cycle see either the previous
  // extraction or this one, never a window with the document missing.
  if (inc.mode != IncrementalMode::kOff) {
    store::Collection* index_docs = db_->GetCollection(kIndexesCollection);
    index_docs->CreateIndex("endpoint_url");
    Status persisted =
        index_docs->Replace(url_filter, indexes->ToJson()).status();
    if (!persisted.ok()) return fail(std::move(persisted));
  }
  {
    Json doc = std::move(summary_doc);
    doc.Set("extracted_day", today);
    doc.Set("content_hash", content_hash);
    Status persisted = summaries->Replace(url_filter, std::move(doc)).status();
    if (!persisted.ok()) return fail(std::move(persisted));
  }
  {
    Json doc = clusters.ToJson();
    doc.Set("extracted_day", today);
    Status persisted =
        cluster_docs->Replace(url_filter, std::move(doc)).status();
    if (!persisted.ok()) return fail(std::move(persisted));
  }
  report.persist_ms = sw.ElapsedMillis();

  store_fingerprints();
  record_defense();
  record_attempt(true);
  HBOLD_LOG(kDebug) << "processed " << url << " classes=" << report.classes
                    << " clusters=" << report.clusters << " strategy="
                    << report.extraction.strategy_used;
  return report;
}

DailyReport Server::RunDailyUpdate() {
  return RunDailyCycle(options_.parallelism);
}

DailyReport Server::RunDailyCycle(int parallelism) {
  // One pool serves both layers: pipelines fan out over it AND each
  // pipeline's query batches are submitted back into it (the
  // caller-participates claim loops of ParallelFor and QueryBatch make
  // that nesting deadlock-free). The pool is sized to `parallelism` and
  // never grown for batching, so total threads honor the ServerOptions
  // contract; at parallelism 1 batch jobs simply run inline on the
  // cycle's own thread — the simulated overlap figures are computed from
  // the batch width either way, so reports do not depend on the pool's
  // existence.
  if (parallelism <= 1) return RunDailyCycleOn(nullptr, 1);
  // No pool when there is at most one pipeline to run — spawning and
  // joining workers for zero overlap would be pure overhead on the quiet
  // days of a multi-day simulation. (The due list is recomputed inside
  // RunDailyCycleOn from the same registry state; DueToday is read-only,
  // so the two computations agree.)
  if (scheduler_.DueToday(registry_.Snapshot(), timeline_->NowDay()).size() <=
      1) {
    return RunDailyCycleOn(nullptr, parallelism);
  }
  ThreadPool pool(static_cast<size_t>(parallelism));
  return RunDailyCycleOn(&pool, parallelism);
}

endpoint::QueryEngineStats Server::SumEngineStats() const {
  endpoint::QueryEngineStats total;
  for (const auto& [url, ep] : network_) {
    if (ep != nullptr) total += ep->engine_stats();
  }
  return total;
}

DailyReport Server::RunDailyCycleOn(ThreadPool* pool, int parallelism) {
  DailyReport daily;
  daily.day = timeline_->NowDay();
  daily.parallelism = std::max(1, parallelism);

  // Data evolves first: every attached endpoint applies its seeded
  // mutation days up to today — sequentially, in URL order, before the
  // due snapshot — so the whole cycle observes one fixed world state.
  // Endpoints without a mutation model no-op.
  for (auto& [ep_url, ep] : network_) {
    if (ep != nullptr) ep->AdvanceDataDay(daily.day);
  }

  const endpoint::QueryEngineStats engine_before = SumEngineStats();

  // Fix the due list from an immutable snapshot before any worker starts
  // mutating bookkeeping; `due` is in registry (insertion) order.
  std::vector<std::string> due =
      scheduler_.DueToday(registry_.Snapshot(), daily.day);
  daily.due = due.size();

  Stopwatch wall;
  std::vector<std::optional<Result<PipelineReport>>> slots(due.size());
  std::vector<PipelineCost> costs(due.size());
  ThreadPool* pool_ptr = daily.parallelism > 1 ? pool : nullptr;
  ThreadPool::ParallelFor(pool_ptr, due.size(), [&](size_t i) {
    slots[i] = ProcessEndpointImpl(due[i], pool_ptr, &costs[i]);
  });
  daily.wall_ms = wall.ElapsedMillis();

  // Merge in due-list order — the report is independent of worker
  // completion order. The latency ledger replays deterministic list
  // scheduling over the simulated extraction latencies — failed attempts
  // included: a timed-out extraction still spent its queries' latency —
  // giving the cycle's simulated duration (makespan) next to its cost
  // (sum). A second ledger replays the same schedule with each pipeline
  // shortened to its intra-pipeline makespan — the duration when batched
  // queries overlap inside pipelines too.
  WorkerLatencyLedger ledger(static_cast<size_t>(daily.parallelism));
  WorkerLatencyLedger batched_ledger(static_cast<size_t>(daily.parallelism));
  daily.outcomes.reserve(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    Result<PipelineReport>& result = *slots[i];
    ledger.Assign(costs[i].latency_ms);
    batched_ledger.Assign(costs[i].intra_ms);
    daily.outcomes.push_back(DueOutcome{due[i], result.ok(),
                                        costs[i].latency_ms,
                                        costs[i].intra_ms});
    if (result.ok()) {
      ++daily.succeeded;
      if (result->reused_cluster_schema) ++daily.reused;
      if (result->probed) ++daily.probes;
      if (result->probe_skipped) ++daily.probe_skips;
      if (result->delta_extracted) ++daily.delta_extractions;
      if (result->probe_mismatch) ++daily.probe_mismatches;
      if (result->forced_refresh) ++daily.forced_refreshes;
      if (result->quarantine_entered) ++daily.quarantines_entered;
      if (result->quarantine_exited) ++daily.quarantines_exited;
      const IncrementalMode mode = options_.incremental.mode;
      if (mode == IncrementalMode::kDelta ||
          mode == IncrementalMode::kBounded) {
        ++daily.staleness_histogram[result->staleness_days];
      }
      daily.reports.push_back(std::move(*result));
    } else {
      ++daily.failed;
      HBOLD_LOG(kDebug) << "daily update failed for " << due[i] << ": "
                        << result.status().ToString();
    }
  }
  daily.sum_latency_ms = ledger.TotalMs();
  daily.makespan_ms = ledger.MakespanMs();
  daily.batched_makespan_ms = batched_ledger.MakespanMs();
  // Engine counters are cumulative per endpoint; the cycle's share is the
  // delta. No queries are in flight here (all workers joined above).
  const endpoint::QueryEngineStats engine_delta =
      SumEngineStats() - engine_before;
  daily.plan_cache_hits = engine_delta.plan_cache_hits;
  daily.plan_cache_misses = engine_delta.plan_cache_misses;
  daily.hash_join_builds = engine_delta.hash_join_builds;
  return daily;
}

Status Server::PersistRegistry() {
  store::Collection* c = db_->GetCollection(kRegistryCollection);
  Json wrapper = Json::MakeObject();
  wrapper.Set("records", registry_.ToJson());
  return c->Replace(Json::MakeObject(), std::move(wrapper)).status();
}

Status Server::LoadRegistry() {
  const store::Collection* c = db_->FindCollection(kRegistryCollection);
  if (c == nullptr) return Status::NotFound("no registry collection");
  auto doc = c->FindOne(Json::MakeObject());
  if (!doc.has_value()) return Status::NotFound("registry document missing");
  const Json* records = doc->Find("records");
  if (records == nullptr) {
    return Status::InvalidArgument("registry document malformed");
  }
  return registry_.LoadJson(*records);
}

}  // namespace hbold
