#include "hbold/server.h"

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "cluster/cluster_schema.h"
#include "cluster/louvain.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "schema/schema_summary.h"

namespace hbold {

namespace {
ServerOptions WithRefreshAge(int64_t refresh_age_days) {
  ServerOptions options;
  options.refresh_age_days = refresh_age_days;
  return options;
}
}  // namespace

Server::Server(store::Database* db, SimClock* clock, int64_t refresh_age_days)
    : Server(db, clock, WithRefreshAge(refresh_age_days)) {}

Server::Server(store::Database* db, SimClock* clock,
               const ServerOptions& options)
    : db_(db),
      clock_(clock),
      options_(options),
      scheduler_(options.refresh_age_days) {}

void Server::AttachEndpoint(const std::string& url,
                            endpoint::SparqlEndpoint* ep) {
  network_[url] = ep;
}

void Server::DetachEndpoint(const std::string& url) { network_.erase(url); }

void Server::SetQueryBatchWidthOverride(const std::string& url, int width) {
  if (width <= 0) {
    width_overrides_.erase(url);
  } else {
    width_overrides_[url] = width;
  }
}

int Server::QueryBatchWidthFor(const std::string& url) const {
  auto it = width_overrides_.find(url);
  int width = it != width_overrides_.end() ? it->second
                                           : options_.query_batch_width;
  return std::max(1, width);
}

bool Server::RegisterEndpoint(endpoint::EndpointRecord record) {
  return registry_.Add(std::move(record));
}

Result<PipelineReport> Server::ProcessEndpoint(const std::string& url) {
  return ProcessEndpointImpl(url, nullptr, nullptr);
}

Result<PipelineReport> Server::ProcessEndpointImpl(const std::string& url,
                                                   ThreadPool* pool,
                                                   PipelineCost* cost) {
  PipelineReport report;
  report.url = url;
  const int64_t today = clock_->NowDay();

  // Bookkeeping writes go through the registry's serialized update path so
  // concurrent pipelines never race on a shared record.
  auto record_attempt = [&](bool success) {
    registry_.UpdateRecord(url, [&](endpoint::EndpointRecord& r) {
      extraction::RefreshScheduler::RecordAttempt(&r, today, success);
    });
  };
  auto charge = [&] {
    if (cost != nullptr) {
      cost->latency_ms = report.extraction.total_latency_ms;
      cost->intra_ms = report.extraction.intra_makespan_ms;
    }
  };
  auto fail = [&](Status status) -> Result<PipelineReport> {
    charge();
    record_attempt(false);
    return status;
  };
  if (cost != nullptr) *cost = PipelineCost{};

  auto net = network_.find(url);
  if (net == network_.end()) {
    return fail(Status::Unavailable("no route to endpoint " + url));
  }

  const IncrementalOptions& inc = options_.incremental;
  Json url_filter = Json::MakeObject();
  url_filter.Set("endpoint_url", url);

  // Incremental prelude: one batched change probe, diffed against the
  // fingerprints the registry kept from the last successful run. The
  // probe is charged like any other query, so the accounting ledgers see
  // its cost.
  endpoint::ChangeProbe probe;
  bool have_probe = false;
  bool generation_match = false;
  std::vector<std::string> dirty;
  std::vector<std::string> removed;
  if (inc.mode != IncrementalMode::kOff) {
    auto probed = net->second->ProbeChanges();
    if (!probed.ok()) {
      // Endpoints without probe support just take the full pipeline; a
      // dark endpoint aborts the attempt like any other query would.
      if (!probed.status().IsUnsupported()) return fail(probed.status());
    } else {
      probe = std::move(*probed);
      have_probe = true;
      report.probed = true;
      report.extraction.queries_issued += 1;
      report.extraction.rows_transferred += probe.classes.size();
      report.extraction.total_latency_ms += probe.latency_ms;
      report.extraction.intra_makespan_ms += probe.latency_ms;
      std::optional<endpoint::EndpointRecord> rec = registry_.GetRecord(url);
      std::set<std::string> current;
      for (const endpoint::ClassFingerprint& cf : probe.classes) {
        current.insert(cf.class_iri);
        uint64_t prev = 0;
        bool known = false;
        if (rec.has_value()) {
          auto it = rec->class_fingerprints.find(cf.class_iri);
          known = it != rec->class_fingerprints.end() &&
                  ParseHexU64(it->second, &prev);
        }
        // Classes the fingerprints have never seen are dirty defensively.
        if (!known || prev != cf.version) dirty.push_back(cf.class_iri);
      }
      if (rec.has_value()) {
        uint64_t prev_gen = 0;
        generation_match = !rec->probed_generation.empty() &&
                           ParseHexU64(rec->probed_generation, &prev_gen) &&
                           prev_gen == probe.store_generation;
        for (const auto& [iri, version] : rec->class_fingerprints) {
          if (current.count(iri) == 0) removed.push_back(iri);
        }
      }
      report.dirty_classes = dirty.size();
      report.removed_classes = removed.size();
    }
  }

  // Fingerprints advance only on success, so a failed attempt leaves its
  // classes dirty for tomorrow's probe.
  auto store_fingerprints = [&] {
    if (!have_probe) return;
    registry_.UpdateRecord(url, [&](endpoint::EndpointRecord& r) {
      r.probed_generation = HexU64(probe.store_generation);
      r.class_fingerprints.clear();
      for (const endpoint::ClassFingerprint& cf : probe.classes) {
        r.class_fingerprints[cf.class_iri] = HexU64(cf.version);
      }
    });
  };

  const store::Collection* summaries_ro =
      db_->FindCollection(kSummariesCollection);
  std::optional<Json> stored_summary_doc;
  if (summaries_ro != nullptr) {
    stored_summary_doc = summaries_ro->FindOne(url_filter);
  }

  // Probe-skip: the digest is quiet AND the store generation has not
  // moved since the last probe — nothing downstream can have changed, so
  // the whole pipeline collapses to the one probe query. A moved
  // generation with a quiet digest means something wrote to the store
  // outside the fingerprinted model (the external-writes safety valve):
  // fall through to a full re-extraction instead of trusting the digest.
  if (inc.mode == IncrementalMode::kDelta && have_probe && generation_match &&
      dirty.empty() && removed.empty() && stored_summary_doc.has_value()) {
    const Json* nodes = stored_summary_doc->Find("nodes");
    const Json* arcs = stored_summary_doc->Find("arcs");
    report.classes =
        nodes != nullptr && nodes->is_array() ? nodes->as_array().size() : 0;
    report.arcs =
        arcs != nullptr && arcs->is_array() ? arcs->as_array().size() : 0;
    report.probe_skipped = true;
    report.reused_cluster_schema = true;
    report.extraction_ms = report.extraction.total_latency_ms;
    charge();
    store_fingerprints();
    record_attempt(true);
    return report;
  }

  // Stage 1: index extraction (pattern strategies with fallback). The
  // batch width comes from the server options; the pool is the daily
  // cycle's own, so intra-pipeline fan-out never spawns extra threads.
  extraction::ExtractionContext context;
  context.pool = pool;
  context.batch_width = static_cast<size_t>(QueryBatchWidthFor(url));

  // kDelta with a dirty digest below the threshold: re-extract ONLY the
  // dirty classes and merge into the stored prior summary. The merge is
  // value-identical to a full extraction by construction (differential
  // tested), so everything downstream is agnostic to which path ran.
  Result<extraction::IndexSummary> indexes =
      Status::Internal("extraction never ran");
  bool delta_ok = false;
  if (inc.mode == IncrementalMode::kDelta && have_probe &&
      (!dirty.empty() || !removed.empty())) {
    const double fraction =
        static_cast<double>(dirty.size() + removed.size()) /
        static_cast<double>(std::max<size_t>(1, probe.classes.size()));
    const store::Collection* indexes_ro =
        db_->FindCollection(kIndexesCollection);
    std::optional<Json> prior_doc;
    if (fraction <= inc.full_refresh_fraction && indexes_ro != nullptr) {
      prior_doc = indexes_ro->FindOne(url_filter);
    }
    if (prior_doc.has_value()) {
      auto prior = extraction::IndexSummary::FromJson(*prior_doc);
      if (prior.ok()) {
        auto partial = extractor_.ExtractClasses(net->second, context, dirty,
                                                 &report.extraction);
        if (partial.ok()) {
          indexes = extraction::MergeDirtyClasses(*prior, *partial, dirty,
                                                  removed);
          delta_ok = true;
          report.delta_extracted = true;
        } else if (!partial.status().IsUnsupported() &&
                   !partial.status().IsTimeout()) {
          return fail(partial.status());
        }
        // Unsupported/Timeout: every restricted strategy fell through
        // (e.g. a paginated-scan-only dialect) — run the full chain.
      }
    }
  }
  if (!delta_ok) {
    indexes = extractor_.Extract(net->second, context, &report.extraction);
    if (!indexes.ok()) return fail(indexes.status());
  }
  indexes->extracted_day = today;
  report.extraction_ms = report.extraction.total_latency_ms;
  charge();

  // Stage 2: Schema Summary — patched in place after a delta merge (quiet
  // class nodes are reused verbatim), rebuilt from scratch otherwise.
  // Both forms are value-identical to FromIndexes on the same summary.
  Stopwatch sw;
  schema::SchemaSummary summary;
  bool patched = false;
  if (delta_ok && stored_summary_doc.has_value()) {
    auto prior_summary = schema::SchemaSummary::FromJson(*stored_summary_doc);
    if (prior_summary.ok()) {
      summary =
          schema::SchemaSummary::PatchedFromIndexes(*prior_summary, *indexes,
                                                    dirty);
      patched = true;
    }
  }
  if (!patched) summary = schema::SchemaSummary::FromIndexes(*indexes);
  report.summary_ms = sw.ElapsedMillis();
  report.classes = summary.NodeCount();
  report.arcs = summary.ArcCount();

  // §3.2 reuse: when the extracted Schema Summary is bit-identical to the
  // stored one, the Cluster Schema cannot have changed — skip clustering
  // and persist, just refresh the bookkeeping. The stored index summary
  // stays untouched too: an unchanged Schema Summary under the simulated
  // mutation model implies unchanged data, so the prior is still exact.
  Json summary_doc = summary.ToJson();
  // The hash is stored as a hex string: JSON numbers are doubles and would
  // truncate 64-bit fingerprints.
  std::string content_hash = HexU64(Fnv64(summary_doc.Dump()));
  if (stored_summary_doc.has_value() &&
      stored_summary_doc->GetString("content_hash") == content_hash) {
    report.reused_cluster_schema = true;
    store_fingerprints();
    record_attempt(true);
    return report;
  }

  // Stage 3: community detection + Cluster Schema (precomputed server-side
  // per §3.2, instead of on-the-fly in the presentation layer). After a
  // delta merge whose class-graph is unchanged (node sequence and arcs
  // identical — e.g. only attribute counts moved), the prior partition is
  // recovered from the stored cluster document instead of re-running
  // Louvain; Louvain is deterministic on the same graph, so the rebuilt
  // Cluster Schema is identical either way.
  sw.Reset();
  cluster::Partition partition;
  bool partition_reused = false;
  if (delta_ok && stored_summary_doc.has_value()) {
    auto prior_summary = schema::SchemaSummary::FromJson(*stored_summary_doc);
    if (prior_summary.ok() &&
        prior_summary->NodeCount() == summary.NodeCount() &&
        prior_summary->ArcCount() == summary.ArcCount()) {
      bool same_graph = true;
      for (size_t i = 0; same_graph && i < summary.NodeCount(); ++i) {
        same_graph = prior_summary->nodes()[i].iri == summary.nodes()[i].iri;
      }
      for (size_t i = 0; same_graph && i < summary.ArcCount(); ++i) {
        const schema::PropertyArc& a = prior_summary->arcs()[i];
        const schema::PropertyArc& b = summary.arcs()[i];
        same_graph = a.src == b.src && a.dst == b.dst && a.iri == b.iri &&
                     a.count == b.count;
      }
      if (same_graph) {
        const store::Collection* clusters_ro =
            db_->FindCollection(kClustersCollection);
        std::optional<Json> prior_cluster_doc;
        if (clusters_ro != nullptr) {
          prior_cluster_doc = clusters_ro->FindOne(url_filter);
        }
        if (prior_cluster_doc.has_value()) {
          auto prior_clusters =
              cluster::ClusterSchema::FromJson(*prior_cluster_doc);
          if (prior_clusters.ok()) {
            partition.reserve(summary.NodeCount());
            partition_reused = true;
            for (size_t i = 0; i < summary.NodeCount(); ++i) {
              int c = prior_clusters->ClusterOf(i);
              if (c < 0) {
                partition.clear();
                partition_reused = false;
                break;
              }
              partition.push_back(static_cast<size_t>(c));
            }
          }
        }
      }
    }
  }
  if (!partition_reused) {
    cluster::UGraph graph = cluster::BuildClassGraph(summary);
    partition = cluster::Louvain(graph);
  }
  cluster::ClusterSchema clusters =
      cluster::ClusterSchema::FromPartition(summary, partition);
  report.cluster_ms = sw.ElapsedMillis();
  report.clusters = clusters.ClusterCount();

  // Stage 4: persist the artifacts, replacing any previous version. Under
  // incremental modes the raw index summary is persisted too — it is the
  // `prior` the next dirty-class merge starts from.
  sw.Reset();
  store::Collection* summaries = db_->GetCollection(kSummariesCollection);
  store::Collection* cluster_docs = db_->GetCollection(kClustersCollection);
  // Retrieval during display is by endpoint URL; keep it indexed (§2.1:
  // the store "improv[es] data recovery performance").
  summaries->CreateIndex("endpoint_url");
  cluster_docs->CreateIndex("endpoint_url");
  // Each artifact is swapped in with an atomic Replace: presentation-layer
  // readers running concurrently with the cycle see either the previous
  // extraction or this one, never a window with the document missing.
  if (inc.mode != IncrementalMode::kOff) {
    store::Collection* index_docs = db_->GetCollection(kIndexesCollection);
    index_docs->CreateIndex("endpoint_url");
    Status persisted =
        index_docs->Replace(url_filter, indexes->ToJson()).status();
    if (!persisted.ok()) return fail(std::move(persisted));
  }
  {
    Json doc = std::move(summary_doc);
    doc.Set("extracted_day", today);
    doc.Set("content_hash", content_hash);
    Status persisted = summaries->Replace(url_filter, std::move(doc)).status();
    if (!persisted.ok()) return fail(std::move(persisted));
  }
  {
    Json doc = clusters.ToJson();
    doc.Set("extracted_day", today);
    Status persisted =
        cluster_docs->Replace(url_filter, std::move(doc)).status();
    if (!persisted.ok()) return fail(std::move(persisted));
  }
  report.persist_ms = sw.ElapsedMillis();

  store_fingerprints();
  record_attempt(true);
  HBOLD_LOG(kDebug) << "processed " << url << " classes=" << report.classes
                    << " clusters=" << report.clusters << " strategy="
                    << report.extraction.strategy_used;
  return report;
}

DailyReport Server::RunDailyUpdate() {
  return RunDailyCycle(options_.parallelism);
}

DailyReport Server::RunDailyCycle(int parallelism) {
  // One pool serves both layers: pipelines fan out over it AND each
  // pipeline's query batches are submitted back into it (the
  // caller-participates claim loops of ParallelFor and QueryBatch make
  // that nesting deadlock-free). The pool is sized to `parallelism` and
  // never grown for batching, so total threads honor the ServerOptions
  // contract; at parallelism 1 batch jobs simply run inline on the
  // cycle's own thread — the simulated overlap figures are computed from
  // the batch width either way, so reports do not depend on the pool's
  // existence.
  if (parallelism <= 1) return RunDailyCycleOn(nullptr, 1);
  // No pool when there is at most one pipeline to run — spawning and
  // joining workers for zero overlap would be pure overhead on the quiet
  // days of a multi-day simulation. (The due list is recomputed inside
  // RunDailyCycleOn from the same registry state; DueToday is read-only,
  // so the two computations agree.)
  if (scheduler_.DueToday(registry_.Snapshot(), clock_->NowDay()).size() <=
      1) {
    return RunDailyCycleOn(nullptr, parallelism);
  }
  ThreadPool pool(static_cast<size_t>(parallelism));
  return RunDailyCycleOn(&pool, parallelism);
}

endpoint::QueryEngineStats Server::SumEngineStats() const {
  endpoint::QueryEngineStats total;
  for (const auto& [url, ep] : network_) {
    if (ep != nullptr) total += ep->engine_stats();
  }
  return total;
}

DailyReport Server::RunDailyCycleOn(ThreadPool* pool, int parallelism) {
  DailyReport daily;
  daily.day = clock_->NowDay();
  daily.parallelism = std::max(1, parallelism);

  // Data evolves first: every attached endpoint applies its seeded
  // mutation days up to today — sequentially, in URL order, before the
  // due snapshot — so the whole cycle observes one fixed world state.
  // Endpoints without a mutation model no-op.
  for (auto& [ep_url, ep] : network_) {
    if (ep != nullptr) ep->AdvanceDataDay(daily.day);
  }

  const endpoint::QueryEngineStats engine_before = SumEngineStats();

  // Fix the due list from an immutable snapshot before any worker starts
  // mutating bookkeeping; `due` is in registry (insertion) order.
  std::vector<std::string> due =
      scheduler_.DueToday(registry_.Snapshot(), daily.day);
  daily.due = due.size();

  Stopwatch wall;
  std::vector<std::optional<Result<PipelineReport>>> slots(due.size());
  std::vector<PipelineCost> costs(due.size());
  ThreadPool* pool_ptr = daily.parallelism > 1 ? pool : nullptr;
  ThreadPool::ParallelFor(pool_ptr, due.size(), [&](size_t i) {
    slots[i] = ProcessEndpointImpl(due[i], pool_ptr, &costs[i]);
  });
  daily.wall_ms = wall.ElapsedMillis();

  // Merge in due-list order — the report is independent of worker
  // completion order. The latency ledger replays deterministic list
  // scheduling over the simulated extraction latencies — failed attempts
  // included: a timed-out extraction still spent its queries' latency —
  // giving the cycle's simulated duration (makespan) next to its cost
  // (sum). A second ledger replays the same schedule with each pipeline
  // shortened to its intra-pipeline makespan — the duration when batched
  // queries overlap inside pipelines too.
  WorkerLatencyLedger ledger(static_cast<size_t>(daily.parallelism));
  WorkerLatencyLedger batched_ledger(static_cast<size_t>(daily.parallelism));
  daily.outcomes.reserve(slots.size());
  for (size_t i = 0; i < slots.size(); ++i) {
    Result<PipelineReport>& result = *slots[i];
    ledger.Assign(costs[i].latency_ms);
    batched_ledger.Assign(costs[i].intra_ms);
    daily.outcomes.push_back(DueOutcome{due[i], result.ok(),
                                        costs[i].latency_ms,
                                        costs[i].intra_ms});
    if (result.ok()) {
      ++daily.succeeded;
      if (result->reused_cluster_schema) ++daily.reused;
      if (result->probed) ++daily.probes;
      if (result->probe_skipped) ++daily.probe_skips;
      if (result->delta_extracted) ++daily.delta_extractions;
      daily.reports.push_back(std::move(*result));
    } else {
      ++daily.failed;
      HBOLD_LOG(kDebug) << "daily update failed for " << due[i] << ": "
                        << result.status().ToString();
    }
  }
  daily.sum_latency_ms = ledger.TotalMs();
  daily.makespan_ms = ledger.MakespanMs();
  daily.batched_makespan_ms = batched_ledger.MakespanMs();
  // Engine counters are cumulative per endpoint; the cycle's share is the
  // delta. No queries are in flight here (all workers joined above).
  const endpoint::QueryEngineStats engine_delta =
      SumEngineStats() - engine_before;
  daily.plan_cache_hits = engine_delta.plan_cache_hits;
  daily.plan_cache_misses = engine_delta.plan_cache_misses;
  daily.hash_join_builds = engine_delta.hash_join_builds;
  return daily;
}

Status Server::PersistRegistry() {
  store::Collection* c = db_->GetCollection(kRegistryCollection);
  Json wrapper = Json::MakeObject();
  wrapper.Set("records", registry_.ToJson());
  return c->Replace(Json::MakeObject(), std::move(wrapper)).status();
}

Status Server::LoadRegistry() {
  const store::Collection* c = db_->FindCollection(kRegistryCollection);
  if (c == nullptr) return Status::NotFound("no registry collection");
  auto doc = c->FindOne(Json::MakeObject());
  if (!doc.has_value()) return Status::NotFound("registry document missing");
  const Json* records = doc->Find("records");
  if (records == nullptr) {
    return Status::InvalidArgument("registry document malformed");
  }
  return registry_.LoadJson(*records);
}

}  // namespace hbold
