#include "hbold/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"

namespace hbold {

namespace {

/// Stable (seed, url, day) coin in [0, 1): top 53 bits of an FNV-1a hash
/// over a canonical key string. Identical on every platform and in every
/// deployment shape, which is what keeps the death calendar — and with it
/// the whole simulated history — shard-invariant.
double ChurnCoin(uint64_t seed, const std::string& url, int64_t day) {
  std::string key = url;
  key += '|';
  key += std::to_string(day);
  key += '|';
  key += std::to_string(seed);
  return static_cast<double>(Fnv64(key) >> 11) /
         9007199254740992.0;  // 2^53
}

std::string HexFingerprint(uint64_t h) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

// ---------------------------------------------------------------- churn

void ChurnModel::ScheduleArrival(int64_t day, endpoint::EndpointRecord record,
                                 endpoint::SparqlEndpoint* ep) {
  ChurnArrival arrival;
  arrival.day = day;
  arrival.record = std::move(record);
  arrival.endpoint = ep;
  // Keep the schedule sorted by day with ties in insertion order, so
  // arrivals apply in a deterministic sequence.
  auto it = std::upper_bound(
      arrivals_.begin(), arrivals_.end(), day,
      [](int64_t d, const ChurnArrival& a) { return d < a.day; });
  arrivals_.insert(it, std::move(arrival));
}

int64_t ChurnModel::ArrivalDayFor(const std::string& url, int64_t first_day,
                                  int64_t span) const {
  if (span <= 1) return first_day;
  return first_day +
         static_cast<int64_t>(Fnv64(url + "|arrival|" +
                                    std::to_string(options_.seed)) %
                              static_cast<uint64_t>(span));
}

bool ChurnModel::DiesOn(const std::string& url, int64_t day) const {
  if (options_.death_probability <= 0) return false;
  return ChurnCoin(options_.seed, url, day) < options_.death_probability;
}

std::vector<ChurnArrival> ChurnModel::TakeArrivalsThrough(int64_t day) {
  auto it = std::upper_bound(
      arrivals_.begin(), arrivals_.end(), day,
      [](int64_t d, const ChurnArrival& a) { return d < a.day; });
  std::vector<ChurnArrival> taken(std::make_move_iterator(arrivals_.begin()),
                                  std::make_move_iterator(it));
  arrivals_.erase(arrivals_.begin(), it);
  return taken;
}

// ------------------------------------------------------- adaptive width

AdaptiveWidthController::AdaptiveWidthController(
    const AdaptiveWidthOptions& options, int initial_width)
    : options_(options),
      initial_width_(std::clamp(initial_width, std::max(1, options.min_width),
                                std::max(1, options.max_width))) {}

int AdaptiveWidthController::WidthFor(const std::string& url) const {
  auto it = state_.find(url);
  return it != state_.end() ? it->second.width : initial_width_;
}

int AdaptiveWidthController::Observe(const std::string& url,
                                     bool attempt_failed,
                                     size_t throttle_events) {
  State& s = state_.try_emplace(url, State{initial_width_, 0}).first->second;
  if (attempt_failed || throttle_events > 0) {
    // Back off multiplicatively: the endpoint pushed back (Timeout
    // fallback) or the whole attempt failed — halve the concurrent
    // pressure we put on it tomorrow.
    s.width = std::max(std::max(1, options_.min_width), s.width / 2);
    s.clean_streak = 0;
  } else {
    ++s.clean_streak;
    if (s.clean_streak >= std::max(1, options_.recovery_days) &&
        s.width < options_.max_width) {
      ++s.width;
      s.clean_streak = 0;
    }
  }
  return s.width;
}

// ----------------------------------------------------------------- fleet

Fleet::Fleet(sim::EventLoop* loop, const FleetOptions& options)
    : Fleet(nullptr, loop, options) {}

Fleet::Fleet(SimClock* clock, const FleetOptions& options)
    : Fleet(std::make_unique<sim::EventLoop>(clock), nullptr, options) {}

Fleet::Fleet(std::unique_ptr<sim::EventLoop> owned, sim::EventLoop* loop,
             const FleetOptions& options)
    : owned_loop_(std::move(owned)),
      loop_(loop != nullptr ? loop : owned_loop_.get()),
      options_(options),
      churn_(options.churn),
      widths_(options.adaptive_width,
              std::max(1, options.server.query_batch_width)),
      cycle_process_(loop_, sim::EventKind::kCycleStart, "fleet-cycle") {
  options_.num_shards = std::max(1, options_.num_shards);
  options_.virtual_workers = std::max(1, options_.virtual_workers);
  if (options_.fleet_workers == 0) {
    options_.fleet_workers =
        static_cast<size_t>(options_.num_shards) *
        static_cast<size_t>(std::max(1, options_.server.parallelism));
  }
  dbs_.reserve(options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (int s = 0; s < options_.num_shards; ++s) {
    dbs_.push_back(std::make_unique<store::Database>());
    shards_.push_back(std::make_unique<Server>(
        dbs_.back().get(), static_cast<const sim::Timeline*>(loop_),
        options_.server));
  }
  if (options_.fleet_workers > 1) pool_.emplace(options_.fleet_workers);
}

size_t Fleet::ShardOf(const std::string& url) const {
  return static_cast<size_t>(Fnv64(url) %
                             static_cast<uint64_t>(shards_.size()));
}

bool Fleet::RegisterEndpoint(endpoint::EndpointRecord record) {
  std::string url = record.url;
  if (!shards_[ShardOf(url)]->RegisterEndpoint(std::move(record))) {
    return false;
  }
  registration_order_.push_back(std::move(url));
  return true;
}

void Fleet::AttachEndpoint(const std::string& url,
                           endpoint::SparqlEndpoint* ep) {
  attached_[url] = ep;
  shards_[ShardOf(url)]->AttachEndpoint(url, ep);
}

void Fleet::DetachEndpoint(const std::string& url) {
  attached_.erase(url);
  shards_[ShardOf(url)]->DetachEndpoint(url);
}

endpoint::SparqlEndpoint* Fleet::EndpointFor(const std::string& url) const {
  auto it = attached_.find(url);
  return it == attached_.end() ? nullptr : it->second;
}

void Fleet::ApplyChurn(int64_t day, FleetDayReport* day_report) {
  for (ChurnArrival& arrival : churn_.TakeArrivalsThrough(day)) {
    std::string url = arrival.record.url;
    arrival.record.added_day = day;
    // The §3.1 contract for mid-simulation newcomers: schedulable from
    // the NEXT day, so every deployment shape sees the same due lists.
    arrival.record.first_eligible_day = day + 1;
    if (RegisterEndpoint(std::move(arrival.record))) {
      if (arrival.endpoint != nullptr) AttachEndpoint(url, arrival.endpoint);
      ++day_report->arrivals;
      loop_->Note(sim::EventKind::kChurn, "arrival|" + url);
      HBOLD_LOG(kDebug) << "fleet churn: " << url << " arrived on day "
                        << day;
    } else if (arrival.endpoint != nullptr && attached_.count(url) == 0) {
      // Known URL coming back online (e.g. a portal that died earlier in
      // the simulation): the registry record persists by design, so
      // restore the route and count the recovery as an arrival.
      AttachEndpoint(url, arrival.endpoint);
      ++day_report->arrivals;
      loop_->Note(sim::EventKind::kChurn, "recover|" + url);
      HBOLD_LOG(kDebug) << "fleet churn: " << url << " recovered on day "
                        << day;
    } else {
      HBOLD_LOG(kDebug) << "fleet churn: arrival for " << url << " on day "
                        << day << " ignored (already registered"
                        << (attached_.count(url) > 0 ? " and attached)"
                                                     : ", no endpoint)");
    }
  }
  if (options_.churn.death_probability > 0) {
    std::vector<std::string> victims;
    for (const auto& [url, ep] : attached_) {
      if (churn_.DiesOn(url, day)) victims.push_back(url);
    }
    for (const std::string& url : victims) {
      DetachEndpoint(url);
      ++day_report->deaths;
      loop_->Note(sim::EventKind::kChurn, "death|" + url);
      HBOLD_LOG(kDebug) << "fleet churn: " << url << " died on day " << day;
    }
  }
}

void Fleet::PushAdaptiveWidths() {
  for (const std::string& url : registration_order_) {
    shards_[ShardOf(url)]->SetQueryBatchWidthOverride(url,
                                                      widths_.WidthFor(url));
  }
}

void Fleet::ObserveOutcomes(const FleetDayReport& day_report) {
  std::unordered_map<std::string, size_t> throttle_by_url;
  for (const PipelineReport& r : day_report.reports) {
    throttle_by_url[r.url] = r.extraction.throttle_events;
  }
  for (const DueOutcome& o : day_report.outcomes) {
    auto it = throttle_by_url.find(o.url);
    widths_.Observe(o.url, !o.succeeded,
                    it != throttle_by_url.end() ? it->second : 0);
  }
}

void Fleet::MergeShardReports(std::vector<DailyReport> shard_reports,
                              FleetDayReport* day_report) const {
  // Per-shard lookup tables: due-entry index and pipeline-report index by
  // URL. Each URL lives in exactly one shard, so the merged walk over the
  // global registration order visits every due entry exactly once — in
  // the order a 1-shard registry would have produced.
  std::vector<std::unordered_map<std::string, size_t>> outcome_idx(
      shard_reports.size());
  std::vector<std::unordered_map<std::string, size_t>> report_idx(
      shard_reports.size());
  for (size_t s = 0; s < shard_reports.size(); ++s) {
    for (size_t i = 0; i < shard_reports[s].outcomes.size(); ++i) {
      outcome_idx[s].emplace(shard_reports[s].outcomes[i].url, i);
    }
    for (size_t i = 0; i < shard_reports[s].reports.size(); ++i) {
      report_idx[s].emplace(shard_reports[s].reports[i].url, i);
    }
  }

  for (const std::string& url : registration_order_) {
    const size_t s = ShardOf(url);
    auto oit = outcome_idx[s].find(url);
    if (oit == outcome_idx[s].end()) continue;  // not due today
    const DueOutcome& outcome = shard_reports[s].outcomes[oit->second];
    ++day_report->due;
    // Canonical cost fold: strictly in global registration order, never
    // via the per-shard ledger sums (whose float addition order depends
    // on the deployment).
    day_report->sum_latency_ms += outcome.charged_latency_ms;
    if (outcome.succeeded) {
      ++day_report->succeeded;
    } else {
      ++day_report->failed;
    }
    day_report->outcomes.push_back(outcome);
    auto rit = report_idx[s].find(url);
    if (rit != report_idx[s].end()) {
      PipelineReport& report = shard_reports[s].reports[rit->second];
      if (report.reused_cluster_schema) ++day_report->reused;
      if (report.probed) ++day_report->probes;
      if (report.probe_skipped) ++day_report->probe_skips;
      if (report.delta_extracted) ++day_report->delta_extractions;
      if (report.probe_mismatch) ++day_report->probe_mismatches;
      if (report.forced_refresh) ++day_report->forced_refreshes;
      if (report.quarantine_entered) ++day_report->quarantines_entered;
      if (report.quarantine_exited) ++day_report->quarantines_exited;
      day_report->reports.push_back(std::move(report));
    }
  }

  for (DailyReport& shard : shard_reports) {
    day_report->fleet_makespan_ms =
        std::max(day_report->fleet_makespan_ms, shard.batched_makespan_ms);
    // Per-shard plan-cache / hash-join deployment counters, summed for
    // the fleet view (never part of the canonical dump).
    day_report->plan_cache_hits += shard.plan_cache_hits;
    day_report->plan_cache_misses += shard.plan_cache_misses;
    day_report->hash_join_builds += shard.hash_join_builds;
    // Keyed sum, so the merged histogram is independent of shard count.
    for (const auto& [days_stale, n] : shard.staleness_histogram) {
      day_report->staleness_histogram[days_stale] += n;
    }
    // The pipeline reports were moved into the merged list above; drop
    // the gutted shells rather than publish moved-from objects. The
    // per-shard view keeps its counters, outcomes, and makespans.
    shard.reports.clear();
  }
  day_report->shard_reports = std::move(shard_reports);
}

// ------------------------------------------------- the event-loop chain

void Fleet::ScheduleCycles(int64_t count) {
  if (count <= 0) return;
  const bool chain_idle = cycles_remaining_ == 0;
  cycles_remaining_ += count;
  if (chain_idle) ScheduleCycleAt(loop_->NowMs());
}

void Fleet::ScheduleCycleAt(int64_t start_ms) {
  const int64_t day = start_ms / SimClock::kMillisPerDay;
  // A cycle landing on a day boundary crosses it with an explicit
  // kDayBoundary event — boundaries are scheduled occurrences on the
  // timeline, not clock arithmetic. Catch-up cycles start mid-day and
  // cross no boundary.
  if (start_ms % SimClock::kMillisPerDay == 0 &&
      start_ms > last_boundary_ms_) {
    last_boundary_ms_ = start_ms;
    loop_->ScheduleAt(start_ms, sim::EventKind::kDayBoundary,
                      "day " + std::to_string(day), nullptr);
  }
  // Churn precedes the cycle at the same instant (scheduled first, lower
  // sequence): arrivals/deaths applied for the day the cycle runs in.
  loop_->ScheduleAt(start_ms, sim::EventKind::kChurn,
                    "day " + std::to_string(day), [this] {
                      pending_day_ = FleetDayReport{};
                      pending_day_.day = loop_->NowDay();
                      ApplyChurn(pending_day_.day, &pending_day_);
                      if (options_.adaptive_width.enabled) {
                        PushAdaptiveWidths();
                      }
                    });
  cycle_process_.ActivateAt(start_ms, [this] { RunCycleBody(); });
}

void Fleet::RunCycleBody() {
  const int64_t day = loop_->NowDay();
  const int64_t start_ms = loop_->NowMs();
  FleetDayReport& day_report = pending_day_;  // primed by the kChurn event

  Stopwatch wall;
  std::vector<DailyReport> shard_reports(shards_.size());
  ThreadPool* pool = pool_ ? &*pool_ : nullptr;
  // Shard cycles are tasks on the same pool their pipelines (and their
  // pipelines' query batches) fan out over; every layer's claim loop
  // participates, so one pool serves the whole depth without deadlock
  // and total threads stay at fleet_workers. The loop itself never leaves
  // this thread — workers compute, only the dispatcher schedules.
  ThreadPool::ParallelFor(pool, shards_.size(), [&](size_t s) {
    shard_reports[s] =
        shards_[s]->RunDailyCycleOn(pool, options_.server.parallelism);
  });
  day_report.wall_ms = wall.ElapsedMillis();

  MergeShardReports(std::move(shard_reports), &day_report);
  if (options_.adaptive_width.enabled) ObserveOutcomes(day_report);

  // Price the simulated timeline with the canonical ledger: merged
  // charged latencies, global registration order, virtual_workers wide.
  // Every figure feeding it is deployment-invariant, so the resulting
  // event times (and overrun decisions) are too.
  std::unordered_map<std::string, size_t> throttle_by_url;
  for (const PipelineReport& r : day_report.reports) {
    throttle_by_url[r.url] = r.extraction.throttle_events;
  }
  WorkerLatencyLedger ledger(
      static_cast<size_t>(std::max(1, options_.virtual_workers)));
  for (const DueOutcome& o : day_report.outcomes) {
    const size_t worker = ledger.Assign(o.charged_latency_ms);
    const int64_t finish_ms =
        start_ms + static_cast<int64_t>(std::ceil(ledger.WorkerMs(worker)));
    loop_->ScheduleAt(finish_ms, sim::EventKind::kPipelineComplete,
                      o.url + (o.succeeded ? "" : "|failed"), nullptr);
    auto it = throttle_by_url.find(o.url);
    if (it != throttle_by_url.end() && it->second > 0) {
      loop_->ScheduleAt(finish_ms, sim::EventKind::kThrottle,
                        o.url + "|x" + std::to_string(it->second), nullptr);
    }
  }
  day_report.sim_makespan_ms = ledger.MakespanMs();
  const int64_t complete_ms =
      start_ms + static_cast<int64_t>(std::ceil(day_report.sim_makespan_ms));
  loop_->ScheduleAt(complete_ms, sim::EventKind::kCycleComplete,
                    "day " + std::to_string(day),
                    [this, day] { CompleteCycle(day); });
}

void Fleet::CompleteCycle(int64_t day) {
  FleetDayReport report = std::move(pending_day_);
  pending_day_ = FleetDayReport{};
  const int64_t boundary = (day + 1) * SimClock::kMillisPerDay;
  const int64_t now = loop_->NowMs();
  if (now >= boundary) {
    report.overran_day = true;
    HBOLD_LOG(kWarn) << "fleet day " << day << " overran its boundary ("
                     << report.sim_makespan_ms
                     << " ms canonical makespan); scheduling a catch-up "
                        "cycle";
  }
  collected_days_.push_back(std::move(report));
  const FleetDayReport& done = collected_days_.back();
  if (cycle_complete_handler_) cycle_complete_handler_(done);
  --cycles_remaining_;
  if (cycles_remaining_ > 0) {
    // Overrun -> catch-up: the next cycle starts immediately instead of
    // waiting for a boundary that already passed.
    ScheduleCycleAt(done.overran_day ? now : boundary);
  } else if (!done.overran_day && boundary > last_boundary_ms_) {
    // No further cycles: cross into the next day so the clock contract
    // ("a drained day ends at the next boundary") still holds.
    last_boundary_ms_ = boundary;
    loop_->ScheduleAt(boundary, sim::EventKind::kDayBoundary,
                      "day " + std::to_string(day + 1), nullptr);
  }
}

FleetReport Fleet::TakeReport() {
  FleetReport report;
  report.num_shards = options_.num_shards;
  report.parallelism = std::max(1, options_.server.parallelism);
  report.query_batch_width = std::max(1, options_.server.query_batch_width);
  report.adaptive_width = options_.adaptive_width.enabled;
  report.days = std::move(collected_days_);
  collected_days_.clear();
  return report;
}

FleetDayReport Fleet::RunDay() {
  ScheduleCycles(1);
  loop_->RunUntilIdle();
  FleetDayReport report = std::move(collected_days_.back());
  collected_days_.pop_back();
  return report;
}

FleetReport Fleet::RunSimulation(int64_t days) {
  collected_days_.clear();
  ScheduleCycles(days);
  loop_->RunUntilIdle();
  return TakeReport();
}

// ---------------------------------------------------------------- report

namespace {

/// The deployment-invariant slice of one pipeline report. Incremental
/// markers are emitted only when a probe actually ran, so kOff dumps stay
/// byte-identical to pre-incremental builds (the committed baseline gates
/// on the exact fingerprint).
Json CanonicalPipelineJson(const PipelineReport& r) {
  Json j = Json::MakeObject();
  j.Set("url", r.url);
  j.Set("classes", static_cast<int64_t>(r.classes));
  j.Set("arcs", static_cast<int64_t>(r.arcs));
  j.Set("clusters", static_cast<int64_t>(r.clusters));
  j.Set("reused", r.reused_cluster_schema);
  j.Set("strategy", r.extraction.strategy_used);
  j.Set("queries", static_cast<int64_t>(r.extraction.queries_issued));
  j.Set("rows", static_cast<int64_t>(r.extraction.rows_transferred));
  j.Set("latency_ms", r.extraction.total_latency_ms);
  j.Set("throttle_events",
        static_cast<int64_t>(r.extraction.throttle_events));
  Json fallbacks = Json::MakeArray();
  for (const std::string& f : r.extraction.fallbacks) fallbacks.Append(f);
  j.Set("fallbacks", std::move(fallbacks));
  if (r.probed) {
    j.Set("probed", true);
    j.Set("probe_skipped", r.probe_skipped);
    j.Set("delta", r.delta_extracted);
    j.Set("dirty", static_cast<int64_t>(r.dirty_classes));
    j.Set("removed", static_cast<int64_t>(r.removed_classes));
  }
  // Defense markers are emitted only when they fired, so honest-fleet
  // dumps (and their committed fingerprints) are byte-identical to
  // pre-hardening builds.
  if (r.probe_mismatch) j.Set("probe_mismatch", true);
  if (r.forced_refresh) j.Set("forced_refresh", true);
  if (r.quarantined) j.Set("quarantined", true);
  if (r.quarantine_entered) j.Set("quarantine_entered", true);
  if (r.quarantine_exited) j.Set("quarantine_exited", true);
  if (r.probe_retries > 0) {
    j.Set("probe_retries", static_cast<int64_t>(r.probe_retries));
  }
  if (r.staleness_days > 0) j.Set("staleness_days", r.staleness_days);
  return j;
}

/// The content slice of one pipeline report: what was learned, not how.
Json ContentPipelineJson(const PipelineReport& r) {
  Json j = Json::MakeObject();
  j.Set("url", r.url);
  j.Set("classes", static_cast<int64_t>(r.classes));
  j.Set("arcs", static_cast<int64_t>(r.arcs));
  j.Set("clusters", static_cast<int64_t>(r.clusters));
  j.Set("reused", r.reused_cluster_schema);
  return j;
}

}  // namespace

std::string FleetReport::CanonicalDump() const {
  Json root = Json::MakeObject();
  Json day_array = Json::MakeArray();
  for (const FleetDayReport& day : days) {
    Json d = Json::MakeObject();
    d.Set("day", day.day);
    d.Set("due", static_cast<int64_t>(day.due));
    d.Set("succeeded", static_cast<int64_t>(day.succeeded));
    d.Set("failed", static_cast<int64_t>(day.failed));
    d.Set("reused", static_cast<int64_t>(day.reused));
    // Conditional like the per-report markers: absent under kOff so the
    // committed pre-incremental fingerprints still match.
    if (day.probes > 0) {
      d.Set("probes", static_cast<int64_t>(day.probes));
      d.Set("probe_skips", static_cast<int64_t>(day.probe_skips));
      d.Set("delta_extractions",
            static_cast<int64_t>(day.delta_extractions));
    }
    // Defense counters and the staleness histogram, likewise emitted only
    // when something moved (honest kOff/kTrack days stay byte-identical).
    if (day.probe_mismatches > 0) {
      d.Set("probe_mismatches", static_cast<int64_t>(day.probe_mismatches));
    }
    if (day.forced_refreshes > 0) {
      d.Set("forced_refreshes", static_cast<int64_t>(day.forced_refreshes));
    }
    if (day.quarantines_entered > 0) {
      d.Set("quarantines_entered",
            static_cast<int64_t>(day.quarantines_entered));
    }
    if (day.quarantines_exited > 0) {
      d.Set("quarantines_exited",
            static_cast<int64_t>(day.quarantines_exited));
    }
    if (!day.staleness_histogram.empty()) {
      Json hist = Json::MakeObject();
      for (const auto& [days_stale, n] : day.staleness_histogram) {
        hist.Set(std::to_string(days_stale), static_cast<int64_t>(n));
      }
      d.Set("staleness_histogram", std::move(hist));
    }
    d.Set("arrivals", static_cast<int64_t>(day.arrivals));
    d.Set("deaths", static_cast<int64_t>(day.deaths));
    d.Set("sum_latency_ms", day.sum_latency_ms);
    Json outcomes = Json::MakeArray();
    for (const DueOutcome& o : day.outcomes) {
      Json oj = Json::MakeObject();
      oj.Set("url", o.url);
      oj.Set("ok", o.succeeded);
      // charged_intra_ms is deliberately absent: it is a function of the
      // (possibly adaptive) batch width, a deployment knob.
      oj.Set("latency_ms", o.charged_latency_ms);
      outcomes.Append(std::move(oj));
    }
    d.Set("outcomes", std::move(outcomes));
    Json reports = Json::MakeArray();
    for (const PipelineReport& r : day.reports) {
      reports.Append(CanonicalPipelineJson(r));
    }
    d.Set("reports", std::move(reports));
    day_array.Append(std::move(d));
  }
  root.Set("days", std::move(day_array));
  return root.Dump();
}

std::string FleetReport::Fingerprint() const {
  return HexFingerprint(Fnv64(CanonicalDump()));
}

std::string FleetReport::ContentDump() const {
  Json root = Json::MakeObject();
  Json day_array = Json::MakeArray();
  for (const FleetDayReport& day : days) {
    Json d = Json::MakeObject();
    d.Set("day", day.day);
    d.Set("due", static_cast<int64_t>(day.due));
    d.Set("succeeded", static_cast<int64_t>(day.succeeded));
    d.Set("failed", static_cast<int64_t>(day.failed));
    d.Set("reused", static_cast<int64_t>(day.reused));
    d.Set("arrivals", static_cast<int64_t>(day.arrivals));
    d.Set("deaths", static_cast<int64_t>(day.deaths));
    Json outcomes = Json::MakeArray();
    for (const DueOutcome& o : day.outcomes) {
      Json oj = Json::MakeObject();
      oj.Set("url", o.url);
      oj.Set("ok", o.succeeded);
      outcomes.Append(std::move(oj));
    }
    d.Set("outcomes", std::move(outcomes));
    Json reports = Json::MakeArray();
    for (const PipelineReport& r : day.reports) {
      reports.Append(ContentPipelineJson(r));
    }
    d.Set("reports", std::move(reports));
    day_array.Append(std::move(d));
  }
  root.Set("days", std::move(day_array));
  return root.Dump();
}

std::string FleetReport::ContentFingerprint() const {
  return HexFingerprint(Fnv64(ContentDump()));
}

Json FleetReport::ToJson() const {
  Json root = Json::MakeObject();
  root.Set("num_shards", static_cast<int64_t>(num_shards));
  root.Set("parallelism", static_cast<int64_t>(parallelism));
  root.Set("query_batch_width", static_cast<int64_t>(query_batch_width));
  root.Set("adaptive_width", adaptive_width);
  root.Set("fingerprint", Fingerprint());
  Json day_array = Json::MakeArray();
  for (const FleetDayReport& day : days) {
    Json d = Json::MakeObject();
    d.Set("day", day.day);
    d.Set("due", static_cast<int64_t>(day.due));
    d.Set("succeeded", static_cast<int64_t>(day.succeeded));
    d.Set("failed", static_cast<int64_t>(day.failed));
    d.Set("reused", static_cast<int64_t>(day.reused));
    d.Set("probes", static_cast<int64_t>(day.probes));
    d.Set("probe_skips", static_cast<int64_t>(day.probe_skips));
    d.Set("delta_extractions", static_cast<int64_t>(day.delta_extractions));
    d.Set("probe_mismatches", static_cast<int64_t>(day.probe_mismatches));
    d.Set("forced_refreshes", static_cast<int64_t>(day.forced_refreshes));
    d.Set("quarantines_entered",
          static_cast<int64_t>(day.quarantines_entered));
    d.Set("quarantines_exited",
          static_cast<int64_t>(day.quarantines_exited));
    {
      Json hist = Json::MakeObject();
      for (const auto& [days_stale, n] : day.staleness_histogram) {
        hist.Set(std::to_string(days_stale), static_cast<int64_t>(n));
      }
      d.Set("staleness_histogram", std::move(hist));
    }
    d.Set("arrivals", static_cast<int64_t>(day.arrivals));
    d.Set("deaths", static_cast<int64_t>(day.deaths));
    d.Set("sum_latency_ms", day.sum_latency_ms);
    d.Set("fleet_makespan_ms", day.fleet_makespan_ms);
    d.Set("sim_makespan_ms", day.sim_makespan_ms);
    d.Set("wall_ms", day.wall_ms);
    d.Set("overran_day", day.overran_day);
    d.Set("plan_cache_hits", static_cast<int64_t>(day.plan_cache_hits));
    d.Set("plan_cache_misses", static_cast<int64_t>(day.plan_cache_misses));
    d.Set("hash_join_builds", static_cast<int64_t>(day.hash_join_builds));
    Json shards = Json::MakeArray();
    for (const DailyReport& s : day.shard_reports) {
      Json sj = Json::MakeObject();
      sj.Set("due", static_cast<int64_t>(s.due));
      sj.Set("succeeded", static_cast<int64_t>(s.succeeded));
      sj.Set("failed", static_cast<int64_t>(s.failed));
      sj.Set("makespan_ms", s.makespan_ms);
      sj.Set("batched_makespan_ms", s.batched_makespan_ms);
      shards.Append(std::move(sj));
    }
    d.Set("shards", std::move(shards));
    day_array.Append(std::move(d));
  }
  root.Set("days", std::move(day_array));
  return root;
}

}  // namespace hbold
