#ifndef HBOLD_HBOLD_VISUAL_QUERY_H_
#define HBOLD_HBOLD_VISUAL_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "endpoint/endpoint.h"
#include "schema/schema_summary.h"
#include "sparql/query_builder.h"

namespace hbold {

/// The visual interface for querying the endpoint: the user clicks a class
/// in the Schema Summary, ticks attributes, follows property arcs to
/// connected classes and adds filters; H-BOLD "automatically generates
/// SPARQL queries" from those gestures (abstract, §1).
///
/// Each selected class gets a variable named after its label (lowercased,
/// de-duplicated); attribute selections add OPTIONAL-free triple patterns
/// plus projection.
class VisualQuery {
 public:
  /// `summary` must outlive the query.
  explicit VisualQuery(const schema::SchemaSummary& summary)
      : summary_(summary) {}

  /// Starts (or joins) a selection on class `node`. Returns the variable
  /// name bound to that class's instances. Invalid nodes return "".
  std::string SelectClass(size_t node);

  /// Projects attribute `attribute_iri` of the selected class `node`
  /// (adds `?var <attr> ?attr_var`). Returns the attribute variable name,
  /// "" if the class is not selected.
  std::string SelectAttribute(size_t node, const std::string& attribute_iri,
                              bool optional = false);

  /// Follows an arc of the Schema Summary from a selected class: adds
  /// `?src <property> ?dst` and selects the destination class. Returns the
  /// destination variable, "" on error.
  std::string FollowArc(const schema::PropertyArc& arc);

  /// Adds FILTER regex on an attribute variable. `pattern` is the user's
  /// search text: by default every regex metacharacter is escaped so the
  /// filter matches the text literally (a label like "C++ (draft)" is a
  /// valid search, not a broken regex). Pass `literal_text = false` to
  /// hand through a real regular expression instead.
  void FilterRegex(const std::string& var, const std::string& pattern,
                   bool case_insensitive = false, bool literal_text = true);
  /// Adds FILTER (?var op value). Numeric-looking values are emitted as
  /// numeric literals; everything else is emitted as a quoted, escaped
  /// string literal — raw user strings can never inject query syntax.
  void FilterCompare(const std::string& var, const std::string& op,
                     const std::string& value);

  void SetLimit(size_t limit) { limit_ = limit; }
  void SetDistinct(bool distinct) { distinct_ = distinct; }

  /// Generated SPARQL text for the current selection.
  std::string GenerateSparql() const;

  /// Convenience: generates and runs the query.
  Result<endpoint::QueryOutcome> Execute(endpoint::SparqlEndpoint* ep) const;

 private:
  std::string VarForNode(size_t node);

  const schema::SchemaSummary& summary_;
  std::vector<std::pair<size_t, std::string>> selected_;  // node -> var
  struct AttrPattern {
    std::string class_var;
    std::string attr_iri;
    std::string attr_var;
    bool optional;
  };
  std::vector<AttrPattern> attributes_;
  struct ArcPattern {
    std::string src_var;
    std::string property;
    std::string dst_var;
  };
  std::vector<ArcPattern> arcs_;
  struct FilterSpec {
    bool is_regex;
    std::string var, a, b;
    bool icase = false;
  };
  std::vector<FilterSpec> filters_;
  std::optional<size_t> limit_;
  bool distinct_ = true;
  size_t var_counter_ = 0;
};

}  // namespace hbold

#endif  // HBOLD_HBOLD_VISUAL_QUERY_H_
