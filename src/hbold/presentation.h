#ifndef HBOLD_HBOLD_PRESENTATION_H_
#define HBOLD_HBOLD_PRESENTATION_H_

#include <set>
#include <string>
#include <vector>

#include "cluster/cluster_schema.h"
#include "common/result.h"
#include "endpoint/endpoint.h"
#include "schema/schema_summary.h"
#include "store/database.h"
#include "viz/force_layout.h"

namespace hbold {

/// Dataset list entry (the selection screen of the presentation layer).
struct DatasetInfo {
  std::string url;
  size_t classes = 0;
  size_t total_instances = 0;
  int64_t extracted_day = -1;
};

/// Point-in-time view of the presentation collections. Capture() copies
/// the summary and cluster documents once via Collection::Snapshot();
/// every read on the object is then lock-free and sees one consistent
/// store state, no matter how many daily-cycle writes land concurrently.
/// This is the read path the serving layer holds across a whole burst of
/// user interactions.
class PresentationSnapshot {
 public:
  PresentationSnapshot() = default;

  static PresentationSnapshot Capture(const store::Database& db);

  /// Datasets with a stored Schema Summary, sorted by URL.
  std::vector<DatasetInfo> ListDatasets() const;

  /// Decodes the stored Schema Summary. `load_ms` (optional) receives the
  /// retrieval+decode time.
  Result<schema::SchemaSummary> LoadSchemaSummary(const std::string& url,
                                                  double* load_ms = nullptr)
      const;

  /// Decodes the precomputed Cluster Schema (§3.2 fast path).
  Result<cluster::ClusterSchema> LoadClusterSchema(const std::string& url,
                                                   double* load_ms = nullptr)
      const;

  /// Raw document accessors (nullptr when absent).
  const Json* FindSummaryDoc(const std::string& url) const;
  const Json* FindClusterDoc(const std::string& url) const;

  size_t dataset_count() const { return summaries_.size(); }

 private:
  std::vector<Json> summaries_;
  std::vector<Json> clusters_;
};

/// H-BOLD's presentation layer against the document store: dataset
/// listing, Schema Summary / Cluster Schema retrieval (measured, for the
/// §3.2 experiment), and the legacy on-the-fly Cluster Schema path.
///
/// Every method reads through a fresh PresentationSnapshot — the daily
/// extraction cycle writes the same collections concurrently, and the
/// snapshot guarantees each call observes one consistent point in time
/// instead of racing document-by-document with the writers.
class Presentation {
 public:
  /// `db` must outlive the presentation layer.
  explicit Presentation(const store::Database* db) : db_(db) {}

  /// Captures a consistent read view of the store's current state.
  PresentationSnapshot Snapshot() const {
    return PresentationSnapshot::Capture(*db_);
  }

  /// Datasets with a stored Schema Summary.
  std::vector<DatasetInfo> ListDatasets() const;

  /// Loads the stored Schema Summary. `load_ms` (optional) receives the
  /// retrieval+decode time.
  Result<schema::SchemaSummary> LoadSchemaSummary(const std::string& url,
                                                  double* load_ms = nullptr)
      const;

  /// New (§3.2) path: the Cluster Schema is read precomputed from the
  /// store.
  Result<cluster::ClusterSchema> LoadClusterSchema(const std::string& url,
                                                   double* load_ms = nullptr)
      const;

  /// Old path, kept as the experimental baseline: load the Schema Summary
  /// and run community detection on-the-fly on every request.
  Result<cluster::ClusterSchema> ComputeClusterSchemaOnTheFly(
      const std::string& url, double* compute_ms = nullptr) const;

 private:
  const store::Database* db_;
};

/// Instance-level drill-down queries issued live against the endpoint when
/// the user descends below the schema level ("the user might then further
/// explore the class, its connections ... and its attributes", §2.2).
namespace drilldown {

/// Sample instances of `class_iri` with their rdfs:label when present.
/// Columns: ?instance, ?label (label optional).
Result<sparql::ResultTable> SampleInstances(endpoint::SparqlEndpoint* ep,
                                            const std::string& class_iri,
                                            size_t limit);

/// Every property/value pair of one resource, ordered by property IRI.
/// Columns: ?p, ?o.
Result<sparql::ResultTable> DescribeResource(endpoint::SparqlEndpoint* ep,
                                             const std::string& resource_iri);

}  // namespace drilldown

/// One interactive exploration over a dataset (Fig. 2): start from the
/// Cluster Schema or the full Schema Summary, focus a class, expand its
/// connections step by step; every partial view reports the number of
/// visible nodes and the percentage of instances covered.
class ExplorationSession {
 public:
  /// Both references must outlive the session.
  ExplorationSession(const schema::SchemaSummary& summary,
                     const cluster::ClusterSchema& clusters)
      : summary_(summary), clusters_(clusters) {}

  /// Step 1 state: nothing expanded; the user is looking at the Cluster
  /// Schema. Selecting a class within a cluster focuses it.
  void FocusClass(size_t node);

  /// Expands the view with every class directly connected to `node`
  /// (Fig. 2 step 3). No-op if `node` is not visible.
  void ExpandClass(size_t node);

  /// Expands until the full Schema Summary is visible (Fig. 2 step 4).
  void ExpandAll();

  /// Clears the exploration back to the Cluster Schema view.
  void Reset();

  const std::set<size_t>& visible() const { return visible_; }
  size_t VisibleNodeCount() const { return visible_.size(); }
  size_t TotalNodeCount() const { return summary_.NodeCount(); }

  /// "the percentage of the instances represented by the graph".
  double CoveragePercent() const;

  /// Arcs with both endpoints visible, as force-layout edges (indexes are
  /// re-mapped to the order of `VisibleNodes()`).
  std::vector<size_t> VisibleNodes() const;
  std::vector<viz::ForceEdge> VisibleEdges() const;

 private:
  const schema::SchemaSummary& summary_;
  const cluster::ClusterSchema& clusters_;
  std::set<size_t> visible_;
};

}  // namespace hbold

#endif  // HBOLD_HBOLD_PRESENTATION_H_
