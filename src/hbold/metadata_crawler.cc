#include "hbold/metadata_crawler.h"

#include <cstdio>
#include <set>

namespace hbold {

std::string MetadataRepositoryCrawler::DiscoveryQuery(
    double min_availability) {
  char threshold[32];
  std::snprintf(threshold, sizeof(threshold), "%.3f", min_availability);
  return std::string("PREFIX sq: <http://sparqles.example.org/ns#>\n") +
         "SELECT ?ep ?url ?avail\n"
         "WHERE {\n"
         "  ?ep a sq:Endpoint .\n"
         "  ?ep sq:url ?url .\n"
         "  ?ep sq:availability ?avail .\n"
         "  FILTER (?avail >= " +
         threshold +
         ") .\n"
         "}";
}

namespace {

/// The unfiltered census query (total entries, for the listed/filtered
/// funnel).
std::string CensusQuery() {
  return "PREFIX sq: <http://sparqles.example.org/ns#>\n"
         "SELECT (COUNT(DISTINCT ?ep) AS ?n) WHERE { ?ep a sq:Endpoint . }";
}

}  // namespace

MetadataCrawlResult MetadataRepositoryCrawler::Merge(
    const std::string& repository_name, const endpoint::QueryOutcome& census,
    const endpoint::QueryOutcome& filtered, int64_t today) {
  MetadataCrawlResult result;
  result.repository_name = repository_name;
  result.endpoints_listed =
      static_cast<size_t>(census.table.ScalarInt("n").value_or(0));

  std::set<std::string> urls;
  for (size_t i = 0; i < filtered.table.num_rows(); ++i) {
    auto url = filtered.table.Cell(i, "url");
    if (!url.has_value()) continue;
    const std::string& u = url->lexical();
    if (!urls.insert(u).second) continue;
    if (registry_->Contains(u)) {
      ++result.already_known;
      continue;
    }
    endpoint::EndpointRecord record;
    record.url = u;
    record.name = u;
    record.source = endpoint::EndpointSource::kPortalCrawl;
    record.added_day = today;
    // Mid-cycle discovery: schedulable from the next day (see
    // PortalCrawler::Merge for the rationale).
    record.first_eligible_day = today + 1;
    registry_->Add(std::move(record));
    ++result.newly_added;
  }
  result.above_threshold = urls.size();
  return result;
}

Result<MetadataCrawlResult> MetadataRepositoryCrawler::Crawl(
    const std::string& repository_name, endpoint::SparqlEndpoint* repository,
    double min_availability, int64_t today) {
  HBOLD_ASSIGN_OR_RETURN(endpoint::QueryOutcome all,
                         repository->Query(CensusQuery()));
  HBOLD_ASSIGN_OR_RETURN(endpoint::QueryOutcome filtered,
                         repository->Query(DiscoveryQuery(min_availability)));
  return Merge(repository_name, all, filtered, today);
}

std::vector<Result<MetadataCrawlResult>> MetadataRepositoryCrawler::CrawlAll(
    const std::vector<MetadataRepositoryTarget>& repositories,
    double min_availability, int64_t today,
    const endpoint::QueryBatchOptions& options) {
  // Two jobs per repository, all repositories in one batch: the fan-out
  // overlaps across repositories while the politeness cap still bounds
  // what any single repository sees in flight.
  std::vector<endpoint::QueryJob> jobs;
  jobs.reserve(repositories.size() * 2);
  for (const MetadataRepositoryTarget& repo : repositories) {
    jobs.push_back(endpoint::QueryJob{repo.endpoint, CensusQuery()});
    jobs.push_back(
        endpoint::QueryJob{repo.endpoint, DiscoveryQuery(min_availability)});
  }
  endpoint::QueryBatchOptions crawl_options = options;
  crawl_options.abort_on_failure = false;  // repositories are independent
  std::vector<Result<endpoint::QueryOutcome>> outcomes =
      endpoint::QueryBatch::Run(jobs, crawl_options);

  std::vector<Result<MetadataCrawlResult>> results;
  results.reserve(repositories.size());
  for (size_t i = 0; i < repositories.size(); ++i) {
    Result<endpoint::QueryOutcome>& census = outcomes[i * 2];
    Result<endpoint::QueryOutcome>& filtered = outcomes[i * 2 + 1];
    if (!census.ok()) {
      results.push_back(census.status());
      continue;
    }
    if (!filtered.ok()) {
      results.push_back(filtered.status());
      continue;
    }
    results.push_back(
        Merge(repositories[i].name, *census, *filtered, today));
  }
  return results;
}

}  // namespace hbold
