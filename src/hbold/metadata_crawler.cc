#include "hbold/metadata_crawler.h"

#include <cstdio>
#include <set>

namespace hbold {

std::string MetadataRepositoryCrawler::DiscoveryQuery(
    double min_availability) {
  char threshold[32];
  std::snprintf(threshold, sizeof(threshold), "%.3f", min_availability);
  return std::string("PREFIX sq: <http://sparqles.example.org/ns#>\n") +
         "SELECT ?ep ?url ?avail\n"
         "WHERE {\n"
         "  ?ep a sq:Endpoint .\n"
         "  ?ep sq:url ?url .\n"
         "  ?ep sq:availability ?avail .\n"
         "  FILTER (?avail >= " +
         threshold +
         ") .\n"
         "}";
}

Result<MetadataCrawlResult> MetadataRepositoryCrawler::Crawl(
    const std::string& repository_name, endpoint::SparqlEndpoint* repository,
    double min_availability, int64_t today) {
  MetadataCrawlResult result;
  result.repository_name = repository_name;

  // Total entries (unfiltered), for the listed/filtered funnel.
  HBOLD_ASSIGN_OR_RETURN(
      endpoint::QueryOutcome all,
      repository->Query(
          "PREFIX sq: <http://sparqles.example.org/ns#>\n"
          "SELECT (COUNT(DISTINCT ?ep) AS ?n) WHERE { ?ep a sq:Endpoint . }"));
  result.endpoints_listed =
      static_cast<size_t>(all.table.ScalarInt("n").value_or(0));

  HBOLD_ASSIGN_OR_RETURN(endpoint::QueryOutcome filtered,
                         repository->Query(DiscoveryQuery(min_availability)));

  std::set<std::string> urls;
  for (size_t i = 0; i < filtered.table.num_rows(); ++i) {
    auto url = filtered.table.Cell(i, "url");
    if (!url.has_value()) continue;
    const std::string& u = url->lexical();
    if (!urls.insert(u).second) continue;
    if (registry_->Contains(u)) {
      ++result.already_known;
      continue;
    }
    endpoint::EndpointRecord record;
    record.url = u;
    record.name = u;
    record.source = endpoint::EndpointSource::kPortalCrawl;
    record.added_day = today;
    registry_->Add(std::move(record));
    ++result.newly_added;
  }
  result.above_threshold = urls.size();
  return result;
}

}  // namespace hbold
