#include "hbold/sim_options.h"

namespace hbold {

ServerOptions SimulationOptions::ToServerOptions() const {
  ServerOptions server;
  server.refresh_age_days = refresh_age_days;
  server.parallelism = server_parallelism.value_or(parallelism);
  server.query_batch_width = server_batch_width.value_or(query_batch_width);
  server.incremental = incremental;
  server.paginated_page_size = paginated_page_size;
  return server;
}

FleetOptions SimulationOptions::ToFleetOptions() const {
  FleetOptions fleet;
  fleet.num_shards = num_shards;
  fleet.server = ToServerOptions();
  fleet.fleet_workers = fleet_workers;
  fleet.churn = churn;
  fleet.adaptive_width = adaptive_width;
  fleet.virtual_workers = virtual_workers;
  return fleet;
}

}  // namespace hbold
