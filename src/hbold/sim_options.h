#ifndef HBOLD_HBOLD_SIM_OPTIONS_H_
#define HBOLD_HBOLD_SIM_OPTIONS_H_

#include <cstdint>
#include <optional>

#include "hbold/fleet.h"
#include "hbold/server.h"

namespace hbold {

/// One sim-aware options surface for a whole simulated deployment.
///
/// Before the event-loop redesign the knobs below were spelled twice:
/// benches and tests built a ServerOptions (refresh age, parallelism,
/// batch width, incremental mode, page size) and then a FleetOptions
/// embedding it, duplicating every shared field at two nesting depths.
/// SimulationOptions is the single flat source of truth: set each knob
/// once, call ToFleetOptions() / ToServerOptions() at the layer boundary.
///
/// Per-layer overrides stay *explicit*: the std::optional fields at the
/// bottom override a shared knob for one layer only, so a config that
/// wants "4 workers per shard cycle but sequential standalone servers"
/// says so in one place instead of mutating two structs after the fact.
struct SimulationOptions {
  // ---- shared policy knobs (previously duplicated across layers) ----
  /// §3.1 refresh age: re-extract after N days (7 in the paper).
  int64_t refresh_age_days = 7;
  /// Worker threads per shard cycle; <= 1 runs pipelines sequentially.
  int parallelism = 1;
  /// Intra-pipeline fan-out cap (ServerOptions::query_batch_width).
  int query_batch_width = 1;
  /// Incremental extraction knobs, shared verbatim by every shard.
  IncrementalOptions incremental;
  /// Page size for the paginated-scan strategy (0 = strategy default).
  size_t paginated_page_size = 0;

  // ---- fleet layer ----
  /// Registry shards = server instances.
  int num_shards = 1;
  /// Workers in the one pool every layer shares (0 = shards *
  /// parallelism; 1 = fully inline).
  size_t fleet_workers = 0;
  ChurnOptions churn;
  AdaptiveWidthOptions adaptive_width;

  // ---- simulation core ----
  /// Virtual hardware width pricing the event timeline
  /// (FleetOptions::virtual_workers) — a simulation parameter, decoupled
  /// from the physical knobs above by design.
  int virtual_workers = 4;

  // ---- explicit per-layer overrides ----
  /// Overrides `parallelism` for the shard cycles only (the fleet pool
  /// size still derives from the shared knob unless fleet_workers is set).
  std::optional<int> server_parallelism;
  /// Overrides `query_batch_width` inside shard pipelines only.
  std::optional<int> server_batch_width;

  /// The server-layer slice (shared knobs + server overrides applied).
  ServerOptions ToServerOptions() const;

  /// The fleet-layer view: everything above, with the embedded
  /// ServerOptions built by ToServerOptions().
  FleetOptions ToFleetOptions() const;
};

}  // namespace hbold

#endif  // HBOLD_HBOLD_SIM_OPTIONS_H_
