#include "hbold/exploration_service.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <memory>
#include <sstream>
#include <utility>

#include "common/hash.h"
#include "common/string_util.h"
#include "hbold/effectiveness.h"
#include "hbold/presentation.h"
#include "hbold/visual_query.h"

namespace hbold {

namespace {

using workload::SessionAction;
using workload::SessionActionKind;
using workload::SessionActionKindName;

double WallMsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Resolves a raw 64-bit pick against an actual population.
size_t Resolve(uint64_t pick, size_t count) {
  return count == 0 ? 0 : static_cast<size_t>(pick % count);
}

void TaskLine(std::ostringstream* ts, const char* task,
              const TaskOutcome& cluster_first, const TaskOutcome& flat) {
  *ts << " task=" << task << " cluster_first=" << cluster_first.interactions
      << '/' << (cluster_first.success ? 1 : 0)
      << " flat=" << flat.interactions << '/' << (flat.success ? 1 : 0);
}

}  // namespace

ExplorationService::ExplorationService(Fleet* fleet,
                                       const ExplorationServiceOptions& options)
    : fleet_(fleet),
      options_(options),
      options_fingerprint_(options.layout.Fingerprint()),
      cache_(options.layout_cache_capacity) {}

size_t ExplorationService::RefreshSnapshots() {
  std::vector<DatasetSnapshot> catalog;
  for (size_t shard = 0; shard < fleet_->num_shards(); ++shard) {
    PresentationSnapshot snap =
        PresentationSnapshot::Capture(fleet_->shard_db(shard));
    for (const DatasetInfo& info : snap.ListDatasets()) {
      Result<schema::SchemaSummary> summary = snap.LoadSchemaSummary(info.url);
      Result<cluster::ClusterSchema> clusters =
          snap.LoadClusterSchema(info.url);
      if (!summary.ok() || !clusters.ok()) continue;
      DatasetSnapshot ds;
      ds.url = info.url;
      ds.extracted_day = info.extracted_day;
      // Fingerprints over the decoded objects' canonical JSON: pure
      // content, independent of store `_id`s or shard layout.
      ds.schema_fingerprint = Fnv64(summary->ToJson().Dump());
      ds.cluster_fingerprint = Fnv64(clusters->ToJson().Dump());
      ds.summary = std::make_shared<const schema::SchemaSummary>(
          std::move(summary).value());
      ds.clusters = std::make_shared<const cluster::ClusterSchema>(
          std::move(clusters).value());
      ds.endpoint = fleet_->EndpointFor(info.url);
      catalog.push_back(std::move(ds));
    }
  }
  std::sort(catalog.begin(), catalog.end(),
            [](const DatasetSnapshot& a, const DatasetSnapshot& b) {
              return a.url < b.url;
            });
  catalog_ = std::move(catalog);
  ++generation_;
  cache_.SetEpoch(generation_);
  return catalog_.size();
}

std::shared_ptr<const viz::LayoutSet> ExplorationService::LayoutsFor(
    const DatasetSnapshot& ds) {
  if (!options_.use_layout_cache) {
    return std::make_shared<const viz::LayoutSet>(viz::ComputeLayoutSet(
        *ds.summary, *ds.clusters, ds.url, options_.layout));
  }
  return cache_.GetOrCompute(
      ds.cluster_fingerprint, options_fingerprint_, [&]() {
        return viz::ComputeLayoutSet(*ds.summary, *ds.clusters, ds.url,
                                     options_.layout);
      });
}

SessionResult ExplorationService::RunSession(
    const workload::SessionPlan& plan) {
  SessionResult result;
  result.session_id = plan.session_id;
  result.interaction_wall_ms.reserve(plan.actions.size());

  std::ostringstream ts;
  ts << std::fixed << std::setprecision(3);

  const DatasetSnapshot* ds = nullptr;
  std::unique_ptr<ExplorationSession> exploration;
  std::unique_ptr<EffectivenessSimulator> simulator;
  std::string sampled_instance;

  for (const SessionAction& action : plan.actions) {
    auto start = std::chrono::steady_clock::now();
    ts << "s" << plan.session_id << ' ' << SessionActionKindName(action.kind);
    const schema::SchemaSummary* summary = ds ? ds->summary.get() : nullptr;
    size_t classes = summary ? summary->NodeCount() : 0;
    switch (action.kind) {
      case SessionActionKind::kListDatasets: {
        ts << " count=" << catalog_.size();
        break;
      }
      case SessionActionKind::kOpenDataset: {
        if (catalog_.empty()) {
          ts << " catalog_empty";
          break;
        }
        ds = &catalog_[Resolve(plan.dataset_rank, catalog_.size())];
        exploration = std::make_unique<ExplorationSession>(*ds->summary,
                                                           *ds->clusters);
        simulator = std::make_unique<EffectivenessSimulator>(*ds->summary,
                                                             *ds->clusters);
        sampled_instance.clear();
        ts << " url=" << ds->url << " classes=" << ds->summary->NodeCount()
           << " clusters=" << ds->clusters->ClusterCount()
           << " instances=" << ds->summary->total_instances()
           << " schema=" << HexU64(ds->schema_fingerprint)
           << " cluster=" << HexU64(ds->cluster_fingerprint)
           << " day=" << ds->extracted_day;
        break;
      }
      case SessionActionKind::kRenderLayouts: {
        if (!ds) {
          ts << " no_dataset";
          break;
        }
        std::shared_ptr<const viz::LayoutSet> layouts = LayoutsFor(*ds);
        ts << " geometry=" << HexU64(layouts->geometry_fingerprint)
           << " cells=" << layouts->treemap.size()
           << " slices=" << layouts->sunburst.size()
           << " circles=" << layouts->circles.size()
           << " edges=" << layouts->bundling.edges.size();
        break;
      }
      case SessionActionKind::kFocusClass: {
        if (!exploration || classes == 0) {
          ts << " no_classes";
          break;
        }
        size_t node = Resolve(action.pick_a, classes);
        exploration->FocusClass(node);
        ts << " node=" << node
           << " label=" << summary->nodes()[node].label
           << " visible=" << exploration->VisibleNodeCount()
           << " coverage=" << exploration->CoveragePercent();
        break;
      }
      case SessionActionKind::kExpandClass: {
        if (!exploration || classes == 0) {
          ts << " no_classes";
          break;
        }
        size_t node = Resolve(action.pick_a, classes);
        exploration->ExpandClass(node);
        ts << " node=" << node
           << " visible=" << exploration->VisibleNodeCount()
           << " coverage=" << exploration->CoveragePercent();
        break;
      }
      case SessionActionKind::kExpandAll: {
        if (!exploration) {
          ts << " no_dataset";
          break;
        }
        exploration->ExpandAll();
        ts << " visible=" << exploration->VisibleNodeCount()
           << " coverage=" << exploration->CoveragePercent();
        break;
      }
      case SessionActionKind::kEffectivenessTask: {
        if (!simulator || classes == 0) {
          ts << " no_classes";
          break;
        }
        switch (action.pick_a % 3) {
          case 0: {
            const std::string& label =
                summary->nodes()[Resolve(action.pick_b, classes)].label;
            TaskLine(&ts, "find_label",
                     simulator->FindClassByLabel(
                         label, ExplorationStrategy::kClusterFirst),
                     simulator->FindClassByLabel(
                         label, ExplorationStrategy::kFlatScan));
            ts << " target=" << label;
            break;
          }
          case 1: {
            TaskLine(&ts, "most_populated",
                     simulator->FindMostPopulatedClass(
                         ExplorationStrategy::kClusterFirst),
                     simulator->FindMostPopulatedClass(
                         ExplorationStrategy::kFlatScan));
            break;
          }
          default: {
            size_t src, dst;
            if (summary->ArcCount() > 0) {
              const schema::PropertyArc& arc =
                  summary->arcs()[Resolve(action.pick_b, summary->ArcCount())];
              src = arc.src;
              dst = arc.dst;
            } else {
              src = Resolve(action.pick_b, classes);
              dst = Resolve(action.pick_b >> 32, classes);
            }
            TaskLine(&ts, "find_connection",
                     simulator->FindConnection(
                         src, dst, ExplorationStrategy::kClusterFirst),
                     simulator->FindConnection(
                         src, dst, ExplorationStrategy::kFlatScan));
            ts << " src=" << src << " dst=" << dst;
            break;
          }
        }
        break;
      }
      case SessionActionKind::kDrilldownSample: {
        if (!ds || classes == 0) {
          ts << " no_classes";
          break;
        }
        if (ds->endpoint == nullptr) {
          ts << " offline";
          break;
        }
        size_t node = Resolve(action.pick_a, classes);
        const std::string& iri = summary->nodes()[node].iri;
        Result<sparql::ResultTable> rows = drilldown::SampleInstances(
            ds->endpoint, iri, options_.drilldown_limit);
        if (!rows.ok()) {
          ts << " node=" << node
             << " error=" << StatusCodeName(rows.status().code());
          break;
        }
        ts << " node=" << node << " rows=" << rows->num_rows();
        if (rows->num_rows() > 0 && rows->num_columns() > 0) {
          size_t row = Resolve(action.pick_b, rows->num_rows());
          auto cell = rows->Cell(row, rows->columns()[0]);
          if (cell) {
            sampled_instance = cell->lexical();
            ts << " picked=" << sampled_instance;
          }
        }
        break;
      }
      case SessionActionKind::kDescribeResource: {
        if (!ds || ds->endpoint == nullptr) {
          ts << " offline";
          break;
        }
        if (sampled_instance.empty()) {
          ts << " no_instance";
          break;
        }
        Result<sparql::ResultTable> rows =
            drilldown::DescribeResource(ds->endpoint, sampled_instance);
        if (!rows.ok()) {
          ts << " error=" << StatusCodeName(rows.status().code());
          break;
        }
        ts << " resource=" << sampled_instance << " rows=" << rows->num_rows();
        break;
      }
      case SessionActionKind::kVisualQuery: {
        if (!ds || classes == 0) {
          ts << " no_classes";
          break;
        }
        size_t node = Resolve(action.pick_a, classes);
        const schema::ClassNode& cls = summary->nodes()[node];
        VisualQuery vq(*summary);
        std::string var = vq.SelectClass(node);
        if (!cls.attributes.empty()) {
          const schema::Attribute& attr =
              cls.attributes[Resolve(action.pick_b, cls.attributes.size())];
          std::string attr_var = vq.SelectAttribute(node, attr.iri);
          // Filter the attribute on the class's display label as a literal
          // search text — exercises the escaping path on every label the
          // data can produce.
          vq.FilterRegex(attr_var, cls.label, /*case_insensitive=*/true);
        }
        vq.SetLimit(10);
        std::string query = vq.GenerateSparql();
        ts << " node=" << node << " sparql=" << HexU64(Fnv64(query))
           << " var=" << var;
        if (ds->endpoint == nullptr) {
          ts << " offline";
          break;
        }
        Result<endpoint::QueryOutcome> outcome = vq.Execute(ds->endpoint);
        if (!outcome.ok()) {
          ts << " error=" << StatusCodeName(outcome.status().code());
          break;
        }
        ts << " rows=" << outcome->table.num_rows()
           << " latency=" << outcome->latency_ms;
        break;
      }
    }
    ts << '\n';
    result.interaction_wall_ms.push_back(WallMsSince(start));
  }

  result.transcript = ts.str();
  result.transcript_fingerprint = Fnv64(result.transcript);
  return result;
}

std::vector<SessionResult> ExplorationService::RunSessions(
    const std::vector<workload::SessionPlan>& plans, ThreadPool* pool) {
  std::vector<SessionResult> results(plans.size());
  ThreadPool::ParallelFor(pool, plans.size(), [&](size_t i) {
    results[i] = RunSession(plans[i]);
  });
  return results;
}

void ExplorationService::ScheduleSessions(
    sim::EventLoop* loop, std::vector<workload::SessionPlan> plans,
    std::vector<int64_t> arrival_times_ms) {
  const size_t n = std::min(plans.size(), arrival_times_ms.size());
  for (size_t i = 0; i < n; ++i) {
    loop->ScheduleAt(
        arrival_times_ms[i], sim::EventKind::kSessionArrival,
        "session " + std::to_string(plans[i].session_id),
        [this, plan = std::move(plans[i])] {
          scheduled_results_.push_back(RunSession(plan));
        });
  }
}

std::vector<SessionResult> ExplorationService::TakeScheduledResults() {
  std::vector<SessionResult> taken = std::move(scheduled_results_);
  scheduled_results_.clear();
  return taken;
}

uint64_t ExplorationService::CombinedFingerprint(
    const std::vector<SessionResult>& results) {
  uint64_t h = 1469598103934665603ULL;
  for (const SessionResult& r : results) {
    for (unsigned char c : r.transcript) {
      h ^= c;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace hbold
