#ifndef HBOLD_HBOLD_FLEET_H_
#define HBOLD_HBOLD_FLEET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/json.h"
#include "common/thread_pool.h"
#include "endpoint/endpoint.h"
#include "endpoint/registry.h"
#include "hbold/server.h"
#include "store/database.h"

namespace hbold {

// ---------------------------------------------------------------- churn

/// Knobs for the seeded churn process (endpoints appearing and dying
/// mid-simulation — the §3.1 reality a single-day cycle cannot express).
struct ChurnOptions {
  /// Per live endpoint, per day: probability its portal goes dark for
  /// good. Deaths are decided by a stable hash of (seed, url, day), so
  /// the death calendar is identical no matter how the registry is
  /// sharded or which threads ran the cycle.
  double death_probability = 0.0;
  uint64_t seed = 0;
};

/// One endpoint joining the fleet mid-simulation.
struct ChurnArrival {
  int64_t day = 0;
  endpoint::EndpointRecord record;
  /// Live endpoint to attach; null registers the record without a route
  /// (the §3.4 case of a submitted URL that never answers).
  endpoint::SparqlEndpoint* endpoint = nullptr;
};

/// Deterministic churn schedule: explicit arrivals plus seeded deaths.
/// Every decision is a pure function of (options, schedule, day), so a
/// simulation replays bit-identically for the same seed regardless of
/// shard count, parallelism, or batching.
class ChurnModel {
 public:
  ChurnModel() = default;
  explicit ChurnModel(const ChurnOptions& options) : options_(options) {}

  const ChurnOptions& options() const { return options_; }

  /// Queues `record` (and its live endpoint, may be null) to join on
  /// `day`. Arrivals are applied in (day, scheduling order).
  void ScheduleArrival(int64_t day, endpoint::EndpointRecord record,
                       endpoint::SparqlEndpoint* ep);

  /// Seeded helper: a stable arrival day in [first_day, first_day + span)
  /// for `url` — lets callers scatter a latent pool over a simulation
  /// window without hand-picking days.
  int64_t ArrivalDayFor(const std::string& url, int64_t first_day,
                        int64_t span) const;

  /// True when the seeded coin says `url`'s portal dies on `day`.
  bool DiesOn(const std::string& url, int64_t day) const;

  /// Pops every scheduled arrival with day <= `day`, in schedule order.
  std::vector<ChurnArrival> TakeArrivalsThrough(int64_t day);

  size_t pending_arrivals() const { return arrivals_.size(); }

 private:
  ChurnOptions options_;
  /// Sorted by day, ties in insertion order (stable).
  std::vector<ChurnArrival> arrivals_;
};

// ------------------------------------------------------- adaptive width

/// Policy knobs for per-endpoint intra-pipeline batch width adaptation.
struct AdaptiveWidthOptions {
  bool enabled = false;
  int min_width = 1;
  int max_width = 8;
  /// Consecutive clean days (success, no throttle events) before a
  /// narrowed endpoint's width steps back up by one.
  int recovery_days = 2;
};

/// Per-endpoint batch-width state carried across simulated days: an
/// endpoint that throttles (Timeout fallbacks) or fails gets its width
/// halved; after `recovery_days` clean days the width creeps back up.
/// Decisions are a pure function of the observed per-endpoint outcome
/// stream, which is itself shard- and batching-invariant, so adaptation
/// never perturbs the fleet's deterministic report content (width only
/// moves duration figures, per the QueryBatch accounting contract).
class AdaptiveWidthController {
 public:
  AdaptiveWidthController(const AdaptiveWidthOptions& options,
                          int initial_width);

  /// Current width for `url` (initial width until first observation).
  int WidthFor(const std::string& url) const;

  /// Feeds one day's outcome for `url`; returns the width to use next.
  int Observe(const std::string& url, bool attempt_failed,
              size_t throttle_events);

 private:
  struct State {
    int width = 1;
    int clean_streak = 0;
  };

  AdaptiveWidthOptions options_;
  int initial_width_;
  std::map<std::string, State> state_;
};

// ----------------------------------------------------------------- fleet

/// Fleet construction knobs.
struct FleetOptions {
  /// Registry shards = server instances. Endpoints map to shards by
  /// stable URL hash, so the assignment survives restarts and re-runs.
  int num_shards = 1;
  /// Per-shard server options (refresh age, per-cycle parallelism,
  /// intra-pipeline batch width).
  ServerOptions server;
  /// Workers in the one pool shared by every layer: shard cycles fan out
  /// over it, each cycle's pipelines fan out over it, and each pipeline's
  /// query batches fan out over it (claim loops keep the nesting
  /// deadlock-free). 0 sizes it to num_shards * server.parallelism;
  /// 1 runs the whole simulation inline on the caller's thread — the
  /// sequential baseline the determinism contract is anchored to.
  size_t fleet_workers = 0;
  ChurnOptions churn;
  AdaptiveWidthOptions adaptive_width;
};

/// One simulated day of the whole fleet, merged across shards.
struct FleetDayReport {
  int64_t day = 0;
  size_t due = 0;
  size_t succeeded = 0;
  size_t failed = 0;
  size_t reused = 0;
  /// Incremental-extraction counters folded in global registration order
  /// (zero under IncrementalMode::kOff).
  size_t probes = 0;
  size_t probe_skips = 0;
  size_t delta_extractions = 0;
  /// Adversarial-endpoint defense counters folded in global registration
  /// order (all zero on honest fleets).
  size_t probe_mismatches = 0;
  size_t forced_refreshes = 0;
  size_t quarantines_entered = 0;
  size_t quarantines_exited = 0;
  /// Staleness histogram merged across shards: days since the last
  /// verified full refresh -> successful endpoint count. Populated only
  /// under the delta modes.
  std::map<int64_t, size_t> staleness_histogram;
  /// Endpoints churned in / gone dark at the start of this day.
  size_t arrivals = 0;
  size_t deaths = 0;
  /// Canonical cost figure: per-attempt charged latencies folded in
  /// global registration order — bit-identical across shard counts,
  /// parallelism, and batching (per-shard ledger sums are NOT used here,
  /// their float addition order would depend on the deployment).
  double sum_latency_ms = 0;
  /// Simulated duration of the day: max over shards of the per-shard
  /// batched makespan — what the fleet clock advances by. A deployment
  /// figure: it legitimately shrinks as shards/parallelism grow.
  double fleet_makespan_ms = 0;
  /// Real wall-clock of the day's cycles.
  double wall_ms = 0;
  /// Query-engine deployment counters summed over shards (each shard's
  /// per-endpoint plan caches): like wall_ms these describe how the day
  /// was computed, not what it computed, and stay out of CanonicalDump().
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t hash_join_builds = 0;
  /// True when fleet_makespan_ms pushed the clock past the next day
  /// boundary — the fleet cannot keep up with daily cycles, and the
  /// shard-count invariance of *day numbering* no longer holds.
  bool overran_day = false;
  /// Pipeline reports and per-due-entry outcomes merged in global
  /// registration order (identical to a 1-shard run's order).
  std::vector<PipelineReport> reports;
  std::vector<DueOutcome> outcomes;
  /// The raw per-shard reports, index = shard id (deployment
  /// introspection; not part of the canonical content). Their pipeline
  /// `reports` vectors are emptied — the merged `reports` list above is
  /// the one copy; counters, outcomes, and makespans remain per shard.
  std::vector<DailyReport> shard_reports;
};

/// Outcome of a multi-day fleet simulation.
struct FleetReport {
  int num_shards = 1;
  int parallelism = 1;
  int query_batch_width = 1;
  bool adaptive_width = false;
  std::vector<FleetDayReport> days;

  /// Everything, deployment figures included.
  Json ToJson() const;

  /// Canonical serialization of the deployment-invariant content: day
  /// numbers, due/succeeded/failed/reused/churn counts, per-attempt
  /// outcomes and charged costs, per-endpoint extraction work, and the
  /// canonical cost sums. Two simulations of the same seeded world are
  /// the same history iff these strings are byte-identical — the
  /// differential anchor for {1,2,4} shards x {1,4} parallelism x
  /// batching on/off.
  std::string CanonicalDump() const;

  /// FNV-1a fingerprint of CanonicalDump(), as 16 hex chars.
  std::string Fingerprint() const;

  /// Serialization of the *content* figures only: what the simulation
  /// computed (class/arc/cluster counts, success/reuse history), with
  /// every access figure (strategy, query counts, latencies, probe and
  /// delta markers) stripped. This is the cross-MODE comparator: a kDelta
  /// run and a kTrack/full run of the same world legitimately differ in
  /// how they talked to the endpoints, but must agree byte-for-byte on
  /// what they learned. CanonicalDump()/Fingerprint() stay the
  /// within-mode deployment-invariance anchor.
  std::string ContentDump() const;

  /// FNV-1a fingerprint of ContentDump(), as 16 hex chars.
  std::string ContentFingerprint() const;
};

/// The multi-server layer: shards the endpoint registry across N Server
/// instances by stable URL hash and drives them through multi-day
/// simulations on one shared pool, advancing the fleet-wide SimClock by
/// each day's makespan.
///
/// Determinism contract: for the same seeded world (endpoints, churn
/// schedule, availability), FleetReport::CanonicalDump() and the merged
/// persisted store contents are byte-identical for ANY (num_shards,
/// fleet_workers, parallelism, query_batch_width, adaptive on/off) —
/// differential-tested in tests/fleet_test.cc and gated in
/// bench_fleet_simulation. Holds as long as no day overruns (see
/// FleetDayReport::overran_day).
class Fleet {
 public:
  /// `clock` must outlive the fleet and must be the same clock the
  /// simulated endpoints were built against, so the whole world shares
  /// one timeline.
  Fleet(SimClock* clock, const FleetOptions& options);

  size_t num_shards() const { return shards_.size(); }
  const FleetOptions& options() const { return options_; }
  SimClock* clock() { return clock_; }

  /// Stable shard assignment: Fnv64(url) % num_shards.
  size_t ShardOf(const std::string& url) const;

  Server& shard(size_t i) { return *shards_[i]; }
  const Server& shard(size_t i) const { return *shards_[i]; }
  store::Database& shard_db(size_t i) { return *dbs_[i]; }
  const store::Database& shard_db(size_t i) const { return *dbs_[i]; }

  ChurnModel& churn() { return churn_; }

  /// Registers a record into its shard. Returns false on duplicate URL.
  bool RegisterEndpoint(endpoint::EndpointRecord record);

  /// Routes a live endpoint to its shard (does not register it).
  void AttachEndpoint(const std::string& url, endpoint::SparqlEndpoint* ep);

  /// Drops the route (record stays; attempts fail and retry daily).
  void DetachEndpoint(const std::string& url);

  /// The live endpoint routed for `url`, or nullptr when none is attached
  /// (never registered, registered without a route, or gone dark). This
  /// is the serving layer's query path: user sessions drill down against
  /// the owning shard's endpoint directly.
  endpoint::SparqlEndpoint* EndpointFor(const std::string& url) const;

  /// Every registered URL, in global registration order — the merge
  /// order of FleetDayReport and the order a 1-shard registry would
  /// hold them in.
  const std::vector<std::string>& registration_order() const {
    return registration_order_;
  }

  /// One simulated day: apply churn, push adaptive widths, run every
  /// shard's cycle on the shared pool, merge reports in global
  /// registration order, observe outcomes, and advance the clock by the
  /// fleet makespan (then to the next day boundary).
  FleetDayReport RunDay();

  /// Runs `days` consecutive daily cycles.
  FleetReport RunSimulation(int64_t days);

 private:
  void ApplyChurn(int64_t day, FleetDayReport* day_report);
  void PushAdaptiveWidths();
  void ObserveOutcomes(const FleetDayReport& day_report);
  void MergeShardReports(std::vector<DailyReport> shard_reports,
                         FleetDayReport* day_report) const;
  void AdvanceClock(int64_t day, FleetDayReport* day_report);

  SimClock* clock_;
  FleetOptions options_;
  std::vector<std::unique_ptr<store::Database>> dbs_;
  std::vector<std::unique_ptr<Server>> shards_;
  /// The one pool all layers share; absent when fleet_workers <= 1
  /// (fully inline simulation).
  std::optional<ThreadPool> pool_;
  ChurnModel churn_;
  AdaptiveWidthController widths_;
  std::vector<std::string> registration_order_;
  /// Live routes, for the death lottery (url-sorted: deterministic).
  std::map<std::string, endpoint::SparqlEndpoint*> attached_;
};

}  // namespace hbold

#endif  // HBOLD_HBOLD_FLEET_H_
