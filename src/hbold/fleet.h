#ifndef HBOLD_HBOLD_FLEET_H_
#define HBOLD_HBOLD_FLEET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <functional>

#include "common/clock.h"
#include "common/json.h"
#include "common/thread_pool.h"
#include "endpoint/endpoint.h"
#include "endpoint/registry.h"
#include "hbold/server.h"
#include "sim/event_loop.h"
#include "store/database.h"

namespace hbold {

// ---------------------------------------------------------------- churn

/// Knobs for the seeded churn process (endpoints appearing and dying
/// mid-simulation — the §3.1 reality a single-day cycle cannot express).
struct ChurnOptions {
  /// Per live endpoint, per day: probability its portal goes dark for
  /// good. Deaths are decided by a stable hash of (seed, url, day), so
  /// the death calendar is identical no matter how the registry is
  /// sharded or which threads ran the cycle.
  double death_probability = 0.0;
  uint64_t seed = 0;
};

/// One endpoint joining the fleet mid-simulation.
struct ChurnArrival {
  int64_t day = 0;
  endpoint::EndpointRecord record;
  /// Live endpoint to attach; null registers the record without a route
  /// (the §3.4 case of a submitted URL that never answers).
  endpoint::SparqlEndpoint* endpoint = nullptr;
};

/// Deterministic churn schedule: explicit arrivals plus seeded deaths.
/// Every decision is a pure function of (options, schedule, day), so a
/// simulation replays bit-identically for the same seed regardless of
/// shard count, parallelism, or batching.
class ChurnModel {
 public:
  ChurnModel() = default;
  explicit ChurnModel(const ChurnOptions& options) : options_(options) {}

  const ChurnOptions& options() const { return options_; }

  /// Queues `record` (and its live endpoint, may be null) to join on
  /// `day`. Arrivals are applied in (day, scheduling order).
  void ScheduleArrival(int64_t day, endpoint::EndpointRecord record,
                       endpoint::SparqlEndpoint* ep);

  /// Seeded helper: a stable arrival day in [first_day, first_day + span)
  /// for `url` — lets callers scatter a latent pool over a simulation
  /// window without hand-picking days.
  int64_t ArrivalDayFor(const std::string& url, int64_t first_day,
                        int64_t span) const;

  /// True when the seeded coin says `url`'s portal dies on `day`.
  bool DiesOn(const std::string& url, int64_t day) const;

  /// Pops every scheduled arrival with day <= `day`, in schedule order.
  std::vector<ChurnArrival> TakeArrivalsThrough(int64_t day);

  size_t pending_arrivals() const { return arrivals_.size(); }

 private:
  ChurnOptions options_;
  /// Sorted by day, ties in insertion order (stable).
  std::vector<ChurnArrival> arrivals_;
};

// ------------------------------------------------------- adaptive width

/// Policy knobs for per-endpoint intra-pipeline batch width adaptation.
struct AdaptiveWidthOptions {
  bool enabled = false;
  int min_width = 1;
  int max_width = 8;
  /// Consecutive clean days (success, no throttle events) before a
  /// narrowed endpoint's width steps back up by one.
  int recovery_days = 2;
};

/// Per-endpoint batch-width state carried across simulated days: an
/// endpoint that throttles (Timeout fallbacks) or fails gets its width
/// halved; after `recovery_days` clean days the width creeps back up.
/// Decisions are a pure function of the observed per-endpoint outcome
/// stream, which is itself shard- and batching-invariant, so adaptation
/// never perturbs the fleet's deterministic report content (width only
/// moves duration figures, per the QueryBatch accounting contract).
class AdaptiveWidthController {
 public:
  AdaptiveWidthController(const AdaptiveWidthOptions& options,
                          int initial_width);

  /// Current width for `url` (initial width until first observation).
  int WidthFor(const std::string& url) const;

  /// Feeds one day's outcome for `url`; returns the width to use next.
  int Observe(const std::string& url, bool attempt_failed,
              size_t throttle_events);

 private:
  struct State {
    int width = 1;
    int clean_streak = 0;
  };

  AdaptiveWidthOptions options_;
  int initial_width_;
  std::map<std::string, State> state_;
};

// ----------------------------------------------------------------- fleet

/// Fleet construction knobs.
struct FleetOptions {
  /// Registry shards = server instances. Endpoints map to shards by
  /// stable URL hash, so the assignment survives restarts and re-runs.
  int num_shards = 1;
  /// Per-shard server options (refresh age, per-cycle parallelism,
  /// intra-pipeline batch width).
  ServerOptions server;
  /// Workers in the one pool shared by every layer: shard cycles fan out
  /// over it, each cycle's pipelines fan out over it, and each pipeline's
  /// query batches fan out over it (claim loops keep the nesting
  /// deadlock-free). 0 sizes it to num_shards * server.parallelism;
  /// 1 runs the whole simulation inline on the caller's thread — the
  /// sequential baseline the determinism contract is anchored to.
  size_t fleet_workers = 0;
  ChurnOptions churn;
  AdaptiveWidthOptions adaptive_width;
  /// Simulated hardware width for the event timeline: the canonical
  /// list-scheduling ledger that prices per-endpoint pipeline-completion
  /// events and the day's sim_makespan_ms replays the merged charged
  /// latencies (global registration order) over this many virtual
  /// workers. A *simulation* parameter, deliberately decoupled from the
  /// physical deployment (fleet_workers, parallelism, shard count), so
  /// event times — and with them overrun decisions and the whole event
  /// history — stay byte-identical across deployment shapes. Physical
  /// knobs only move real wall-clock.
  int virtual_workers = 4;
};

/// One simulated day of the whole fleet, merged across shards.
struct FleetDayReport {
  int64_t day = 0;
  size_t due = 0;
  size_t succeeded = 0;
  size_t failed = 0;
  size_t reused = 0;
  /// Incremental-extraction counters folded in global registration order
  /// (zero under IncrementalMode::kOff).
  size_t probes = 0;
  size_t probe_skips = 0;
  size_t delta_extractions = 0;
  /// Adversarial-endpoint defense counters folded in global registration
  /// order (all zero on honest fleets).
  size_t probe_mismatches = 0;
  size_t forced_refreshes = 0;
  size_t quarantines_entered = 0;
  size_t quarantines_exited = 0;
  /// Staleness histogram merged across shards: days since the last
  /// verified full refresh -> successful endpoint count. Populated only
  /// under the delta modes.
  std::map<int64_t, size_t> staleness_histogram;
  /// Endpoints churned in / gone dark at the start of this day.
  size_t arrivals = 0;
  size_t deaths = 0;
  /// Canonical cost figure: per-attempt charged latencies folded in
  /// global registration order — bit-identical across shard counts,
  /// parallelism, and batching (per-shard ledger sums are NOT used here,
  /// their float addition order would depend on the deployment).
  double sum_latency_ms = 0;
  /// Deployment duration of the day: max over shards of the per-shard
  /// batched makespan. A deployment figure — it legitimately shrinks as
  /// shards/parallelism grow — so it prices nothing on the event
  /// timeline; sim_makespan_ms below does.
  double fleet_makespan_ms = 0;
  /// Canonical simulated duration of the day: list-scheduling makespan of
  /// the merged charged latencies (global registration order) over
  /// FleetOptions::virtual_workers virtual workers. Deployment-invariant
  /// by construction — this is what spaces cycle-complete events on the
  /// event loop and decides overrun days.
  double sim_makespan_ms = 0;
  /// Real wall-clock of the day's cycles.
  double wall_ms = 0;
  /// Query-engine deployment counters summed over shards (each shard's
  /// per-endpoint plan caches): like wall_ms these describe how the day
  /// was computed, not what it computed, and stay out of CanonicalDump().
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t hash_join_builds = 0;
  /// True when sim_makespan_ms pushed the cycle's completion to (or past)
  /// the next day boundary — the fleet cannot keep up with daily cycles.
  /// The next cycle then starts immediately as a catch-up cycle instead
  /// of waiting for a boundary. Because the deciding makespan is the
  /// canonical one, overruns (and the day numbering they shift) are
  /// deployment-invariant.
  bool overran_day = false;
  /// Pipeline reports and per-due-entry outcomes merged in global
  /// registration order (identical to a 1-shard run's order).
  std::vector<PipelineReport> reports;
  std::vector<DueOutcome> outcomes;
  /// The raw per-shard reports, index = shard id (deployment
  /// introspection; not part of the canonical content). Their pipeline
  /// `reports` vectors are emptied — the merged `reports` list above is
  /// the one copy; counters, outcomes, and makespans remain per shard.
  std::vector<DailyReport> shard_reports;
};

/// Outcome of a multi-day fleet simulation.
struct FleetReport {
  int num_shards = 1;
  int parallelism = 1;
  int query_batch_width = 1;
  bool adaptive_width = false;
  std::vector<FleetDayReport> days;

  /// Everything, deployment figures included.
  Json ToJson() const;

  /// Canonical serialization of the deployment-invariant content: day
  /// numbers, due/succeeded/failed/reused/churn counts, per-attempt
  /// outcomes and charged costs, per-endpoint extraction work, and the
  /// canonical cost sums. Two simulations of the same seeded world are
  /// the same history iff these strings are byte-identical — the
  /// differential anchor for {1,2,4} shards x {1,4} parallelism x
  /// batching on/off.
  std::string CanonicalDump() const;

  /// FNV-1a fingerprint of CanonicalDump(), as 16 hex chars.
  std::string Fingerprint() const;

  /// Serialization of the *content* figures only: what the simulation
  /// computed (class/arc/cluster counts, success/reuse history), with
  /// every access figure (strategy, query counts, latencies, probe and
  /// delta markers) stripped. This is the cross-MODE comparator: a kDelta
  /// run and a kTrack/full run of the same world legitimately differ in
  /// how they talked to the endpoints, but must agree byte-for-byte on
  /// what they learned. CanonicalDump()/Fingerprint() stay the
  /// within-mode deployment-invariance anchor.
  std::string ContentDump() const;

  /// FNV-1a fingerprint of ContentDump(), as 16 hex chars.
  std::string ContentFingerprint() const;
};

/// The multi-server layer: shards the endpoint registry across N Server
/// instances by stable URL hash and drives them as processes on a
/// sim::EventLoop — daily cycles, churn, per-endpoint pipeline
/// completions, throttle pressure, and day boundaries are all scheduled
/// events on one shared timeline, so serving traffic (user-session
/// arrivals) can interleave with extraction in the same simulated day.
///
/// Determinism contract: for the same seeded world (endpoints, churn
/// schedule, availability), FleetReport::CanonicalDump() AND the loop's
/// event history (sim::EventLoop::HistoryDump()) and the merged persisted
/// store contents are byte-identical for ANY (num_shards, fleet_workers,
/// parallelism, query_batch_width, adaptive on/off) — differential-tested
/// in tests/fleet_test.cc + tests/sim_test.cc and gated in
/// bench_fleet_simulation / bench_mixed_timeline. Unlike the pre-loop
/// API, the contract now covers overrun days too: the event timeline is
/// priced by the canonical virtual-worker ledger, so catch-up cycles land
/// on the same instants in every deployment shape.
class Fleet {
 public:
  /// Primary constructor: the fleet becomes a process on `loop` (which
  /// must outlive it). Simulated endpoints must be built against
  /// `loop->clock()` so the whole world shares one timeline.
  Fleet(sim::EventLoop* loop, const FleetOptions& options);

  /// SimClock compatibility shim (one release): wraps `clock` in an
  /// internally-owned EventLoop. Existing worlds whose endpoints bind to
  /// a bare SimClock keep working unchanged; RunDay()/RunSimulation()
  /// schedule onto the internal loop and drain it. New code should build
  /// the EventLoop itself and use the primary constructor.
  Fleet(SimClock* clock, const FleetOptions& options);

  size_t num_shards() const { return shards_.size(); }
  const FleetOptions& options() const { return options_; }
  /// The shared timeline every fleet event lands on.
  sim::EventLoop& loop() { return *loop_; }
  SimClock* clock() { return loop_->clock(); }

  /// Stable shard assignment: Fnv64(url) % num_shards.
  size_t ShardOf(const std::string& url) const;

  Server& shard(size_t i) { return *shards_[i]; }
  const Server& shard(size_t i) const { return *shards_[i]; }
  store::Database& shard_db(size_t i) { return *dbs_[i]; }
  const store::Database& shard_db(size_t i) const { return *dbs_[i]; }

  ChurnModel& churn() { return churn_; }

  /// Registers a record into its shard. Returns false on duplicate URL.
  bool RegisterEndpoint(endpoint::EndpointRecord record);

  /// Routes a live endpoint to its shard (does not register it).
  void AttachEndpoint(const std::string& url, endpoint::SparqlEndpoint* ep);

  /// Drops the route (record stays; attempts fail and retry daily).
  void DetachEndpoint(const std::string& url);

  /// The live endpoint routed for `url`, or nullptr when none is attached
  /// (never registered, registered without a route, or gone dark). This
  /// is the serving layer's query path: user sessions drill down against
  /// the owning shard's endpoint directly.
  endpoint::SparqlEndpoint* EndpointFor(const std::string& url) const;

  /// Every registered URL, in global registration order — the merge
  /// order of FleetDayReport and the order a 1-shard registry would
  /// hold them in.
  const std::vector<std::string>& registration_order() const {
    return registration_order_;
  }

  /// Registers `count` daily cycles on the loop, starting at the current
  /// instant. Each cycle is a kChurn + kCycleStart event pair; its
  /// completion schedules the next cycle at the following day boundary —
  /// or immediately (a catch-up cycle) when the canonical makespan
  /// overran the boundary. Completed days accumulate until TakeReport().
  /// The caller drives the loop (RunUntilIdle / RunUntil), which is what
  /// lets other traffic — session arrivals, extra processes — interleave
  /// with extraction on the same timeline.
  void ScheduleCycles(int64_t count);

  /// Drains the day reports completed since the last take into a
  /// FleetReport.
  FleetReport TakeReport();

  /// Called (on the loop thread) as each cycle's kCycleComplete event
  /// finalizes its day report — the hook serving layers use to refresh
  /// their snapshots mid-simulation.
  void SetCycleCompleteHandler(std::function<void(const FleetDayReport&)> fn) {
    cycle_complete_handler_ = std::move(fn);
  }

  /// One simulated day, synchronously: schedules a single cycle at the
  /// current instant and drains the loop. Retained from the pre-loop API;
  /// equivalent to ScheduleCycles(1) + loop().RunUntilIdle().
  FleetDayReport RunDay();

  /// Runs `days` consecutive daily cycles to idle and takes the report.
  FleetReport RunSimulation(int64_t days);

 private:
  Fleet(std::unique_ptr<sim::EventLoop> owned, sim::EventLoop* loop,
        const FleetOptions& options);

  /// Schedules the next cycle's kChurn + kCycleStart pair at `start_ms`
  /// (plus the kDayBoundary event when `start_ms` sits on one).
  void ScheduleCycleAt(int64_t start_ms);
  /// The kCycleStart handler: runs every shard's cycle on the shared
  /// pool, merges, prices the canonical timeline, and schedules the
  /// pipeline-completion / throttle / cycle-complete events.
  void RunCycleBody();
  /// The kCycleComplete handler: finalizes the day report, detects
  /// overruns, and chains the next cycle.
  void CompleteCycle(int64_t day);

  void ApplyChurn(int64_t day, FleetDayReport* day_report);
  void PushAdaptiveWidths();
  void ObserveOutcomes(const FleetDayReport& day_report);
  void MergeShardReports(std::vector<DailyReport> shard_reports,
                         FleetDayReport* day_report) const;

  /// Owned only by the SimClock compatibility constructor.
  std::unique_ptr<sim::EventLoop> owned_loop_;
  sim::EventLoop* loop_;
  FleetOptions options_;
  std::vector<std::unique_ptr<store::Database>> dbs_;
  std::vector<std::unique_ptr<Server>> shards_;
  /// The one pool all layers share; absent when fleet_workers <= 1
  /// (fully inline simulation).
  std::optional<ThreadPool> pool_;
  ChurnModel churn_;
  AdaptiveWidthController widths_;
  std::vector<std::string> registration_order_;
  /// Live routes, for the death lottery (url-sorted: deterministic).
  std::map<std::string, endpoint::SparqlEndpoint*> attached_;
  /// The daily-cycle chain: at most one activation pending at a time.
  sim::Process cycle_process_;
  /// Cycles registered but not yet completed.
  int64_t cycles_remaining_ = 0;
  /// The day report under construction between a cycle's kChurn event and
  /// its kCycleComplete event.
  FleetDayReport pending_day_;
  /// Completed days awaiting TakeReport().
  std::vector<FleetDayReport> collected_days_;
  std::function<void(const FleetDayReport&)> cycle_complete_handler_;
  /// Last instant a kDayBoundary event was emitted for (dedup guard).
  int64_t last_boundary_ms_ = -1;
};

}  // namespace hbold

#endif  // HBOLD_HBOLD_FLEET_H_
