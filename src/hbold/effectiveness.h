#ifndef HBOLD_HBOLD_EFFECTIVENESS_H_
#define HBOLD_HBOLD_EFFECTIVENESS_H_

#include <cstddef>
#include <string>

#include "cluster/cluster_schema.h"
#include "schema/schema_summary.h"

namespace hbold {

/// How the simulated user explores the dataset.
enum class ExplorationStrategy {
  /// Start from the Cluster Schema: inspect cluster labels/sizes first,
  /// open the most promising cluster, then scan classes inside it —
  /// H-BOLD's intended workflow.
  kClusterFirst,
  /// Scan the flat Schema Summary class list (what a user gets without the
  /// high-level view).
  kFlatScan,
};

/// Outcome of one simulated task: how many UI interactions (a click /
/// label inspection) the user needed, and whether they found the target.
struct TaskOutcome {
  size_t interactions = 0;
  bool success = false;
};

/// A simulated user study — the paper's §5 future work ("evaluate the
/// effectiveness of H-BOLD as a visualization tool through a survey")
/// recast as a deterministic task simulator. Each task models a common
/// exploration question; the interaction count is the effectiveness
/// metric. The model charges one interaction per inspected cluster label,
/// per opened cluster, and per inspected class.
class EffectivenessSimulator {
 public:
  /// Both references must outlive the simulator.
  EffectivenessSimulator(const schema::SchemaSummary& summary,
                         const cluster::ClusterSchema& clusters)
      : summary_(summary), clusters_(clusters) {}

  /// Task 1: locate the class with a given label ("where is Person?").
  /// Cluster-first users open clusters whose label shares a prefix with
  /// the target first (labels summarize content); flat users scan the
  /// class list in display order.
  TaskOutcome FindClassByLabel(const std::string& label,
                               ExplorationStrategy strategy) const;

  /// Task 2: find the class with the most instances. Cluster-first users
  /// exploit the per-cluster instance totals the Cluster Schema displays.
  TaskOutcome FindMostPopulatedClass(ExplorationStrategy strategy) const;

  /// Task 3: determine whether two classes are connected by a property
  /// arc. Cluster-first users check the (few) cluster arcs before drilling
  /// into the (many) class arcs.
  TaskOutcome FindConnection(size_t src_node, size_t dst_node,
                             ExplorationStrategy strategy) const;

 private:
  const schema::SchemaSummary& summary_;
  const cluster::ClusterSchema& clusters_;
};

}  // namespace hbold

#endif  // HBOLD_HBOLD_EFFECTIVENESS_H_
