#ifndef HBOLD_HBOLD_METADATA_CRAWLER_H_
#define HBOLD_HBOLD_METADATA_CRAWLER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "endpoint/endpoint.h"
#include "endpoint/query_batch.h"
#include "endpoint/registry.h"

namespace hbold {

/// One metadata repository to crawl.
struct MetadataRepositoryTarget {
  std::string name;
  endpoint::SparqlEndpoint* endpoint = nullptr;
};

// The repository vocabulary lives in rdf/vocab.h (kSqEndpointClass, kSqUrl,
// kSqAvailability). The paper cites sparqles.ai.wu.ac.at for availability
// data and names "querying new repositories that collect SPARQL endpoints
// metadata" as future work (§5) — implemented here.

/// Outcome of crawling one metadata repository.
struct MetadataCrawlResult {
  std::string repository_name;
  size_t endpoints_listed = 0;     // entries in the repository
  size_t above_threshold = 0;      // entries passing the availability gate
  size_t already_known = 0;
  size_t newly_added = 0;
};

/// Discovers endpoints from repositories that publish SPARQL endpoint
/// *metadata* (URL + measured availability), rather than DCAT catalogs.
/// Unlike the portal crawler, this one can filter on data quality before
/// registering: endpoints below `min_availability` are skipped, which
/// keeps the §3.1 daily-retry load down.
class MetadataRepositoryCrawler {
 public:
  /// `registry` must outlive the crawler.
  explicit MetadataRepositoryCrawler(endpoint::EndpointRegistry* registry)
      : registry_(registry) {}

  /// The discovery query (SELECT ?url ?availability with the threshold
  /// inlined as a FILTER).
  static std::string DiscoveryQuery(double min_availability);

  Result<MetadataCrawlResult> Crawl(const std::string& repository_name,
                                    endpoint::SparqlEndpoint* repository,
                                    double min_availability, int64_t today);

  /// Crawls every repository, fanning both per-repository queries (the
  /// unfiltered census and the availability-filtered discovery) across
  /// all repositories through one batch on the shared pool. Registry
  /// mutation happens after the batch, in repository order — same
  /// determinism contract as PortalCrawler::CrawlAll.
  std::vector<Result<MetadataCrawlResult>> CrawlAll(
      const std::vector<MetadataRepositoryTarget>& repositories,
      double min_availability, int64_t today,
      const endpoint::QueryBatchOptions& options);

 private:
  /// Merges one repository's fetched (census, discovery) outcomes into
  /// the registry.
  MetadataCrawlResult Merge(const std::string& repository_name,
                            const endpoint::QueryOutcome& census,
                            const endpoint::QueryOutcome& filtered,
                            int64_t today);

  endpoint::EndpointRegistry* registry_;
};

}  // namespace hbold

#endif  // HBOLD_HBOLD_METADATA_CRAWLER_H_
