#ifndef HBOLD_HBOLD_EXPLORATION_SERVICE_H_
#define HBOLD_HBOLD_EXPLORATION_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_schema.h"
#include "common/thread_pool.h"
#include "endpoint/endpoint.h"
#include "hbold/fleet.h"
#include "schema/schema_summary.h"
#include "viz/layout_cache.h"
#include "workload/exploration_workload.h"

namespace hbold {

/// One dataset as the serving layer sees it: immutable decoded copies of
/// the shard's persisted Schema Summary and Cluster Schema, content
/// fingerprints over their canonical JSON (never over raw store documents,
/// whose `_id`s vary per deployment), and the live endpoint routed at
/// snapshot time. Sessions read these without any locking; the daily
/// extraction cycle can rewrite the stores underneath without ever being
/// observed mid-write.
struct DatasetSnapshot {
  std::string url;
  int64_t extracted_day = -1;
  std::shared_ptr<const schema::SchemaSummary> summary;
  std::shared_ptr<const cluster::ClusterSchema> clusters;
  /// Fnv64 over the decoded summary's canonical JSON.
  uint64_t schema_fingerprint = 0;
  /// Fnv64 over the decoded cluster schema's canonical JSON — the content
  /// half of the layout-cache key.
  uint64_t cluster_fingerprint = 0;
  /// Live endpoint routed when the snapshot was taken (may be null: the
  /// portal is dark). The endpoint object must outlive the snapshot;
  /// detaching only drops the route, it never destroys the endpoint.
  endpoint::SparqlEndpoint* endpoint = nullptr;
};

/// Everything one served session produced.
struct SessionResult {
  size_t session_id = 0;
  /// The deterministic interaction log: action kinds, resolved picks,
  /// visible-node counts, coverage, geometry fingerprints, generated
  /// SPARQL fingerprints, row counts and *simulated* latencies. Contains
  /// no wall-clock and no cache/thread observables, so it is byte-identical
  /// across thread counts and cache on/off — the serving determinism
  /// contract, gated in bench_exploration_serving.
  std::string transcript;
  uint64_t transcript_fingerprint = 0;
  /// Wall-clock per interaction, index-aligned with transcript lines.
  /// Deployment figures (p50/p99 material), never part of the transcript.
  std::vector<double> interaction_wall_ms;
};

struct ExplorationServiceOptions {
  viz::LayoutSetOptions layout;
  /// When false every render recomputes from scratch — the baseline the
  /// cache speedup gate compares against.
  bool use_layout_cache = true;
  size_t layout_cache_capacity = 256;
  /// Instances fetched per drill-down sample.
  size_t drilldown_limit = 5;
};

/// The serving layer: answers simulated exploration sessions against a
/// Fleet's persisted extraction output. Reads go through per-shard
/// Collection snapshots captured by RefreshSnapshots(); renders go through
/// a fingerprint-keyed LayoutCache; live drill-downs and visual queries go
/// to the owning shard's endpoint. RunSessions fans sessions out over a
/// thread pool and merges results in plan order, so the combined
/// transcript is independent of scheduling.
class ExplorationService {
 public:
  /// `fleet` must outlive the service.
  explicit ExplorationService(Fleet* fleet,
                              const ExplorationServiceOptions& options = {});

  /// Rebuilds the dataset catalog from one consistent snapshot per shard,
  /// sorted by URL (deployment-invariant order), bumps the catalog
  /// generation and epoch-flushes the layout cache. Call between daily
  /// cycles; sessions already running keep reading the previous catalog's
  /// shared_ptrs safely. Returns the catalog size.
  size_t RefreshSnapshots();

  const std::vector<DatasetSnapshot>& catalog() const { return catalog_; }
  uint64_t generation() const { return generation_; }

  /// Serves one session. Thread-safe against other RunSession calls; must
  /// not overlap RefreshSnapshots().
  SessionResult RunSession(const workload::SessionPlan& plan);

  /// Serves every plan, fanned out over `pool` (nullptr = inline), results
  /// merged in plan order.
  std::vector<SessionResult> RunSessions(
      const std::vector<workload::SessionPlan>& plans, ThreadPool* pool);

  /// Mixed-timeline serving: registers plan `i` as a kSessionArrival
  /// event at absolute time `arrival_times_ms[i]` on `loop` (typically
  /// the fleet's — one shared timeline for extraction and serving, with
  /// sim::ArrivalProcess generating the times). Sessions run inline on
  /// the dispatching thread, in event order, against whatever snapshot
  /// catalog is current when they fire — so a cycle-complete handler that
  /// calls RefreshSnapshots() hands later arrivals the fresher data, the
  /// way a live deployment would. Results accumulate in arrival order
  /// until TakeScheduledResults(). Arrival times must not collide with a
  /// RefreshSnapshots() running on another thread (the loop is
  /// single-threaded, so scheduling both on it is always safe).
  void ScheduleSessions(sim::EventLoop* loop,
                        std::vector<workload::SessionPlan> plans,
                        std::vector<int64_t> arrival_times_ms);

  /// Drains the results of sessions served through ScheduleSessions, in
  /// the order their arrival events dispatched.
  std::vector<SessionResult> TakeScheduledResults();

  /// Order-independent-free combined fingerprint: FNV-1a folded over the
  /// per-session transcripts in session order. Two serving runs are the
  /// same history iff this matches.
  static uint64_t CombinedFingerprint(
      const std::vector<SessionResult>& results);

  viz::LayoutCacheStats cache_stats() const { return cache_.stats(); }
  const ExplorationServiceOptions& options() const { return options_; }

 private:
  std::shared_ptr<const viz::LayoutSet> LayoutsFor(const DatasetSnapshot& ds);

  Fleet* fleet_;
  ExplorationServiceOptions options_;
  uint64_t options_fingerprint_;
  std::vector<DatasetSnapshot> catalog_;
  uint64_t generation_ = 0;
  viz::LayoutCache cache_;
  /// Results of loop-scheduled sessions, in dispatch order.
  std::vector<SessionResult> scheduled_results_;
};

}  // namespace hbold

#endif  // HBOLD_HBOLD_EXPLORATION_SERVICE_H_
