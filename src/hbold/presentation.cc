#include "hbold/presentation.h"

#include <algorithm>
#include <map>

#include "cluster/louvain.h"
#include "common/clock.h"
#include "hbold/server.h"
#include "sparql/query_builder.h"

namespace hbold {

PresentationSnapshot PresentationSnapshot::Capture(const store::Database& db) {
  PresentationSnapshot snap;
  const store::Collection* summaries =
      db.FindCollection(kSummariesCollection);
  if (summaries != nullptr) snap.summaries_ = summaries->Snapshot();
  const store::Collection* clusters = db.FindCollection(kClustersCollection);
  if (clusters != nullptr) snap.clusters_ = clusters->Snapshot();
  return snap;
}

const Json* PresentationSnapshot::FindSummaryDoc(const std::string& url) const {
  for (const Json& doc : summaries_) {
    if (doc.GetString("endpoint_url") == url) return &doc;
  }
  return nullptr;
}

const Json* PresentationSnapshot::FindClusterDoc(const std::string& url) const {
  for (const Json& doc : clusters_) {
    if (doc.GetString("endpoint_url") == url) return &doc;
  }
  return nullptr;
}

std::vector<DatasetInfo> PresentationSnapshot::ListDatasets() const {
  std::vector<DatasetInfo> out;
  for (const Json& doc : summaries_) {
    DatasetInfo info;
    info.url = doc.GetString("endpoint_url");
    const Json* nodes = doc.Find("nodes");
    info.classes = nodes != nullptr && nodes->is_array()
                       ? nodes->as_array().size()
                       : 0;
    info.total_instances = static_cast<size_t>(doc.GetInt("total_instances"));
    info.extracted_day = doc.GetInt("extracted_day", -1);
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const DatasetInfo& a, const DatasetInfo& b) {
              return a.url < b.url;
            });
  return out;
}

Result<schema::SchemaSummary> PresentationSnapshot::LoadSchemaSummary(
    const std::string& url, double* load_ms) const {
  Stopwatch sw;
  const Json* doc = FindSummaryDoc(url);
  if (doc == nullptr) {
    return Status::NotFound("no schema summary for " + url);
  }
  auto summary = schema::SchemaSummary::FromJson(*doc);
  if (load_ms != nullptr) *load_ms = sw.ElapsedMillis();
  return summary;
}

Result<cluster::ClusterSchema> PresentationSnapshot::LoadClusterSchema(
    const std::string& url, double* load_ms) const {
  Stopwatch sw;
  const Json* doc = FindClusterDoc(url);
  if (doc == nullptr) {
    return Status::NotFound("no cluster schema for " + url);
  }
  auto clusters = cluster::ClusterSchema::FromJson(*doc);
  if (load_ms != nullptr) *load_ms = sw.ElapsedMillis();
  return clusters;
}

std::vector<DatasetInfo> Presentation::ListDatasets() const {
  return Snapshot().ListDatasets();
}

Result<schema::SchemaSummary> Presentation::LoadSchemaSummary(
    const std::string& url, double* load_ms) const {
  return Snapshot().LoadSchemaSummary(url, load_ms);
}

Result<cluster::ClusterSchema> Presentation::LoadClusterSchema(
    const std::string& url, double* load_ms) const {
  return Snapshot().LoadClusterSchema(url, load_ms);
}

Result<cluster::ClusterSchema> Presentation::ComputeClusterSchemaOnTheFly(
    const std::string& url, double* compute_ms) const {
  Stopwatch sw;
  HBOLD_ASSIGN_OR_RETURN(schema::SchemaSummary summary,
                         LoadSchemaSummary(url));
  cluster::UGraph graph = cluster::BuildClassGraph(summary);
  cluster::Partition partition = cluster::Louvain(graph);
  cluster::ClusterSchema clusters =
      cluster::ClusterSchema::FromPartition(summary, partition);
  if (compute_ms != nullptr) *compute_ms = sw.ElapsedMillis();
  return clusters;
}

namespace drilldown {

Result<sparql::ResultTable> SampleInstances(endpoint::SparqlEndpoint* ep,
                                            const std::string& class_iri,
                                            size_t limit) {
  std::string q =
      "SELECT ?instance ?label WHERE {\n"
      "  ?instance a <" +
      sparql::EscapeIri(class_iri) +
      "> .\n"
      "  OPTIONAL { ?instance "
      "<http://www.w3.org/2000/01/rdf-schema#label> ?label . }\n"
      "} ORDER BY ?instance LIMIT " +
      std::to_string(limit);
  HBOLD_ASSIGN_OR_RETURN(endpoint::QueryOutcome outcome, ep->Query(q));
  return outcome.table;
}

Result<sparql::ResultTable> DescribeResource(
    endpoint::SparqlEndpoint* ep, const std::string& resource_iri) {
  std::string q = "SELECT ?p ?o WHERE { <" + sparql::EscapeIri(resource_iri) +
                  "> ?p ?o . } ORDER BY ?p ?o";
  HBOLD_ASSIGN_OR_RETURN(endpoint::QueryOutcome outcome, ep->Query(q));
  return outcome.table;
}

}  // namespace drilldown

void ExplorationSession::FocusClass(size_t node) {
  if (node >= summary_.NodeCount()) return;
  visible_.insert(node);
}

void ExplorationSession::ExpandClass(size_t node) {
  if (visible_.count(node) == 0) return;
  for (size_t neighbor : summary_.Neighbors(node)) {
    visible_.insert(neighbor);
  }
}

void ExplorationSession::ExpandAll() {
  for (size_t i = 0; i < summary_.NodeCount(); ++i) visible_.insert(i);
}

void ExplorationSession::Reset() { visible_.clear(); }

double ExplorationSession::CoveragePercent() const {
  return summary_.CoveragePercent(visible_);
}

std::vector<size_t> ExplorationSession::VisibleNodes() const {
  return {visible_.begin(), visible_.end()};
}

std::vector<viz::ForceEdge> ExplorationSession::VisibleEdges() const {
  std::map<size_t, size_t> remap;
  size_t next = 0;
  for (size_t node : visible_) remap[node] = next++;
  std::vector<viz::ForceEdge> out;
  for (const schema::PropertyArc& arc : summary_.arcs()) {
    auto s = remap.find(arc.src);
    auto d = remap.find(arc.dst);
    if (s == remap.end() || d == remap.end()) continue;
    out.push_back(viz::ForceEdge{s->second, d->second,
                                 static_cast<double>(arc.count)});
  }
  return out;
}

}  // namespace hbold
