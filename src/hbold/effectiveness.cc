#include "hbold/effectiveness.h"

#include <algorithm>
#include <vector>

namespace hbold {

namespace {

/// Shared-prefix length between two labels, the (crude but deterministic)
/// relevance signal a user gets from a cluster label.
size_t SharedPrefix(const std::string& a, const std::string& b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

}  // namespace

TaskOutcome EffectivenessSimulator::FindClassByLabel(
    const std::string& label, ExplorationStrategy strategy) const {
  TaskOutcome outcome;
  if (strategy == ExplorationStrategy::kFlatScan) {
    for (const schema::ClassNode& node : summary_.nodes()) {
      ++outcome.interactions;
      if (node.label == label) {
        outcome.success = true;
        return outcome;
      }
    }
    return outcome;
  }
  // Cluster-first: rank clusters by label affinity to the target (longer
  // shared prefix first, bigger cluster as tiebreak), open them in that
  // order, scan members.
  std::vector<size_t> order(clusters_.ClusterCount());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    size_t pa = SharedPrefix(clusters_.clusters()[a].label, label);
    size_t pb = SharedPrefix(clusters_.clusters()[b].label, label);
    if (pa != pb) return pa > pb;
    size_t ta = clusters_.clusters()[a].total_instances;
    size_t tb = clusters_.clusters()[b].total_instances;
    if (ta != tb) return ta > tb;
    // Cluster index as the final tie-break: equal-affinity, equal-size
    // clusters must open in one fixed order or the interaction count
    // depends on std::sort's whim for that run.
    return a < b;
  });
  for (size_t ci : order) {
    ++outcome.interactions;  // inspect the cluster label / open it
    for (size_t node : clusters_.clusters()[ci].class_nodes) {
      ++outcome.interactions;
      if (summary_.nodes()[node].label == label) {
        outcome.success = true;
        return outcome;
      }
    }
  }
  return outcome;
}

TaskOutcome EffectivenessSimulator::FindMostPopulatedClass(
    ExplorationStrategy strategy) const {
  TaskOutcome outcome;
  if (summary_.NodeCount() == 0) return outcome;
  if (strategy == ExplorationStrategy::kFlatScan) {
    // The flat view has no aggregate hints: every class must be inspected.
    outcome.interactions = summary_.NodeCount();
    outcome.success = true;
    return outcome;
  }
  // The Cluster Schema shows per-cluster instance totals; the user reads
  // them (k interactions), then opens clusters in descending-total order —
  // and can stop as soon as the best class found so far is at least the
  // next cluster's total, because a cluster's total bounds every member.
  // This branch-and-bound is always correct; it is cheap exactly when
  // class sizes are skewed, which Linked Data sources are.
  outcome.interactions = clusters_.ClusterCount();
  std::vector<size_t> order(clusters_.ClusterCount());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    size_t ta = clusters_.clusters()[a].total_instances;
    size_t tb = clusters_.clusters()[b].total_instances;
    if (ta != tb) return ta > tb;
    return a < b;  // stable order for equal-total clusters
  });
  size_t best_seen = 0;
  for (size_t ci : order) {
    const cluster::Cluster& c = clusters_.clusters()[ci];
    if (c.total_instances <= best_seen) break;  // cannot contain a bigger one
    outcome.interactions += c.class_nodes.size();
    for (size_t node : c.class_nodes) {
      best_seen = std::max(best_seen, summary_.nodes()[node].instance_count);
    }
  }
  outcome.success = true;
  return outcome;
}

TaskOutcome EffectivenessSimulator::FindConnection(
    size_t src_node, size_t dst_node, ExplorationStrategy strategy) const {
  TaskOutcome outcome;
  if (src_node >= summary_.NodeCount() || dst_node >= summary_.NodeCount()) {
    return outcome;
  }
  auto arc_between = [&](size_t a, size_t b) {
    for (const schema::PropertyArc& arc : summary_.arcs()) {
      if ((arc.src == a && arc.dst == b) || (arc.src == b && arc.dst == a)) {
        return true;
      }
    }
    return false;
  };
  if (strategy == ExplorationStrategy::kFlatScan) {
    // Scan the arc list until one touches both classes.
    for (const schema::PropertyArc& arc : summary_.arcs()) {
      ++outcome.interactions;
      if ((arc.src == src_node && arc.dst == dst_node) ||
          (arc.src == dst_node && arc.dst == src_node)) {
        outcome.success = true;
        return outcome;
      }
    }
    outcome.success = false;
    return outcome;
  }
  // Cluster-first: check the cluster-level arcs first (few); only when the
  // clusters touch (or coincide) drill into the class arcs between them.
  int ca = clusters_.ClusterOf(src_node);
  int cb = clusters_.ClusterOf(dst_node);
  ++outcome.interactions;  // read the cluster arc list entry for (ca, cb)
  bool clusters_touch = ca == cb;
  for (const cluster::ClusterArc& arc : clusters_.arcs()) {
    if ((static_cast<int>(arc.src) == ca && static_cast<int>(arc.dst) == cb) ||
        (static_cast<int>(arc.src) == cb && static_cast<int>(arc.dst) == ca)) {
      clusters_touch = true;
    }
  }
  if (!clusters_touch) {
    // No cluster arc => no class arc can exist; one interaction decided it.
    outcome.success = !arc_between(src_node, dst_node);
    // success=true means the user's conclusion (not connected) is right —
    // which it always is, by construction of the Cluster Schema.
    return outcome;
  }
  // Drill down: inspect arcs incident to the (usually few) classes of the
  // source's cluster crossing toward dst.
  for (const schema::PropertyArc& arc : summary_.arcs()) {
    if (clusters_.ClusterOf(arc.src) != ca &&
        clusters_.ClusterOf(arc.dst) != ca) {
      continue;  // filtered out by the focused view, not charged
    }
    ++outcome.interactions;
    if ((arc.src == src_node && arc.dst == dst_node) ||
        (arc.src == dst_node && arc.dst == src_node)) {
      outcome.success = true;
      return outcome;
    }
  }
  outcome.success = !arc_between(src_node, dst_node);
  return outcome;
}

}  // namespace hbold
