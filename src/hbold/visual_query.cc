#include "hbold/visual_query.h"

#include <cctype>

#include "common/string_util.h"

namespace hbold {

std::string VisualQuery::VarForNode(size_t node) {
  for (const auto& [n, var] : selected_) {
    if (n == node) return var;
  }
  // Sanitized lowercase label + counter for uniqueness.
  std::string base = ToLower(summary_.nodes()[node].label);
  std::string var;
  for (char c : base) {
    if (std::isalnum(static_cast<unsigned char>(c))) var += c;
  }
  if (var.empty()) var = "c";
  var += std::to_string(var_counter_++);
  selected_.emplace_back(node, var);
  return var;
}

std::string VisualQuery::SelectClass(size_t node) {
  if (node >= summary_.NodeCount()) return "";
  return VarForNode(node);
}

std::string VisualQuery::SelectAttribute(size_t node,
                                         const std::string& attribute_iri,
                                         bool optional) {
  for (const auto& [n, var] : selected_) {
    if (n != node) continue;
    std::string attr_var = var + "_" + IriLocalName(attribute_iri);
    attributes_.push_back({var, attribute_iri, attr_var, optional});
    return attr_var;
  }
  return "";
}

std::string VisualQuery::FollowArc(const schema::PropertyArc& arc) {
  if (arc.src >= summary_.NodeCount() || arc.dst >= summary_.NodeCount()) {
    return "";
  }
  // Source must already be selected; destination joins the selection.
  bool src_selected = false;
  std::string src_var;
  for (const auto& [n, var] : selected_) {
    if (n == arc.src) {
      src_selected = true;
      src_var = var;
    }
  }
  if (!src_selected) return "";
  std::string dst_var = VarForNode(arc.dst);
  arcs_.push_back({src_var, arc.iri, dst_var});
  return dst_var;
}

void VisualQuery::FilterRegex(const std::string& var,
                              const std::string& pattern,
                              bool case_insensitive, bool literal_text) {
  std::string p = literal_text ? sparql::EscapeRegexText(pattern) : pattern;
  filters_.push_back({true, var, std::move(p), "", case_insensitive});
}

void VisualQuery::FilterCompare(const std::string& var, const std::string& op,
                                const std::string& value) {
  filters_.push_back({false, var, op, value});
}

namespace {

/// True when `value` lexes as a bare SPARQL numeric literal (integer or
/// decimal, optional sign) and can be emitted unquoted.
bool IsNumericLiteral(const std::string& value) {
  size_t i = 0;
  if (i < value.size() && (value[i] == '+' || value[i] == '-')) ++i;
  size_t digits = 0, dots = 0;
  for (; i < value.size(); ++i) {
    if (value[i] >= '0' && value[i] <= '9') {
      ++digits;
    } else if (value[i] == '.') {
      ++dots;
    } else {
      return false;
    }
  }
  return digits > 0 && dots <= 1;
}

}  // namespace

std::string VisualQuery::GenerateSparql() const {
  sparql::QueryBuilder b;
  b.Distinct(distinct_);
  for (const auto& [node, var] : selected_) {
    b.Select(var);
    b.WhereClass(var, summary_.nodes()[node].iri);
  }
  for (const AttrPattern& a : attributes_) {
    b.Select(a.attr_var);
    b.WhereLink(a.class_var, a.attr_iri, a.attr_var);
    if (a.optional) b.MakeLastOptional();
  }
  for (const ArcPattern& a : arcs_) {
    b.WhereLink(a.src_var, a.property, a.dst_var);
  }
  for (const FilterSpec& f : filters_) {
    if (f.is_regex) {
      b.FilterRegex(f.var, f.a, f.icase);
    } else if (IsNumericLiteral(f.b)) {
      b.FilterCompare(f.var, f.a, f.b);
    } else {
      b.FilterCompare(f.var, f.a,
                      "\"" + sparql::EscapeLiteral(f.b) + "\"");
    }
  }
  if (limit_.has_value()) b.Limit(*limit_);
  return b.Build();
}

Result<endpoint::QueryOutcome> VisualQuery::Execute(
    endpoint::SparqlEndpoint* ep) const {
  return ep->Query(GenerateSparql());
}

}  // namespace hbold
