#include "hbold/crawler.h"

#include <set>

namespace hbold {

std::string Listing1Query() {
  // Listing 1 of the paper (whitespace normalized): "perfectly fits all
  // the portals".
  return R"(PREFIX dcat: <http://www.w3.org/ns/dcat#>
PREFIX dc: <http://purl.org/dc/terms/>
SELECT ?dataset ?title ?url
WHERE {
  ?dataset a dcat:Dataset .
  ?dataset dc:title ?title .
  ?dataset dcat:distribution ?distribution .
  ?distribution dcat:accessURL ?url .
  FILTER ( regex(?url, "sparql") ) .
})";
}

PortalCrawlResult PortalCrawler::Merge(const std::string& portal_name,
                                       const endpoint::QueryOutcome& outcome,
                                       int64_t today) {
  PortalCrawlResult result;
  result.portal_name = portal_name;
  result.datasets_matched = outcome.table.num_rows();

  // Distinct URLs with their dataset titles (first title wins).
  std::set<std::string> urls;
  for (size_t i = 0; i < outcome.table.num_rows(); ++i) {
    auto url = outcome.table.Cell(i, "url");
    auto title = outcome.table.Cell(i, "title");
    if (!url.has_value()) continue;
    const std::string& u = url->lexical();
    if (!urls.insert(u).second) continue;
    if (registry_->Contains(u)) {
      ++result.already_known;
      continue;
    }
    endpoint::EndpointRecord record;
    record.url = u;
    record.name = title.has_value() ? title->lexical() : u;
    record.source = endpoint::EndpointSource::kPortalCrawl;
    record.added_day = today;
    // Crawls run while the daily cycle may already be in flight; a record
    // landing mid-cycle becomes schedulable on the *next* day so the
    // snapshot and live due-list paths can never disagree about it.
    record.first_eligible_day = today + 1;
    registry_->Add(std::move(record));
    ++result.newly_added;
  }
  result.distinct_urls = urls.size();
  return result;
}

Result<PortalCrawlResult> PortalCrawler::Crawl(
    const std::string& portal_name, endpoint::SparqlEndpoint* portal,
    int64_t today) {
  HBOLD_ASSIGN_OR_RETURN(endpoint::QueryOutcome outcome,
                         portal->Query(Listing1Query()));
  return Merge(portal_name, outcome, today);
}

std::vector<Result<PortalCrawlResult>> PortalCrawler::CrawlAll(
    const std::vector<PortalTarget>& portals, int64_t today,
    const endpoint::QueryBatchOptions& options) {
  std::vector<endpoint::QueryJob> jobs;
  jobs.reserve(portals.size());
  for (const PortalTarget& portal : portals) {
    jobs.push_back(endpoint::QueryJob{portal.endpoint, Listing1Query()});
  }
  // Portals are independent errands: one dead portal must not abandon
  // the others' crawls.
  endpoint::QueryBatchOptions crawl_options = options;
  crawl_options.abort_on_failure = false;
  std::vector<Result<endpoint::QueryOutcome>> outcomes =
      endpoint::QueryBatch::Run(jobs, crawl_options);

  // Merge strictly in portal order, on this thread, after every probe
  // finished — the registry sees the same insertion sequence a
  // sequential crawl would produce.
  std::vector<Result<PortalCrawlResult>> results;
  results.reserve(portals.size());
  for (size_t i = 0; i < portals.size(); ++i) {
    if (!outcomes[i].ok()) {
      results.push_back(outcomes[i].status());
      continue;
    }
    results.push_back(Merge(portals[i].name, *outcomes[i], today));
  }
  return results;
}

}  // namespace hbold
