#include "hbold/manual_insert.h"

#include "common/string_util.h"

namespace hbold {

Status ManualInsertionService::Submit(const std::string& url,
                                      const std::string& email) {
  if (!StartsWith(url, "http://") && !StartsWith(url, "https://")) {
    return Status::InvalidArgument("endpoint URL must be http(s): " + url);
  }
  size_t at = email.find('@');
  if (at == std::string::npos || at == 0 ||
      email.find('.', at) == std::string::npos) {
    return Status::InvalidArgument("invalid e-mail address");
  }
  if (server_->registry().Contains(url)) {
    return Status::AlreadyExists("endpoint already listed: " + url);
  }
  for (const PendingInsertion& p : pending_) {
    if (p.url == url) {
      return Status::AlreadyExists("endpoint already queued: " + url);
    }
  }
  pending_.push_back(PendingInsertion{url, email});
  return Status::OK();
}

size_t ManualInsertionService::ProcessPending() {
  size_t succeeded = 0;
  std::vector<PendingInsertion> batch = std::move(pending_);
  pending_.clear();
  for (PendingInsertion& p : batch) {
    endpoint::EndpointRecord record;
    record.url = p.url;
    record.name = p.url;
    record.source = endpoint::EndpointSource::kManualInsert;
    server_->RegisterEndpoint(record);

    auto report = server_->ProcessEndpoint(p.url);
    if (report.ok()) {
      ++succeeded;
      notifier_->Send(p.email, "H-BOLD: endpoint indexed",
                      "The SPARQL endpoint " + p.url +
                          " has been indexed successfully and is now listed "
                          "among the available datasets.");
    } else {
      notifier_->Send(p.email, "H-BOLD: endpoint extraction failed",
                      "The SPARQL endpoint " + p.url +
                          " could not be indexed: " +
                          report.status().ToString());
    }
    // §3.4: the e-mail address is deleted after notification.
    p.email.clear();
  }
  return succeeded;
}

}  // namespace hbold
