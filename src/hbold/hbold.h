#ifndef HBOLD_HBOLD_HBOLD_H_
#define HBOLD_HBOLD_HBOLD_H_

/// Umbrella header for the H-BOLD library: include this to get the whole
/// public API (server layer, presentation layer, visual querying, portal
/// crawling, manual insertion, visualization layouts).

#include "cluster/cluster_schema.h"     // IWYU pragma: export
#include "cluster/greedy_merge.h"       // IWYU pragma: export
#include "cluster/label_propagation.h"  // IWYU pragma: export
#include "cluster/louvain.h"            // IWYU pragma: export
#include "cluster/modularity.h"         // IWYU pragma: export
#include "endpoint/local_endpoint.h"    // IWYU pragma: export
#include "endpoint/query_batch.h"       // IWYU pragma: export
#include "endpoint/registry.h"          // IWYU pragma: export
#include "endpoint/simulated_endpoint.h"  // IWYU pragma: export
#include "extraction/extractor.h"       // IWYU pragma: export
#include "extraction/scheduler.h"       // IWYU pragma: export
#include "hbold/crawler.h"              // IWYU pragma: export
#include "hbold/effectiveness.h"        // IWYU pragma: export
#include "hbold/exploration_service.h"  // IWYU pragma: export
#include "hbold/fleet.h"                // IWYU pragma: export
#include "hbold/manual_insert.h"        // IWYU pragma: export
#include "hbold/metadata_crawler.h"     // IWYU pragma: export
#include "hbold/presentation.h"         // IWYU pragma: export
#include "hbold/server.h"               // IWYU pragma: export
#include "hbold/visual_query.h"         // IWYU pragma: export
#include "rdf/graph.h"                  // IWYU pragma: export
#include "rdf/ntriples.h"               // IWYU pragma: export
#include "rdf/turtle.h"                 // IWYU pragma: export
#include "schema/schema_summary.h"      // IWYU pragma: export
#include "sparql/executor.h"            // IWYU pragma: export
#include "sparql/query_builder.h"       // IWYU pragma: export
#include "store/database.h"             // IWYU pragma: export
#include "viz/circle_pack.h"            // IWYU pragma: export
#include "viz/edge_bundling.h"          // IWYU pragma: export
#include "viz/layout_cache.h"           // IWYU pragma: export
#include "viz/render.h"                 // IWYU pragma: export
#include "workload/exploration_workload.h"  // IWYU pragma: export
#include "viz/sunburst.h"               // IWYU pragma: export
#include "viz/treemap.h"                // IWYU pragma: export

#endif  // HBOLD_HBOLD_HBOLD_H_
