#ifndef HBOLD_HBOLD_SERVER_H_
#define HBOLD_HBOLD_SERVER_H_

#include <map>
#include <string>
#include <vector>

#include <memory>

#include "common/clock.h"
#include "common/result.h"
#include "sim/timeline.h"
#include "endpoint/endpoint.h"
#include "endpoint/registry.h"
#include "extraction/extractor.h"
#include "extraction/scheduler.h"
#include "store/database.h"

namespace hbold {

class ThreadPool;

/// Store collection names used by the server layer.
inline constexpr const char* kSummariesCollection = "schema_summaries";
inline constexpr const char* kClustersCollection = "cluster_schemas";
inline constexpr const char* kRegistryCollection = "registry";
/// Raw IndexSummary documents, persisted only under incremental modes —
/// the `prior` a dirty-class merge starts from.
inline constexpr const char* kIndexesCollection = "index_summaries";

/// How the daily cycle reacts to endpoint data changing between days.
enum class IncrementalMode {
  /// Pre-incremental behavior: no probes, full re-extraction every due
  /// day. Reports and store contents are byte-identical to builds that
  /// predate incremental extraction.
  kOff,
  /// Issue the change probe and persist fingerprints + index summaries,
  /// but still run the full extraction every due day. The control arm:
  /// identical artifacts to kDelta, none of the savings.
  kTrack,
  /// Full incremental path: skip quiet endpoints outright (one probe
  /// query), re-extract only dirty classes and patch the summaries in
  /// place, fall back to full re-extraction past the dirty-fraction
  /// threshold or when the probe is unsupported.
  kDelta,
  /// kDelta plus a staleness bound: probes are trusted for at most
  /// `staleness_budget_days` simulated days, after which a full refresh is
  /// forced regardless of what they claim. The backstop against endpoints
  /// whose probes lie consistently enough to evade delta validation — a
  /// persistent quiet-liar drifts for at most one budget window before a
  /// forced refresh restores (and verifies) the stored artifacts.
  kBounded,
};

/// Knobs for incremental extraction.
struct IncrementalOptions {
  IncrementalMode mode = IncrementalMode::kOff;
  /// Dirty-class fraction (dirty + removed over current classes) above
  /// which patching is pointless and kDelta runs a full re-extraction.
  double full_refresh_fraction = 0.5;
  /// kBounded only: maximum days since the last *full* (verified)
  /// extraction before one is forced.
  int64_t staleness_budget_days = 7;
  /// Adaptive staleness budgets (kBounded): when > 0, every lifetime
  /// strike on an endpoint's record tightens its *effective* budget by
  /// this many days — endpoints with a divergence history get verified
  /// more often — floored at min_staleness_budget_days. 0 keeps the
  /// fixed budget for everyone (default; preserves earlier histories).
  int64_t strike_budget_penalty_days = 0;
  /// Floor for the adaptive budget: even a heavily-struck endpoint keeps
  /// at least this many days between forced refreshes.
  int64_t min_staleness_budget_days = 1;
  /// Strike decay: when > 0, each time an endpoint's divergence-free
  /// clean streak reaches a multiple of this many cycles, one lifetime
  /// strike (and one pending suspect strike) is forgiven — the adaptive
  /// budget relaxes back toward the configured one on long-clean
  /// endpoints. 0 = strikes never decay (default).
  int64_t strike_decay_clean_cycles = 0;
  /// Transient probe failures (Timeout while the endpoint is up) retried
  /// within one attempt before degrading to a probe-less full extraction.
  /// Retries are deterministic: the endpoint's fault coins are salted by a
  /// per-day attempt index, never by wall clock.
  int max_probe_retries = 2;
  /// Detected divergences (delta validation failure, lying-quiet probe)
  /// before the endpoint is quarantined. Each divergence also forces a
  /// full refresh and drops the persisted fingerprints.
  int64_t quarantine_strikes = 3;
  /// Days a quarantine lasts; while quarantined every cycle is a forced
  /// full refresh and probe claims are never trusted.
  int64_t quarantine_days = 3;
  /// Consecutive divergence-free successful cycles a suspect endpoint
  /// needs before it is trusted (and probe-skip eligible) again.
  int64_t parole_clean_cycles = 2;
  /// Post-merge delta validation: echo the change probe after a dirty-
  /// class merge and cross-check generation, per-class fingerprints, and
  /// the merged class set against it. A mismatch discards the merge, runs
  /// a full refresh, and strikes the endpoint.
  bool validate_deltas = true;
};

/// Outcome of processing one endpoint through the full pipeline.
struct PipelineReport {
  std::string url;
  extraction::ExtractionReport extraction;
  double extraction_ms = 0;   // simulated endpoint latency total
  double summary_ms = 0;      // Schema Summary build (wall clock)
  double cluster_ms = 0;      // community detection + Cluster Schema build
  double persist_ms = 0;      // store writes
  size_t classes = 0;
  size_t arcs = 0;
  size_t clusters = 0;
  /// §3.2: "if the Schema Summary does not change then the Cluster Schema
  /// will not change [either], so it does not make sense to recompute" —
  /// true when the freshly extracted summary matched the stored content
  /// hash and the clustering + persist stages were skipped.
  bool reused_cluster_schema = false;
  /// A change probe was issued (incremental modes; charged as one query).
  bool probed = false;
  /// The probe found the endpoint quiet and the whole pipeline was skipped
  /// against the stored artifacts (kDelta only; implies
  /// reused_cluster_schema).
  bool probe_skipped = false;
  /// The dirty-class re-extraction path ran instead of a full extraction
  /// (kDelta only).
  bool delta_extracted = false;
  /// Dirty / vanished class counts the probe diff produced (set whenever
  /// probed, whatever path was then taken).
  size_t dirty_classes = 0;
  size_t removed_classes = 0;
  /// Adversarial-endpoint defense surface. All false/zero on honest
  /// fleets, so pre-hardening reports are unchanged.
  /// A probe claim was contradicted — delta validation echo failed, or a
  /// full refresh found content change behind a claimed-quiet generation.
  bool probe_mismatch = false;
  /// A full extraction ran where the probe alone would have allowed a skip
  /// or delta: divergence detected, staleness budget exhausted, or the
  /// endpoint was quarantined.
  bool forced_refresh = false;
  /// The endpoint was in quarantine when this cycle processed it.
  bool quarantined = false;
  bool quarantine_entered = false;
  bool quarantine_exited = false;
  /// Transient probe failures retried within this attempt (the retries are
  /// not charged as queries; only outcomes that returned data are).
  size_t probe_retries = 0;
  /// Days since the endpoint's last verified full refresh, as of this
  /// cycle's start (0 when it has never completed one or just did).
  int64_t staleness_days = 0;
};

/// Per due-list entry accounting for one daily cycle, in due (registry)
/// order — failures included, which the aggregate `reports` list is not.
/// This is what lets a fleet recompute cost sums in a canonical global
/// order, bit-identically regardless of how endpoints were sharded, and
/// lets per-endpoint policies (adaptive batch width, churn detection) see
/// which URLs failed.
struct DueOutcome {
  std::string url;
  bool succeeded = false;
  /// Sequential sum of the attempt's simulated query latencies — the cost
  /// charged to the cycle ledger (nonzero even for failed attempts that
  /// spent queries before giving up).
  double charged_latency_ms = 0;
  /// The same attempt's intra-pipeline (batched) duration.
  double charged_intra_ms = 0;
};

/// Outcome of one daily update cycle (§3.1).
struct DailyReport {
  int64_t day = 0;
  size_t due = 0;
  size_t succeeded = 0;
  size_t failed = 0;
  /// Successful runs whose Schema Summary was unchanged (clustering
  /// skipped per §3.2). Probe-skips count here too — a skipped pipeline
  /// is the strongest form of reuse.
  size_t reused = 0;
  /// Incremental-extraction counters over the day's successful runs:
  /// probes issued, endpoints skipped as quiet, dirty-class re-extractions.
  size_t probes = 0;
  size_t probe_skips = 0;
  size_t delta_extractions = 0;
  /// Adversarial-endpoint defense counters over the day's runs (all zero
  /// on honest fleets; see the PipelineReport flags they fold).
  size_t probe_mismatches = 0;
  size_t forced_refreshes = 0;
  size_t quarantines_entered = 0;
  size_t quarantines_exited = 0;
  /// Staleness histogram over the day's successful incremental runs:
  /// days-since-last-full-refresh -> endpoint count. Empty outside the
  /// delta modes (kDelta/kBounded), keeping earlier reports byte-stable.
  std::map<int64_t, size_t> staleness_histogram;
  /// Worker count the cycle ran with (1 = sequential).
  int parallelism = 1;
  /// Real wall-clock of the whole cycle.
  double wall_ms = 0;
  /// Sum of all pipelines' simulated extraction latency, including the
  /// latency failed attempts accrued before giving up — the *cost*
  /// figure, identical regardless of parallelism.
  double sum_latency_ms = 0;
  /// Deterministic list-scheduling makespan of the simulated latencies
  /// over `parallelism` workers — the *duration* figure a SimClock should
  /// be advanced by. Equals sum_latency_ms when parallelism == 1.
  ///
  /// Charged from each pipeline's *sequential* latency total, so the
  /// figure is bit-identical whether intra-pipeline batching is on or
  /// off — batching shows up in batched_makespan_ms instead.
  double makespan_ms = 0;
  /// Same list-scheduling makespan, but each pipeline's duration is its
  /// intra-pipeline makespan (queries inside one extraction overlapping
  /// up to ServerOptions::query_batch_width). Equals makespan_ms when
  /// batching is off; the gap between the two is what intra-pipeline
  /// fan-out buys.
  double batched_makespan_ms = 0;
  /// Query-engine deployment counters: the cycle's delta of the attached
  /// endpoints' plan-cache and hash-join activity (summed in URL order).
  /// Deployment figures like wall_ms — a concurrent batch can turn one
  /// would-be hit into a second miss, so these are reported next to the
  /// wall clock and excluded from the canonical (bit-identical) content.
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t hash_join_builds = 0;
  /// Reports in registry (due-list) order, independent of the order in
  /// which workers actually finished.
  std::vector<PipelineReport> reports;
  /// One entry per due-list URL (success or failure), in due order, with
  /// the exact costs the ledgers were charged.
  std::vector<DueOutcome> outcomes;
};

/// Server construction knobs (ExecOptions-style).
struct ServerOptions {
  /// §3.1 refresh age: re-extract after N days (7 in the paper).
  int64_t refresh_age_days = 7;
  /// Worker threads for the daily cycle; <= 1 runs sequentially inline.
  int parallelism = 1;
  /// Intra-pipeline fan-out: max concurrent queries one extraction may
  /// have in flight against its endpoint (the politeness cap batched
  /// strategies honor). <= 1 keeps every pipeline's queries sequential.
  /// Batch work runs on the *same* pool as the pipelines themselves —
  /// one pool serves both layers, so total threads never exceed
  /// `parallelism` no matter how wide the batches are.
  int query_batch_width = 1;
  /// Incremental extraction (change probes + dirty-class patching). Off
  /// by default: kOff runs are byte-identical to pre-incremental builds.
  IncrementalOptions incremental;
  /// Page size for the paginated-scan strategy, 0 = the strategy's
  /// default. Tests and benches shrink it so the small simulated stores
  /// exercise multi-page scans (and the restricted dirty-class scan's
  /// cost model) the way real million-triple endpoints would.
  size_t paginated_page_size = 0;
};

/// H-BOLD's server layer: owns the endpoint registry and the document
/// store, runs Index Extraction -> Schema Summary -> Cluster Schema ->
/// persist for each endpoint, and the daily refresh cycle.
///
/// The "network" is a map from endpoint URL to a SparqlEndpoint*; in
/// production these would be HTTP clients, here they are simulated
/// endpoints.
class Server {
 public:
  /// Primary constructor: the server *reads* simulated time through
  /// `timeline` (a sim::EventLoop, or any Timeline) and never advances
  /// it — under the event-loop redesign only the loop's dispatcher moves
  /// time. `db` and `timeline` must outlive the server.
  Server(store::Database* db, const sim::Timeline* timeline,
         const ServerOptions& options);

  /// SimClock compatibility shims (one release): wrap `clock` in an
  /// owned ClockTimeline so pre-event-loop callers that still advance a
  /// bare SimClock between manual cycles keep working unchanged.
  Server(store::Database* db, SimClock* clock,
         int64_t refresh_age_days = 7);
  Server(store::Database* db, SimClock* clock, const ServerOptions& options);

  const ServerOptions& options() const { return options_; }

  endpoint::EndpointRegistry& registry() { return registry_; }
  const endpoint::EndpointRegistry& registry() const { return registry_; }
  store::Database* db() { return db_; }

  /// Attaches a live endpoint for `url` (does not register it).
  void AttachEndpoint(const std::string& url, endpoint::SparqlEndpoint* ep);

  /// Removes the route to `url` (the registry record stays — subsequent
  /// attempts fail Unavailable and retry daily per §3.1). Like
  /// AttachEndpoint, only between cycles, never concurrently with one.
  void DetachEndpoint(const std::string& url);

  /// Overrides the intra-pipeline batch width for one endpoint (clamped
  /// to >= 1); 0 clears back to ServerOptions::query_batch_width. The
  /// fleet's adaptive-width policy drives this between cycles from
  /// observed per-endpoint throttling. Deterministic-accounting contract:
  /// width only moves duration figures (intra/batched makespans), never
  /// the work or cost figures, so overrides cannot perturb report
  /// bit-identity. Only between cycles, never concurrently with one.
  void SetQueryBatchWidthOverride(const std::string& url, int width);

  /// The batch width ProcessEndpoint will use for `url` right now.
  int QueryBatchWidthFor(const std::string& url) const;

  /// Registers an endpoint record; returns false on duplicate URL.
  bool RegisterEndpoint(endpoint::EndpointRecord record);

  /// Runs the full pipeline for one endpoint and persists the results.
  /// Updates the registry bookkeeping. Fails (and records the failure) when
  /// the endpoint is unreachable or extraction fails.
  ///
  /// Re-entrant: safe to call concurrently for *distinct* URLs — the
  /// store serializes per-collection writes, the registry serializes
  /// bookkeeping, and the pipeline itself holds no server-level mutable
  /// state. (Two concurrent calls for the same URL would race on that
  /// endpoint's stored documents.)
  Result<PipelineReport> ProcessEndpoint(const std::string& url);

  /// One §3.1 daily cycle: extract everything the scheduler says is due,
  /// using ServerOptions::parallelism workers.
  DailyReport RunDailyUpdate();

  /// The same cycle with an explicit worker count. The due list is a
  /// registry snapshot taken up front; endpoint pipelines fan out over a
  /// thread pool and their reports are merged back in registry order, so
  /// the DailyReport (endpoint order, counts, reused flags) is identical
  /// to the sequential run on the same portal state.
  DailyReport RunDailyCycle(int parallelism);

  /// The same cycle on a caller-owned pool — the form the fleet layer
  /// uses so every shard's cycle shares ONE pool (ParallelFor's claim
  /// loop keeps the nesting deadlock-free). `pool` may be larger or
  /// smaller than `parallelism`; all deterministic figures (makespans,
  /// merge order) are computed from `parallelism` alone, so the report is
  /// bit-identical whatever pool actually ran it. `pool == nullptr` runs
  /// inline.
  DailyReport RunDailyCycleOn(ThreadPool* pool, int parallelism);

  /// Persists the registry into the store (collection kRegistryCollection).
  Status PersistRegistry();
  /// Restores the registry from the store.
  Status LoadRegistry();

 private:
  /// Simulated cost one pipeline attempt accrued, on success *and* on
  /// failure (a timed-out extraction still spent its queries' latency) —
  /// what the daily cycle's ledgers charge.
  struct PipelineCost {
    double latency_ms = 0;   // sequential sum of query latencies
    double intra_ms = 0;     // duration with intra-pipeline batching
  };

  /// ProcessEndpoint with cost feedback (`cost` may be null) and the
  /// shared pool intra-pipeline batches fan out over (null runs batch
  /// jobs inline on this thread).
  Result<PipelineReport> ProcessEndpointImpl(const std::string& url,
                                             ThreadPool* pool,
                                             PipelineCost* cost);

  /// Sum of the attached endpoints' cumulative engine counters, in URL
  /// (map) order. Taken before/after a cycle for the DailyReport delta.
  endpoint::QueryEngineStats SumEngineStats() const;

  store::Database* db_;
  /// Owned only by the SimClock compatibility constructors.
  std::unique_ptr<sim::ClockTimeline> owned_timeline_;
  const sim::Timeline* timeline_;
  ServerOptions options_;
  extraction::RefreshScheduler scheduler_;
  extraction::IndexExtractor extractor_;
  endpoint::EndpointRegistry registry_;
  /// Read-only during a cycle: AttachEndpoint must happen before
  /// RunDailyCycle, never concurrently with it.
  std::map<std::string, endpoint::SparqlEndpoint*> network_;
  /// Per-endpoint batch-width overrides (adaptive policy). Read-only
  /// during a cycle, mutated only between cycles — same discipline as
  /// network_.
  std::map<std::string, int> width_overrides_;
};

}  // namespace hbold

#endif  // HBOLD_HBOLD_SERVER_H_
