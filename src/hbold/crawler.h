#ifndef HBOLD_HBOLD_CRAWLER_H_
#define HBOLD_HBOLD_CRAWLER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "endpoint/endpoint.h"
#include "endpoint/query_batch.h"
#include "endpoint/registry.h"

namespace hbold {

/// One portal to crawl: a display name plus the portal's own SPARQL
/// endpoint (the thing Listing 1 runs against).
struct PortalTarget {
  std::string name;
  endpoint::SparqlEndpoint* endpoint = nullptr;
};

/// The DCAT discovery query of the paper's Listing 1, verbatim in shape:
/// datasets with a distribution whose accessURL matches /sparql/.
std::string Listing1Query();

/// Per-portal crawl outcome (the §3.3 numbers).
struct PortalCrawlResult {
  std::string portal_name;
  size_t datasets_matched = 0;   // rows returned by Listing 1
  size_t distinct_urls = 0;      // distinct SPARQL URLs on this portal
  size_t already_known = 0;      // URLs already in the registry
  size_t newly_added = 0;        // URLs added to the registry
};

/// Crawls open data portals for SPARQL endpoints (§3.3): runs the Listing 1
/// query on each portal's own SPARQL endpoint, extracts the discovered
/// accessURLs, deduplicates against (and inserts into) the registry.
class PortalCrawler {
 public:
  /// `registry` must outlive the crawler.
  explicit PortalCrawler(endpoint::EndpointRegistry* registry)
      : registry_(registry) {}

  /// Crawls one portal. `today` stamps the added_day of new records.
  Result<PortalCrawlResult> Crawl(const std::string& portal_name,
                                  endpoint::SparqlEndpoint* portal,
                                  int64_t today);

  /// Crawls every portal, fanning the Listing 1 probes out through
  /// `options` (the daily cycle's shared pool + politeness cap). Registry
  /// mutation happens only after all probes return, in portal order then
  /// row order, so the registry ends up bit-identical to sequential
  /// per-portal crawls no matter how the probes interleaved. Results are
  /// in portal order; a failed portal carries its error and registers
  /// nothing.
  std::vector<Result<PortalCrawlResult>> CrawlAll(
      const std::vector<PortalTarget>& portals, int64_t today,
      const endpoint::QueryBatchOptions& options);

 private:
  /// Merges one portal's already-fetched Listing 1 outcome into the
  /// registry (the sequential tail shared by Crawl and CrawlAll).
  PortalCrawlResult Merge(const std::string& portal_name,
                          const endpoint::QueryOutcome& outcome,
                          int64_t today);

  endpoint::EndpointRegistry* registry_;
};

}  // namespace hbold

#endif  // HBOLD_HBOLD_CRAWLER_H_
