#include "sparql/parser.h"

#include "common/string_util.h"
#include "rdf/vocab.h"
#include "sparql/lexer.h"

namespace hbold::sparql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectQuery> Run() {
    SelectQuery q;
    // Prologue: PREFIX declarations.
    while (IsKeyword("PREFIX")) {
      ++pos_;
      if (Cur().kind != TokenKind::kPname) return Err("expected prefix name");
      std::string pname = Cur().text;
      size_t colon = pname.find(':');
      std::string label = pname.substr(0, colon);
      ++pos_;
      if (Cur().kind != TokenKind::kIri) return Err("expected IRI after prefix");
      q.prefixes[label] = Cur().text;
      ++pos_;
    }
    if (IsKeyword("ASK")) {
      ++pos_;
      q.form = QueryForm::kAsk;
      HBOLD_ASSIGN_OR_RETURN(GroupGraphPattern where, ParseGroup(q.prefixes));
      q.where = std::move(where);
      if (Cur().kind != TokenKind::kEnd) {
        return Err("unexpected tokens after ASK pattern");
      }
      return q;
    }
    if (!IsKeyword("SELECT")) return Err("expected SELECT or ASK");
    ++pos_;
    if (IsKeyword("DISTINCT")) {
      q.distinct = true;
      ++pos_;
    }
    // Projection.
    if (Cur().kind == TokenKind::kStar) {
      q.select_all = true;
      ++pos_;
    } else {
      while (true) {
        if (Cur().kind == TokenKind::kVar) {
          q.vars.push_back(Cur().text);
          ++pos_;
        } else if (Cur().kind == TokenKind::kLParen) {
          HBOLD_ASSIGN_OR_RETURN(Aggregate agg, ParseAggregate());
          q.aggregates.push_back(std::move(agg));
        } else {
          break;
        }
      }
      if (q.vars.empty() && q.aggregates.empty()) {
        return Err("empty SELECT projection");
      }
    }
    if (IsKeyword("WHERE")) ++pos_;
    HBOLD_ASSIGN_OR_RETURN(GroupGraphPattern where, ParseGroup(q.prefixes));
    q.where = std::move(where);

    // Solution modifiers.
    while (true) {
      if (IsKeyword("GROUP")) {
        ++pos_;
        if (!IsKeyword("BY")) return Err("expected BY after GROUP");
        ++pos_;
        while (Cur().kind == TokenKind::kVar) {
          q.group_by.push_back(Cur().text);
          ++pos_;
        }
        if (q.group_by.empty()) return Err("empty GROUP BY");
        continue;
      }
      if (IsKeyword("ORDER")) {
        ++pos_;
        if (!IsKeyword("BY")) return Err("expected BY after ORDER");
        ++pos_;
        while (true) {
          bool asc = true;
          if (IsKeyword("ASC") || IsKeyword("DESC")) {
            asc = IsKeyword("ASC");
            ++pos_;
            if (Cur().kind != TokenKind::kLParen) return Err("expected (");
            ++pos_;
            if (Cur().kind != TokenKind::kVar) return Err("expected variable");
            q.order_by.emplace_back(Cur().text, asc);
            ++pos_;
            if (Cur().kind != TokenKind::kRParen) return Err("expected )");
            ++pos_;
          } else if (Cur().kind == TokenKind::kVar) {
            q.order_by.emplace_back(Cur().text, true);
            ++pos_;
          } else {
            break;
          }
        }
        if (q.order_by.empty()) return Err("empty ORDER BY");
        continue;
      }
      if (IsKeyword("LIMIT")) {
        ++pos_;
        if (Cur().kind != TokenKind::kNumber) return Err("expected number");
        q.limit = static_cast<size_t>(std::stoll(Cur().text));
        ++pos_;
        continue;
      }
      if (IsKeyword("OFFSET")) {
        ++pos_;
        if (Cur().kind != TokenKind::kNumber) return Err("expected number");
        q.offset = static_cast<size_t>(std::stoll(Cur().text));
        ++pos_;
        continue;
      }
      break;
    }
    if (Cur().kind != TokenKind::kEnd) return Err("unexpected trailing tokens");
    return q;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }

  bool IsKeyword(std::string_view kw) const {
    return Cur().kind == TokenKind::kKeyword && Cur().text == kw;
  }

  template <typename T = SelectQuery>
  Result<T> Err(std::string msg) const {
    return Status::ParseError("sparql parse: " + std::move(msg) +
                              " at offset " + std::to_string(Cur().offset));
  }
  Status ErrSt(std::string msg) const {
    return Status::ParseError("sparql parse: " + std::move(msg) +
                              " at offset " + std::to_string(Cur().offset));
  }

  Result<Aggregate> ParseAggregate() {
    // '(' COUNT '(' [DISTINCT] (*|?var) ')' AS ?name ')'
    ++pos_;  // '('
    if (!IsKeyword("COUNT")) {
      return Status::ParseError("only COUNT aggregates are supported");
    }
    ++pos_;
    if (Cur().kind != TokenKind::kLParen) {
      return Status::ParseError("expected ( after COUNT");
    }
    ++pos_;
    Aggregate agg;
    if (IsKeyword("DISTINCT")) {
      agg.distinct = true;
      ++pos_;
    }
    if (Cur().kind == TokenKind::kStar) {
      ++pos_;
    } else if (Cur().kind == TokenKind::kVar) {
      agg.var = Cur().text;
      ++pos_;
    } else {
      return Status::ParseError("expected * or variable in COUNT");
    }
    if (Cur().kind != TokenKind::kRParen) {
      return Status::ParseError("expected ) in COUNT");
    }
    ++pos_;
    if (!IsKeyword("AS")) return Status::ParseError("expected AS");
    ++pos_;
    if (Cur().kind != TokenKind::kVar) {
      return Status::ParseError("expected variable after AS");
    }
    agg.as = Cur().text;
    ++pos_;
    if (Cur().kind != TokenKind::kRParen) {
      return Status::ParseError("expected closing ) of aggregate");
    }
    ++pos_;
    return agg;
  }

  Result<GroupGraphPattern> ParseGroup(
      const std::map<std::string, std::string>& prefixes) {
    if (Cur().kind != TokenKind::kLBrace) {
      return Status::ParseError("expected {");
    }
    ++pos_;
    GroupGraphPattern group;
    while (true) {
      if (Cur().kind == TokenKind::kRBrace) {
        ++pos_;
        break;
      }
      if (Cur().kind == TokenKind::kEnd) {
        return Status::ParseError("unterminated group pattern");
      }
      if (IsKeyword("FILTER")) {
        ++pos_;
        HBOLD_ASSIGN_OR_RETURN(auto expr, ParseBracketedExpr(prefixes));
        group.filters.push_back(std::move(expr));
        if (Cur().kind == TokenKind::kDot) ++pos_;
        continue;
      }
      if (IsKeyword("OPTIONAL")) {
        ++pos_;
        HBOLD_ASSIGN_OR_RETURN(GroupGraphPattern opt, ParseGroup(prefixes));
        group.optionals.push_back(
            std::make_unique<GroupGraphPattern>(std::move(opt)));
        if (Cur().kind == TokenKind::kDot) ++pos_;
        continue;
      }
      if (Cur().kind == TokenKind::kLBrace) {
        // '{ A } UNION { B }'
        HBOLD_ASSIGN_OR_RETURN(GroupGraphPattern left, ParseGroup(prefixes));
        if (!IsKeyword("UNION")) {
          return Status::ParseError("expected UNION after nested group");
        }
        ++pos_;
        HBOLD_ASSIGN_OR_RETURN(GroupGraphPattern right, ParseGroup(prefixes));
        UnionPattern u;
        u.left = std::make_unique<GroupGraphPattern>(std::move(left));
        u.right = std::make_unique<GroupGraphPattern>(std::move(right));
        group.unions.push_back(std::move(u));
        if (Cur().kind == TokenKind::kDot) ++pos_;
        continue;
      }
      // Triples block: subject (predicate object (',' object)*) (';' ...)* '.'
      HBOLD_RETURN_NOT_OK(ParseTriples(&group, prefixes));
    }
    return group;
  }

  Status ParseTriples(GroupGraphPattern* group,
                      const std::map<std::string, std::string>& prefixes) {
    HBOLD_ASSIGN_OR_RETURN(TermOrVar subject, ParseTermOrVar(prefixes, false));
    while (true) {
      TermOrVar predicate;
      if (Cur().kind == TokenKind::kA) {
        predicate = TermOrVar::Const(rdf::Term::Iri(rdf::vocab::kRdfType));
        ++pos_;
      } else {
        HBOLD_ASSIGN_OR_RETURN(predicate, ParseTermOrVar(prefixes, false));
      }
      while (true) {
        HBOLD_ASSIGN_OR_RETURN(TermOrVar object, ParseTermOrVar(prefixes, true));
        group->triples.push_back({subject, predicate, object});
        if (Cur().kind == TokenKind::kComma) {
          ++pos_;
          continue;
        }
        break;
      }
      if (Cur().kind == TokenKind::kSemicolon) {
        ++pos_;
        // Allow trailing ';' before '.' or '}'.
        if (Cur().kind == TokenKind::kDot ||
            Cur().kind == TokenKind::kRBrace) {
          break;
        }
        continue;
      }
      break;
    }
    if (Cur().kind == TokenKind::kDot) ++pos_;
    return Status::OK();
  }

  Result<TermOrVar> ParseTermOrVar(
      const std::map<std::string, std::string>& prefixes, bool allow_literal) {
    const Token& t = Cur();
    switch (t.kind) {
      case TokenKind::kVar:
        ++pos_;
        return TermOrVar::Var(t.text);
      case TokenKind::kIri:
        ++pos_;
        return TermOrVar::Const(rdf::Term::Iri(t.text));
      case TokenKind::kPname: {
        HBOLD_ASSIGN_OR_RETURN(rdf::Term term, ExpandPname(t.text, prefixes));
        ++pos_;
        return TermOrVar::Const(std::move(term));
      }
      case TokenKind::kString: {
        if (!allow_literal) {
          return Status::ParseError("literal not allowed here");
        }
        std::string value = t.text;
        ++pos_;
        // Optional @lang / ^^dt.
        if (Cur().kind == TokenKind::kAt) {
          std::string lang = Cur().text;
          ++pos_;
          return TermOrVar::Const(rdf::Term::Literal(
              std::move(value), rdf::vocab::kRdfLangString, lang));
        }
        if (Cur().kind == TokenKind::kDtCaret) {
          ++pos_;
          if (Cur().kind == TokenKind::kIri) {
            std::string dt = Cur().text;
            ++pos_;
            return TermOrVar::Const(rdf::Term::Literal(std::move(value), dt));
          }
          if (Cur().kind == TokenKind::kPname) {
            HBOLD_ASSIGN_OR_RETURN(rdf::Term dt,
                                   ExpandPname(Cur().text, prefixes));
            ++pos_;
            return TermOrVar::Const(
                rdf::Term::Literal(std::move(value), dt.lexical()));
          }
          return Status::ParseError("expected datatype after ^^");
        }
        return TermOrVar::Const(rdf::Term::Literal(std::move(value)));
      }
      case TokenKind::kNumber: {
        if (!allow_literal) {
          return Status::ParseError("literal not allowed here");
        }
        std::string lex = t.text;
        ++pos_;
        bool is_int = lex.find('.') == std::string::npos &&
                      lex.find('e') == std::string::npos &&
                      lex.find('E') == std::string::npos;
        return TermOrVar::Const(rdf::Term::Literal(
            lex, is_int ? rdf::vocab::kXsdInteger : rdf::vocab::kXsdDouble));
      }
      case TokenKind::kKeyword:
        if (t.text == "TRUE" || t.text == "FALSE") {
          ++pos_;
          return TermOrVar::Const(rdf::Term::BoolLiteral(t.text == "TRUE"));
        }
        return Status::ParseError("unexpected keyword '" + t.text + "'");
      default:
        return Status::ParseError("expected term at offset " +
                                  std::to_string(t.offset));
    }
  }

  static Result<rdf::Term> ExpandPname(
      const std::string& pname,
      const std::map<std::string, std::string>& prefixes) {
    size_t colon = pname.find(':');
    std::string label = pname.substr(0, colon);
    std::string local = pname.substr(colon + 1);
    auto it = prefixes.find(label);
    if (it == prefixes.end()) {
      return Status::ParseError("unknown prefix '" + label + "'");
    }
    return rdf::Term::Iri(it->second + local);
  }

  // --- FILTER expression parsing (precedence: || < && < cmp < unary) ---

  Result<std::unique_ptr<Expr>> ParseBracketedExpr(
      const std::map<std::string, std::string>& prefixes) {
    if (Cur().kind != TokenKind::kLParen) {
      // Allow bare function call filters: FILTER REGEX(...), FILTER BOUND(?x)
      return ParseOr(prefixes);
    }
    ++pos_;
    HBOLD_ASSIGN_OR_RETURN(auto expr, ParseOr(prefixes));
    if (Cur().kind != TokenKind::kRParen) {
      return Status::ParseError("expected ) closing FILTER");
    }
    ++pos_;
    return expr;
  }

  Result<std::unique_ptr<Expr>> ParseOr(
      const std::map<std::string, std::string>& prefixes) {
    HBOLD_ASSIGN_OR_RETURN(auto left, ParseAnd(prefixes));
    while (Cur().kind == TokenKind::kOr) {
      ++pos_;
      HBOLD_ASSIGN_OR_RETURN(auto right, ParseAnd(prefixes));
      left = Expr::Binary(Expr::Kind::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseAnd(
      const std::map<std::string, std::string>& prefixes) {
    HBOLD_ASSIGN_OR_RETURN(auto left, ParseCmp(prefixes));
    while (Cur().kind == TokenKind::kAnd) {
      ++pos_;
      HBOLD_ASSIGN_OR_RETURN(auto right, ParseCmp(prefixes));
      left = Expr::Binary(Expr::Kind::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<std::unique_ptr<Expr>> ParseCmp(
      const std::map<std::string, std::string>& prefixes) {
    HBOLD_ASSIGN_OR_RETURN(auto left, ParseUnary(prefixes));
    Expr::CmpOp op;
    switch (Cur().kind) {
      case TokenKind::kEq:
        op = Expr::CmpOp::kEq;
        break;
      case TokenKind::kNe:
        op = Expr::CmpOp::kNe;
        break;
      case TokenKind::kLt:
        op = Expr::CmpOp::kLt;
        break;
      case TokenKind::kGt:
        op = Expr::CmpOp::kGt;
        break;
      case TokenKind::kLe:
        op = Expr::CmpOp::kLe;
        break;
      case TokenKind::kGe:
        op = Expr::CmpOp::kGe;
        break;
      default:
        return left;
    }
    ++pos_;
    HBOLD_ASSIGN_OR_RETURN(auto right, ParseUnary(prefixes));
    return Expr::Compare(op, std::move(left), std::move(right));
  }

  Result<std::unique_ptr<Expr>> ParseUnary(
      const std::map<std::string, std::string>& prefixes) {
    if (Cur().kind == TokenKind::kBang) {
      ++pos_;
      HBOLD_ASSIGN_OR_RETURN(auto inner, ParseUnary(prefixes));
      return Expr::Unary(Expr::Kind::kNot, std::move(inner));
    }
    if (Cur().kind == TokenKind::kLParen) {
      ++pos_;
      HBOLD_ASSIGN_OR_RETURN(auto inner, ParseOr(prefixes));
      if (Cur().kind != TokenKind::kRParen) {
        return Status::ParseError("expected )");
      }
      ++pos_;
      return inner;
    }
    if (Cur().kind == TokenKind::kKeyword) {
      std::string kw = Cur().text;
      if (kw == "REGEX" || kw == "CONTAINS") {
        ++pos_;
        if (Cur().kind != TokenKind::kLParen) {
          return Status::ParseError("expected ( after " + kw);
        }
        ++pos_;
        HBOLD_ASSIGN_OR_RETURN(auto a, ParseOr(prefixes));
        if (Cur().kind != TokenKind::kComma) {
          return Status::ParseError("expected , in " + kw);
        }
        ++pos_;
        HBOLD_ASSIGN_OR_RETURN(auto b, ParseOr(prefixes));
        // Optional flags argument for REGEX (ignored beyond 'i').
        std::unique_ptr<Expr> expr;
        if (kw == "REGEX" && Cur().kind == TokenKind::kComma) {
          ++pos_;
          HBOLD_ASSIGN_OR_RETURN(auto flags, ParseOr(prefixes));
          expr = Expr::Binary(Expr::Kind::kRegex, std::move(a), std::move(b));
          expr->args.push_back(std::move(flags));
        } else {
          expr = Expr::Binary(
              kw == "REGEX" ? Expr::Kind::kRegex : Expr::Kind::kContains,
              std::move(a), std::move(b));
        }
        if (Cur().kind != TokenKind::kRParen) {
          return Status::ParseError("expected ) closing " + kw);
        }
        ++pos_;
        return expr;
      }
      if (kw == "STR" || kw == "LCASE" || kw == "ISIRI" || kw == "ISLITERAL") {
        ++pos_;
        if (Cur().kind != TokenKind::kLParen) {
          return Status::ParseError("expected ( after " + kw);
        }
        ++pos_;
        HBOLD_ASSIGN_OR_RETURN(auto a, ParseOr(prefixes));
        if (Cur().kind != TokenKind::kRParen) {
          return Status::ParseError("expected ) closing " + kw);
        }
        ++pos_;
        Expr::Kind kind = Expr::Kind::kStr;
        if (kw == "LCASE") kind = Expr::Kind::kLcase;
        if (kw == "ISIRI") kind = Expr::Kind::kIsIri;
        if (kw == "ISLITERAL") kind = Expr::Kind::kIsLiteral;
        return Expr::Unary(kind, std::move(a));
      }
      if (kw == "BOUND") {
        ++pos_;
        if (Cur().kind != TokenKind::kLParen) {
          return Status::ParseError("expected ( after BOUND");
        }
        ++pos_;
        if (Cur().kind != TokenKind::kVar) {
          return Status::ParseError("expected variable in BOUND");
        }
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kBound;
        e->var = Cur().text;
        ++pos_;
        if (Cur().kind != TokenKind::kRParen) {
          return Status::ParseError("expected ) closing BOUND");
        }
        ++pos_;
        return e;
      }
      if (kw == "TRUE" || kw == "FALSE") {
        ++pos_;
        return Expr::Literal(rdf::Term::BoolLiteral(kw == "TRUE"));
      }
      return Status::ParseError("unexpected keyword in expression: " + kw);
    }
    // Primary: var / literal / IRI.
    HBOLD_ASSIGN_OR_RETURN(TermOrVar tv, ParseTermOrVar(prefixes, true));
    if (tv.is_var) return Expr::Var(tv.var);
    return Expr::Literal(tv.term);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectQuery> ParseQuery(std::string_view text) {
  HBOLD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser p(std::move(tokens));
  return p.Run();
}

}  // namespace hbold::sparql
