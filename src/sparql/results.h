#ifndef HBOLD_SPARQL_RESULTS_H_
#define HBOLD_SPARQL_RESULTS_H_

#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "rdf/term.h"

namespace hbold::sparql {

/// A solution sequence: named columns, rows of optional terms (a missing
/// optional binding is an empty cell).
class ResultTable {
 public:
  using Row = std::vector<std::optional<rdf::Term>>;

  ResultTable() = default;
  explicit ResultTable(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return columns_.size(); }
  bool empty() const { return rows_.empty(); }

  void AddRow(Row row) { rows_.push_back(std::move(row)); }

  /// Index of a column by name, or -1.
  int ColumnIndex(const std::string& name) const;

  /// Cell accessor; returns nullopt when row/column is out of range or the
  /// binding is absent.
  std::optional<rdf::Term> Cell(size_t row, const std::string& column) const;

  /// First row's value in `column` interpreted as an integer literal —
  /// the common shape of COUNT query results. Returns nullopt when absent
  /// or non-numeric.
  std::optional<int64_t> ScalarInt(const std::string& column) const;

  /// Decodes the result of an ASK query (single "ask" boolean cell);
  /// nullopt when this is not an ASK result table.
  std::optional<bool> AskResult() const;

  /// SPARQL-JSON-results-like serialization (head/results/bindings).
  hbold::Json ToJson() const;

  /// Tab-separated text form for logs and examples.
  std::string ToTsv() const;

  /// SPARQL-results-CSV form (RFC 4180 quoting, header row of variable
  /// names, cell values are plain lexical forms as the CSV results spec
  /// prescribes).
  std::string ToCsv() const;

  /// Truncates to the first `n` rows (endpoint row-cap simulation).
  void Truncate(size_t n);

 private:
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace hbold::sparql

#endif  // HBOLD_SPARQL_RESULTS_H_
