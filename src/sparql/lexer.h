#ifndef HBOLD_SPARQL_LEXER_H_
#define HBOLD_SPARQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace hbold::sparql {

/// SPARQL token kinds (subset sufficient for H-BOLD's query workload).
enum class TokenKind {
  kKeyword,    // SELECT WHERE FILTER ... (uppercased in `text`)
  kVar,        // ?name or $name (text = name without sigil)
  kIri,        // <...> (text = IRI)
  kPname,      // prefix:local (text as written)
  kString,     // "..." (text = unescaped value)
  kNumber,     // 123 / 1.5 / 1e3 (text = lexical form)
  kLBrace,     // {
  kRBrace,     // }
  kLParen,     // (
  kRParen,     // )
  kDot,        // .
  kSemicolon,  // ;
  kComma,      // ,
  kStar,       // *
  kEq,         // =
  kNe,         // !=
  kLt,         // <
  kGt,         // >
  kLe,         // <=
  kGe,         // >=
  kAnd,        // &&
  kOr,         // ||
  kBang,       // !
  kAt,         // @lang (text = tag)
  kDtCaret,    // ^^
  kA,          // bare 'a' (rdf:type)
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t offset = 0;  // byte offset in the query string, for error messages
};

/// Tokenizes SPARQL query text. Keywords are case-insensitive and returned
/// uppercased; '<' is disambiguated between IRIREF and less-than by the
/// character that follows.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace hbold::sparql

#endif  // HBOLD_SPARQL_LEXER_H_
