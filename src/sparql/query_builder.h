#ifndef HBOLD_SPARQL_QUERY_BUILDER_H_
#define HBOLD_SPARQL_QUERY_BUILDER_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hbold::sparql {

/// Programmatic SPARQL text generator.
///
/// This backs H-BOLD's visual query interface: the presentation layer
/// translates user selections (a focus class, its attributes, paths to
/// connected classes, filters) into builder calls, and the builder emits a
/// well-formed SELECT query for the endpoint. Emission order is
/// deterministic (insertion order) so generated queries are testable.
class QueryBuilder {
 public:
  QueryBuilder() = default;

  /// Registers a PREFIX declaration.
  QueryBuilder& Prefix(const std::string& label, const std::string& iri);

  /// Adds a projected variable (name without '?').
  QueryBuilder& Select(const std::string& var);
  /// Projects COUNT([DISTINCT] ?var | *) AS ?as.
  QueryBuilder& SelectCount(const std::optional<std::string>& var,
                            const std::string& as, bool distinct = false);
  QueryBuilder& Distinct(bool distinct = true);

  /// Adds the pattern `?var a <class_iri>`.
  QueryBuilder& WhereClass(const std::string& var,
                           const std::string& class_iri);
  /// Adds `?s <predicate_iri> ?o`.
  QueryBuilder& WhereLink(const std::string& subject_var,
                          const std::string& predicate_iri,
                          const std::string& object_var);
  /// Adds a raw triple pattern; each part is emitted verbatim ("?x",
  /// "<iri>", "\"literal\"", "a").
  QueryBuilder& WhereRaw(const std::string& s, const std::string& p,
                         const std::string& o);
  /// Wraps the previous pattern in OPTIONAL { ... }. Applies to the most
  /// recently added triple.
  QueryBuilder& MakeLastOptional();

  /// Adds FILTER regex(STR(?var), "pattern").
  QueryBuilder& FilterRegex(const std::string& var, const std::string& pattern,
                            bool case_insensitive = false);
  /// Adds FILTER (?var <op> value) with a raw value string.
  QueryBuilder& FilterCompare(const std::string& var, const std::string& op,
                              const std::string& value);

  QueryBuilder& GroupBy(const std::string& var);
  QueryBuilder& OrderBy(const std::string& var, bool ascending = true);
  QueryBuilder& Limit(size_t n);
  QueryBuilder& Offset(size_t n);

  /// Renders the SPARQL query text.
  std::string Build() const;

 private:
  struct Pattern {
    std::string s, p, o;
    bool optional = false;
  };

  std::vector<std::pair<std::string, std::string>> prefixes_;
  bool distinct_ = false;
  std::vector<std::string> select_;  // rendered projection items
  std::vector<Pattern> patterns_;
  std::vector<std::string> filters_;
  std::vector<std::string> group_by_;
  std::vector<std::string> order_by_;
  std::optional<size_t> limit_;
  std::optional<size_t> offset_;
};

}  // namespace hbold::sparql

#endif  // HBOLD_SPARQL_QUERY_BUILDER_H_
