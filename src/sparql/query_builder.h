#ifndef HBOLD_SPARQL_QUERY_BUILDER_H_
#define HBOLD_SPARQL_QUERY_BUILDER_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hbold::sparql {

/// Escapes `text` for embedding inside a double-quoted SPARQL string
/// literal: backslash, double quote, newline, tab, and carriage return
/// become the escape sequences the lexer accepts. Parsing the emitted
/// literal yields `text` back unchanged, so user-supplied labels can never
/// terminate the literal or inject query syntax.
std::string EscapeLiteral(std::string_view text);

/// Backslash-escapes every regex metacharacter in `text` so the result
/// matches `text` literally under REGEX (both ECMAScript and the
/// executor's LitePatternMatch subset treat \c as the literal c).
std::string EscapeRegexText(std::string_view text);

/// Sanitizes an IRI for emission inside <...>: characters RDF forbids in
/// IRI references (control characters, whitespace, angle brackets, quotes,
/// backslash, and the other <> delimiters) are percent-encoded so a
/// hostile "IRI" cannot break out of the brackets. Well-formed IRIs pass
/// through byte-identical.
std::string EscapeIri(std::string_view iri);

/// Programmatic SPARQL text generator.
///
/// This backs H-BOLD's visual query interface: the presentation layer
/// translates user selections (a focus class, its attributes, paths to
/// connected classes, filters) into builder calls, and the builder emits a
/// well-formed SELECT query for the endpoint. Emission order is
/// deterministic (insertion order) so generated queries are testable.
class QueryBuilder {
 public:
  QueryBuilder() = default;

  /// Registers a PREFIX declaration.
  QueryBuilder& Prefix(const std::string& label, const std::string& iri);

  /// Adds a projected variable (name without '?').
  QueryBuilder& Select(const std::string& var);
  /// Projects COUNT([DISTINCT] ?var | *) AS ?as.
  QueryBuilder& SelectCount(const std::optional<std::string>& var,
                            const std::string& as, bool distinct = false);
  QueryBuilder& Distinct(bool distinct = true);

  /// Adds the pattern `?var a <class_iri>`. The IRI is sanitized with
  /// EscapeIri.
  QueryBuilder& WhereClass(const std::string& var,
                           const std::string& class_iri);
  /// Adds `?s <predicate_iri> ?o`. The IRI is sanitized with EscapeIri.
  QueryBuilder& WhereLink(const std::string& subject_var,
                          const std::string& predicate_iri,
                          const std::string& object_var);
  /// Adds a raw triple pattern; each part is emitted verbatim ("?x",
  /// "<iri>", "\"literal\"", "a").
  QueryBuilder& WhereRaw(const std::string& s, const std::string& p,
                         const std::string& o);
  /// Wraps the previous pattern in OPTIONAL { ... }. Applies to the most
  /// recently added triple.
  QueryBuilder& MakeLastOptional();

  /// Adds FILTER regex(STR(?var), "pattern"). `pattern` is a regular
  /// expression; it is embedded with EscapeLiteral so the parsed query
  /// sees exactly `pattern` (quotes and backslashes included) rather than
  /// whatever the raw bytes happen to lex as.
  QueryBuilder& FilterRegex(const std::string& var, const std::string& pattern,
                            bool case_insensitive = false);
  /// Adds FILTER (?var <op> value) with a raw value string.
  QueryBuilder& FilterCompare(const std::string& var, const std::string& op,
                              const std::string& value);

  QueryBuilder& GroupBy(const std::string& var);
  QueryBuilder& OrderBy(const std::string& var, bool ascending = true);
  QueryBuilder& Limit(size_t n);
  QueryBuilder& Offset(size_t n);

  /// Renders the SPARQL query text.
  std::string Build() const;

 private:
  struct Pattern {
    std::string s, p, o;
    bool optional = false;
  };

  std::vector<std::pair<std::string, std::string>> prefixes_;
  bool distinct_ = false;
  std::vector<std::string> select_;  // rendered projection items
  std::vector<Pattern> patterns_;
  std::vector<std::string> filters_;
  std::vector<std::string> group_by_;
  std::vector<std::string> order_by_;
  std::optional<size_t> limit_;
  std::optional<size_t> offset_;
};

}  // namespace hbold::sparql

#endif  // HBOLD_SPARQL_QUERY_BUILDER_H_
