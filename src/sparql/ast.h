#ifndef HBOLD_SPARQL_AST_H_
#define HBOLD_SPARQL_AST_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace hbold::sparql {

/// A triple-pattern slot: either a concrete RDF term or a variable name
/// (without the '?').
struct TermOrVar {
  bool is_var = false;
  rdf::Term term;
  std::string var;

  static TermOrVar Var(std::string name) {
    TermOrVar t;
    t.is_var = true;
    t.var = std::move(name);
    return t;
  }
  static TermOrVar Const(rdf::Term term) {
    TermOrVar t;
    t.is_var = false;
    t.term = std::move(term);
    return t;
  }
};

/// One triple pattern inside a basic graph pattern.
struct TriplePatternNode {
  TermOrVar s;
  TermOrVar p;
  TermOrVar o;
};

/// FILTER expression tree.
struct Expr {
  enum class Kind {
    kVar,       // ?x
    kLiteral,   // constant term
    kCompare,   // = != < > <= >=
    kAnd,
    kOr,
    kNot,
    kRegex,     // REGEX(text, pattern [, flags])
    kStr,       // STR(e)
    kBound,     // BOUND(?x)
    kIsIri,     // isIRI(e)
    kIsLiteral, // isLITERAL(e)
    kContains,  // CONTAINS(text, needle)
    kLcase,     // LCASE(e)
  };
  enum class CmpOp { kEq, kNe, kLt, kGt, kLe, kGe };

  Kind kind = Kind::kLiteral;
  std::string var;      // kVar / kBound
  rdf::Term literal;    // kLiteral
  CmpOp op = CmpOp::kEq;
  std::vector<std::unique_ptr<Expr>> args;

  static std::unique_ptr<Expr> Var(std::string name);
  static std::unique_ptr<Expr> Literal(rdf::Term t);
  static std::unique_ptr<Expr> Compare(CmpOp op, std::unique_ptr<Expr> l,
                                       std::unique_ptr<Expr> r);
  static std::unique_ptr<Expr> Unary(Kind kind, std::unique_ptr<Expr> a);
  static std::unique_ptr<Expr> Binary(Kind kind, std::unique_ptr<Expr> a,
                                      std::unique_ptr<Expr> b);
};

struct GroupGraphPattern;

/// A UNION of two alternative group patterns.
struct UnionPattern {
  std::unique_ptr<GroupGraphPattern> left;
  std::unique_ptr<GroupGraphPattern> right;
};

/// { triples . FILTER(..) OPTIONAL { .. } { .. } UNION { .. } }
struct GroupGraphPattern {
  std::vector<TriplePatternNode> triples;
  std::vector<std::unique_ptr<Expr>> filters;
  std::vector<std::unique_ptr<GroupGraphPattern>> optionals;
  std::vector<UnionPattern> unions;
};

/// SELECT-clause aggregate. Only COUNT is needed by the H-BOLD index
/// extraction queries, with optional DISTINCT and * argument.
struct Aggregate {
  bool distinct = false;
  std::optional<std::string> var;  // nullopt means COUNT(*)
  std::string as;                  // projected name (without '?')
};

/// Query form: SELECT returns a solution table; ASK returns a single
/// boolean (the idiomatic endpoint liveness probe is `ASK { ?s ?p ?o }`).
enum class QueryForm { kSelect, kAsk };

/// A parsed SELECT or ASK query.
struct SelectQuery {
  QueryForm form = QueryForm::kSelect;
  std::map<std::string, std::string> prefixes;
  bool distinct = false;
  bool select_all = false;               // SELECT *
  std::vector<std::string> vars;         // projected plain variables
  std::vector<Aggregate> aggregates;     // projected aggregates
  GroupGraphPattern where;
  std::vector<std::string> group_by;
  std::vector<std::pair<std::string, bool>> order_by;  // (var, ascending)
  std::optional<size_t> limit;
  std::optional<size_t> offset;

  /// True if the query uses any aggregate (COUNT) — used by the endpoint
  /// dialect simulation to reject aggregates on weak endpoints.
  bool UsesAggregates() const { return !aggregates.empty(); }
};

}  // namespace hbold::sparql

#endif  // HBOLD_SPARQL_AST_H_
