#include "sparql/planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hbold::sparql {

using rdf::kInvalidTermId;
using rdf::TermId;

PatternConsts ResolveConsts(const TriplePatternNode& t,
                            const rdf::Dictionary& dict) {
  PatternConsts c;
  if (!t.s.is_var) {
    c.s = dict.Lookup(t.s.term);
    if (c.s == kInvalidTermId) c.missing = true;
  }
  if (!t.p.is_var) {
    c.p = dict.Lookup(t.p.term);
    if (c.p == kInvalidTermId) c.missing = true;
  }
  if (!t.o.is_var) {
    c.o = dict.Lookup(t.o.term);
    if (c.o == kInvalidTermId) c.missing = true;
  }
  return c;
}

double EstimateCardinality(const TriplePatternNode& t, const PatternConsts& c,
                           const std::set<std::string>& bound,
                           const rdf::TripleStore* store) {
  if (c.missing) return 0.0;  // cannot match — costs nothing to discover
  rdf::TriplePattern probe;
  probe.s = t.s.is_var ? kInvalidTermId : c.s;
  probe.p = t.p.is_var ? kInvalidTermId : c.p;
  probe.o = t.o.is_var ? kInvalidTermId : c.o;
  double est = static_cast<double>(store->Count(probe));
  if (!t.p.is_var) {
    rdf::PredicateStats stats = store->StatsForPredicate(c.p);
    if (t.s.is_var && bound.count(t.s.var) > 0) {
      est /= static_cast<double>(std::max<size_t>(1, stats.distinct_subjects));
    }
    if (t.o.is_var && bound.count(t.o.var) > 0) {
      est /= static_cast<double>(std::max<size_t>(1, stats.distinct_objects));
    }
  }
  return est;
}

std::vector<size_t> PlanOrder(const std::vector<TriplePatternNode>& triples,
                              const ExecOptions& options,
                              const rdf::TripleStore* store) {
  std::vector<size_t> order(triples.size());
  std::iota(order.begin(), order.end(), 0);
  if (!options.greedy_join_order || triples.size() < 2) return order;

  std::vector<PatternConsts> consts;
  consts.reserve(triples.size());
  for (const auto& t : triples) consts.push_back(ResolveConsts(t, store->dict()));

  std::set<std::string> bound;
  std::vector<bool> used(triples.size(), false);
  std::vector<size_t> out;
  out.reserve(triples.size());
  for (size_t step = 0; step < triples.size(); ++step) {
    size_t best = triples.size();
    bool best_connected = false;
    double best_est = 0;
    for (size_t i = 0; i < triples.size(); ++i) {
      if (used[i]) continue;
      const TriplePatternNode& t = triples[i];
      bool connected = bound.empty() ||
                       (t.s.is_var && bound.count(t.s.var) > 0) ||
                       (t.p.is_var && bound.count(t.p.var) > 0) ||
                       (t.o.is_var && bound.count(t.o.var) > 0);
      double est = EstimateCardinality(t, consts[i], bound, store);
      bool better = best == triples.size() ||
                    (connected && !best_connected) ||
                    (connected == best_connected && est < best_est);
      if (better) {
        best = i;
        best_connected = connected;
        best_est = est;
      }
    }
    used[best] = true;
    out.push_back(best);
    const TriplePatternNode& t = triples[best];
    if (t.s.is_var) bound.insert(t.s.var);
    if (t.p.is_var) bound.insert(t.p.var);
    if (t.o.is_var) bound.insert(t.o.var);
  }
  return out;
}

namespace {

/// True when a variable name occupies more than one slot of the pattern
/// (e.g. `?x ?p ?x`): consistency semantics the hash join does not model.
bool HasRepeatedVar(const TriplePatternNode& t) {
  if (t.s.is_var && t.p.is_var && t.s.var == t.p.var) return true;
  if (t.s.is_var && t.o.is_var && t.s.var == t.o.var) return true;
  if (t.p.is_var && t.o.is_var && t.p.var == t.o.var) return true;
  return false;
}

}  // namespace

GroupPlan PlanGroup(const GroupGraphPattern& group, const ExecOptions& options,
                    const rdf::TripleStore* store) {
  GroupPlan plan;
  plan.order = PlanOrder(group.triples, options, store);
  plan.ops.assign(plan.order.size(), JoinOp::kNestedIndexLoop);
  if (options.hash_join == HashJoinMode::kOff || plan.order.size() < 2) {
    return plan;
  }

  // Replay the planned order, tracking the bound-variable set and a
  // running estimate of the intermediate row count, and price each step:
  //   nested index-loop ~ rows * (log2 n + 1) probe cost
  //   hash join         ~ build-side range size + one probe pass
  // (the 2x on the hash side covers bucket sort + hashing constants).
  // kForce skips the pricing — every eligible step hash-joins, which the
  // sanitizer CI leg uses to flush operator-lifetime bugs.
  const double log_n =
      std::log2(static_cast<double>(store->size()) + 2.0) + 1.0;
  constexpr double kMinProbeRows = 32.0;
  std::set<std::string> bound;
  double rows = 1.0;
  for (size_t k = 0; k < plan.order.size(); ++k) {
    const TriplePatternNode& t = group.triples[plan.order[k]];
    PatternConsts c = ResolveConsts(t, store->dict());
    const bool joins_bound = (t.s.is_var && bound.count(t.s.var) > 0) ||
                             (t.p.is_var && bound.count(t.p.var) > 0) ||
                             (t.o.is_var && bound.count(t.o.var) > 0);
    if (k > 0 && joins_bound && !c.missing && !HasRepeatedVar(t)) {
      rdf::TriplePattern build;
      build.s = t.s.is_var ? kInvalidTermId : c.s;
      build.p = t.p.is_var ? kInvalidTermId : c.p;
      build.o = t.o.is_var ? kInvalidTermId : c.o;
      const double build_size = static_cast<double>(store->Count(build));
      const double nested_cost = rows * log_n;
      const double hash_cost = (build_size + rows) * 2.0;
      if (options.hash_join == HashJoinMode::kForce ||
          (rows >= kMinProbeRows && hash_cost < nested_cost)) {
        plan.ops[k] = JoinOp::kHashJoin;
      }
    }
    const double est = EstimateCardinality(t, c, bound, store);
    rows = std::max(0.0, rows * est);
    if (t.s.is_var) bound.insert(t.s.var);
    if (t.p.is_var) bound.insert(t.p.var);
    if (t.o.is_var) bound.insert(t.o.var);
  }
  return plan;
}

QueryPlan PlanQuery(const SelectQuery& q, const ExecOptions& options,
                    const rdf::TripleStore* store) {
  QueryPlan plan;
  ForEachGroup(q.where, [&](const GroupGraphPattern& g) {
    plan.groups.push_back(PlanGroup(g, options, store));
  });
  return plan;
}

// ------------------------------------------------------------ normalization

namespace {

/// Variable -> canonical index, assigned in first-encounter order during
/// the serialization walk.
class VarCanon {
 public:
  size_t Id(const std::string& name) {
    auto [it, fresh] = ids_.emplace(name, ids_.size());
    (void)fresh;
    return it->second;
  }

 private:
  std::unordered_map<std::string, size_t> ids_;
};

void AppendSlot(const TermOrVar& slot, VarCanon* vars, std::string* out) {
  if (slot.is_var) {
    *out += '?';
    *out += std::to_string(vars->Id(slot.var));
  } else {
    *out += slot.term.ToNTriples();
  }
  *out += '\x1f';
}

void AppendExpr(const Expr& e, VarCanon* vars, std::string* out) {
  *out += 'E';
  *out += std::to_string(static_cast<int>(e.kind));
  *out += ':';
  *out += std::to_string(static_cast<int>(e.op));
  *out += ':';
  if (e.kind == Expr::Kind::kVar || e.kind == Expr::Kind::kBound) {
    *out += '?';
    *out += std::to_string(vars->Id(e.var));
  } else if (e.kind == Expr::Kind::kLiteral) {
    *out += e.literal.ToNTriples();
  }
  *out += '(';
  for (const auto& a : e.args) AppendExpr(*a, vars, out);
  *out += ')';
}

void AppendGroup(const GroupGraphPattern& g, VarCanon* vars, std::string* out) {
  *out += '{';
  for (const TriplePatternNode& t : g.triples) {
    *out += 'T';
    AppendSlot(t.s, vars, out);
    AppendSlot(t.p, vars, out);
    AppendSlot(t.o, vars, out);
  }
  for (const auto& f : g.filters) {
    *out += 'F';
    AppendExpr(*f, vars, out);
  }
  for (const auto& u : g.unions) {
    *out += 'U';
    AppendGroup(*u.left, vars, out);
    AppendGroup(*u.right, vars, out);
  }
  for (const auto& o : g.optionals) {
    *out += 'O';
    AppendGroup(*o, vars, out);
  }
  *out += '}';
}

}  // namespace

std::string NormalizeWhereKey(const SelectQuery& q) {
  std::string key;
  key.reserve(128);
  VarCanon vars;
  AppendGroup(q.where, &vars, &key);
  return key;
}

std::string NormalizeGroupKey(const GroupGraphPattern& g) {
  // Fresh VarCanon per group: the alias class restarts at ?0, so the same
  // OPTIONAL body keyed from two different enclosing queries (whose outer
  // variables occupy different canonical indices) still collides onto one
  // entry. Only the triple list is serialized — PlanGroup never looks at
  // filters or nested groups.
  std::string key;
  key.reserve(64);
  VarCanon vars;
  for (const TriplePatternNode& t : g.triples) {
    key += 'T';
    AppendSlot(t.s, &vars, &key);
    AppendSlot(t.p, &vars, &key);
    AppendSlot(t.o, &vars, &key);
  }
  return key;
}

// -------------------------------------------------------------- plan cache

std::shared_ptr<const PreparedQuery> PlanCache::LookupPrepared(
    const std::string& text, uint64_t generation) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (generation_ != generation) return nullptr;
  auto it = prepared_.find(text);
  if (it == prepared_.end()) return nullptr;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void PlanCache::InsertPrepared(const std::string& text, uint64_t generation,
                               std::shared_ptr<const PreparedQuery> prepared) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  FlushIfStaleLocked(generation);
  if (prepared_.size() >= max_entries_ &&
      prepared_.find(text) == prepared_.end() &&
      MakeRoomLocked(prepared_.size())) {
    prepared_.clear();  // epoch eviction; the steady-state corpus re-warms
  }
  prepared_[text] = std::move(prepared);
}

std::shared_ptr<const QueryPlan> PlanCache::Lookup(const std::string& key,
                                                   uint64_t generation) const {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (generation_ == generation) {
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void PlanCache::Insert(const std::string& key, uint64_t generation,
                       std::shared_ptr<const QueryPlan> plan) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  FlushIfStaleLocked(generation);
  if (entries_.size() >= max_entries_ &&
      entries_.find(key) == entries_.end() &&
      MakeRoomLocked(entries_.size())) {
    entries_.clear();  // epoch eviction; the steady-state corpus re-warms
  }
  entries_[key] = std::move(plan);
}

std::shared_ptr<const GroupPlan> PlanCache::LookupGroup(
    const std::string& key, uint64_t generation) const {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (generation_ == generation) {
      auto it = group_entries_.find(key);
      if (it != group_entries_.end()) {
        group_hits_.fetch_add(1, std::memory_order_relaxed);
        it->second.reuses->fetch_add(1, std::memory_order_relaxed);
        return it->second.plan;
      }
    }
  }
  group_misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void PlanCache::InsertGroup(const std::string& key, uint64_t generation,
                            std::shared_ptr<const GroupPlan> plan) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  FlushIfStaleLocked(generation);
  if (group_entries_.size() >= max_entries_ &&
      group_entries_.find(key) == group_entries_.end() &&
      MakeRoomLocked(group_entries_.size())) {
    group_entries_.clear();  // epoch eviction, same as the other tiers
  }
  GroupEntry& entry = group_entries_[key];
  entry.plan = std::move(plan);
  if (entry.reuses == nullptr) {
    entry.reuses = std::make_unique<std::atomic<uint64_t>>(0);
  }
}

std::vector<std::pair<std::string, uint64_t>> PlanCache::GroupReuseStats()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    out.reserve(group_entries_.size());
    for (const auto& [key, entry] : group_entries_) {
      out.emplace_back(key, entry.reuses->load(std::memory_order_relaxed));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool PlanCache::MakeRoomLocked(size_t tier_size) {
  if (!adaptive_ || max_entries_ >= kMaxAdaptiveCapacity) return true;
  // Adaptive growth: the observed corpus outgrew the capacity guess —
  // double (bounded) rather than throw the warm tier away.
  while (max_entries_ <= tier_size && max_entries_ < kMaxAdaptiveCapacity) {
    max_entries_ <<= 1;
  }
  return false;
}

void PlanCache::FlushIfStaleLocked(uint64_t generation) {
  if (generation_ == generation) return;
  // The store was rebuilt since this epoch was planned: every resident
  // plan (and prepared AST) was derived from stale statistics.
  if (!entries_.empty() || !prepared_.empty() || !group_entries_.empty()) {
    entries_.clear();
    prepared_.clear();
    group_entries_.clear();
    invalidations_.fetch_add(1, std::memory_order_relaxed);
  }
  generation_ = generation;
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.group_hits = group_hits_.load(std::memory_order_relaxed);
  s.group_misses = group_misses_.load(std::memory_order_relaxed);
  std::shared_lock<std::shared_mutex> lock(mu_);
  s.entries = entries_.size();
  s.capacity = max_entries_;
  s.group_entries = group_entries_.size();
  return s;
}

size_t PlanCache::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

size_t PlanCache::capacity() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return max_entries_;
}

}  // namespace hbold::sparql
