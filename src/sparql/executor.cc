#include "sparql/executor.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "common/string_util.h"
#include "rdf/run_file.h"
#include "sparql/parser.h"
#include "sparql/planner.h"

namespace hbold::sparql {

namespace {

using rdf::kInvalidTermId;
using rdf::Term;
using rdf::TermId;
using rdf::TriplePos;

constexpr size_t kNoCap = std::numeric_limits<size_t>::max();

/// Maps variable names to dense row slots.
class VarRegistry {
 public:
  size_t Intern(const std::string& name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    size_t id = names_.size();
    names_.push_back(name);
    index_.emplace(name, id);
    return id;
  }
  int Lookup(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? -1 : static_cast<int>(it->second);
  }
  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, size_t> index_;
};

using RowIds = std::vector<TermId>;  // slot -> bound term id (0 = unbound)

/// FNV-1a over a TermId vector; key type for the hash-based GROUP BY and
/// DISTINCT machinery (replaces the former ToNTriples-string keys).
struct IdVecHash {
  size_t operator()(const std::vector<TermId>& v) const {
    size_t h = 1469598103934665603ull;
    for (TermId id : v) {
      h ^= static_cast<size_t>(id);
      h *= 1099511628211ull;
    }
    return h;
  }
};

void CollectVars(const GroupGraphPattern& g, VarRegistry* vars);

void CollectExprVars(const Expr& e, VarRegistry* vars) {
  if (e.kind == Expr::Kind::kVar || e.kind == Expr::Kind::kBound) {
    vars->Intern(e.var);
  }
  for (const auto& a : e.args) CollectExprVars(*a, vars);
}

void CollectExprVarNames(const Expr& e, std::set<std::string>* names) {
  if (e.kind == Expr::Kind::kVar || e.kind == Expr::Kind::kBound) {
    names->insert(e.var);
  }
  for (const auto& a : e.args) CollectExprVarNames(*a, names);
}

void CollectVars(const GroupGraphPattern& g, VarRegistry* vars) {
  for (const auto& t : g.triples) {
    if (t.s.is_var) vars->Intern(t.s.var);
    if (t.p.is_var) vars->Intern(t.p.var);
    if (t.o.is_var) vars->Intern(t.o.var);
  }
  for (const auto& f : g.filters) CollectExprVars(*f, vars);
  for (const auto& o : g.optionals) CollectVars(*o, vars);
  for (const auto& u : g.unions) {
    CollectVars(*u.left, vars);
    CollectVars(*u.right, vars);
  }
}

/// Value produced by expression evaluation. Errors propagate and make the
/// enclosing FILTER false (SPARQL error semantics).
struct EvalValue {
  enum class Kind { kTerm, kBool, kError };
  Kind kind = Kind::kError;
  Term term;
  bool b = false;

  static EvalValue Error() { return EvalValue{}; }
  static EvalValue Bool(bool v) {
    EvalValue e;
    e.kind = Kind::kBool;
    e.b = v;
    return e;
  }
  static EvalValue OfTerm(Term t) {
    EvalValue e;
    e.kind = Kind::kTerm;
    e.term = std::move(t);
    return e;
  }
};

bool TryParseNumber(const Term& t, double* out) {
  if (!t.is_literal()) return false;
  const std::string& lex = t.lexical();
  if (lex.empty()) return false;
  // strtod also accepts "inf"/"nan", hex floats and leading whitespace;
  // none of those are numeric literals in SPARQL, and letting them through
  // silently reorders ORDER BY results. Accept only plain decimal forms:
  // [+-]? digits [. digits] [eE [+-] digits].
  size_t i = 0;
  if (lex[i] == '+' || lex[i] == '-') ++i;
  size_t digits = 0;
  auto is_digit = [&](size_t k) {
    return k < lex.size() &&
           std::isdigit(static_cast<unsigned char>(lex[k])) != 0;
  };
  while (is_digit(i)) {
    ++i;
    ++digits;
  }
  if (i < lex.size() && lex[i] == '.') {
    ++i;
    while (is_digit(i)) {
      ++i;
      ++digits;
    }
  }
  if (digits == 0) return false;
  if (i < lex.size() && (lex[i] == 'e' || lex[i] == 'E')) {
    ++i;
    if (i < lex.size() && (lex[i] == '+' || lex[i] == '-')) ++i;
    size_t exp_digits = 0;
    while (is_digit(i)) {
      ++i;
      ++exp_digits;
    }
    if (exp_digits == 0) return false;
  }
  if (i != lex.size()) return false;
  char* end = nullptr;
  double v = std::strtod(lex.c_str(), &end);
  if (end != lex.c_str() + lex.size()) return false;
  *out = v;
  return true;
}

/// Effective boolean value; returns kError-signalling nullopt on non-boolean
/// non-coercible values.
std::optional<bool> Ebv(const EvalValue& v) {
  switch (v.kind) {
    case EvalValue::Kind::kBool:
      return v.b;
    case EvalValue::Kind::kTerm: {
      const Term& t = v.term;
      if (t.is_literal()) {
        if (t.lexical() == "true") return true;
        if (t.lexical() == "false") return false;
        double d;
        if (TryParseNumber(t, &d)) return d != 0;
        return !t.lexical().empty();
      }
      return std::nullopt;
    }
    case EvalValue::Kind::kError:
      return std::nullopt;
  }
  return std::nullopt;
}

// ------------------------------------------------------------ slow path

/// Group pattern -> its slot in a QueryPlan, in ForEachGroup order. Built
/// once per execution so nested groups find their (possibly cached) plans.
using GroupPlanMap =
    std::unordered_map<const GroupGraphPattern*, const GroupPlan*>;

GroupPlanMap BuildGroupPlanMap(const SelectQuery& q, const QueryPlan& plan) {
  GroupPlanMap map;
  size_t idx = 0;
  ForEachGroup(q.where, [&](const GroupGraphPattern& g) {
    if (idx < plan.groups.size()) map.emplace(&g, &plan.groups[idx]);
    ++idx;
  });
  return map;
}

class GroupEvaluator {
 public:
  GroupEvaluator(const rdf::TripleStore* store, VarRegistry* vars,
                 ExecStats* stats, const ExecOptions& options,
                 const GroupPlanMap* plan_map)
      : store_(store),
        vars_(vars),
        stats_(stats),
        options_(options),
        plan_map_(plan_map) {}

  /// Joins `input` rows with the solutions of `group`. `row_cap` stops the
  /// BGP join loop early; the caller only passes a finite cap when no later
  /// stage (filters here, modifiers outside) could change the first
  /// `row_cap` rows.
  std::vector<RowIds> Eval(const GroupGraphPattern& group,
                           std::vector<RowIds> input, size_t row_cap = kNoCap) {
    std::vector<bool> filter_done(group.filters.size(), false);
    std::vector<RowIds> rows =
        EvalTriples(group, std::move(input), row_cap, &filter_done);
    for (const auto& u : group.unions) {
      std::vector<RowIds> left = Eval(*u.left, rows);
      std::vector<RowIds> right = Eval(*u.right, rows);
      rows = std::move(left);
      rows.insert(rows.end(), right.begin(), right.end());
    }
    for (const auto& opt : group.optionals) {
      std::vector<RowIds> joined;
      for (const RowIds& row : rows) {
        std::vector<RowIds> ext = Eval(*opt, {row});
        if (ext.empty()) {
          joined.push_back(row);
        } else {
          joined.insert(joined.end(), ext.begin(), ext.end());
        }
      }
      rows = std::move(joined);
    }
    for (size_t fi = 0; fi < group.filters.size(); ++fi) {
      if (filter_done[fi]) continue;
      rows = FilterRows(*group.filters[fi], std::move(rows));
    }
    return rows;
  }

  EvalValue EvalExpr(const Expr& e, const RowIds& row) const {
    switch (e.kind) {
      case Expr::Kind::kVar: {
        int slot = vars_->Lookup(e.var);
        if (slot < 0 || row[static_cast<size_t>(slot)] == kInvalidTermId) {
          return EvalValue::Error();
        }
        return EvalValue::OfTerm(
            store_->dict().Get(row[static_cast<size_t>(slot)]));
      }
      case Expr::Kind::kLiteral:
        return EvalValue::OfTerm(e.literal);
      case Expr::Kind::kBound: {
        int slot = vars_->Lookup(e.var);
        return EvalValue::Bool(slot >= 0 &&
                               row[static_cast<size_t>(slot)] !=
                                   kInvalidTermId);
      }
      case Expr::Kind::kNot: {
        std::optional<bool> v = Ebv(EvalExpr(*e.args[0], row));
        if (!v.has_value()) return EvalValue::Error();
        return EvalValue::Bool(!*v);
      }
      case Expr::Kind::kAnd: {
        std::optional<bool> a = Ebv(EvalExpr(*e.args[0], row));
        std::optional<bool> b = Ebv(EvalExpr(*e.args[1], row));
        // SPARQL three-valued logic: false && error == false.
        if (a.has_value() && !*a) return EvalValue::Bool(false);
        if (b.has_value() && !*b) return EvalValue::Bool(false);
        if (!a.has_value() || !b.has_value()) return EvalValue::Error();
        return EvalValue::Bool(true);
      }
      case Expr::Kind::kOr: {
        std::optional<bool> a = Ebv(EvalExpr(*e.args[0], row));
        std::optional<bool> b = Ebv(EvalExpr(*e.args[1], row));
        if (a.has_value() && *a) return EvalValue::Bool(true);
        if (b.has_value() && *b) return EvalValue::Bool(true);
        if (!a.has_value() || !b.has_value()) return EvalValue::Error();
        return EvalValue::Bool(false);
      }
      case Expr::Kind::kCompare: {
        EvalValue a = EvalExpr(*e.args[0], row);
        EvalValue b = EvalExpr(*e.args[1], row);
        if (a.kind != EvalValue::Kind::kTerm ||
            b.kind != EvalValue::Kind::kTerm) {
          return EvalValue::Error();
        }
        int cmp;
        double da, db;
        if (TryParseNumber(a.term, &da) && TryParseNumber(b.term, &db)) {
          cmp = da < db ? -1 : (da > db ? 1 : 0);
        } else {
          const std::string& sa = a.term.lexical();
          const std::string& sb = b.term.lexical();
          cmp = sa < sb ? -1 : (sa > sb ? 1 : 0);
        }
        switch (e.op) {
          case Expr::CmpOp::kEq:
            // Term equality also considers kind (IRI vs literal).
            if (cmp == 0 && a.term.kind() != b.term.kind()) {
              return EvalValue::Bool(false);
            }
            return EvalValue::Bool(cmp == 0);
          case Expr::CmpOp::kNe:
            if (cmp == 0 && a.term.kind() != b.term.kind()) {
              return EvalValue::Bool(true);
            }
            return EvalValue::Bool(cmp != 0);
          case Expr::CmpOp::kLt:
            return EvalValue::Bool(cmp < 0);
          case Expr::CmpOp::kGt:
            return EvalValue::Bool(cmp > 0);
          case Expr::CmpOp::kLe:
            return EvalValue::Bool(cmp <= 0);
          case Expr::CmpOp::kGe:
            return EvalValue::Bool(cmp >= 0);
        }
        return EvalValue::Error();
      }
      case Expr::Kind::kStr: {
        EvalValue a = EvalExpr(*e.args[0], row);
        if (a.kind != EvalValue::Kind::kTerm) return EvalValue::Error();
        return EvalValue::OfTerm(Term::Literal(a.term.lexical()));
      }
      case Expr::Kind::kLcase: {
        EvalValue a = EvalExpr(*e.args[0], row);
        if (a.kind != EvalValue::Kind::kTerm) return EvalValue::Error();
        return EvalValue::OfTerm(Term::Literal(ToLower(a.term.lexical())));
      }
      case Expr::Kind::kIsIri: {
        EvalValue a = EvalExpr(*e.args[0], row);
        if (a.kind != EvalValue::Kind::kTerm) return EvalValue::Error();
        return EvalValue::Bool(a.term.is_iri());
      }
      case Expr::Kind::kIsLiteral: {
        EvalValue a = EvalExpr(*e.args[0], row);
        if (a.kind != EvalValue::Kind::kTerm) return EvalValue::Error();
        return EvalValue::Bool(a.term.is_literal());
      }
      case Expr::Kind::kContains: {
        EvalValue a = EvalExpr(*e.args[0], row);
        EvalValue b = EvalExpr(*e.args[1], row);
        if (a.kind != EvalValue::Kind::kTerm ||
            b.kind != EvalValue::Kind::kTerm) {
          return EvalValue::Error();
        }
        return EvalValue::Bool(a.term.lexical().find(b.term.lexical()) !=
                               std::string::npos);
      }
      case Expr::Kind::kRegex: {
        // Lenient REGEX: the text argument is coerced with STR() semantics
        // so IRIs match too — the paper's Listing 1 applies
        // regex(?url, 'sparql') where ?url may be an IRI-valued accessURL.
        EvalValue text = EvalExpr(*e.args[0], row);
        EvalValue pattern = EvalExpr(*e.args[1], row);
        if (text.kind != EvalValue::Kind::kTerm ||
            pattern.kind != EvalValue::Kind::kTerm) {
          return EvalValue::Error();
        }
        // LitePatternMatch instead of std::regex: FILTER runs once per
        // candidate row, and compiling a std::regex NFA per evaluation
        // dominated query time. Patterns outside the supported subset
        // (groups, braces, ...) evaluate to an error — the row is
        // filtered out, as with a malformed regex before — rather than
        // silently matching metacharacters literally.
        if (!LitePatternSupported(pattern.term.lexical())) {
          return EvalValue::Error();
        }
        bool icase = false;
        if (e.args.size() > 2) {
          EvalValue f = EvalExpr(*e.args[2], row);
          icase = f.kind == EvalValue::Kind::kTerm &&
                  f.term.lexical().find('i') != std::string::npos;
        }
        return EvalValue::Bool(LitePatternMatch(
            text.term.lexical(), pattern.term.lexical(), icase));
      }
    }
    return EvalValue::Error();
  }

 private:
  /// Evaluates the BGP in PlanOrder's statistics-based order. A FILTER is
  /// pushed into the loop as soon as every variable it mentions has been
  /// bound by an evaluated pattern (pushed filters are marked in
  /// `filter_done`); since later patterns, unions and optionals never
  /// rebind a bound slot, early evaluation is equivalent to the end-of-
  /// group evaluation and only prunes rows sooner.
  std::vector<RowIds> EvalTriples(const GroupGraphPattern& group,
                                  std::vector<RowIds> input, size_t row_cap,
                                  std::vector<bool>* filter_done) {
    const std::vector<TriplePatternNode>& triples = group.triples;
    if (triples.empty()) return input;
    // The plan and the filters' variable sets depend only on the group, not
    // on row values — cache them so OPTIONAL groups (re-evaluated once per
    // outer row) pay the planning probes once. Top-level plans typically
    // arrive precomputed (and possibly plan-cache-served) via plan_map_.
    const ExecGroupPlan& plan = PlanFor(group);
    const std::vector<size_t>& order = plan.plan->order;
    const std::vector<std::set<std::string>>& filter_vars = plan.filter_vars;

    std::set<std::string> bound;  // variable names bound so far
    std::vector<RowIds> rows = std::move(input);
    for (size_t k = 0; k < order.size(); ++k) {
      const TriplePatternNode& pat = triples[order[k]];
      const bool last = k + 1 == order.size();
      const size_t cap = last ? row_cap : kNoCap;
      if (plan.plan->ops[k] == JoinOp::kHashJoin) {
        rows = HashExtendRows(pat, std::move(rows), cap);
      } else {
        rows = ExtendRows(pat, std::move(rows), cap);
      }
      if (pat.s.is_var) bound.insert(pat.s.var);
      if (pat.p.is_var) bound.insert(pat.p.var);
      if (pat.o.is_var) bound.insert(pat.o.var);
      if (options_.filter_pushdown) {
        for (size_t fi = 0; fi < group.filters.size(); ++fi) {
          if ((*filter_done)[fi]) continue;
          if (!std::includes(bound.begin(), bound.end(),
                             filter_vars[fi].begin(), filter_vars[fi].end())) {
            continue;
          }
          rows = FilterRows(*group.filters[fi], std::move(rows));
          (*filter_done)[fi] = true;
        }
      }
      if (rows.empty()) break;
    }
    return rows;
  }

  /// Cached per-group planning artifacts: the physical plan (shared from
  /// plan_map_ when present, else computed and owned here) plus the filter
  /// variable sets (always execution-local: they are variable *names*, so
  /// a cross-query cached plan — valid for any alpha-renaming — cannot
  /// carry them).
  struct ExecGroupPlan {
    const GroupPlan* plan = nullptr;
    GroupPlan owned;
    std::vector<std::set<std::string>> filter_vars;
  };

  const ExecGroupPlan& PlanFor(const GroupGraphPattern& group) {
    auto it = plans_.find(&group);
    if (it != plans_.end()) return it->second;
    ExecGroupPlan plan;
    const GroupPlan* shared = nullptr;
    if (plan_map_ != nullptr) {
      auto pit = plan_map_->find(&group);
      if (pit != plan_map_->end()) shared = pit->second;
    }
    const bool use_shared =
        shared != nullptr && shared->order.size() == group.triples.size();
    if (use_shared) {
      plan.plan = shared;
    } else {
      plan.owned = PlanGroup(group, options_, store_);
    }
    if (options_.filter_pushdown) {
      plan.filter_vars.resize(group.filters.size());
      for (size_t fi = 0; fi < group.filters.size(); ++fi) {
        CollectExprVarNames(*group.filters[fi], &plan.filter_vars[fi]);
      }
    }
    ExecGroupPlan& stored = plans_.emplace(&group, std::move(plan)).first->second;
    if (!use_shared) stored.plan = &stored.owned;
    return stored;
  }

  std::vector<RowIds> FilterRows(const Expr& f, std::vector<RowIds> rows) {
    std::vector<RowIds> kept;
    kept.reserve(rows.size());
    for (const RowIds& row : rows) {
      std::optional<bool> v = Ebv(EvalExpr(f, row));
      if (v.has_value() && *v) kept.push_back(row);
    }
    return kept;
  }

  std::vector<RowIds> ExtendRows(const TriplePatternNode& pat,
                                 std::vector<RowIds> rows, size_t cap) {
    std::vector<RowIds> out;
    const rdf::Dictionary& dict = store_->dict();

    // Pre-resolve constant term ids; a constant not present in the
    // dictionary can never match.
    TermId const_s = kInvalidTermId, const_p = kInvalidTermId,
           const_o = kInvalidTermId;
    if (!pat.s.is_var) {
      const_s = dict.Lookup(pat.s.term);
      if (const_s == kInvalidTermId) return out;
    }
    if (!pat.p.is_var) {
      const_p = dict.Lookup(pat.p.term);
      if (const_p == kInvalidTermId) return out;
    }
    if (!pat.o.is_var) {
      const_o = dict.Lookup(pat.o.term);
      if (const_o == kInvalidTermId) return out;
    }
    int slot_s = pat.s.is_var ? vars_->Lookup(pat.s.var) : -1;
    int slot_p = pat.p.is_var ? vars_->Lookup(pat.p.var) : -1;
    int slot_o = pat.o.is_var ? vars_->Lookup(pat.o.var) : -1;

    for (const RowIds& row : rows) {
      if (out.size() >= cap) break;
      rdf::TriplePattern q;
      q.s = pat.s.is_var ? row[static_cast<size_t>(slot_s)] : const_s;
      q.p = pat.p.is_var ? row[static_cast<size_t>(slot_p)] : const_p;
      q.o = pat.o.is_var ? row[static_cast<size_t>(slot_o)] : const_o;
      store_->Match(q, [&](const rdf::Triple& t) {
        RowIds next = row;
        // Shared-variable consistency within a single pattern, e.g.
        // ?x ?p ?x — enforce equal bindings.
        bool consistent = true;
        auto bind = [&](int slot, TermId value) {
          if (slot < 0) return;
          TermId& cell = next[static_cast<size_t>(slot)];
          if (cell == kInvalidTermId) {
            cell = value;
          } else if (cell != value) {
            consistent = false;
          }
        };
        bind(slot_s, t.s);
        bind(slot_p, t.p);
        bind(slot_o, t.o);
        if (consistent) {
          if (stats_ != nullptr) ++stats_->intermediate_bindings;
          out.push_back(std::move(next));
        }
        return out.size() < cap;
      });
    }
    return out;
  }

  /// Order-preserving hash join: builds a hash table over the contiguous
  /// index slice matching the pattern's constants, grouped by the join key
  /// (the pattern's row-bound variable slots) with each bucket sorted to
  /// the exact iteration order the nested index-loop's Match would have
  /// used, then probes with the input rows in order. Output rows, their
  /// order, and the charged intermediate_bindings are therefore
  /// bit-identical to ExtendRows — the operator choice is purely physical.
  ///
  /// Falls back to ExtendRows when the step is not actually hash-shaped at
  /// runtime: repeated variables in the pattern, no bound join variable,
  /// or rows with heterogeneous boundness (OPTIONAL/UNION residue).
  struct HashBuild;  // defined below (after the join methods)

  std::vector<RowIds> HashExtendRows(const TriplePatternNode& pat,
                                     std::vector<RowIds> rows, size_t cap) {
    if (rows.empty()) return rows;
    const rdf::Dictionary& dict = store_->dict();
    const int slot_s = pat.s.is_var ? vars_->Lookup(pat.s.var) : -1;
    const int slot_p = pat.p.is_var ? vars_->Lookup(pat.p.var) : -1;
    const int slot_o = pat.o.is_var ? vars_->Lookup(pat.o.var) : -1;
    if ((slot_s >= 0 && (slot_s == slot_p || slot_s == slot_o)) ||
        (slot_p >= 0 && slot_p == slot_o)) {
      return ExtendRows(pat, std::move(rows), cap);
    }
    auto bound_at = [](const RowIds& row, int slot) {
      return slot >= 0 && row[static_cast<size_t>(slot)] != kInvalidTermId;
    };
    const bool key_s = bound_at(rows[0], slot_s);
    const bool key_p = bound_at(rows[0], slot_p);
    const bool key_o = bound_at(rows[0], slot_o);
    if (!key_s && !key_p && !key_o) {
      return ExtendRows(pat, std::move(rows), cap);
    }
    for (const RowIds& row : rows) {
      if (bound_at(row, slot_s) != key_s || bound_at(row, slot_p) != key_p ||
          bound_at(row, slot_o) != key_o) {
        return ExtendRows(pat, std::move(rows), cap);
      }
    }

    PatternConsts consts = ResolveConsts(pat, dict);
    if (consts.missing) return {};

    // The build depends only on the pattern's resolved constants and the
    // key-slot mask — not on row values and not on variable names (a
    // constant slot is exactly a slot with a valid term id, so the consts
    // triple pins the var/const shape too). Keying on those values rather
    // than pattern identity means two different steps probing the same
    // constant span with the same key shape — `?a p ?b . ?c p ?d`-style
    // repeated predicates, or the same pattern in both UNION branches —
    // share one build, on top of the original win (OPTIONAL groups
    // re-evaluate once per outer row without re-sorting the span).
    const int mask = (key_s ? 1 : 0) | (key_p ? 2 : 0) | (key_o ? 4 : 0);
    auto build_key = std::make_tuple(consts.s, consts.p, consts.o, mask);
    // Probe-side boundness (constants + key variables) decides which
    // index the nested loop would have walked; bucket order must
    // replicate its iteration order.
    const bool bs = !pat.s.is_var || key_s;
    const bool bp = !pat.p.is_var || key_p;
    auto probe_tuple = [&](const rdf::Triple& t) {
      if (bs) return std::tuple<TermId, TermId, TermId>(t.s, t.p, t.o);
      if (bp) return std::tuple<TermId, TermId, TermId>(t.p, t.o, t.s);
      return std::tuple<TermId, TermId, TermId>(t.o, t.s, t.p);
    };
    auto key_of = [&](const rdf::Triple& t) {
      return std::tuple<TermId, TermId, TermId>(key_s ? t.s : kInvalidTermId,
                                                key_p ? t.p : kInvalidTermId,
                                                key_o ? t.o : kInvalidTermId);
    };
    auto bit = hash_builds_.find(build_key);
    if (bit != hash_builds_.end() && stats_ != nullptr) {
      ++stats_->hash_join_build_reuses;
    }
    if (bit == hash_builds_.end()) {
      // Build side: the contiguous slice matching the constants alone,
      // sorted by (join key, probe iteration order) — the comparator is
      // shared by the in-RAM and spilled representations, which is what
      // makes the spill bit-identical.
      rdf::TriplePattern build_pat;
      build_pat.s = consts.s;
      build_pat.p = consts.p;
      build_pat.o = consts.o;
      rdf::TripleSpan span = store_->Span(build_pat);
      auto build_less = [&](const rdf::Triple& a, const rdf::Triple& b) {
        auto ka = key_of(a);
        auto kb = key_of(b);
        if (ka != kb) return ka < kb;
        return probe_tuple(a) < probe_tuple(b);
      };
      const size_t budget = options_.hash_join_spill_budget_bytes;
      if (budget > 0 && span.size * sizeof(rdf::Triple) > budget) {
        HashBuild fresh;
        Status st = SpillBuildToRun(span, build_less, budget, &fresh);
        if (st.ok()) {
          fresh.on_disk = true;
          if (stats_ != nullptr) {
            ++stats_->hash_join_builds;
            ++stats_->hash_join_spills;
          }
          bit = hash_builds_.emplace(build_key, std::move(fresh)).first;
        } else {
          HBOLD_LOG(kWarn) << "hash-join spill failed, building in RAM: "
                           << st.message();
        }
      }
      if (bit == hash_builds_.end()) {
        HashBuild fresh;
        fresh.triples.assign(span.begin(), span.end());
        std::sort(fresh.triples.begin(), fresh.triples.end(), build_less);
        fresh.buckets.reserve(fresh.triples.size());
        size_t i = 0;
        while (i < fresh.triples.size()) {
          auto k = key_of(fresh.triples[i]);
          size_t j = i + 1;
          while (j < fresh.triples.size() && key_of(fresh.triples[j]) == k) {
            ++j;
          }
          fresh.buckets.emplace(
              std::vector<TermId>{std::get<0>(k), std::get<1>(k),
                                  std::get<2>(k)},
              std::make_pair(i, j));
          i = j;
        }
        if (stats_ != nullptr) ++stats_->hash_join_builds;
        bit = hash_builds_.emplace(build_key, std::move(fresh)).first;
      }
    }

    auto emit = [&](const RowIds& row, const rdf::Triple& t,
                    std::vector<RowIds>* out) {
      RowIds next = row;
      if (slot_s >= 0 && !key_s) next[static_cast<size_t>(slot_s)] = t.s;
      if (slot_p >= 0 && !key_p) next[static_cast<size_t>(slot_p)] = t.p;
      if (slot_o >= 0 && !key_o) next[static_cast<size_t>(slot_o)] = t.o;
      if (stats_ != nullptr) ++stats_->intermediate_bindings;
      out->push_back(std::move(next));
    };

    std::vector<RowIds> out;
    if (bit->second.on_disk) {
      // Spilled build: the run holds the same triples in the same
      // (key, probe order) sort; each bucket is found by binary search
      // over the mapping instead of a hash lookup.
      const rdf::TripleSpan build = bit->second.spilled.view();
      using Key = std::tuple<TermId, TermId, TermId>;
      for (const RowIds& row : rows) {
        if (out.size() >= cap) break;
        const Key k(key_s ? row[static_cast<size_t>(slot_s)] : kInvalidTermId,
                    key_p ? row[static_cast<size_t>(slot_p)] : kInvalidTermId,
                    key_o ? row[static_cast<size_t>(slot_o)] : kInvalidTermId);
        const rdf::Triple* lo = std::lower_bound(
            build.begin(), build.end(), k,
            [&](const rdf::Triple& t, const Key& v) { return key_of(t) < v; });
        const rdf::Triple* hi = std::upper_bound(
            lo, build.end(), k,
            [&](const Key& v, const rdf::Triple& t) { return v < key_of(t); });
        for (const rdf::Triple* t = lo; t != hi && out.size() < cap; ++t) {
          emit(row, *t, &out);
        }
      }
      return out;
    }

    const std::vector<rdf::Triple>& build = bit->second.triples;
    const auto& buckets = bit->second.buckets;
    std::vector<TermId> probe_key(3);
    for (const RowIds& row : rows) {
      if (out.size() >= cap) break;
      probe_key[0] = key_s ? row[static_cast<size_t>(slot_s)] : kInvalidTermId;
      probe_key[1] = key_p ? row[static_cast<size_t>(slot_p)] : kInvalidTermId;
      probe_key[2] = key_o ? row[static_cast<size_t>(slot_o)] : kInvalidTermId;
      auto it = buckets.find(probe_key);
      if (it == buckets.end()) continue;
      for (size_t b = it->second.first;
           b < it->second.second && out.size() < cap; ++b) {
        emit(row, build[b], &out);
      }
    }
    return out;
  }

  /// Externally sorts a too-large build span into a temporary run file
  /// under the system temp directory and maps it into `out->spilled`. The
  /// scratch directory (and the run file itself) are unlinked immediately —
  /// the mapping keeps the data alive for the lifetime of the build, and
  /// nothing leaks if the process dies.
  Status SpillBuildToRun(
      rdf::TripleSpan span,
      const std::function<bool(const rdf::Triple&, const rdf::Triple&)>& less,
      size_t budget, HashBuild* out) {
    namespace fs = std::filesystem;
    static std::atomic<uint64_t> counter{0};
    std::error_code ec;
    const fs::path dir =
        fs::temp_directory_path(ec) /
        ("hbold-spill-" + std::to_string(static_cast<long>(::getpid())) + "-" +
         std::to_string(counter.fetch_add(1)));
    if (ec) return Status::IOError("no temp directory: " + ec.message());
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::IOError("cannot create '" + dir.string() +
                             "': " + ec.message());
    }
    Status st = rdf::ExternalSortToRunBy(span, less, budget, dir.string(),
                                         (dir / "build.run").string(),
                                         &out->spilled);
    fs::remove_all(dir, ec);  // mapping survives the unlink
    return st;
  }

  /// One hash-join build: the constant-matched span, key-grouped and
  /// bucket-sorted to the probe order. In RAM it is a triple vector plus
  /// key -> [begin, end) buckets; past the spill budget it is the same
  /// sorted sequence as a memory-mapped temporary run (`on_disk`), probed
  /// by binary search.
  struct HashBuild {
    std::vector<rdf::Triple> triples;
    std::unordered_map<std::vector<TermId>, std::pair<size_t, size_t>,
                       IdVecHash>
        buckets;
    rdf::MappedTripleRun spilled;
    bool on_disk = false;
  };

  const rdf::TripleStore* store_;
  VarRegistry* vars_;
  ExecStats* stats_;
  ExecOptions options_;
  const GroupPlanMap* plan_map_;
  std::unordered_map<const GroupGraphPattern*, ExecGroupPlan> plans_;
  /// Hash-join builds cached per (resolved constants, key mask) for this
  /// execution — OPTIONAL re-evaluations and distinct steps probing the
  /// same constant span with the same key shape reuse one build.
  std::map<std::tuple<TermId, TermId, TermId, int>, HashBuild> hash_builds_;
};

// ------------------------------------------------------- result modifiers

/// ORDER BY via decorate-sort-undecorate: numeric keys are parsed once per
/// row instead of on every comparison. Ordering semantics: unbound cells
/// first, numeric comparison when both keys parse as numbers and differ,
/// lexical comparison otherwise.
void ApplyOrderBy(const SelectQuery& q, ResultTable* table) {
  if (q.order_by.empty()) return;
  struct SortKey {
    bool present = false;
    bool numeric = false;
    double num = 0;
    const std::string* lex = nullptr;
  };
  std::vector<std::pair<int, bool>> cols;
  for (const auto& [var, asc] : q.order_by) {
    cols.emplace_back(table->ColumnIndex(var), asc);
  }
  const std::vector<ResultTable::Row>& rows = table->rows();
  std::vector<std::vector<SortKey>> keys(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    keys[r].resize(cols.size());
    for (size_t k = 0; k < cols.size(); ++k) {
      if (cols[k].first < 0) continue;
      const std::optional<Term>& cell =
          rows[r][static_cast<size_t>(cols[k].first)];
      SortKey& key = keys[r][k];
      if (!cell.has_value()) continue;
      key.present = true;
      key.lex = &cell->lexical();
      key.numeric = TryParseNumber(*cell, &key.num);
    }
  }
  // Strict weak ordering over mixed columns: unbound first, then numeric
  // keys (by value, lexical tiebreak), then non-numeric keys lexically. A
  // same-tier-only numeric comparison would form cycles like
  // "2" < "10" < "1z" < "2" — undefined behavior under std::stable_sort.
  auto key_less = [](const SortKey& a, const SortKey& b) {
    if (!a.present || !b.present) return b.present;
    if (a.numeric != b.numeric) return a.numeric;
    if (a.numeric && a.num != b.num) return a.num < b.num;
    return *a.lex < *b.lex;
  };
  std::vector<size_t> idx(rows.size());
  std::iota(idx.begin(), idx.end(), 0);
  std::stable_sort(idx.begin(), idx.end(), [&](size_t i, size_t j) {
    for (size_t k = 0; k < cols.size(); ++k) {
      if (cols[k].first < 0) continue;
      const SortKey& a = keys[i][k];
      const SortKey& b = keys[j][k];
      if (key_less(a, b)) return cols[k].second;
      if (key_less(b, a)) return !cols[k].second;
    }
    return false;
  });
  ResultTable reordered(table->columns());
  for (size_t i : idx) reordered.AddRow(rows[i]);
  *table = std::move(reordered);
}

void ApplySlice(const SelectQuery& q, ResultTable* table) {
  if (!q.offset.has_value() && !q.limit.has_value()) return;
  size_t off = q.offset.value_or(0);
  size_t lim = q.limit.value_or(table->num_rows());
  ResultTable sliced(table->columns());
  for (size_t i = off; i < table->num_rows() && i < off + lim; ++i) {
    sliced.AddRow(table->rows()[i]);
  }
  *table = std::move(sliced);
}

/// DISTINCT over rows that may contain computed terms (aggregate output)
/// not backed by the dictionary, so keyed by serialized cells.
void ApplyTermDistinct(ResultTable* table) {
  std::set<std::string> seen;
  ResultTable deduped(table->columns());
  for (const auto& row : table->rows()) {
    std::string key;
    for (const auto& cell : row) {
      key += cell.has_value() ? cell->ToNTriples() : "~";
      key += '\x1f';
    }
    if (seen.insert(std::move(key)).second) {
      deduped.AddRow(row);
    }
  }
  *table = std::move(deduped);
}

// -------------------------------------------- aggregate-pushdown fast path

/// How one COUNT aggregate is computed by the fast path.
enum class AggMode {
  kCountRows,       // equals the group's row count (COUNT(*), COUNT of an
                    // always-bound var, or DISTINCT of the sole non-key var)
  kOne,             // COUNT(DISTINCT ?v) where ?v is a group key
  kDistinctSet,     // COUNT(DISTINCT ?v): per-group id set filled in-walk
  kDistinctGlobal,  // COUNT(DISTINCT ?v), no GROUP BY: CountDistinct()
};

/// Per-group accumulator for the walking branches.
struct GroupAcc {
  size_t count = 0;
  std::vector<std::unordered_set<TermId>> sets;  // one per kDistinctSet agg
};

using GroupMap = std::unordered_map<std::vector<TermId>, GroupAcc, IdVecHash>;

TermId IdAt(const rdf::Triple& t, TriplePos pos) {
  return pos == TriplePos::kS ? t.s : (pos == TriplePos::kP ? t.p : t.o);
}

void Charge(ExecStats* stats, size_t bindings) {
  if (stats == nullptr) return;
  stats->intermediate_bindings += bindings;
  stats->rows_avoided += bindings;
}

/// Recognizes the count-query family (COUNT / COUNT(DISTINCT) / grouped
/// counts over a single pattern or an anchor join `?x <p> <o> . ?x ?p ?o`)
/// and answers it with the store's index-arithmetic primitives. Returns
/// nullopt when the query is outside the family — the caller then runs the
/// materializing path. Result tables and charged intermediate_bindings are
/// bit-identical with that path by construction.
std::optional<ResultTable> TryAggregatePushdown(
    const SelectQuery& q, const rdf::TripleStore* store,
    const std::vector<size_t>& plan_order, ExecStats* stats) {
  const GroupGraphPattern& where = q.where;
  if (q.form != QueryForm::kSelect || q.select_all) return std::nullopt;
  if (q.aggregates.empty()) return std::nullopt;
  if (!where.filters.empty() || !where.optionals.empty() ||
      !where.unions.empty()) {
    return std::nullopt;
  }
  const std::vector<TriplePatternNode>& triples = where.triples;
  if (triples.empty() || triples.size() > 2) return std::nullopt;

  // Map variables to (pattern, position). The only legal repeated variable
  // is the shared subject of the two-pattern anchor join; any other repeat
  // (e.g. `?x ?p ?x`) has consistency semantics the fast path skips.
  struct VarPos {
    size_t pattern;
    TriplePos pos;
  };
  std::unordered_map<std::string, VarPos> var_at;
  std::string shared_subject;
  for (size_t pi = 0; pi < triples.size(); ++pi) {
    const TriplePatternNode& t = triples[pi];
    const TermOrVar* slots[3] = {&t.s, &t.p, &t.o};
    const TriplePos poses[3] = {TriplePos::kS, TriplePos::kP, TriplePos::kO};
    for (int k = 0; k < 3; ++k) {
      if (!slots[k]->is_var) continue;
      auto [it, fresh] = var_at.emplace(slots[k]->var, VarPos{pi, poses[k]});
      if (fresh) continue;
      const bool subject_share = triples.size() == 2 && pi == 1 &&
                                 poses[k] == TriplePos::kS &&
                                 it->second.pattern == 0 &&
                                 it->second.pos == TriplePos::kS;
      if (!subject_share) return std::nullopt;
      shared_subject = slots[k]->var;
    }
  }
  if (triples.size() == 2 && shared_subject.empty()) {
    return std::nullopt;  // cartesian product of two patterns
  }

  // Key and projection checks: every GROUP BY var must be a pattern var and
  // every projected plain var must be a group key (the materializing path
  // projects the group's first row, which for key vars is the key itself).
  for (const std::string& g : q.group_by) {
    if (var_at.find(g) == var_at.end()) return std::nullopt;
  }
  for (const std::string& v : q.vars) {
    if (std::find(q.group_by.begin(), q.group_by.end(), v) ==
        q.group_by.end()) {
      return std::nullopt;
    }
  }

  // Variables not in the group key: group rows are distinct tuples over
  // these, so a DISTINCT count of the *sole* non-key var equals the row
  // count (pattern constants are fixed, triples are unique).
  std::set<std::string> nonkey;
  for (const auto& [name, at] : var_at) {
    if (std::find(q.group_by.begin(), q.group_by.end(), name) ==
        q.group_by.end()) {
      nonkey.insert(name);
    }
  }

  std::vector<AggMode> modes;
  std::vector<size_t> set_index(q.aggregates.size(), 0);
  size_t num_sets = 0;
  for (size_t ai = 0; ai < q.aggregates.size(); ++ai) {
    const Aggregate& a = q.aggregates[ai];
    if (!a.var.has_value()) {
      // COUNT(*): group rows are distinct binding tuples, so DISTINCT
      // changes nothing.
      modes.push_back(AggMode::kCountRows);
      continue;
    }
    if (var_at.find(*a.var) == var_at.end()) return std::nullopt;
    if (!a.distinct) {
      // Pattern vars are bound in every row.
      modes.push_back(AggMode::kCountRows);
      continue;
    }
    const bool is_key = std::find(q.group_by.begin(), q.group_by.end(),
                                  *a.var) != q.group_by.end();
    if (is_key) {
      modes.push_back(AggMode::kOne);
    } else if (nonkey.size() == 1 && *nonkey.begin() == *a.var) {
      modes.push_back(AggMode::kCountRows);
    } else if (q.group_by.empty() && triples.size() == 1) {
      modes.push_back(AggMode::kDistinctGlobal);
    } else {
      modes.push_back(AggMode::kDistinctSet);
      set_index[ai] = num_sets++;
    }
  }

  // The fast path must charge intermediate_bindings exactly the way the
  // materializing path would, so it follows the shared planner's join
  // order: either the anchor (`?x <p> <o>`) drives and the open pattern is
  // range-scanned per subject, or — when the open pattern is the more
  // selective side — it drives and the anchor becomes a binary-search 0/1
  // membership probe per row.
  const std::vector<size_t>& order = plan_order;
  const TriplePatternNode* first = &triples[order[0]];
  const TriplePatternNode* second =
      triples.size() == 2 ? &triples[order[1]] : nullptr;
  auto is_anchor = [](const TriplePatternNode* t) {
    return t->s.is_var && !t->p.is_var && !t->o.is_var;
  };
  if (second != nullptr && !is_anchor(first) && !is_anchor(second)) {
    return std::nullopt;  // no selective anchor on either side
  }

  const rdf::Dictionary& dict = store->dict();
  std::vector<std::string> columns = q.vars;
  for (const Aggregate& a : q.aggregates) columns.push_back(a.as);
  ResultTable table(columns);
  if (stats != nullptr) ++stats->fast_path_hits;

  // Builds one output row from a group key and its accumulator, matching
  // the materializing path's projection (key vars from the key, counts as
  // integer literals).
  auto emit_row = [&](const std::vector<TermId>& key, const GroupAcc& acc) {
    ResultTable::Row row;
    for (const std::string& v : q.vars) {
      size_t j = static_cast<size_t>(
          std::find(q.group_by.begin(), q.group_by.end(), v) -
          q.group_by.begin());
      if (acc.count == 0 || key[j] == kInvalidTermId) {
        row.push_back(std::nullopt);
      } else {
        row.push_back(dict.Get(key[j]));
      }
    }
    for (size_t ai = 0; ai < q.aggregates.size(); ++ai) {
      int64_t n = 0;
      switch (modes[ai]) {
        case AggMode::kCountRows:
          n = static_cast<int64_t>(acc.count);
          break;
        case AggMode::kOne:
          n = acc.count > 0 ? 1 : 0;
          break;
        case AggMode::kDistinctSet:
          n = static_cast<int64_t>(acc.sets[set_index[ai]].size());
          break;
        case AggMode::kDistinctGlobal:
          n = 0;  // filled by the caller branch below
          break;
      }
      row.push_back(Term::IntLiteral(n));
    }
    table.AddRow(std::move(row));
  };

  // Emits the no-matches result: with no GROUP BY there is still one global
  // group (all counts zero), otherwise the table stays empty.
  auto emit_empty = [&]() {
    if (!q.group_by.empty()) return;
    GroupAcc acc;
    acc.sets.resize(num_sets);
    emit_row({}, acc);
  };

  // Emits accumulated groups in ascending key order — the exact order the
  // materializing path's sorted group emission produces. Every walking
  // branch funnels through here so the parity contract has one home.
  auto emit_groups = [&](const GroupMap& groups) {
    if (groups.empty()) {
      emit_empty();
      return;
    }
    std::vector<const std::pair<const std::vector<TermId>, GroupAcc>*> sorted;
    sorted.reserve(groups.size());
    for (const auto& entry : groups) sorted.push_back(&entry);
    std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
      return a->first < b->first;
    });
    for (const auto* entry : sorted) emit_row(entry->first, entry->second);
  };

  // ---------------- single pattern ----------------
  if (triples.size() == 1) {
    PatternConsts consts = ResolveConsts(*first, dict);
    rdf::TriplePattern probe;
    probe.s = first->s.is_var ? kInvalidTermId : consts.s;
    probe.p = first->p.is_var ? kInvalidTermId : consts.p;
    probe.o = first->o.is_var ? kInvalidTermId : consts.o;
    const size_t total = consts.missing ? 0 : store->Count(probe);
    Charge(stats, total);

    if (q.group_by.empty()) {
      // Pure index arithmetic: no walk at all.
      ResultTable::Row row;
      for (size_t ai = 0; ai < q.aggregates.size(); ++ai) {
        int64_t n = 0;
        switch (modes[ai]) {
          case AggMode::kCountRows:
            n = static_cast<int64_t>(total);
            break;
          case AggMode::kDistinctGlobal: {
            const std::string& v = *q.aggregates[ai].var;
            n = consts.missing
                    ? 0
                    : static_cast<int64_t>(
                          store->CountDistinct(probe, var_at[v].pos));
            break;
          }
          case AggMode::kOne:
          case AggMode::kDistinctSet:
            n = 0;  // unreachable: no group key, no multi-var distinct here
            break;
        }
        row.push_back(Term::IntLiteral(n));
      }
      table.AddRow(std::move(row));
      return table;
    }

    if (total == 0) {
      emit_empty();
      return table;
    }

    // Grouped-count primitive: `?s <p> ?o GROUP BY ?o` walks the POS
    // sub-range boundaries — one (object, count) pair per class, no
    // per-triple work, already in ascending key order.
    const bool boundary_shape =
        first->s.is_var && !first->p.is_var && first->o.is_var &&
        q.group_by.size() == 1 && q.group_by[0] == first->o.var &&
        std::all_of(modes.begin(), modes.end(), [](AggMode m) {
          return m == AggMode::kCountRows || m == AggMode::kOne;
        });
    if (boundary_shape) {
      for (const auto& [o, n] : store->GroupedCountByObject(probe.p)) {
        GroupAcc acc;
        acc.count = n;
        emit_row({o}, acc);
      }
      return table;
    }

    // Generic grouped walk: accumulate counters per TermId key, then sort
    // keys to match the materializing path's map order. Still no binding
    // rows — only counters and (when needed) id sets.
    std::vector<TriplePos> key_pos;
    for (const std::string& g : q.group_by) key_pos.push_back(var_at[g].pos);
    GroupMap groups;
    std::vector<TriplePos> set_pos(num_sets);
    for (size_t ai = 0; ai < q.aggregates.size(); ++ai) {
      if (modes[ai] == AggMode::kDistinctSet) {
        set_pos[set_index[ai]] = var_at[*q.aggregates[ai].var].pos;
      }
    }
    store->Match(probe, [&](const rdf::Triple& t) {
      std::vector<TermId> key;
      key.reserve(key_pos.size());
      for (TriplePos kp : key_pos) key.push_back(IdAt(t, kp));
      GroupAcc& acc = groups[std::move(key)];
      if (acc.sets.size() != num_sets) acc.sets.resize(num_sets);
      ++acc.count;
      for (size_t si = 0; si < num_sets; ++si) {
        acc.sets[si].insert(IdAt(t, set_pos[si]));
      }
      return true;
    });
    emit_groups(groups);
    return table;
  }

  // --------------- anchor join: ?x <pa> <oa> . ?x ?p ?o ---------------
  //
  // Mirror case first: when the planner evaluates the *open* pattern
  // before the anchor (the open side is more selective), walk the open
  // pattern's range and turn the anchor into a binary-search membership
  // probe per row. All keys and distinct vars live on the open pattern
  // (the anchor only carries the shared subject), so one walk suffices.
  if (!is_anchor(first)) {
    PatternConsts cd = ResolveConsts(*first, dict);   // open driver
    PatternConsts ca = ResolveConsts(*second, dict);  // anchor probe
    rdf::TriplePattern driver;
    driver.p = first->p.is_var ? kInvalidTermId : cd.p;
    driver.o = first->o.is_var ? kInvalidTermId : cd.o;
    const size_t count_d = cd.missing ? 0 : store->Count(driver);
    Charge(stats, count_d);
    if (count_d == 0 || ca.missing) {
      emit_empty();
      return table;
    }
    std::vector<TriplePos> key_pos;
    for (const std::string& g : q.group_by) key_pos.push_back(var_at[g].pos);
    std::vector<TriplePos> set_pos(num_sets);
    for (size_t ai = 0; ai < q.aggregates.size(); ++ai) {
      if (modes[ai] == AggMode::kDistinctSet) {
        set_pos[set_index[ai]] = var_at[*q.aggregates[ai].var].pos;
      }
    }
    GroupMap groups;
    size_t ext = 0;
    store->Match(driver, [&](const rdf::Triple& td) {
      rdf::TriplePattern member;
      member.s = td.s;
      member.p = ca.p;
      member.o = ca.o;
      if (store->Count(member) == 0) return true;  // subject not anchored
      ++ext;
      std::vector<TermId> key;
      key.reserve(key_pos.size());
      for (TriplePos kp : key_pos) key.push_back(IdAt(td, kp));
      GroupAcc& acc = groups[std::move(key)];
      if (acc.sets.size() != num_sets) acc.sets.resize(num_sets);
      ++acc.count;
      for (size_t si = 0; si < num_sets; ++si) {
        acc.sets[si].insert(IdAt(td, set_pos[si]));
      }
      return true;
    });
    Charge(stats, ext);
    emit_groups(groups);
    return table;
  }

  const TriplePatternNode* anchor = first;
  const TriplePatternNode* other = second;
  PatternConsts ca = ResolveConsts(*anchor, dict);
  PatternConsts cb = ResolveConsts(*other, dict);
  rdf::TriplePattern probe_a;
  probe_a.p = ca.p;
  probe_a.o = ca.o;
  const size_t count_a = ca.missing ? 0 : store->Count(probe_a);
  Charge(stats, count_a);
  if (count_a == 0 || cb.missing) {
    emit_empty();
    return table;
  }

  const TermId pb = other->p.is_var ? kInvalidTermId : cb.p;
  const TermId ob = other->o.is_var ? kInvalidTermId : cb.o;

  // Arithmetic shortcut: a global count whose aggregates only need per-
  // anchor match counts (plus "anchors with >= 1 match" for DISTINCT of
  // the shared subject) is O(|anchor| log n) — one range count per anchor
  // subject, no inner walk.
  bool arithmetic = q.group_by.empty();
  for (size_t ai = 0; ai < q.aggregates.size() && arithmetic; ++ai) {
    if (modes[ai] == AggMode::kCountRows) continue;
    if (modes[ai] == AggMode::kDistinctSet &&
        *q.aggregates[ai].var == shared_subject) {
      continue;
    }
    arithmetic = false;
  }
  if (arithmetic) {
    size_t ext = 0;
    size_t anchors_with_match = 0;
    store->Match(probe_a, [&](const rdf::Triple& ta) {
      rdf::TriplePattern pbq;
      pbq.s = ta.s;
      pbq.p = pb;
      pbq.o = ob;
      size_t n = store->Count(pbq);
      ext += n;
      if (n > 0) ++anchors_with_match;
      return true;
    });
    Charge(stats, ext);
    ResultTable::Row row;
    for (size_t ai = 0; ai < q.aggregates.size(); ++ai) {
      int64_t n = modes[ai] == AggMode::kCountRows
                      ? static_cast<int64_t>(ext)
                      : static_cast<int64_t>(anchors_with_match);
      row.push_back(Term::IntLiteral(n));
    }
    table.AddRow(std::move(row));
    return table;
  }

  // Grouped walk over the join: for each anchor subject, scan its SPO
  // range (optionally keyed by a constant predicate) and bump per-group
  // counters. No binding rows are materialized.
  std::vector<TriplePos> key_pos;
  std::vector<bool> key_is_subject;
  for (const std::string& g : q.group_by) {
    key_is_subject.push_back(g == shared_subject);
    key_pos.push_back(var_at[g].pos);
  }
  size_t num_set_aggs = num_sets;
  std::vector<TriplePos> set_pos(num_set_aggs);
  std::vector<bool> set_is_subject(num_set_aggs, false);
  for (size_t ai = 0; ai < q.aggregates.size(); ++ai) {
    if (modes[ai] != AggMode::kDistinctSet) continue;
    const std::string& v = *q.aggregates[ai].var;
    set_is_subject[set_index[ai]] = v == shared_subject;
    set_pos[set_index[ai]] = var_at[v].pos;
  }
  GroupMap groups;
  size_t ext = 0;
  store->Match(probe_a, [&](const rdf::Triple& ta) {
    rdf::TriplePattern pbq;
    pbq.s = ta.s;
    pbq.p = pb;
    pbq.o = ob;
    store->Match(pbq, [&](const rdf::Triple& tb) {
      ++ext;
      std::vector<TermId> key;
      key.reserve(key_pos.size());
      for (size_t ki = 0; ki < key_pos.size(); ++ki) {
        key.push_back(key_is_subject[ki] ? ta.s : IdAt(tb, key_pos[ki]));
      }
      GroupAcc& acc = groups[std::move(key)];
      if (acc.sets.size() != num_set_aggs) acc.sets.resize(num_set_aggs);
      ++acc.count;
      for (size_t si = 0; si < num_set_aggs; ++si) {
        acc.sets[si].insert(set_is_subject[si] ? ta.s : IdAt(tb, set_pos[si]));
      }
      return true;
    });
    return true;
  });
  Charge(stats, ext);
  emit_groups(groups);
  return table;
}

// ---------------------------------------------- star/range pushdown

/// Recognizes the 3-pattern star/range shape the extraction profiler
/// issues — `?s <pa> <oa> . ?s ?p ?o . ?o <pc> ?rc` (the `?p ?rc`
/// range-class query; the open pattern's predicate may also be constant)
/// — and answers it by walking TripleStore sub-range spans: the anchor's
/// POS range, each subject's SPO span, each object's type span. No
/// binding rows are materialized. Charged intermediate_bindings equal the
/// materializing path's by construction: the walk follows the shared plan
/// order (anchor, open, chain) and bails out for any other order.
std::optional<ResultTable> TryStarPushdown(const SelectQuery& q,
                                           const rdf::TripleStore* store,
                                           const std::vector<size_t>& plan_order,
                                           ExecStats* stats) {
  const GroupGraphPattern& where = q.where;
  if (q.form != QueryForm::kSelect || q.select_all) return std::nullopt;
  if (q.aggregates.empty()) return std::nullopt;
  if (!where.filters.empty() || !where.optionals.empty() ||
      !where.unions.empty()) {
    return std::nullopt;
  }
  const std::vector<TriplePatternNode>& triples = where.triples;
  if (triples.size() != 3) return std::nullopt;

  auto is_anchor = [](const TriplePatternNode& t) {
    return t.s.is_var && !t.p.is_var && !t.o.is_var;
  };
  auto is_open = [](const TriplePatternNode& t) {
    return t.s.is_var && t.o.is_var;  // predicate var or constant
  };
  auto is_chain = [](const TriplePatternNode& t) {
    return t.s.is_var && !t.p.is_var && t.o.is_var;
  };
  int ia = -1, ib = -1, ic = -1;
  for (int a = 0; a < 3 && ia < 0; ++a) {
    if (!is_anchor(triples[static_cast<size_t>(a)])) continue;
    for (int b = 0; b < 3; ++b) {
      if (b == a || !is_open(triples[static_cast<size_t>(b)])) continue;
      if (triples[static_cast<size_t>(b)].s.var !=
          triples[static_cast<size_t>(a)].s.var) {
        continue;
      }
      const int c = 3 - a - b;
      if (!is_chain(triples[static_cast<size_t>(c)])) continue;
      if (triples[static_cast<size_t>(c)].s.var !=
          triples[static_cast<size_t>(b)].o.var) {
        continue;
      }
      ia = a;
      ib = b;
      ic = c;
      break;
    }
  }
  if (ia < 0) return std::nullopt;
  const TriplePatternNode& A = triples[static_cast<size_t>(ia)];
  const TriplePatternNode& B = triples[static_cast<size_t>(ib)];
  const TriplePatternNode& C = triples[static_cast<size_t>(ic)];

  // All variable names distinct: s, (p), o, rc. Repeats have consistency
  // semantics this walk does not model.
  const std::string& vs = A.s.var;
  const std::string& vo = B.o.var;
  const std::string& vrc = C.o.var;
  std::set<std::string> names{vs, vo, vrc};
  if (names.size() != 3) return std::nullopt;
  std::string vp;
  if (B.p.is_var) {
    vp = B.p.var;
    if (!names.insert(vp).second) return std::nullopt;
  }

  // The walk charges anchor -> open -> chain; any other planned order
  // charges differently, so only this one is eligible.
  if (plan_order.size() != 3 || plan_order[0] != static_cast<size_t>(ia) ||
      plan_order[1] != static_cast<size_t>(ib) ||
      plan_order[2] != static_cast<size_t>(ic)) {
    return std::nullopt;
  }

  // Where each variable's value lives in one emitted join row.
  enum class Src { kS, kP, kO, kRC };
  auto src_of = [&](const std::string& name) -> std::optional<Src> {
    if (name == vs) return Src::kS;
    if (!vp.empty() && name == vp) return Src::kP;
    if (name == vo) return Src::kO;
    if (name == vrc) return Src::kRC;
    return std::nullopt;
  };

  // Key and projection checks, as in the 2-pattern fast path.
  for (const std::string& g : q.group_by) {
    if (!src_of(g).has_value()) return std::nullopt;
  }
  for (const std::string& v : q.vars) {
    if (std::find(q.group_by.begin(), q.group_by.end(), v) ==
        q.group_by.end()) {
      return std::nullopt;
    }
  }
  std::set<std::string> nonkey;
  for (const std::string& n : names) {
    if (std::find(q.group_by.begin(), q.group_by.end(), n) ==
        q.group_by.end()) {
      nonkey.insert(n);
    }
  }

  std::vector<AggMode> modes;
  std::vector<size_t> set_index(q.aggregates.size(), 0);
  size_t num_sets = 0;
  for (size_t ai = 0; ai < q.aggregates.size(); ++ai) {
    const Aggregate& a = q.aggregates[ai];
    if (!a.var.has_value()) {
      modes.push_back(AggMode::kCountRows);
      continue;
    }
    if (!src_of(*a.var).has_value()) return std::nullopt;
    if (!a.distinct) {
      modes.push_back(AggMode::kCountRows);
      continue;
    }
    const bool is_key = std::find(q.group_by.begin(), q.group_by.end(),
                                  *a.var) != q.group_by.end();
    if (is_key) {
      modes.push_back(AggMode::kOne);
    } else if (nonkey.size() == 1 && *nonkey.begin() == *a.var) {
      // Join rows are distinct (s, p, o, rc) tuples, so with every other
      // variable in the key the sole non-key var is distinct per row.
      modes.push_back(AggMode::kCountRows);
    } else {
      modes.push_back(AggMode::kDistinctSet);
      set_index[ai] = num_sets++;
    }
  }

  const rdf::Dictionary& dict = store->dict();
  PatternConsts ca = ResolveConsts(A, dict);
  PatternConsts cb = ResolveConsts(B, dict);
  PatternConsts cc = ResolveConsts(C, dict);

  std::vector<std::string> columns = q.vars;
  for (const Aggregate& a : q.aggregates) columns.push_back(a.as);
  ResultTable table(columns);
  if (stats != nullptr) ++stats->fast_path_hits;

  std::vector<Src> key_src;
  for (const std::string& g : q.group_by) key_src.push_back(*src_of(g));
  std::vector<Src> set_src(num_sets, Src::kS);
  for (size_t ai = 0; ai < q.aggregates.size(); ++ai) {
    if (modes[ai] == AggMode::kDistinctSet) {
      set_src[set_index[ai]] = *src_of(*q.aggregates[ai].var);
    }
  }

  auto emit_row = [&](const std::vector<TermId>& key, const GroupAcc& acc) {
    ResultTable::Row row;
    for (const std::string& v : q.vars) {
      size_t j = static_cast<size_t>(
          std::find(q.group_by.begin(), q.group_by.end(), v) -
          q.group_by.begin());
      if (acc.count == 0 || key[j] == kInvalidTermId) {
        row.push_back(std::nullopt);
      } else {
        row.push_back(dict.Get(key[j]));
      }
    }
    for (size_t ai = 0; ai < q.aggregates.size(); ++ai) {
      int64_t n = 0;
      switch (modes[ai]) {
        case AggMode::kCountRows:
          n = static_cast<int64_t>(acc.count);
          break;
        case AggMode::kOne:
          n = acc.count > 0 ? 1 : 0;
          break;
        case AggMode::kDistinctSet:
          n = static_cast<int64_t>(acc.sets[set_index[ai]].size());
          break;
        case AggMode::kDistinctGlobal:
          n = 0;  // unreachable: the star walk never derives this mode
          break;
      }
      row.push_back(Term::IntLiteral(n));
    }
    table.AddRow(std::move(row));
  };
  auto emit_empty = [&]() {
    if (!q.group_by.empty()) return;
    GroupAcc acc;
    acc.sets.resize(num_sets);
    emit_row({}, acc);
  };
  auto emit_groups = [&](const GroupMap& groups) {
    if (groups.empty()) {
      emit_empty();
      return;
    }
    std::vector<const std::pair<const std::vector<TermId>, GroupAcc>*> sorted;
    sorted.reserve(groups.size());
    for (const auto& entry : groups) sorted.push_back(&entry);
    std::sort(sorted.begin(), sorted.end(), [](const auto* a, const auto* b) {
      return a->first < b->first;
    });
    for (const auto* entry : sorted) emit_row(entry->first, entry->second);
  };

  // The walk. Charging replays the materializing path's three steps: the
  // anchor range, then per-subject open spans, then per-row type spans —
  // with the same early exits (a missing constant or an empty step stops
  // the charging exactly where the join loop would have emptied out).
  GroupMap groups;
  if (!ca.missing) {
    rdf::TriplePattern pa;
    pa.p = ca.p;
    pa.o = ca.o;
    rdf::TripleSpan span_a = store->Span(pa);
    Charge(stats, span_a.size);
    if (span_a.size > 0 && !cb.missing) {
      size_t rows_b = 0;
      for (const rdf::Triple& ta : span_a) {
        rdf::TriplePattern pb;
        pb.s = ta.s;
        pb.p = B.p.is_var ? kInvalidTermId : cb.p;
        rdf::TripleSpan span_b = store->Span(pb);
        rows_b += span_b.size;
        if (cc.missing) continue;
        for (const rdf::Triple& tb : span_b) {
          rdf::TriplePattern pc;
          pc.s = tb.o;
          pc.p = cc.p;
          rdf::TripleSpan span_c = store->Span(pc);
          Charge(stats, span_c.size);
          for (const rdf::Triple& tc : span_c) {
            auto value_of = [&](Src src) {
              switch (src) {
                case Src::kS:
                  return ta.s;
                case Src::kP:
                  return tb.p;
                case Src::kO:
                  return tb.o;
                case Src::kRC:
                  return tc.o;
              }
              return kInvalidTermId;
            };
            std::vector<TermId> key;
            key.reserve(key_src.size());
            for (Src ks : key_src) key.push_back(value_of(ks));
            GroupAcc& acc = groups[std::move(key)];
            if (acc.sets.size() != num_sets) acc.sets.resize(num_sets);
            ++acc.count;
            for (size_t si = 0; si < num_sets; ++si) {
              acc.sets[si].insert(value_of(set_src[si]));
            }
          }
        }
      }
      Charge(stats, rows_b);
    }
  }
  emit_groups(groups);
  return table;
}

/// CI sanitizer runs export HBOLD_FORCE_HASH_JOIN=1 to drive every
/// eligible join step through the hash operator across the whole test
/// suite — results are bit-identical by construction, so only operator
/// lifetime/memory bugs can surface.
bool ForceHashJoinFromEnv() {
  static const bool forced = std::getenv("HBOLD_FORCE_HASH_JOIN") != nullptr;
  return forced;
}

/// HBOLD_HASH_SPILL_BUDGET=<bytes> overrides the hash-join spill threshold
/// — sanitizer runs set a tiny budget to drive every build through the
/// spill path (results are bit-identical by construction).
bool HashSpillBudgetFromEnv(size_t* budget) {
  const char* env = std::getenv("HBOLD_HASH_SPILL_BUDGET");
  if (env == nullptr || *env == '\0') return false;
  *budget = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  return true;
}

}  // namespace

Executor::Executor(const rdf::TripleStore* store, ExecOptions options,
                   PlanCache* plan_cache)
    : store_(store), options_(options), plan_cache_(plan_cache) {
  if (ForceHashJoinFromEnv()) options_.hash_join = HashJoinMode::kForce;
  size_t budget = 0;
  if (HashSpillBudgetFromEnv(&budget) &&
      options_.hash_join_spill_budget_bytes ==
          ExecOptions{}.hash_join_spill_budget_bytes) {
    // The env override stands in for the default only: a caller that set
    // an explicit budget (differential tests pinning spill behavior)
    // keeps it even under the CI-wide override.
    options_.hash_join_spill_budget_bytes = budget;
  }
}

Result<ResultTable> Executor::Execute(std::string_view query_text,
                                      ExecStats* stats) const {
  if (plan_cache_ != nullptr) {
    // Prepared-statement tier: a repeated text skips parse AND planning.
    const uint64_t generation = store_->generation();
    std::string text(query_text);
    std::shared_ptr<const PreparedQuery> prepared =
        plan_cache_->LookupPrepared(text, generation);
    if (prepared != nullptr) {
      if (stats != nullptr) ++stats->plan_cache_hits;
      return ExecutePlanned(prepared->query, *prepared->plan, stats);
    }
    HBOLD_ASSIGN_OR_RETURN(SelectQuery q, ParseQuery(query_text));
    std::shared_ptr<const QueryPlan> plan = AcquirePlan(q, stats);
    auto insert = std::make_shared<PreparedQuery>();
    insert->query = std::move(q);
    insert->plan = plan;
    plan_cache_->InsertPrepared(text, generation, insert);
    return ExecutePlanned(insert->query, *plan, stats);
  }
  HBOLD_ASSIGN_OR_RETURN(SelectQuery q, ParseQuery(query_text));
  return Execute(q, stats);
}

std::shared_ptr<const QueryPlan> Executor::AcquirePlan(const SelectQuery& q,
                                                       ExecStats* stats) const {
  // The physical plan: served by the cross-query cache (keyed on the
  // normalized WHERE tree + the store's rebuild generation) or computed
  // fresh. Cached and fresh plans are identical — planning is a
  // deterministic function of (query shape, store content) and a rebuilt
  // store changes its generation — so caching can never change results or
  // charged accounting, only planning work.
  if (plan_cache_ == nullptr) {
    return std::make_shared<QueryPlan>(PlanQuery(q, options_, store_));
  }
  const std::string key = NormalizeWhereKey(q);
  const uint64_t generation = store_->generation();
  std::shared_ptr<const QueryPlan> plan = plan_cache_->Lookup(key, generation);
  if (plan != nullptr) {
    if (stats != nullptr) ++stats->plan_cache_hits;
  } else {
    // Whole-query miss: plan group by group, serving non-root groups
    // (OPTIONAL/UNION bodies) from the cache's group tier. Queries that
    // disagree at the top level but share a sub-group — the extraction
    // corpus's OPTIONAL label/comment tails — replan only the parts that
    // actually differ. The root group is skipped: it is exactly what the
    // whole-query tiers above already key on.
    auto fresh = std::make_shared<QueryPlan>();
    bool root = true;
    ForEachGroup(q.where, [&](const GroupGraphPattern& g) {
      if (root) {
        root = false;
        fresh->groups.push_back(PlanGroup(g, options_, store_));
        return;
      }
      const std::string gkey = NormalizeGroupKey(g);
      std::shared_ptr<const GroupPlan> cached =
          plan_cache_->LookupGroup(gkey, generation);
      if (cached == nullptr) {
        cached = std::make_shared<GroupPlan>(PlanGroup(g, options_, store_));
        plan_cache_->InsertGroup(gkey, generation, cached);
      }
      fresh->groups.push_back(*cached);
    });
    plan = fresh;
    plan_cache_->Insert(key, generation, plan);
    if (stats != nullptr) ++stats->plan_cache_misses;
  }
  return plan;
}

Result<ResultTable> Executor::Execute(const SelectQuery& q,
                                      ExecStats* stats) const {
  std::shared_ptr<const QueryPlan> plan = AcquirePlan(q, stats);
  return ExecutePlanned(q, *plan, stats);
}

Result<ResultTable> Executor::ExecutePlanned(const SelectQuery& q,
                                             const QueryPlan& plan,
                                             ExecStats* stats) const {
  const std::vector<size_t>& top_order = plan.groups.front().order;

  // Pushdown fast paths: the count-query family by index range arithmetic,
  // then the 3-pattern star/range shape by sub-range span walks; ordinary
  // solution modifiers run on top. Falls through to the materializing path
  // for everything outside the recognized families.
  if (options_.aggregate_pushdown) {
    std::optional<ResultTable> fast =
        TryAggregatePushdown(q, store_, top_order, stats);
    if (!fast.has_value() && options_.star_pushdown) {
      fast = TryStarPushdown(q, store_, top_order, stats);
    }
    if (fast.has_value()) {
      if (q.distinct) ApplyTermDistinct(&*fast);
      ApplyOrderBy(q, &*fast);
      ApplySlice(q, &*fast);
      if (stats != nullptr) stats->result_rows = fast->num_rows();
      return *std::move(fast);
    }
  }

  VarRegistry vars;
  CollectVars(q.where, &vars);
  for (const std::string& v : q.vars) vars.Intern(v);
  for (const std::string& v : q.group_by) vars.Intern(v);
  for (const Aggregate& a : q.aggregates) {
    if (a.var.has_value()) vars.Intern(*a.var);
  }

  const bool grouping = !q.group_by.empty() || !q.aggregates.empty();

  // LIMIT pushdown: when nothing downstream (grouping, DISTINCT, ORDER BY,
  // filters, optionals, unions) can change which rows survive, the join
  // loop may stop at OFFSET+LIMIT rows. ASK stops at the first solution.
  size_t row_cap = kNoCap;
  if (options_.limit_pushdown && !grouping && !q.distinct &&
      q.order_by.empty() && q.where.filters.empty() &&
      q.where.optionals.empty() && q.where.unions.empty()) {
    if (q.form == QueryForm::kAsk) {
      row_cap = 1;
    } else if (q.limit.has_value()) {
      size_t off = q.offset.value_or(0);
      size_t cap = off + *q.limit;
      if (cap >= off) row_cap = cap;  // saturating add
    }
  }

  GroupPlanMap plan_map = BuildGroupPlanMap(q, plan);
  GroupEvaluator evaluator(store_, &vars, stats, options_, &plan_map);
  std::vector<RowIds> rows = evaluator.Eval(
      q.where, {RowIds(vars.size(), kInvalidTermId)}, row_cap);

  // ASK: one row, one boolean cell named "ask" (mirrors the SPARQL JSON
  // results `boolean` member; ResultTable::AskResult decodes it).
  if (q.form == QueryForm::kAsk) {
    ResultTable ask_table({"ask"});
    ask_table.AddRow({Term::BoolLiteral(!rows.empty())});
    if (stats != nullptr) stats->result_rows = 1;
    return ask_table;
  }

  const rdf::Dictionary& dict = store_->dict();
  auto term_at = [&](const RowIds& row, int slot) -> std::optional<Term> {
    if (slot < 0 || row[static_cast<size_t>(slot)] == kInvalidTermId) {
      return std::nullopt;
    }
    return dict.Get(row[static_cast<size_t>(slot)]);
  };

  // Projection column list.
  std::vector<std::string> columns;
  if (q.select_all) {
    columns = vars.names();
  } else {
    columns = q.vars;
    for (const Aggregate& a : q.aggregates) columns.push_back(a.as);
  }
  ResultTable table(columns);

  if (grouping) {
    // Group rows by the GROUP BY key (empty key = single global group).
    // Hash-accumulate on TermId vectors, then emit in sorted key order —
    // identical output to the former ordered-map walk without per-row
    // O(log groups) key-vector comparisons.
    std::vector<int> key_slots;
    for (const std::string& g : q.group_by) key_slots.push_back(vars.Lookup(g));
    std::unordered_map<std::vector<TermId>, std::vector<const RowIds*>,
                       IdVecHash>
        groups;
    for (const RowIds& row : rows) {
      std::vector<TermId> key;
      key.reserve(key_slots.size());
      for (int s : key_slots) {
        key.push_back(s < 0 ? kInvalidTermId : row[static_cast<size_t>(s)]);
      }
      groups[std::move(key)].push_back(&row);
    }
    // An empty input still yields one (empty) group for a global aggregate.
    if (groups.empty() && q.group_by.empty()) {
      groups[{}] = {};
    }
    std::vector<
        const std::pair<const std::vector<TermId>, std::vector<const RowIds*>>*>
        ordered;
    ordered.reserve(groups.size());
    for (const auto& entry : groups) ordered.push_back(&entry);
    std::sort(ordered.begin(), ordered.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    for (const auto* entry : ordered) {
      const std::vector<const RowIds*>& members = entry->second;
      ResultTable::Row out_row;
      for (const std::string& v : q.vars) {
        int slot = vars.Lookup(v);
        if (!members.empty()) {
          out_row.push_back(term_at(*members.front(), slot));
        } else {
          out_row.push_back(std::nullopt);
        }
      }
      for (const Aggregate& a : q.aggregates) {
        int64_t count = 0;
        if (!a.var.has_value()) {
          if (a.distinct) {
            std::unordered_set<std::vector<TermId>, IdVecHash> distinct_rows;
            for (const RowIds* r : members) distinct_rows.insert(*r);
            count = static_cast<int64_t>(distinct_rows.size());
          } else {
            count = static_cast<int64_t>(members.size());
          }
        } else {
          int slot = vars.Lookup(*a.var);
          if (a.distinct) {
            std::unordered_set<TermId> seen;
            for (const RowIds* r : members) {
              TermId v = slot < 0 ? kInvalidTermId
                                  : (*r)[static_cast<size_t>(slot)];
              if (v != kInvalidTermId) seen.insert(v);
            }
            count = static_cast<int64_t>(seen.size());
          } else {
            for (const RowIds* r : members) {
              if (slot >= 0 &&
                  (*r)[static_cast<size_t>(slot)] != kInvalidTermId) {
                ++count;
              }
            }
          }
        }
        out_row.push_back(Term::IntLiteral(count));
      }
      table.AddRow(std::move(out_row));
    }
    // Aggregate rows contain computed terms, so DISTINCT falls back to the
    // serialized-cell keying.
    if (q.distinct) ApplyTermDistinct(&table);
  } else {
    std::vector<int> slots;
    for (const std::string& c : columns) slots.push_back(vars.Lookup(c));
    // Non-aggregate DISTINCT dedups on the projected id tuple — equal ids
    // iff equal terms, since the dictionary interns.
    std::unordered_set<std::vector<TermId>, IdVecHash> seen;
    for (const RowIds& row : rows) {
      if (q.distinct) {
        std::vector<TermId> key;
        key.reserve(slots.size());
        for (int s : slots) {
          key.push_back(s < 0 ? kInvalidTermId : row[static_cast<size_t>(s)]);
        }
        if (!seen.insert(std::move(key)).second) continue;
      }
      ResultTable::Row out_row;
      out_row.reserve(slots.size());
      for (int s : slots) out_row.push_back(term_at(row, s));
      table.AddRow(std::move(out_row));
    }
  }

  ApplyOrderBy(q, &table);
  ApplySlice(q, &table);

  if (stats != nullptr) stats->result_rows = table.num_rows();
  return table;
}

}  // namespace hbold::sparql
