#include "sparql/executor.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <unordered_map>

#include "common/string_util.h"
#include "sparql/parser.h"

namespace hbold::sparql {

namespace {

using rdf::kInvalidTermId;
using rdf::Term;
using rdf::TermId;

/// Maps variable names to dense row slots.
class VarRegistry {
 public:
  size_t Intern(const std::string& name) {
    auto it = index_.find(name);
    if (it != index_.end()) return it->second;
    size_t id = names_.size();
    names_.push_back(name);
    index_.emplace(name, id);
    return id;
  }
  int Lookup(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? -1 : static_cast<int>(it->second);
  }
  size_t size() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, size_t> index_;
};

using RowIds = std::vector<TermId>;  // slot -> bound term id (0 = unbound)

void CollectVars(const GroupGraphPattern& g, VarRegistry* vars);

void CollectExprVars(const Expr& e, VarRegistry* vars) {
  if (e.kind == Expr::Kind::kVar || e.kind == Expr::Kind::kBound) {
    vars->Intern(e.var);
  }
  for (const auto& a : e.args) CollectExprVars(*a, vars);
}

void CollectVars(const GroupGraphPattern& g, VarRegistry* vars) {
  for (const auto& t : g.triples) {
    if (t.s.is_var) vars->Intern(t.s.var);
    if (t.p.is_var) vars->Intern(t.p.var);
    if (t.o.is_var) vars->Intern(t.o.var);
  }
  for (const auto& f : g.filters) CollectExprVars(*f, vars);
  for (const auto& o : g.optionals) CollectVars(*o, vars);
  for (const auto& u : g.unions) {
    CollectVars(*u.left, vars);
    CollectVars(*u.right, vars);
  }
}

/// Value produced by expression evaluation. Errors propagate and make the
/// enclosing FILTER false (SPARQL error semantics).
struct EvalValue {
  enum class Kind { kTerm, kBool, kError };
  Kind kind = Kind::kError;
  Term term;
  bool b = false;

  static EvalValue Error() { return EvalValue{}; }
  static EvalValue Bool(bool v) {
    EvalValue e;
    e.kind = Kind::kBool;
    e.b = v;
    return e;
  }
  static EvalValue OfTerm(Term t) {
    EvalValue e;
    e.kind = Kind::kTerm;
    e.term = std::move(t);
    return e;
  }
};

bool TryParseNumber(const Term& t, double* out) {
  if (!t.is_literal()) return false;
  const std::string& lex = t.lexical();
  if (lex.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(lex.c_str(), &end);
  if (end != lex.c_str() + lex.size()) return false;
  *out = v;
  return true;
}

/// Effective boolean value; returns kError-signalling nullopt on non-boolean
/// non-coercible values.
std::optional<bool> Ebv(const EvalValue& v) {
  switch (v.kind) {
    case EvalValue::Kind::kBool:
      return v.b;
    case EvalValue::Kind::kTerm: {
      const Term& t = v.term;
      if (t.is_literal()) {
        if (t.lexical() == "true") return true;
        if (t.lexical() == "false") return false;
        double d;
        if (TryParseNumber(t, &d)) return d != 0;
        return !t.lexical().empty();
      }
      return std::nullopt;
    }
    case EvalValue::Kind::kError:
      return std::nullopt;
  }
  return std::nullopt;
}

class GroupEvaluator {
 public:
  GroupEvaluator(const rdf::TripleStore* store, VarRegistry* vars,
                 ExecStats* stats, const ExecOptions& options)
      : store_(store), vars_(vars), stats_(stats), options_(options) {}

  /// Joins `input` rows with the solutions of `group`.
  std::vector<RowIds> Eval(const GroupGraphPattern& group,
                           std::vector<RowIds> input) {
    std::vector<RowIds> rows = EvalTriples(group.triples, std::move(input));
    for (const auto& u : group.unions) {
      std::vector<RowIds> left = Eval(*u.left, rows);
      std::vector<RowIds> right = Eval(*u.right, rows);
      rows = std::move(left);
      rows.insert(rows.end(), right.begin(), right.end());
    }
    for (const auto& opt : group.optionals) {
      std::vector<RowIds> joined;
      for (const RowIds& row : rows) {
        std::vector<RowIds> ext = Eval(*opt, {row});
        if (ext.empty()) {
          joined.push_back(row);
        } else {
          joined.insert(joined.end(), ext.begin(), ext.end());
        }
      }
      rows = std::move(joined);
    }
    for (const auto& f : group.filters) {
      std::vector<RowIds> kept;
      kept.reserve(rows.size());
      for (const RowIds& row : rows) {
        std::optional<bool> v = Ebv(EvalExpr(*f, row));
        if (v.has_value() && *v) kept.push_back(row);
      }
      rows = std::move(kept);
    }
    return rows;
  }

  EvalValue EvalExpr(const Expr& e, const RowIds& row) const {
    switch (e.kind) {
      case Expr::Kind::kVar: {
        int slot = vars_->Lookup(e.var);
        if (slot < 0 || row[static_cast<size_t>(slot)] == kInvalidTermId) {
          return EvalValue::Error();
        }
        return EvalValue::OfTerm(
            store_->dict().Get(row[static_cast<size_t>(slot)]));
      }
      case Expr::Kind::kLiteral:
        return EvalValue::OfTerm(e.literal);
      case Expr::Kind::kBound: {
        int slot = vars_->Lookup(e.var);
        return EvalValue::Bool(slot >= 0 &&
                               row[static_cast<size_t>(slot)] !=
                                   kInvalidTermId);
      }
      case Expr::Kind::kNot: {
        std::optional<bool> v = Ebv(EvalExpr(*e.args[0], row));
        if (!v.has_value()) return EvalValue::Error();
        return EvalValue::Bool(!*v);
      }
      case Expr::Kind::kAnd: {
        std::optional<bool> a = Ebv(EvalExpr(*e.args[0], row));
        std::optional<bool> b = Ebv(EvalExpr(*e.args[1], row));
        // SPARQL three-valued logic: false && error == false.
        if (a.has_value() && !*a) return EvalValue::Bool(false);
        if (b.has_value() && !*b) return EvalValue::Bool(false);
        if (!a.has_value() || !b.has_value()) return EvalValue::Error();
        return EvalValue::Bool(true);
      }
      case Expr::Kind::kOr: {
        std::optional<bool> a = Ebv(EvalExpr(*e.args[0], row));
        std::optional<bool> b = Ebv(EvalExpr(*e.args[1], row));
        if (a.has_value() && *a) return EvalValue::Bool(true);
        if (b.has_value() && *b) return EvalValue::Bool(true);
        if (!a.has_value() || !b.has_value()) return EvalValue::Error();
        return EvalValue::Bool(false);
      }
      case Expr::Kind::kCompare: {
        EvalValue a = EvalExpr(*e.args[0], row);
        EvalValue b = EvalExpr(*e.args[1], row);
        if (a.kind != EvalValue::Kind::kTerm ||
            b.kind != EvalValue::Kind::kTerm) {
          return EvalValue::Error();
        }
        int cmp;
        double da, db;
        if (TryParseNumber(a.term, &da) && TryParseNumber(b.term, &db)) {
          cmp = da < db ? -1 : (da > db ? 1 : 0);
        } else {
          const std::string& sa = a.term.lexical();
          const std::string& sb = b.term.lexical();
          cmp = sa < sb ? -1 : (sa > sb ? 1 : 0);
        }
        switch (e.op) {
          case Expr::CmpOp::kEq:
            // Term equality also considers kind (IRI vs literal).
            if (cmp == 0 && a.term.kind() != b.term.kind()) {
              return EvalValue::Bool(false);
            }
            return EvalValue::Bool(cmp == 0);
          case Expr::CmpOp::kNe:
            if (cmp == 0 && a.term.kind() != b.term.kind()) {
              return EvalValue::Bool(true);
            }
            return EvalValue::Bool(cmp != 0);
          case Expr::CmpOp::kLt:
            return EvalValue::Bool(cmp < 0);
          case Expr::CmpOp::kGt:
            return EvalValue::Bool(cmp > 0);
          case Expr::CmpOp::kLe:
            return EvalValue::Bool(cmp <= 0);
          case Expr::CmpOp::kGe:
            return EvalValue::Bool(cmp >= 0);
        }
        return EvalValue::Error();
      }
      case Expr::Kind::kStr: {
        EvalValue a = EvalExpr(*e.args[0], row);
        if (a.kind != EvalValue::Kind::kTerm) return EvalValue::Error();
        return EvalValue::OfTerm(Term::Literal(a.term.lexical()));
      }
      case Expr::Kind::kLcase: {
        EvalValue a = EvalExpr(*e.args[0], row);
        if (a.kind != EvalValue::Kind::kTerm) return EvalValue::Error();
        return EvalValue::OfTerm(Term::Literal(ToLower(a.term.lexical())));
      }
      case Expr::Kind::kIsIri: {
        EvalValue a = EvalExpr(*e.args[0], row);
        if (a.kind != EvalValue::Kind::kTerm) return EvalValue::Error();
        return EvalValue::Bool(a.term.is_iri());
      }
      case Expr::Kind::kIsLiteral: {
        EvalValue a = EvalExpr(*e.args[0], row);
        if (a.kind != EvalValue::Kind::kTerm) return EvalValue::Error();
        return EvalValue::Bool(a.term.is_literal());
      }
      case Expr::Kind::kContains: {
        EvalValue a = EvalExpr(*e.args[0], row);
        EvalValue b = EvalExpr(*e.args[1], row);
        if (a.kind != EvalValue::Kind::kTerm ||
            b.kind != EvalValue::Kind::kTerm) {
          return EvalValue::Error();
        }
        return EvalValue::Bool(a.term.lexical().find(b.term.lexical()) !=
                               std::string::npos);
      }
      case Expr::Kind::kRegex: {
        // Lenient REGEX: the text argument is coerced with STR() semantics
        // so IRIs match too — the paper's Listing 1 applies
        // regex(?url, 'sparql') where ?url may be an IRI-valued accessURL.
        EvalValue text = EvalExpr(*e.args[0], row);
        EvalValue pattern = EvalExpr(*e.args[1], row);
        if (text.kind != EvalValue::Kind::kTerm ||
            pattern.kind != EvalValue::Kind::kTerm) {
          return EvalValue::Error();
        }
        // LitePatternMatch instead of std::regex: FILTER runs once per
        // candidate row, and compiling a std::regex NFA per evaluation
        // dominated query time. Patterns outside the supported subset
        // (groups, braces, ...) evaluate to an error — the row is
        // filtered out, as with a malformed regex before — rather than
        // silently matching metacharacters literally.
        if (!LitePatternSupported(pattern.term.lexical())) {
          return EvalValue::Error();
        }
        bool icase = false;
        if (e.args.size() > 2) {
          EvalValue f = EvalExpr(*e.args[2], row);
          icase = f.kind == EvalValue::Kind::kTerm &&
                  f.term.lexical().find('i') != std::string::npos;
        }
        return EvalValue::Bool(LitePatternMatch(
            text.term.lexical(), pattern.term.lexical(), icase));
      }
    }
    return EvalValue::Error();
  }

 private:
  /// Greedy join ordering: repeatedly pick the pattern with the most bound
  /// slots (constants + already-bound variables), tie-broken by smaller
  /// index count estimate.
  std::vector<RowIds> EvalTriples(const std::vector<TriplePatternNode>& triples,
                                  std::vector<RowIds> input) {
    if (triples.empty()) return input;
    std::vector<const TriplePatternNode*> pending;
    pending.reserve(triples.size());
    for (const auto& t : triples) pending.push_back(&t);

    std::set<std::string> bound;  // variable names bound so far

    std::vector<RowIds> rows = std::move(input);
    while (!pending.empty()) {
      size_t best = 0;
      if (options_.greedy_join_order) {
        int best_score = -1;
        for (size_t i = 0; i < pending.size(); ++i) {
          int score = Boundness(*pending[i], bound);
          if (score > best_score) {
            best_score = score;
            best = i;
          }
        }
      }
      const TriplePatternNode* pat = pending[best];
      pending.erase(pending.begin() + static_cast<long>(best));
      rows = ExtendRows(*pat, std::move(rows));
      if (pat->s.is_var) bound.insert(pat->s.var);
      if (pat->p.is_var) bound.insert(pat->p.var);
      if (pat->o.is_var) bound.insert(pat->o.var);
      if (rows.empty()) break;
    }
    return rows;
  }

  static int Boundness(const TriplePatternNode& t,
                       const std::set<std::string>& bound) {
    auto slot = [&](const TermOrVar& tv) {
      if (!tv.is_var) return 2;                  // constant: best
      return bound.count(tv.var) ? 2 : 0;        // bound var as good as const
    };
    // Connectivity dominates: joining through a shared variable avoids the
    // cartesian products that pure boundness ordering produces on triangle
    // and chain patterns. Among equally-connected candidates, weight
    // subject/object binding higher than predicate binding (predicates are
    // usually low-selectivity).
    bool connected = (t.s.is_var && bound.count(t.s.var) > 0) ||
                     (t.p.is_var && bound.count(t.p.var) > 0) ||
                     (t.o.is_var && bound.count(t.o.var) > 0);
    int score = 3 * slot(t.s) + 2 * slot(t.p) + 3 * slot(t.o);
    if (connected || bound.empty()) score += 1000;
    return score;
  }

  std::vector<RowIds> ExtendRows(const TriplePatternNode& pat,
                                 std::vector<RowIds> rows) {
    std::vector<RowIds> out;
    const rdf::Dictionary& dict = store_->dict();

    // Pre-resolve constant term ids; a constant not present in the
    // dictionary can never match.
    TermId const_s = kInvalidTermId, const_p = kInvalidTermId,
           const_o = kInvalidTermId;
    if (!pat.s.is_var) {
      const_s = dict.Lookup(pat.s.term);
      if (const_s == kInvalidTermId) return out;
    }
    if (!pat.p.is_var) {
      const_p = dict.Lookup(pat.p.term);
      if (const_p == kInvalidTermId) return out;
    }
    if (!pat.o.is_var) {
      const_o = dict.Lookup(pat.o.term);
      if (const_o == kInvalidTermId) return out;
    }
    int slot_s = pat.s.is_var ? vars_->Lookup(pat.s.var) : -1;
    int slot_p = pat.p.is_var ? vars_->Lookup(pat.p.var) : -1;
    int slot_o = pat.o.is_var ? vars_->Lookup(pat.o.var) : -1;

    for (const RowIds& row : rows) {
      rdf::TriplePattern q;
      q.s = pat.s.is_var ? row[static_cast<size_t>(slot_s)] : const_s;
      q.p = pat.p.is_var ? row[static_cast<size_t>(slot_p)] : const_p;
      q.o = pat.o.is_var ? row[static_cast<size_t>(slot_o)] : const_o;
      store_->Match(q, [&](const rdf::Triple& t) {
        RowIds next = row;
        // Shared-variable consistency within a single pattern, e.g.
        // ?x ?p ?x — enforce equal bindings.
        bool consistent = true;
        auto bind = [&](int slot, TermId value) {
          if (slot < 0) return;
          TermId& cell = next[static_cast<size_t>(slot)];
          if (cell == kInvalidTermId) {
            cell = value;
          } else if (cell != value) {
            consistent = false;
          }
        };
        bind(slot_s, t.s);
        bind(slot_p, t.p);
        bind(slot_o, t.o);
        if (consistent) {
          if (stats_ != nullptr) ++stats_->intermediate_bindings;
          out.push_back(std::move(next));
        }
        return true;
      });
    }
    return out;
  }

  const rdf::TripleStore* store_;
  VarRegistry* vars_;
  ExecStats* stats_;
  ExecOptions options_;
};

/// Numeric-aware ordering for ORDER BY and deterministic output.
bool TermLess(const std::optional<Term>& a, const std::optional<Term>& b) {
  if (!a.has_value() || !b.has_value()) return b.has_value();
  double da, db;
  if (TryParseNumber(*a, &da) && TryParseNumber(*b, &db) && da != db) {
    return da < db;
  }
  return a->lexical() < b->lexical();
}

}  // namespace

Result<ResultTable> Executor::Execute(std::string_view query_text,
                                      ExecStats* stats) const {
  HBOLD_ASSIGN_OR_RETURN(SelectQuery q, ParseQuery(query_text));
  return Execute(q, stats);
}

Result<ResultTable> Executor::Execute(const SelectQuery& q,
                                      ExecStats* stats) const {
  VarRegistry vars;
  CollectVars(q.where, &vars);
  for (const std::string& v : q.vars) vars.Intern(v);
  for (const std::string& v : q.group_by) vars.Intern(v);
  for (const Aggregate& a : q.aggregates) {
    if (a.var.has_value()) vars.Intern(*a.var);
  }

  GroupEvaluator evaluator(store_, &vars, stats, options_);
  std::vector<RowIds> rows =
      evaluator.Eval(q.where, {RowIds(vars.size(), kInvalidTermId)});

  // ASK: one row, one boolean cell named "ask" (mirrors the SPARQL JSON
  // results `boolean` member; ResultTable::AskResult decodes it).
  if (q.form == QueryForm::kAsk) {
    ResultTable ask_table({"ask"});
    ask_table.AddRow({Term::BoolLiteral(!rows.empty())});
    if (stats != nullptr) stats->result_rows = 1;
    return ask_table;
  }

  const rdf::Dictionary& dict = store_->dict();
  auto term_at = [&](const RowIds& row, int slot) -> std::optional<Term> {
    if (slot < 0 || row[static_cast<size_t>(slot)] == kInvalidTermId) {
      return std::nullopt;
    }
    return dict.Get(row[static_cast<size_t>(slot)]);
  };

  // Projection column list.
  std::vector<std::string> columns;
  if (q.select_all) {
    columns = vars.names();
  } else {
    columns = q.vars;
    for (const Aggregate& a : q.aggregates) columns.push_back(a.as);
  }
  ResultTable table(columns);

  const bool grouping = !q.group_by.empty() || !q.aggregates.empty();
  if (grouping) {
    // Group rows by the GROUP BY key (empty key = single global group).
    std::vector<int> key_slots;
    for (const std::string& g : q.group_by) key_slots.push_back(vars.Lookup(g));
    std::map<std::vector<TermId>, std::vector<const RowIds*>> groups;
    for (const RowIds& row : rows) {
      std::vector<TermId> key;
      key.reserve(key_slots.size());
      for (int s : key_slots) {
        key.push_back(s < 0 ? kInvalidTermId : row[static_cast<size_t>(s)]);
      }
      groups[std::move(key)].push_back(&row);
    }
    // An empty input still yields one (empty) group for a global aggregate.
    if (groups.empty() && q.group_by.empty()) {
      groups[{}] = {};
    }
    for (const auto& [key, members] : groups) {
      ResultTable::Row out_row;
      for (const std::string& v : q.vars) {
        int slot = vars.Lookup(v);
        if (!members.empty()) {
          out_row.push_back(term_at(*members.front(), slot));
        } else {
          out_row.push_back(std::nullopt);
        }
      }
      for (const Aggregate& a : q.aggregates) {
        int64_t count = 0;
        if (!a.var.has_value()) {
          if (a.distinct) {
            std::set<RowIds> distinct_rows;
            for (const RowIds* r : members) distinct_rows.insert(*r);
            count = static_cast<int64_t>(distinct_rows.size());
          } else {
            count = static_cast<int64_t>(members.size());
          }
        } else {
          int slot = vars.Lookup(*a.var);
          if (a.distinct) {
            std::set<TermId> seen;
            for (const RowIds* r : members) {
              TermId v = slot < 0 ? kInvalidTermId
                                  : (*r)[static_cast<size_t>(slot)];
              if (v != kInvalidTermId) seen.insert(v);
            }
            count = static_cast<int64_t>(seen.size());
          } else {
            for (const RowIds* r : members) {
              if (slot >= 0 &&
                  (*r)[static_cast<size_t>(slot)] != kInvalidTermId) {
                ++count;
              }
            }
          }
        }
        out_row.push_back(Term::IntLiteral(count));
      }
      table.AddRow(std::move(out_row));
    }
  } else {
    std::vector<int> slots;
    for (const std::string& c : columns) slots.push_back(vars.Lookup(c));
    for (const RowIds& row : rows) {
      ResultTable::Row out_row;
      out_row.reserve(slots.size());
      for (int s : slots) out_row.push_back(term_at(row, s));
      table.AddRow(std::move(out_row));
    }
  }

  // DISTINCT.
  if (q.distinct) {
    std::set<std::string> seen;
    ResultTable deduped(table.columns());
    for (const auto& row : table.rows()) {
      std::string key;
      for (const auto& cell : row) {
        key += cell.has_value() ? cell->ToNTriples() : "~";
        key += '\x1f';
      }
      if (seen.insert(std::move(key)).second) {
        deduped.AddRow(row);
      }
    }
    table = std::move(deduped);
  }

  // ORDER BY.
  if (!q.order_by.empty()) {
    std::vector<std::pair<int, bool>> keys;
    for (const auto& [var, asc] : q.order_by) {
      keys.emplace_back(table.ColumnIndex(var), asc);
    }
    std::vector<ResultTable::Row> sorted = table.rows();
    std::stable_sort(sorted.begin(), sorted.end(),
                     [&](const ResultTable::Row& a, const ResultTable::Row& b) {
                       for (const auto& [col, asc] : keys) {
                         if (col < 0) continue;
                         const auto& ca = a[static_cast<size_t>(col)];
                         const auto& cb = b[static_cast<size_t>(col)];
                         if (TermLess(ca, cb)) return asc;
                         if (TermLess(cb, ca)) return !asc;
                       }
                       return false;
                     });
    ResultTable reordered(table.columns());
    for (auto& r : sorted) reordered.AddRow(std::move(r));
    table = std::move(reordered);
  }

  // OFFSET / LIMIT.
  if (q.offset.has_value() || q.limit.has_value()) {
    size_t off = q.offset.value_or(0);
    size_t lim = q.limit.value_or(table.num_rows());
    ResultTable sliced(table.columns());
    for (size_t i = off; i < table.num_rows() && i < off + lim; ++i) {
      sliced.AddRow(table.rows()[i]);
    }
    table = std::move(sliced);
  }

  if (stats != nullptr) stats->result_rows = table.num_rows();
  return table;
}

}  // namespace hbold::sparql
