#ifndef HBOLD_SPARQL_EXECUTOR_H_
#define HBOLD_SPARQL_EXECUTOR_H_

#include <string_view>

#include "common/result.h"
#include "rdf/graph.h"
#include "sparql/ast.h"
#include "sparql/results.h"

namespace hbold::sparql {

/// Statistics about one query execution, used by the endpoint latency model
/// (cost proportional to scanned/produced bindings) and by the differential
/// fast-path tests.
///
/// `intermediate_bindings` is a *modeled* cost: the aggregate-pushdown fast
/// path charges exactly the bindings the materializing path would have
/// produced (computed by index range arithmetic), so simulated endpoint
/// latencies and work-budget decisions are bit-identical whichever path ran.
struct ExecStats {
  size_t intermediate_bindings = 0;  // rows produced across all BGP steps
  size_t result_rows = 0;
  size_t fast_path_hits = 0;  // queries answered by aggregate pushdown
  size_t rows_avoided = 0;    // binding rows never materialized by pushdown
};

/// Execution tuning knobs (exposed for the ablation benchmarks and the
/// differential test suite; defaults match production behaviour).
struct ExecOptions {
  /// Reorder triple patterns by estimated cardinality (per-predicate
  /// statistics + index range counts) before evaluation. Off = evaluate in
  /// the order the query wrote them.
  bool greedy_join_order = true;
  /// Route COUNT / COUNT(DISTINCT) / grouped-count queries to the store's
  /// index-arithmetic primitives instead of materializing binding rows.
  bool aggregate_pushdown = true;
  /// Apply a FILTER as soon as every variable it mentions is bound inside
  /// the BGP join loop, instead of only after the whole group is joined.
  bool filter_pushdown = true;
  /// Stop the join loop once OFFSET+LIMIT rows exist, when no later
  /// modifier (ORDER BY / DISTINCT / aggregation) could change the slice.
  /// ASK queries stop at the first solution under the same flag.
  bool limit_pushdown = true;
};

/// Evaluates SELECT queries against a TripleStore.
///
/// Evaluation strategy: a planner first tries the aggregate-pushdown fast
/// path (single-pattern and anchor-join count-query shapes answered by
/// index range arithmetic). Otherwise, per group pattern, triple patterns
/// are reordered by estimated selectivity (connectivity first, then
/// statistics-based cardinality estimates), then evaluated left-to-right by
/// index lookups that extend a binding table; FILTERs run as soon as their
/// variables are bound; OPTIONALs are left joins; UNION concatenates the
/// two sides' solutions. Both paths produce bit-identical result tables and
/// ExecStats::intermediate_bindings.
class Executor {
 public:
  explicit Executor(const rdf::TripleStore* store, ExecOptions options = {})
      : store_(store), options_(options) {}

  /// Parses and executes `query_text`.
  Result<ResultTable> Execute(std::string_view query_text,
                              ExecStats* stats = nullptr) const;

  /// Executes an already-parsed query.
  Result<ResultTable> Execute(const SelectQuery& query,
                              ExecStats* stats = nullptr) const;

 private:
  const rdf::TripleStore* store_;
  ExecOptions options_;
};

}  // namespace hbold::sparql

#endif  // HBOLD_SPARQL_EXECUTOR_H_
