#ifndef HBOLD_SPARQL_EXECUTOR_H_
#define HBOLD_SPARQL_EXECUTOR_H_

#include <string_view>

#include "common/result.h"
#include "rdf/graph.h"
#include "sparql/ast.h"
#include "sparql/planner.h"
#include "sparql/results.h"

namespace hbold::sparql {

/// Statistics about one query execution, used by the endpoint latency model
/// (cost proportional to scanned/produced bindings) and by the differential
/// fast-path tests.
///
/// `intermediate_bindings` is a *modeled* cost: the pushdown fast paths
/// charge exactly the bindings the materializing path would have produced
/// (computed by index range arithmetic), and the hash join emits exactly
/// the rows the nested index-loop would have, so simulated endpoint
/// latencies and work-budget decisions are bit-identical whichever
/// physical plan ran.
///
/// The planner counters (`plan_cache_*`, `hash_join_builds`) are
/// deployment figures: they describe which machinery answered the query,
/// never how much simulated work it charged, and are excluded from every
/// canonical accounting contract.
struct ExecStats {
  size_t intermediate_bindings = 0;  // rows produced across all BGP steps
  size_t result_rows = 0;
  size_t fast_path_hits = 0;  // queries answered by aggregate/star pushdown
  size_t rows_avoided = 0;    // binding rows never materialized by pushdown
  size_t plan_cache_hits = 0;    // plan served from the cross-query cache
  size_t plan_cache_misses = 0;  // plan computed (and cached) this query
  size_t hash_join_builds = 0;   // hash tables built by join steps
  /// Probes served by an already-built hash table: OPTIONAL re-evaluations
  /// plus distinct steps sharing one (constants, key mask) build.
  size_t hash_join_build_reuses = 0;
  /// Hash-join builds that exceeded ExecOptions::hash_join_spill_budget_bytes
  /// and were externally sorted to a temporary on-disk run.
  size_t hash_join_spills = 0;
};

/// Evaluates SELECT queries against a TripleStore.
///
/// Evaluation strategy: the cost-based planner (sparql/planner.h) fixes a
/// join order and a physical operator per step; a pushdown layer first
/// tries to answer the count-query family and the 3-pattern star/range
/// shape with index arithmetic / sub-range span walks. Otherwise triple
/// patterns evaluate in planned order — nested index-loops or
/// order-preserving hash joins — extending a binding table; FILTERs run as
/// soon as their variables are bound; OPTIONALs are left joins; UNION
/// concatenates the two sides' solutions. All physical paths produce
/// bit-identical result tables and ExecStats::intermediate_bindings.
///
/// `plan_cache`, when non-null, memoizes physical plans across queries
/// keyed on the normalized WHERE tree and the store's rebuild generation.
/// The cache must be dedicated to (store, options) — LocalEndpoint owns
/// one per endpoint. Cached and freshly planned executions are
/// bit-identical by construction (plans are deterministic functions of the
/// store content, and a rebuilt store changes its generation).
class Executor {
 public:
  explicit Executor(const rdf::TripleStore* store, ExecOptions options = {},
                    PlanCache* plan_cache = nullptr);

  /// Parses and executes `query_text`. With a plan cache attached, a
  /// repeated text is served from the prepared-statement tier — no parse,
  /// no planning; a new spelling of a cached WHERE tree still shares its
  /// plan through the normalized tier.
  Result<ResultTable> Execute(std::string_view query_text,
                              ExecStats* stats = nullptr) const;

  /// Executes an already-parsed query (normalized plan-cache tier only).
  Result<ResultTable> Execute(const SelectQuery& query,
                              ExecStats* stats = nullptr) const;

  const ExecOptions& options() const { return options_; }

 private:
  /// Cache lookup / planning for `q`; counts hit/miss into `stats`.
  std::shared_ptr<const QueryPlan> AcquirePlan(const SelectQuery& q,
                                               ExecStats* stats) const;
  /// Runs `q` under a fixed physical plan.
  Result<ResultTable> ExecutePlanned(const SelectQuery& q,
                                     const QueryPlan& plan,
                                     ExecStats* stats) const;

  const rdf::TripleStore* store_;
  ExecOptions options_;
  PlanCache* plan_cache_;
};

}  // namespace hbold::sparql

#endif  // HBOLD_SPARQL_EXECUTOR_H_
