#ifndef HBOLD_SPARQL_EXECUTOR_H_
#define HBOLD_SPARQL_EXECUTOR_H_

#include <string_view>

#include "common/result.h"
#include "rdf/graph.h"
#include "sparql/ast.h"
#include "sparql/results.h"

namespace hbold::sparql {

/// Statistics about one query execution, used by the endpoint latency model
/// (cost proportional to scanned/produced bindings).
struct ExecStats {
  size_t intermediate_bindings = 0;  // rows produced across all BGP steps
  size_t result_rows = 0;
};

/// Execution tuning knobs (exposed mainly for the join-order ablation
/// benchmark; defaults match production behaviour).
struct ExecOptions {
  /// Reorder triple patterns greedily by bound-position selectivity before
  /// evaluation. Off = evaluate in the order the query wrote them.
  bool greedy_join_order = true;
};

/// Evaluates SELECT queries against a TripleStore.
///
/// Evaluation strategy: per group pattern, triple patterns are reordered
/// greedily by estimated selectivity (bound positions count most), then
/// evaluated left-to-right by index lookups that extend a binding table.
/// FILTERs run once all triples of the group are joined; OPTIONALs are left
/// joins; UNION concatenates the two sides' solutions.
class Executor {
 public:
  explicit Executor(const rdf::TripleStore* store, ExecOptions options = {})
      : store_(store), options_(options) {}

  /// Parses and executes `query_text`.
  Result<ResultTable> Execute(std::string_view query_text,
                              ExecStats* stats = nullptr) const;

  /// Executes an already-parsed query.
  Result<ResultTable> Execute(const SelectQuery& query,
                              ExecStats* stats = nullptr) const;

 private:
  const rdf::TripleStore* store_;
  ExecOptions options_;
};

}  // namespace hbold::sparql

#endif  // HBOLD_SPARQL_EXECUTOR_H_
