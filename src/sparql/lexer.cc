#include "sparql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"

namespace hbold::sparql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "SELECT", "ASK",      "DISTINCT", "WHERE", "FILTER", "OPTIONAL", "UNION",
      "PREFIX", "GROUP",    "BY",     "ORDER",  "ASC",      "DESC",
      "LIMIT",  "OFFSET",   "COUNT",  "AS",     "REGEX",    "STR",
      "BOUND",  "ISIRI",    "ISLITERAL",        "CONTAINS", "LCASE",
      "TRUE",   "FALSE"};
  return *kKeywords;
}

bool IsPnameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t pos = 0;
  auto err = [&](std::string msg) {
    return Status::ParseError("sparql lex: " + std::move(msg) + " at offset " +
                              std::to_string(pos));
  };

  while (pos < text.size()) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
      continue;
    }
    if (c == '#') {
      while (pos < text.size() && text[pos] != '\n') ++pos;
      continue;
    }
    size_t start = pos;
    switch (c) {
      case '{':
        out.push_back({TokenKind::kLBrace, "{", start});
        ++pos;
        continue;
      case '}':
        out.push_back({TokenKind::kRBrace, "}", start});
        ++pos;
        continue;
      case '(':
        out.push_back({TokenKind::kLParen, "(", start});
        ++pos;
        continue;
      case ')':
        out.push_back({TokenKind::kRParen, ")", start});
        ++pos;
        continue;
      case ';':
        out.push_back({TokenKind::kSemicolon, ";", start});
        ++pos;
        continue;
      case ',':
        out.push_back({TokenKind::kComma, ",", start});
        ++pos;
        continue;
      case '*':
        out.push_back({TokenKind::kStar, "*", start});
        ++pos;
        continue;
      case '=':
        out.push_back({TokenKind::kEq, "=", start});
        ++pos;
        continue;
      default:
        break;
    }
    if (c == '.') {
      // Distinguish DOT from a decimal like ".5" (we don't support leading
      // dot numbers; always DOT).
      out.push_back({TokenKind::kDot, ".", start});
      ++pos;
      continue;
    }
    if (c == '!') {
      if (pos + 1 < text.size() && text[pos + 1] == '=') {
        out.push_back({TokenKind::kNe, "!=", start});
        pos += 2;
      } else {
        out.push_back({TokenKind::kBang, "!", start});
        ++pos;
      }
      continue;
    }
    if (c == '&') {
      if (pos + 1 < text.size() && text[pos + 1] == '&') {
        out.push_back({TokenKind::kAnd, "&&", start});
        pos += 2;
        continue;
      }
      return err("stray '&'");
    }
    if (c == '|') {
      if (pos + 1 < text.size() && text[pos + 1] == '|') {
        out.push_back({TokenKind::kOr, "||", start});
        pos += 2;
        continue;
      }
      return err("stray '|'");
    }
    if (c == '^') {
      if (pos + 1 < text.size() && text[pos + 1] == '^') {
        out.push_back({TokenKind::kDtCaret, "^^", start});
        pos += 2;
        continue;
      }
      return err("stray '^'");
    }
    if (c == '<') {
      // IRIREF if the contents up to '>' contain no whitespace; otherwise a
      // comparison operator.
      size_t close = text.find('>', pos + 1);
      bool iri = close != std::string_view::npos;
      if (iri) {
        for (size_t i = pos + 1; i < close; ++i) {
          if (std::isspace(static_cast<unsigned char>(text[i])) ||
              text[i] == '<') {
            iri = false;
            break;
          }
        }
      }
      if (iri) {
        out.push_back(
            {TokenKind::kIri, std::string(text.substr(pos + 1, close - pos - 1)),
             start});
        pos = close + 1;
        continue;
      }
      if (pos + 1 < text.size() && text[pos + 1] == '=') {
        out.push_back({TokenKind::kLe, "<=", start});
        pos += 2;
      } else {
        out.push_back({TokenKind::kLt, "<", start});
        ++pos;
      }
      continue;
    }
    if (c == '>') {
      if (pos + 1 < text.size() && text[pos + 1] == '=') {
        out.push_back({TokenKind::kGe, ">=", start});
        pos += 2;
      } else {
        out.push_back({TokenKind::kGt, ">", start});
        ++pos;
      }
      continue;
    }
    if (c == '?' || c == '$') {
      ++pos;
      size_t vstart = pos;
      while (pos < text.size() && IsPnameChar(text[pos])) ++pos;
      if (pos == vstart) return err("empty variable name");
      out.push_back(
          {TokenKind::kVar, std::string(text.substr(vstart, pos - vstart)),
           start});
      continue;
    }
    if (c == '@') {
      ++pos;
      size_t astart = pos;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '-')) {
        ++pos;
      }
      if (pos == astart) return err("empty language tag");
      out.push_back(
          {TokenKind::kAt, std::string(text.substr(astart, pos - astart)),
           start});
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++pos;
      std::string value;
      while (true) {
        if (pos >= text.size()) return err("unterminated string");
        char ch = text[pos++];
        if (ch == quote) break;
        if (ch == '\\') {
          if (pos >= text.size()) return err("bad escape");
          char e = text[pos++];
          switch (e) {
            case 'n':
              value += '\n';
              break;
            case 't':
              value += '\t';
              break;
            case 'r':
              value += '\r';
              break;
            case '\\':
              value += '\\';
              break;
            case '\'':
              value += '\'';
              break;
            case '"':
              value += '"';
              break;
            default:
              return err("unknown escape");
          }
        } else {
          value += ch;
        }
      }
      out.push_back({TokenKind::kString, std::move(value), start});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '+' || c == '-') && pos + 1 < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos + 1])))) {
      size_t nstart = pos;
      if (c == '+' || c == '-') ++pos;
      while (pos < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E')) {
        // Don't eat a terminating DOT: "10." at pattern end.
        if (text[pos] == '.' &&
            (pos + 1 >= text.size() ||
             !std::isdigit(static_cast<unsigned char>(text[pos + 1])))) {
          break;
        }
        ++pos;
      }
      out.push_back(
          {TokenKind::kNumber, std::string(text.substr(nstart, pos - nstart)),
           start});
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t wstart = pos;
      while (pos < text.size() && IsPnameChar(text[pos])) ++pos;
      std::string word(text.substr(wstart, pos - wstart));
      // prefix:local form?
      if (pos < text.size() && text[pos] == ':') {
        ++pos;
        size_t lstart = pos;
        while (pos < text.size() && IsPnameChar(text[pos])) ++pos;
        out.push_back({TokenKind::kPname,
                       word + ":" + std::string(text.substr(lstart, pos - lstart)),
                       wstart});
        continue;
      }
      std::string upper = ToLower(word);
      for (auto& ch : upper) ch = static_cast<char>(std::toupper(
                                 static_cast<unsigned char>(ch)));
      if (word == "a") {
        out.push_back({TokenKind::kA, "a", wstart});
      } else if (Keywords().count(upper) > 0) {
        out.push_back({TokenKind::kKeyword, upper, wstart});
      } else {
        return err("unknown word '" + word + "'");
      }
      continue;
    }
    if (c == ':') {
      // Default-prefix pname ":local".
      ++pos;
      size_t lstart = pos;
      while (pos < text.size() && IsPnameChar(text[pos])) ++pos;
      out.push_back({TokenKind::kPname,
                     ":" + std::string(text.substr(lstart, pos - lstart)),
                     start});
      continue;
    }
    return err(std::string("unexpected character '") + c + "'");
  }
  out.push_back({TokenKind::kEnd, "", text.size()});
  return out;
}

}  // namespace hbold::sparql
