#include "sparql/ast.h"

namespace hbold::sparql {

std::unique_ptr<Expr> Expr::Var(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kVar;
  e->var = std::move(name);
  return e;
}

std::unique_ptr<Expr> Expr::Literal(rdf::Term t) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(t);
  return e;
}

std::unique_ptr<Expr> Expr::Compare(CmpOp op, std::unique_ptr<Expr> l,
                                    std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kCompare;
  e->op = op;
  e->args.push_back(std::move(l));
  e->args.push_back(std::move(r));
  return e;
}

std::unique_ptr<Expr> Expr::Unary(Kind kind, std::unique_ptr<Expr> a) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->args.push_back(std::move(a));
  return e;
}

std::unique_ptr<Expr> Expr::Binary(Kind kind, std::unique_ptr<Expr> a,
                                   std::unique_ptr<Expr> b) {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->args.push_back(std::move(a));
  e->args.push_back(std::move(b));
  return e;
}

}  // namespace hbold::sparql
