#ifndef HBOLD_SPARQL_PLANNER_H_
#define HBOLD_SPARQL_PLANNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rdf/graph.h"
#include "sparql/ast.h"

namespace hbold::sparql {

/// How the cost-based planner may use the hash-join operator.
enum class HashJoinMode {
  kOff,   // always nested index-loop
  kCost,  // per-step cost model picks hash build vs index walk
  kForce, // hash-join every eligible step (sanitizer / differential runs)
};

/// Execution tuning knobs (exposed for the ablation benchmarks and the
/// differential test suite; defaults match production behaviour).
struct ExecOptions {
  /// Reorder triple patterns by estimated cardinality (per-predicate
  /// statistics + index range counts) before evaluation. Off = evaluate in
  /// the order the query wrote them.
  bool greedy_join_order = true;
  /// Route COUNT / COUNT(DISTINCT) / grouped-count queries to the store's
  /// index-arithmetic primitives instead of materializing binding rows.
  bool aggregate_pushdown = true;
  /// Push the 3-pattern star/range shape (the `?p ?rc` range-class query:
  /// anchor + open star + object-type chain) down to TripleStore sub-range
  /// span walks instead of materializing binding rows. Only consulted when
  /// aggregate_pushdown is also on.
  bool star_pushdown = true;
  /// Apply a FILTER as soon as every variable it mentions is bound inside
  /// the BGP join loop, instead of only after the whole group is joined.
  bool filter_pushdown = true;
  /// Stop the join loop once OFFSET+LIMIT rows exist, when no later
  /// modifier (ORDER BY / DISTINCT / aggregation) could change the slice.
  /// ASK queries stop at the first solution under the same flag.
  bool limit_pushdown = true;
  /// Physical join operator policy. The hash join builds on the pattern
  /// side (grouped by join key, bucket-sorted to the probe index's
  /// iteration order) and probes with the binding rows, so its output is
  /// bit-identical — rows, order, and charged intermediate_bindings — to
  /// the nested index-loop it replaces.
  HashJoinMode hash_join = HashJoinMode::kCost;
  /// When a hash-join build side exceeds this many bytes of triples, the
  /// build is externally sorted into a temporary on-disk run (by the same
  /// (join key, probe order) comparator the in-memory build sorts by) and
  /// probed via memory-mapped binary search instead of an in-RAM hash
  /// table. Output stays bit-identical; only the memory footprint changes.
  /// 0 disables spilling. The HBOLD_HASH_SPILL_BUDGET environment
  /// variable (bytes) replaces the *default* only — an explicitly
  /// configured budget wins over the env, so differential tests pinning
  /// spill behavior stay pinned under the CI-wide override.
  size_t hash_join_spill_budget_bytes = size_t{256} << 20;
};

/// Physical operator for one join step.
enum class JoinOp : uint8_t {
  kNestedIndexLoop = 0,
  kHashJoin = 1,
};

/// The physical plan of one basic graph pattern: the join order (indices
/// into the group's written triple list) plus the operator chosen for each
/// step. `ops` parallels `order`; step 0 is always a nested index scan
/// (there is nothing to probe with yet).
struct GroupPlan {
  std::vector<size_t> order;
  std::vector<JoinOp> ops;
};

/// The physical plan of a whole query: one GroupPlan per group graph
/// pattern, in pre-order AST traversal (group, then each union's left and
/// right, then each optional — see ForEachGroup). Plans are purely
/// structural (indices + operator enums, no variable names), so a plan
/// computed for one query applies to any alpha-renamed equivalent.
struct QueryPlan {
  std::vector<GroupPlan> groups;
};

/// Constant slots of a pattern resolved to term ids. `missing` means some
/// constant is absent from the dictionary, so the pattern can never match.
struct PatternConsts {
  rdf::TermId s = rdf::kInvalidTermId;
  rdf::TermId p = rdf::kInvalidTermId;
  rdf::TermId o = rdf::kInvalidTermId;
  bool missing = false;
};

PatternConsts ResolveConsts(const TriplePatternNode& t,
                            const rdf::Dictionary& dict);

/// Estimated number of rows one evaluation of `t` produces per input row,
/// from index range counts plus per-predicate statistics: the range count
/// over the constant slots, narrowed by the average fan-out for every
/// already-bound variable slot (whose concrete value is unknown at planning
/// time).
double EstimateCardinality(const TriplePatternNode& t, const PatternConsts& c,
                           const std::set<std::string>& bound,
                           const rdf::TripleStore* store);

/// Join order for one BGP: connectivity first (joining through a shared
/// variable avoids cartesian products on triangle and chain patterns), then
/// ascending cardinality estimate, ties broken by written position. The
/// order depends only on the pattern list — not on row values — so the
/// pushdown fast paths call the same function to stay accounting-identical
/// with the materializing path.
std::vector<size_t> PlanOrder(const std::vector<TriplePatternNode>& triples,
                              const ExecOptions& options,
                              const rdf::TripleStore* store);

/// Plans one group: PlanOrder plus the per-step physical operator choice.
/// The cost model compares, per step, the nested index-loop cost
/// (est_rows * log n probes) against the hash build (build-side range size
/// + probe pass); a step is hash-eligible only when it joins through at
/// least one previously bound variable and repeats no variable within the
/// pattern.
GroupPlan PlanGroup(const GroupGraphPattern& group, const ExecOptions& options,
                    const rdf::TripleStore* store);

/// Plans every group of `q` in ForEachGroup order.
QueryPlan PlanQuery(const SelectQuery& q, const ExecOptions& options,
                    const rdf::TripleStore* store);

/// Visits every group graph pattern of the WHERE tree in the canonical
/// pre-order: the group itself, then each union's left and right, then
/// each optional, recursively. Planning, execution, and key normalization
/// all traverse in this order so cached plans line up with the AST.
template <typename Fn>
void ForEachGroup(const GroupGraphPattern& g, Fn&& fn) {
  fn(g);
  for (const auto& u : g.unions) {
    ForEachGroup(*u.left, fn);
    ForEachGroup(*u.right, fn);
  }
  for (const auto& o : g.optionals) ForEachGroup(*o, fn);
}

/// Canonical cache key of a query's WHERE tree: variables renamed to
/// ?0, ?1, ... in order of first occurrence, constants serialized in
/// N-Triples form, group structure (triples / filters / unions /
/// optionals) encoded positionally. Two alpha-equivalent WHERE trees —
/// same shape, same constants, any variable names — produce the same key,
/// so renamed queries share one plan-cache entry. SELECT-clause
/// differences (projection, aggregates, modifiers) are deliberately not
/// part of the key: the plan is a function of the WHERE tree alone.
std::string NormalizeWhereKey(const SelectQuery& q);

/// Canonical cache key of ONE group graph pattern, taken in isolation: the
/// group's own triple list with variables renamed to ?0, ?1, ... by first
/// occurrence *within the group* (a fresh alias class per group, unlike
/// NormalizeWhereKey's whole-tree numbering). A group's physical plan is a
/// function of its triple list alone — filters and nested groups never
/// influence PlanGroup — so the key covers exactly the plan's inputs, and
/// the same OPTIONAL/UNION body reached from two structurally different
/// queries (or at two different nesting depths) shares one cached
/// GroupPlan.
std::string NormalizeGroupKey(const GroupGraphPattern& g);

/// Cumulative counters of one PlanCache (monotonic except `entries`,
/// `group_entries` and `capacity`).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;  // generation flushes
  size_t entries = 0;          // normalized-tier entries currently resident
  size_t capacity = 0;         // current max entries per tier
  /// Group-tier counters. These are deliberately NOT folded into
  /// hits/misses: the per-query contract (hits + misses == queries
  /// executed) stays intact, and a whole-query miss may still harvest
  /// several group-tier hits for its OPTIONAL/UNION bodies.
  uint64_t group_hits = 0;
  uint64_t group_misses = 0;
  size_t group_entries = 0;  // group-tier entries currently resident
};

/// A fully prepared query: the parsed AST plus its physical plan. The
/// text tier of the PlanCache serves these so a repeated query skips
/// parsing AND planning (the classic prepared-statement fast path).
/// Immutable after insertion; execution reads the AST concurrently.
struct PreparedQuery {
  SelectQuery query;
  std::shared_ptr<const QueryPlan> plan;
};

/// Cross-query plan cache, three tiers, all scoped to one TripleStore
/// rebuild generation:
///   1. text tier: exact query text -> PreparedQuery (AST + plan) — the
///      steady-state repeated corpus skips parse and planning entirely;
///   2. normalized tier: canonical WHERE key -> QueryPlan — alpha-renamed
///      spellings and different SELECT clauses over the same WHERE tree
///      share one plan (this is the tier the keying contract names);
///   3. group tier: NormalizeGroupKey -> GroupPlan for non-root groups
///      (OPTIONAL/UNION bodies). Consulted only on a whole-query miss:
///      queries that disagree at the top level but share a sub-group —
///      the extraction corpus's OPTIONAL label/comment tail is the
///      motivating case — replan only the parts that actually differ.
/// A lookup presenting a newer store generation misses; the next insert
/// flushes the stale epoch (all tiers — stats changed, plans are stale).
///
/// Hit/miss accounting: each executed query counts exactly once — a text
/// hit or a normalized hit is one hit, anything else one miss — so
/// hits + misses always equals queries executed through the cache.
///
/// Thread safety: lookups take a shared lock (concurrent readers on the
/// endpoints' lock-free query path never serialize against each other);
/// inserts take the exclusive lock. Entries are shared_ptr<const>, so a
/// plan stays valid for a reader even if the epoch is flushed mid-query.
///
/// Sharing discipline: one cache must only be shared by executors with
/// identical ExecOptions against the same store (plans depend on both).
/// LocalEndpoint owns exactly one cache per endpoint, which satisfies this
/// by construction.
class PlanCache {
 public:
  static constexpr size_t kDefaultCapacity = 512;
  /// Ceiling for adaptive growth: even the largest observed corpus never
  /// grows a per-endpoint cache beyond this.
  static constexpr size_t kMaxAdaptiveCapacity = 8192;

  /// `adaptive = true` lets the cache grow with the observed corpus:
  /// instead of epoch-evicting when a tier fills, capacity doubles (up to
  /// kMaxAdaptiveCapacity) so a steady-state corpus slightly larger than
  /// the initial guess is not thrown away every pass. Off by default —
  /// fixed-capacity behavior is unchanged.
  explicit PlanCache(size_t max_entries = kDefaultCapacity,
                     bool adaptive = false)
      : max_entries_(max_entries == 0 ? 1 : max_entries),
        adaptive_(adaptive) {}

  /// Initial capacity adapted to an endpoint's corpus size: the extraction
  /// workload issues a bounded set of distinct query shapes roughly
  /// proportional to the endpoint's schema size, which tracks store size.
  /// Rounded to a power of two, clamped to [64, kMaxAdaptiveCapacity].
  static size_t CapacityForStoreSize(size_t num_triples) {
    size_t want = num_triples / 16;
    size_t cap = 64;
    while (cap < want && cap < kMaxAdaptiveCapacity) cap <<= 1;
    return cap;
  }

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Text tier: the prepared query for (text, generation), or null.
  /// Counts a hit when found; counts nothing on miss (the normalized-tier
  /// lookup that follows decides hit vs miss for the query).
  std::shared_ptr<const PreparedQuery> LookupPrepared(
      const std::string& text, uint64_t generation) const;

  /// Text tier insert (call after a successful parse + plan acquisition).
  void InsertPrepared(const std::string& text, uint64_t generation,
                      std::shared_ptr<const PreparedQuery> prepared);

  /// Normalized tier: the cached plan for (key, generation), or null. A
  /// generation mismatch counts as a miss (the entry was planned against
  /// different store content / statistics).
  std::shared_ptr<const QueryPlan> Lookup(const std::string& key,
                                          uint64_t generation) const;

  /// Normalized tier insert. If the cache holds an older generation's
  /// epoch it is flushed first (counted as one invalidation). A full tier
  /// drops the whole epoch before inserting (bulk eviction: cheap,
  /// deterministic, and the steady-state corpus re-warms it).
  void Insert(const std::string& key, uint64_t generation,
              std::shared_ptr<const QueryPlan> plan);

  /// Group tier: the cached sub-plan for (group key, generation), or null.
  /// A hit bumps the entry's reuse counter (see GroupReuseStats).
  std::shared_ptr<const GroupPlan> LookupGroup(const std::string& key,
                                               uint64_t generation) const;

  /// Group tier insert; same epoch-flush and eviction discipline as the
  /// normalized tier.
  void InsertGroup(const std::string& key, uint64_t generation,
                   std::shared_ptr<const GroupPlan> plan);

  /// Per-group reuse counts for the resident epoch: (group key, times the
  /// entry was served after insertion), sorted by key so the listing is
  /// deterministic. An entry that was inserted but never reused reports 0.
  std::vector<std::pair<std::string, uint64_t>> GroupReuseStats() const;

  PlanCacheStats stats() const;
  size_t size() const;
  /// Current capacity (grows only in adaptive mode).
  size_t capacity() const;

 private:
  /// Drops both tiers when `generation` differs from the resident epoch.
  /// Caller holds the exclusive lock.
  void FlushIfStaleLocked(uint64_t generation);
  /// Handles a full tier before inserting a new key: adaptive caches
  /// double capacity (up to the ceiling); fixed caches epoch-evict the
  /// tier. Caller holds the exclusive lock. Returns true when the tier
  /// was cleared.
  bool MakeRoomLocked(size_t tier_size);

  /// One group-tier entry: the immutable sub-plan plus its reuse counter
  /// (atomic so hits under the shared lock can bump it without
  /// serializing readers).
  struct GroupEntry {
    std::shared_ptr<const GroupPlan> plan;
    std::unique_ptr<std::atomic<uint64_t>> reuses;
  };

  size_t max_entries_;  // mutable: adaptive growth under the exclusive lock
  const bool adaptive_;
  mutable std::shared_mutex mu_;
  uint64_t generation_ = 0;  // epoch of resident entries (guarded by mu_)
  std::unordered_map<std::string, std::shared_ptr<const QueryPlan>> entries_;
  std::unordered_map<std::string, std::shared_ptr<const PreparedQuery>>
      prepared_;
  std::unordered_map<std::string, GroupEntry> group_entries_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> invalidations_{0};
  mutable std::atomic<uint64_t> group_hits_{0};
  mutable std::atomic<uint64_t> group_misses_{0};
};

}  // namespace hbold::sparql

#endif  // HBOLD_SPARQL_PLANNER_H_
