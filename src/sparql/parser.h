#ifndef HBOLD_SPARQL_PARSER_H_
#define HBOLD_SPARQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sparql/ast.h"

namespace hbold::sparql {

/// Parses a SPARQL SELECT query (the subset described in ast.h / lexer.h:
/// PREFIX, SELECT [DISTINCT] vars|*|(COUNT(...) AS ?v), WHERE { BGP, FILTER,
/// OPTIONAL, UNION }, GROUP BY, ORDER BY, LIMIT, OFFSET).
Result<SelectQuery> ParseQuery(std::string_view text);

}  // namespace hbold::sparql

#endif  // HBOLD_SPARQL_PARSER_H_
