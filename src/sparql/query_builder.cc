#include "sparql/query_builder.h"

namespace hbold::sparql {

std::string EscapeLiteral(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string EscapeRegexText(std::string_view text) {
  constexpr std::string_view kMeta = "\\^$.|?*+()[]{}";
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (kMeta.find(c) != std::string_view::npos) out += '\\';
    out += c;
  }
  return out;
}

std::string EscapeIri(std::string_view iri) {
  constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(iri.size());
  for (unsigned char c : iri) {
    bool forbidden = c <= 0x20 || c == 0x7f || c == '<' || c == '>' ||
                     c == '"' || c == '\\' || c == '^' || c == '`' ||
                     c == '{' || c == '}' || c == '|';
    if (forbidden) {
      out += '%';
      out += kHex[c >> 4];
      out += kHex[c & 0xF];
    } else {
      out += static_cast<char>(c);
    }
  }
  return out;
}

QueryBuilder& QueryBuilder::Prefix(const std::string& label,
                                   const std::string& iri) {
  prefixes_.emplace_back(label, iri);
  return *this;
}

QueryBuilder& QueryBuilder::Select(const std::string& var) {
  select_.push_back("?" + var);
  return *this;
}

QueryBuilder& QueryBuilder::SelectCount(const std::optional<std::string>& var,
                                        const std::string& as, bool distinct) {
  std::string item = "(COUNT(";
  if (distinct) item += "DISTINCT ";
  item += var.has_value() ? ("?" + *var) : "*";
  item += ") AS ?" + as + ")";
  select_.push_back(std::move(item));
  return *this;
}

QueryBuilder& QueryBuilder::Distinct(bool distinct) {
  distinct_ = distinct;
  return *this;
}

QueryBuilder& QueryBuilder::WhereClass(const std::string& var,
                                       const std::string& class_iri) {
  patterns_.push_back({"?" + var, "a", "<" + EscapeIri(class_iri) + ">",
                       false});
  return *this;
}

QueryBuilder& QueryBuilder::WhereLink(const std::string& subject_var,
                                      const std::string& predicate_iri,
                                      const std::string& object_var) {
  patterns_.push_back({"?" + subject_var, "<" + EscapeIri(predicate_iri) + ">",
                       "?" + object_var, false});
  return *this;
}

QueryBuilder& QueryBuilder::WhereRaw(const std::string& s, const std::string& p,
                                     const std::string& o) {
  patterns_.push_back({s, p, o, false});
  return *this;
}

QueryBuilder& QueryBuilder::MakeLastOptional() {
  if (!patterns_.empty()) patterns_.back().optional = true;
  return *this;
}

QueryBuilder& QueryBuilder::FilterRegex(const std::string& var,
                                        const std::string& pattern,
                                        bool case_insensitive) {
  std::string f = "regex(STR(?" + var + "), \"" + EscapeLiteral(pattern) + "\"";
  if (case_insensitive) f += ", \"i\"";
  f += ")";
  filters_.push_back(std::move(f));
  return *this;
}

QueryBuilder& QueryBuilder::FilterCompare(const std::string& var,
                                          const std::string& op,
                                          const std::string& value) {
  filters_.push_back("(?" + var + " " + op + " " + value + ")");
  return *this;
}

QueryBuilder& QueryBuilder::GroupBy(const std::string& var) {
  group_by_.push_back("?" + var);
  return *this;
}

QueryBuilder& QueryBuilder::OrderBy(const std::string& var, bool ascending) {
  order_by_.push_back((ascending ? "ASC(?" : "DESC(?") + var + ")");
  return *this;
}

QueryBuilder& QueryBuilder::Limit(size_t n) {
  limit_ = n;
  return *this;
}

QueryBuilder& QueryBuilder::Offset(size_t n) {
  offset_ = n;
  return *this;
}

std::string QueryBuilder::Build() const {
  std::string q;
  for (const auto& [label, iri] : prefixes_) {
    q += "PREFIX " + label + ": <" + iri + ">\n";
  }
  q += "SELECT ";
  if (distinct_) q += "DISTINCT ";
  if (select_.empty()) {
    q += "*";
  } else {
    for (size_t i = 0; i < select_.size(); ++i) {
      if (i > 0) q += ' ';
      q += select_[i];
    }
  }
  q += "\nWHERE {\n";
  for (const Pattern& p : patterns_) {
    if (p.optional) {
      q += "  OPTIONAL { " + p.s + " " + p.p + " " + p.o + " . }\n";
    } else {
      q += "  " + p.s + " " + p.p + " " + p.o + " .\n";
    }
  }
  for (const std::string& f : filters_) {
    q += "  FILTER " + f + " .\n";
  }
  q += "}";
  if (!group_by_.empty()) {
    q += "\nGROUP BY";
    for (const std::string& g : group_by_) q += " " + g;
  }
  if (!order_by_.empty()) {
    q += "\nORDER BY";
    for (const std::string& o : order_by_) q += " " + o;
  }
  if (limit_.has_value()) q += "\nLIMIT " + std::to_string(*limit_);
  if (offset_.has_value()) q += "\nOFFSET " + std::to_string(*offset_);
  return q;
}

}  // namespace hbold::sparql
