#include "sparql/results.h"

#include <cstdlib>

namespace hbold::sparql {

int ResultTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::optional<rdf::Term> ResultTable::Cell(size_t row,
                                           const std::string& column) const {
  int col = ColumnIndex(column);
  if (col < 0 || row >= rows_.size()) return std::nullopt;
  return rows_[row][static_cast<size_t>(col)];
}

std::optional<int64_t> ResultTable::ScalarInt(const std::string& column) const {
  if (rows_.empty()) return std::nullopt;
  std::optional<rdf::Term> cell = Cell(0, column);
  if (!cell.has_value() || !cell->is_literal()) return std::nullopt;
  const std::string& lex = cell->lexical();
  char* end = nullptr;
  long long v = std::strtoll(lex.c_str(), &end, 10);
  if (end != lex.c_str() + lex.size() || lex.empty()) return std::nullopt;
  return v;
}

std::optional<bool> ResultTable::AskResult() const {
  if (columns_.size() != 1 || columns_[0] != "ask" || rows_.size() != 1) {
    return std::nullopt;
  }
  const auto& cell = rows_[0][0];
  if (!cell.has_value() || !cell->is_literal()) return std::nullopt;
  if (cell->lexical() == "true") return true;
  if (cell->lexical() == "false") return false;
  return std::nullopt;
}

Json ResultTable::ToJson() const {
  Json head = Json::MakeObject();
  Json vars = Json::MakeArray();
  for (const std::string& c : columns_) vars.Append(Json(c));
  head.Set("vars", std::move(vars));

  Json bindings = Json::MakeArray();
  for (const Row& row : rows_) {
    Json b = Json::MakeObject();
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (!row[i].has_value()) continue;
      const rdf::Term& t = *row[i];
      Json cell = Json::MakeObject();
      switch (t.kind()) {
        case rdf::Term::Kind::kIri:
          cell.Set("type", "uri");
          break;
        case rdf::Term::Kind::kBlank:
          cell.Set("type", "bnode");
          break;
        case rdf::Term::Kind::kLiteral:
          cell.Set("type", "literal");
          if (!t.datatype().empty()) cell.Set("datatype", t.datatype());
          if (!t.lang().empty()) cell.Set("xml:lang", t.lang());
          break;
      }
      cell.Set("value", t.lexical());
      b.Set(columns_[i], std::move(cell));
    }
    bindings.Append(std::move(b));
  }
  Json results = Json::MakeObject();
  results.Set("bindings", std::move(bindings));

  Json out = Json::MakeObject();
  out.Set("head", std::move(head));
  out.Set("results", std::move(results));
  return out;
}

std::string ResultTable::ToTsv() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += '\t';
    out += '?' + columns_[i];
  }
  out += '\n';
  for (const Row& row : rows_) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) out += '\t';
      if (row[i].has_value()) out += row[i]->ToNTriples();
    }
    out += '\n';
  }
  return out;
}

namespace {
// RFC 4180: quote when the value contains comma, quote or newline;
// embedded quotes double.
std::string CsvEscape(const std::string& s) {
  bool needs_quotes = s.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string ResultTable::ToCsv() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ',';
    out += CsvEscape(columns_[i]);
  }
  out += "\r\n";
  for (const Row& row : rows_) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) out += ',';
      if (row[i].has_value()) out += CsvEscape(row[i]->lexical());
    }
    out += "\r\n";
  }
  return out;
}

void ResultTable::Truncate(size_t n) {
  if (rows_.size() > n) rows_.resize(n);
}

}  // namespace hbold::sparql
