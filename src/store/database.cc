#include "store/database.h"

#include <filesystem>
#include <mutex>
#include <set>
#include <utility>

#include "common/io_util.h"
#include "common/logging.h"
#include "store/snapshot.h"

namespace hbold::store {

namespace fs = std::filesystem;

Collection* Database::GetCollection(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = collections_.find(name);
    if (it != collections_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = collections_.find(name);  // re-check: lost the creation race?
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
  }
  return it->second.get();
}

const Collection* Database::FindCollection(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::CollectionNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& [name, c] : collections_) out.push_back(name);
  return out;
}

bool Database::DropCollection(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return collections_.erase(name) > 0;
}

Status Database::SaveToDirectory(const std::string& dir,
                                 SnapshotFormat format) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [name, collection] : collections_) {
    std::string filename;
    std::string content;
    if (format == SnapshotFormat::kBinary) {
      filename = EncodeSnapshotFilename(name) + ".hbsnap";
      content = EncodeSnapshot(name, collection->DumpJsonl());
    } else {
      filename = name + ".jsonl";
      content = collection->DumpJsonl();
    }
    // Durable atomic publish: content reaches stable storage before the
    // rename, and the rename itself is fsynced via the parent directory —
    // a crash at any point leaves the previous complete file or the new
    // one, never a truncated file under the final name.
    HBOLD_RETURN_NOT_OK(
        io::WriteFileDurable((fs::path(dir) / filename).string(), content));
  }
  return Status::OK();
}

Status Database::LoadFromDirectory(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("directory '" + dir + "' does not exist");
  }
  std::vector<fs::path> snapshots;
  std::vector<fs::path> legacy;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const fs::path& path = entry.path();
    if (path.extension() == ".tmp") {
      // Leftover from a save interrupted between write and rename. The
      // content under the final name is the last complete version; the
      // .tmp must never be loaded (it may be truncated) — drop it.
      HBOLD_LOG(kWarn) << "removing stale temp file from interrupted save: "
                       << path.string();
      std::error_code rm_ec;
      fs::remove(path, rm_ec);
      continue;
    }
    if (path.extension() == ".hbsnap") {
      snapshots.push_back(path);
    } else if (path.extension() == ".jsonl") {
      legacy.push_back(path);
    }
  }
  if (ec) return Status::IOError("directory scan failed: " + ec.message());

  std::set<std::string> loaded_names;
  for (const fs::path& path : snapshots) {
    auto data = io::ReadFile(path.string());
    HBOLD_RETURN_NOT_OK(data.status());
    std::string name;
    std::string payload;
    Status st = DecodeSnapshot(*data, &name, &payload);
    if (!st.ok()) {
      return Status(st.code(),
                    "snapshot '" + path.string() + "': " + st.message());
    }
    HBOLD_RETURN_NOT_OK(GetCollection(name)->LoadJsonl(payload));
    loaded_names.insert(std::move(name));
  }
  // Legacy JSONL files migrate transparently: loaded when no snapshot
  // already covers the same collection name (the next binary save then
  // supersedes them).
  for (const fs::path& path : legacy) {
    std::string name = path.stem().string();
    if (loaded_names.count(name) > 0) continue;
    auto data = io::ReadFile(path.string());
    HBOLD_RETURN_NOT_OK(data.status());
    HBOLD_RETURN_NOT_OK(GetCollection(name)->LoadJsonl(*data));
  }
  return Status::OK();
}

std::string Database::CanonicalDump() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string out;
  for (const auto& [name, collection] : collections_) {
    out += "== " + name + "\n";
    out += collection->DumpJsonl();
  }
  return out;
}

}  // namespace hbold::store
