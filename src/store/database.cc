#include "store/database.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace hbold::store {

namespace fs = std::filesystem;

Collection* Database::GetCollection(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
  }
  return it->second.get();
}

const Collection* Database::FindCollection(const std::string& name) const {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::CollectionNames() const {
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& [name, c] : collections_) out.push_back(name);
  return out;
}

bool Database::DropCollection(const std::string& name) {
  return collections_.erase(name) > 0;
}

Status Database::SaveToDirectory(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  for (const auto& [name, collection] : collections_) {
    fs::path path = fs::path(dir) / (name + ".jsonl");
    std::ofstream out(path);
    if (!out) {
      return Status::IOError("cannot open '" + path.string() +
                             "' for writing");
    }
    out << collection->DumpJsonl();
    if (!out) return Status::IOError("write failed for '" + path.string() + "'");
  }
  return Status::OK();
}

Status Database::LoadFromDirectory(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("directory '" + dir + "' does not exist");
  }
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() != ".jsonl") continue;
    std::ifstream in(entry.path());
    if (!in) {
      return Status::IOError("cannot open '" + entry.path().string() + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Collection* c = GetCollection(entry.path().stem().string());
    HBOLD_RETURN_NOT_OK(c->LoadJsonl(buffer.str()));
  }
  if (ec) return Status::IOError("directory scan failed: " + ec.message());
  return Status::OK();
}

}  // namespace hbold::store
