#include "store/database.h"

#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

namespace hbold::store {

namespace fs = std::filesystem;

Collection* Database::GetCollection(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = collections_.find(name);
    if (it != collections_.end()) return it->second.get();
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = collections_.find(name);  // re-check: lost the creation race?
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
  }
  return it->second.get();
}

const Collection* Database::FindCollection(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::CollectionNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& [name, c] : collections_) out.push_back(name);
  return out;
}

bool Database::DropCollection(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return collections_.erase(name) > 0;
}

Status Database::SaveToDirectory(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  std::shared_lock<std::shared_mutex> lock(mu_);
  for (const auto& [name, collection] : collections_) {
    fs::path path = fs::path(dir) / (name + ".jsonl");
    fs::path tmp = fs::path(dir) / (name + ".jsonl.tmp");
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) {
        return Status::IOError("cannot open '" + tmp.string() +
                               "' for writing");
      }
      out << collection->DumpJsonl();
      out.flush();
      if (!out) {
        out.close();
        fs::remove(tmp, ec);
        return Status::IOError("write failed for '" + tmp.string() + "'");
      }
    }
    // Atomic publish: readers (and a crash between here and the next
    // collection) see either the old complete file or the new one.
    fs::rename(tmp, path, ec);
    if (ec) {
      std::string rename_error = ec.message();
      fs::remove(tmp, ec);  // best-effort cleanup; error irrelevant
      return Status::IOError("cannot rename '" + tmp.string() + "' to '" +
                             path.string() + "': " + rename_error);
    }
  }
  return Status::OK();
}

Status Database::LoadFromDirectory(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound("directory '" + dir + "' does not exist");
  }
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() != ".jsonl") continue;
    std::ifstream in(entry.path());
    if (!in) {
      return Status::IOError("cannot open '" + entry.path().string() + "'");
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    Collection* c = GetCollection(entry.path().stem().string());
    HBOLD_RETURN_NOT_OK(c->LoadJsonl(buffer.str()));
  }
  if (ec) return Status::IOError("directory scan failed: " + ec.message());
  return Status::OK();
}

}  // namespace hbold::store
