#ifndef HBOLD_STORE_SNAPSHOT_H_
#define HBOLD_STORE_SNAPSHOT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace hbold::store {

/// Versioned binary snapshot codec for Database persistence.
///
/// A snapshot file (`<encoded-name>.hbsnap`) carries one collection:
///
///   offset  size  field
///   0       8     magic "HBSNAP1\n"
///   8       4     version (u32, currently 1)
///   12      4     name length in bytes (u32)
///   16      8     payload length in bytes (u64)
///   24      8     FNV-1a 64 of name + payload (u64)
///   32      -     collection name (exact bytes, not the encoded filename)
///   32+n    -     payload: the collection's JSONL dump
///
/// The collection name travels *inside* the snapshot, so Save/Load
/// round-trips it exactly — names ending in ".jsonl", names differing only
/// by case, names with characters that are unrepresentable (or mutually
/// colliding) in filenames all survive. The filename is only a
/// filesystem-safe handle, produced by EncodeSnapshotFilename.

/// Serializes one collection snapshot.
std::string EncodeSnapshot(const std::string& name,
                           const std::string& payload);

/// Parses a snapshot; fails with a descriptive Status on a truncated file,
/// bad magic, unsupported version, or checksum mismatch. Never crashes on
/// arbitrary bytes.
Status DecodeSnapshot(std::string_view data, std::string* name,
                      std::string* payload);

/// Maps a collection name to a filesystem-safe stem: bytes in [a-z0-9_-]
/// pass through, everything else (including uppercase, '.', '/', '%')
/// becomes "%XX" with uppercase hex. The image alphabet contains no
/// uppercase letters outside the %XX escapes, so two distinct names never
/// produce encodings that collide on a case-insensitive filesystem.
std::string EncodeSnapshotFilename(const std::string& name);

/// Inverse of EncodeSnapshotFilename. Bytes other than '%' pass through,
/// so plain legacy stems decode to themselves. Fails on a malformed escape.
Result<std::string> DecodeSnapshotFilename(const std::string& encoded);

}  // namespace hbold::store

#endif  // HBOLD_STORE_SNAPSHOT_H_
