#include "store/snapshot.h"

#include <cstdint>
#include <cstring>

#include "common/hash.h"

namespace hbold::store {

namespace {

constexpr char kMagic[8] = {'H', 'B', 'S', 'N', 'A', 'P', '1', '\n'};
constexpr uint32_t kVersion = 1;
constexpr size_t kHeaderBytes = 32;

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

uint32_t ReadU32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

uint64_t ContentChecksum(std::string_view name, std::string_view payload) {
  std::string joined;
  joined.reserve(name.size() + payload.size());
  joined.append(name);
  joined.append(payload);
  return Fnv64(joined);
}

char HexDigit(unsigned v) { return v < 10 ? char('0' + v) : char('A' + v - 10); }

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

}  // namespace

std::string EncodeSnapshot(const std::string& name,
                           const std::string& payload) {
  std::string out;
  out.reserve(kHeaderBytes + name.size() + payload.size());
  out.append(kMagic, sizeof(kMagic));
  AppendU32(&out, kVersion);
  AppendU32(&out, static_cast<uint32_t>(name.size()));
  AppendU64(&out, static_cast<uint64_t>(payload.size()));
  AppendU64(&out, ContentChecksum(name, payload));
  out.append(name);
  out.append(payload);
  return out;
}

Status DecodeSnapshot(std::string_view data, std::string* name,
                      std::string* payload) {
  if (data.size() < kHeaderBytes) {
    return Status::ParseError("snapshot truncated: " +
                              std::to_string(data.size()) +
                              " bytes, header needs 32");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("snapshot has bad magic");
  }
  const uint32_t version = ReadU32(data.data() + 8);
  if (version != kVersion) {
    return Status::ParseError("snapshot version " + std::to_string(version) +
                              " unsupported (expected 1)");
  }
  const uint64_t name_len = ReadU32(data.data() + 12);
  const uint64_t payload_len = ReadU64(data.data() + 16);
  const uint64_t checksum = ReadU64(data.data() + 24);
  if (data.size() != kHeaderBytes + name_len + payload_len) {
    return Status::ParseError(
        "snapshot size mismatch: file has " + std::to_string(data.size()) +
        " bytes, header claims " +
        std::to_string(kHeaderBytes + name_len + payload_len));
  }
  std::string_view got_name = data.substr(kHeaderBytes, name_len);
  std::string_view got_payload = data.substr(kHeaderBytes + name_len);
  if (ContentChecksum(got_name, got_payload) != checksum) {
    return Status::ParseError("snapshot checksum mismatch (corrupt content)");
  }
  name->assign(got_name);
  payload->assign(got_payload);
  return Status::OK();
}

std::string EncodeSnapshotFilename(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (unsigned char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      c == '_' || c == '-';
    if (safe) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(HexDigit(c >> 4));
      out.push_back(HexDigit(c & 0xF));
    }
  }
  return out;
}

Result<std::string> DecodeSnapshotFilename(const std::string& encoded) {
  std::string out;
  out.reserve(encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    if (encoded[i] != '%') {
      out.push_back(encoded[i]);
      continue;
    }
    if (i + 2 >= encoded.size()) {
      return Status::ParseError("truncated %-escape in '" + encoded + "'");
    }
    const int hi = HexValue(encoded[i + 1]);
    const int lo = HexValue(encoded[i + 2]);
    if (hi < 0 || lo < 0) {
      return Status::ParseError("bad %-escape in '" + encoded + "'");
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

}  // namespace hbold::store
