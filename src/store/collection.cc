#include "store/collection.h"

#include <mutex>

#include "common/string_util.h"

namespace hbold::store {

namespace {

/// Three-way comparison over JSON scalars: numbers numerically, strings
/// lexically; mixed/other types compare unequal (returns nullopt).
std::optional<int> CompareScalars(const Json& a, const Json& b) {
  if (a.is_number() && b.is_number()) {
    if (a.as_number() < b.as_number()) return -1;
    if (a.as_number() > b.as_number()) return 1;
    return 0;
  }
  if (a.is_string() && b.is_string()) {
    if (a.as_string() < b.as_string()) return -1;
    if (a.as_string() > b.as_string()) return 1;
    return 0;
  }
  if (a.is_bool() && b.is_bool()) {
    return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
  }
  return std::nullopt;
}

bool MatchesOperator(const Json* field, const Json& op_obj) {
  for (const auto& [op, operand] : op_obj.as_object()) {
    if (op == "$exists") {
      bool want = operand.is_bool() ? operand.as_bool() : true;
      if ((field != nullptr) != want) return false;
      continue;
    }
    if (field == nullptr) return false;
    if (op == "$in") {
      if (!operand.is_array()) return false;
      bool found = false;
      for (const Json& cand : operand.as_array()) {
        if (cand == *field) {
          found = true;
          break;
        }
      }
      if (!found) return false;
      continue;
    }
    std::optional<int> cmp = CompareScalars(*field, operand);
    if (op == "$ne") {
      if (*field == operand) return false;
      continue;
    }
    if (!cmp.has_value()) return false;
    if (op == "$gt" && !(*cmp > 0)) return false;
    if (op == "$gte" && !(*cmp >= 0)) return false;
    if (op == "$lt" && !(*cmp < 0)) return false;
    if (op == "$lte" && !(*cmp <= 0)) return false;
    if (op != "$gt" && op != "$gte" && op != "$lt" && op != "$lte" &&
        op != "$ne") {
      return false;  // unknown operator matches nothing
    }
  }
  return true;
}

}  // namespace

const Json* Collection::Resolve(const Document& doc, const std::string& path) {
  const Json* cur = &doc;
  for (const std::string& part : Split(path, '.')) {
    if (!cur->is_object()) return nullptr;
    cur = cur->Find(part);
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

bool Collection::Matches(const Document& doc, const Document& filter) {
  if (!filter.is_object()) return false;
  for (const auto& [key, constraint] : filter.as_object()) {
    const Json* field = Resolve(doc, key);
    if (constraint.is_object() && !constraint.as_object().empty() &&
        constraint.as_object().begin()->first.rfind('$', 0) == 0) {
      if (!MatchesOperator(field, constraint)) return false;
    } else {
      if (field == nullptr || !(*field == constraint)) return false;
    }
  }
  return true;
}

Status Collection::CheckUnique(const Document& doc,
                               std::optional<DocId> skip_id) const {
  for (const std::string& path : unique_fields_) {
    const Json* value = Resolve(doc, path);
    if (value == nullptr) continue;
    for (const auto& [id, existing] : docs_) {
      if (skip_id.has_value() && id == *skip_id) continue;
      const Json* other = Resolve(existing, path);
      if (other != nullptr && *other == *value) {
        return Status::AlreadyExists("unique index violation on '" + path +
                                     "' in collection '" + name_ + "'");
      }
    }
  }
  return Status::OK();
}

void Collection::IndexDoc(DocId id, const Document& doc) {
  for (auto& [path, buckets] : field_indexes_) {
    const Json* value = Resolve(doc, path);
    if (value != nullptr) buckets[value->Dump()].insert(id);
  }
}

void Collection::DeindexDoc(DocId id, const Document& doc) {
  for (auto& [path, buckets] : field_indexes_) {
    const Json* value = Resolve(doc, path);
    if (value == nullptr) continue;
    auto it = buckets.find(value->Dump());
    if (it == buckets.end()) continue;
    it->second.erase(id);
    if (it->second.empty()) buckets.erase(it);
  }
}

const std::set<DocId>* Collection::IndexCandidates(
    const Document& filter) const {
  if (!filter.is_object()) return nullptr;
  for (const auto& [key, constraint] : filter.as_object()) {
    auto index = field_indexes_.find(key);
    if (index == field_indexes_.end()) continue;
    // Only plain equality constraints are index-answerable.
    if (constraint.is_object() && !constraint.as_object().empty() &&
        constraint.as_object().begin()->first.rfind('$', 0) == 0) {
      continue;
    }
    static const std::set<DocId> kEmpty;
    auto bucket = index->second.find(constraint.Dump());
    return bucket == index->second.end() ? &kEmpty : &bucket->second;
  }
  return nullptr;
}

Result<DocId> Collection::Insert(Document doc) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!doc.is_object()) {
    return Status::InvalidArgument("documents must be JSON objects");
  }
  HBOLD_RETURN_NOT_OK(CheckUnique(doc, std::nullopt));
  DocId id = next_id_++;
  doc.Set(kIdField, Json(static_cast<int64_t>(id)));
  IndexDoc(id, doc);
  docs_.emplace(id, std::move(doc));
  return id;
}

std::vector<Document> Collection::Find(const Document& filter) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<Document> out;
  const std::set<DocId>* candidates = IndexCandidates(filter);
  if (candidates != nullptr) {
    for (DocId id : *candidates) {
      auto it = docs_.find(id);
      if (it != docs_.end() && Matches(it->second, filter)) {
        out.push_back(it->second);
      }
    }
    return out;
  }
  for (const auto& [id, doc] : docs_) {
    if (Matches(doc, filter)) out.push_back(doc);
  }
  return out;
}

std::optional<Document> Collection::FindOne(const Document& filter) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const std::set<DocId>* candidates = IndexCandidates(filter);
  if (candidates != nullptr) {
    for (DocId id : *candidates) {
      auto it = docs_.find(id);
      if (it != docs_.end() && Matches(it->second, filter)) return it->second;
    }
    return std::nullopt;
  }
  for (const auto& [id, doc] : docs_) {
    if (Matches(doc, filter)) return doc;
  }
  return std::nullopt;
}

std::optional<Document> Collection::FindById(DocId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = docs_.find(id);
  if (it == docs_.end()) return std::nullopt;
  return it->second;
}

std::vector<Document> Collection::Snapshot() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<Document> out;
  out.reserve(docs_.size());
  for (const auto& [id, doc] : docs_) out.push_back(doc);
  return out;
}

size_t Collection::CountMatching(const Document& filter) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [id, doc] : docs_) {
    if (Matches(doc, filter)) ++n;
  }
  return n;
}

Result<size_t> Collection::Update(const Document& filter,
                                  const Document& update) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!update.is_object()) {
    return Status::InvalidArgument("update must be a JSON object");
  }
  // Two passes: validate uniqueness first so a failed update is atomic.
  std::vector<DocId> targets;
  for (const auto& [id, doc] : docs_) {
    if (Matches(doc, filter)) targets.push_back(id);
  }
  for (DocId id : targets) {
    Document merged = docs_[id];
    for (const auto& [k, v] : update.as_object()) {
      if (k == kIdField) continue;
      merged.Set(k, v);
    }
    HBOLD_RETURN_NOT_OK(CheckUnique(merged, id));
  }
  for (DocId id : targets) {
    Document& doc = docs_[id];
    DeindexDoc(id, doc);
    for (const auto& [k, v] : update.as_object()) {
      if (k == kIdField) continue;
      doc.Set(k, v);
    }
    IndexDoc(id, doc);
  }
  return targets.size();
}

Result<DocId> Collection::Replace(const Document& filter, Document doc) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!doc.is_object()) {
    return Status::InvalidArgument("documents must be JSON objects");
  }
  // Pull the matches out first so the uniqueness check runs against the
  // survivors only; restore them if the new document is rejected.
  std::vector<std::pair<DocId, Document>> removed;
  for (auto it = docs_.begin(); it != docs_.end();) {
    if (Matches(it->second, filter)) {
      DeindexDoc(it->first, it->second);
      removed.emplace_back(it->first, std::move(it->second));
      it = docs_.erase(it);
    } else {
      ++it;
    }
  }
  Status unique = CheckUnique(doc, std::nullopt);
  if (!unique.ok()) {
    for (auto& [id, old_doc] : removed) {
      IndexDoc(id, old_doc);
      docs_.emplace(id, std::move(old_doc));
    }
    return unique;
  }
  DocId id = next_id_++;
  doc.Set(kIdField, Json(static_cast<int64_t>(id)));
  IndexDoc(id, doc);
  docs_.emplace(id, std::move(doc));
  return id;
}

size_t Collection::Remove(const Document& filter) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  size_t removed = 0;
  for (auto it = docs_.begin(); it != docs_.end();) {
    if (Matches(it->second, filter)) {
      DeindexDoc(it->first, it->second);
      it = docs_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

Status Collection::CreateUniqueIndex(const std::string& field_path) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Validate no existing duplicates.
  std::vector<const Json*> seen;
  for (const auto& [id, doc] : docs_) {
    const Json* value = Resolve(doc, field_path);
    if (value == nullptr) continue;
    for (const Json* other : seen) {
      if (*other == *value) {
        return Status::InvalidArgument(
            "cannot create unique index on '" + field_path +
            "': duplicate values exist");
      }
    }
    seen.push_back(value);
  }
  unique_fields_.push_back(field_path);
  return Status::OK();
}

void Collection::CreateIndex(const std::string& field_path) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (field_indexes_.count(field_path) > 0) return;
  auto& buckets = field_indexes_[field_path];
  for (const auto& [id, doc] : docs_) {
    const Json* value = Resolve(doc, field_path);
    if (value != nullptr) buckets[value->Dump()].insert(id);
  }
}

bool Collection::HasIndex(const std::string& field_path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return field_indexes_.count(field_path) > 0;
}

std::string Collection::DumpJsonl() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string out;
  for (const auto& [id, doc] : docs_) {
    out += doc.Dump();
    out += '\n';
  }
  return out;
}

Status Collection::LoadJsonl(const std::string& text) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  std::map<DocId, Document> loaded;
  DocId max_id = 0;
  for (const std::string& line : Split(text, '\n')) {
    if (Trim(line).empty()) continue;
    auto parsed = Json::Parse(line);
    if (!parsed.ok()) return parsed.status();
    DocId id = parsed->GetInt(kIdField, 0);
    if (id <= 0) {
      return Status::ParseError("document missing _id in collection '" +
                                name_ + "'");
    }
    max_id = std::max(max_id, id);
    loaded.emplace(id, std::move(*parsed));
  }
  docs_ = std::move(loaded);
  next_id_ = max_id + 1;
  // Rebuild hash indexes over the replaced content.
  for (auto& [path, buckets] : field_indexes_) buckets.clear();
  for (const auto& [id, doc] : docs_) IndexDoc(id, doc);
  return Status::OK();
}

}  // namespace hbold::store
