#ifndef HBOLD_STORE_COLLECTION_H_
#define HBOLD_STORE_COLLECTION_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "store/document.h"

namespace hbold::store {

/// A collection of JSON documents with MongoDB-flavoured filtering.
///
/// Filters are JSON objects. Each key constrains a field:
///   {"name": "x"}                 — equality
///   {"n": {"$gt": 3}}             — comparison ($gt $gte $lt $lte $ne)
///   {"k": {"$in": [1, 2]}}        — membership
///   {"k": {"$exists": true}}      — presence
/// Multiple keys are AND-ed. Dotted paths ("a.b") descend into nested
/// objects.
///
/// Thread safety: every public method locks a per-collection
/// `std::shared_mutex` — reads (Find/FindOne/Count/Snapshot/Dump) take it
/// shared, mutations take it exclusive. Concurrent pipelines writing to
/// the same collection serialize per document operation; pipelines on
/// different collections never contend. For read-heavy paths take a
/// Snapshot() once and iterate it lock-free.
class Collection {
 public:
  explicit Collection(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  size_t size() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return docs_.size();
  }

  /// Inserts a document (object), assigning `_id`. Returns the id.
  /// Fails with AlreadyExists when a unique index would be violated.
  Result<DocId> Insert(Document doc);

  /// Returns all documents matching `filter`, in insertion (_id) order.
  std::vector<Document> Find(const Document& filter) const;

  /// Returns the first match, if any.
  std::optional<Document> FindOne(const Document& filter) const;

  /// Finds a document by id.
  std::optional<Document> FindById(DocId id) const;

  size_t CountMatching(const Document& filter) const;

  /// Copies every document (in `_id` order) under one shared lock.
  /// Iterating the returned vector is lock-free: it is an immutable
  /// point-in-time view, unaffected by later writers.
  std::vector<Document> Snapshot() const;

  /// Replaces the fields of every matching document with those in `update`
  /// (shallow merge; `_id` is preserved). Returns the number updated.
  /// Fails when the merge would violate a unique index.
  Result<size_t> Update(const Document& filter, const Document& update);

  /// Removes matching documents. Returns the number removed.
  size_t Remove(const Document& filter);

  /// Atomically removes every document matching `filter` and inserts
  /// `doc`, under one exclusive lock — concurrent readers see either the
  /// old document(s) or the new one, never the gap a separate
  /// Remove+Insert pair exposes. Returns the new document's id; fails
  /// (with nothing removed) when a unique index would be violated by
  /// `doc` against the surviving documents.
  Result<DocId> Replace(const Document& filter, Document doc);

  /// Declares a unique index on a (dotted) field path. Existing duplicates
  /// cause InvalidArgument.
  Status CreateUniqueIndex(const std::string& field_path);

  /// Declares a (non-unique) hash index on a (dotted) field path. Equality
  /// filters on that field are then answered by index lookup instead of a
  /// collection scan — the "easily memorized and retrieved on the MongoDB
  /// improving data recovery performance" property of §2.1.
  void CreateIndex(const std::string& field_path);

  /// True if `field_path` has a hash index (for tests).
  bool HasIndex(const std::string& field_path) const;

  /// True if `doc` satisfies `filter` (exposed for tests).
  static bool Matches(const Document& doc, const Document& filter);

  /// Resolves a dotted path inside a document; nullptr when missing.
  static const Json* Resolve(const Document& doc, const std::string& path);

  /// Serializes all documents as JSON-lines.
  std::string DumpJsonl() const;
  /// Loads documents from JSON-lines produced by DumpJsonl (replaces
  /// content; re-validates unique indexes).
  Status LoadJsonl(const std::string& text);

 private:
  // The private helpers below assume mu_ is already held by the public
  // caller; they never lock themselves.
  Status CheckUnique(const Document& doc, std::optional<DocId> skip_id) const;
  void IndexDoc(DocId id, const Document& doc);
  void DeindexDoc(DocId id, const Document& doc);
  /// Resolves an equality constraint in `filter` that a hash index covers;
  /// returns the candidate id set, or nullptr when no index applies.
  const std::set<DocId>* IndexCandidates(const Document& filter) const;

  mutable std::shared_mutex mu_;
  std::string name_;
  DocId next_id_ = 1;
  std::map<DocId, Document> docs_;
  std::vector<std::string> unique_fields_;
  // field path -> serialized value -> ids holding that value.
  std::map<std::string, std::map<std::string, std::set<DocId>>>
      field_indexes_;
};

}  // namespace hbold::store

#endif  // HBOLD_STORE_COLLECTION_H_
