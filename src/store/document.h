#ifndef HBOLD_STORE_DOCUMENT_H_
#define HBOLD_STORE_DOCUMENT_H_

#include <cstdint>
#include <string>

#include "common/json.h"

namespace hbold::store {

/// Documents are JSON objects with a store-assigned integer `_id` field.
using Document = hbold::Json;
using DocId = int64_t;

inline constexpr const char* kIdField = "_id";

}  // namespace hbold::store

#endif  // HBOLD_STORE_DOCUMENT_H_
