#ifndef HBOLD_STORE_DATABASE_H_
#define HBOLD_STORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/collection.h"

namespace hbold::store {

/// A named set of collections with optional directory persistence — the
/// library's embedded stand-in for the MongoDB instance H-BOLD uses to
/// cache Schema Summaries and Cluster Schemas (§2.1, §3.2).
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Returns the collection, creating it on first access.
  Collection* GetCollection(const std::string& name);

  /// Returns the collection or nullptr if it does not exist.
  const Collection* FindCollection(const std::string& name) const;

  std::vector<std::string> CollectionNames() const;

  /// Drops a collection. Returns true if it existed.
  bool DropCollection(const std::string& name);

  /// Writes every collection to `<dir>/<name>.jsonl` (creating `dir`).
  Status SaveToDirectory(const std::string& dir) const;

  /// Loads every `*.jsonl` file in `dir` as a collection.
  Status LoadFromDirectory(const std::string& dir);

 private:
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace hbold::store

#endif  // HBOLD_STORE_DATABASE_H_
