#ifndef HBOLD_STORE_DATABASE_H_
#define HBOLD_STORE_DATABASE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/collection.h"

namespace hbold::store {

/// A named set of collections with optional directory persistence — the
/// library's embedded stand-in for the MongoDB instance H-BOLD uses to
/// cache Schema Summaries and Cluster Schemas (§2.1, §3.2).
///
/// Thread safety: the collection map is guarded by a `std::shared_mutex`;
/// Collection pointers handed out remain valid and internally
/// thread-safe for the life of the database (or until DropCollection).
/// Concurrent GetCollection calls for the same name return the same
/// instance.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Returns the collection, creating it on first access.
  Collection* GetCollection(const std::string& name);

  /// Returns the collection or nullptr if it does not exist.
  const Collection* FindCollection(const std::string& name) const;

  std::vector<std::string> CollectionNames() const;

  /// Drops a collection. Returns true if it existed.
  bool DropCollection(const std::string& name);

  /// Writes every collection to `<dir>/<name>.jsonl` (creating `dir`).
  /// Each file is written to `<name>.jsonl.tmp` first and renamed into
  /// place, so a crash mid-save leaves the previous file intact instead
  /// of a truncated one.
  Status SaveToDirectory(const std::string& dir) const;

  /// Loads every `*.jsonl` file in `dir` as a collection.
  Status LoadFromDirectory(const std::string& dir);

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace hbold::store

#endif  // HBOLD_STORE_DATABASE_H_
