#ifndef HBOLD_STORE_DATABASE_H_
#define HBOLD_STORE_DATABASE_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/collection.h"

namespace hbold::store {

/// A named set of collections with optional directory persistence — the
/// library's embedded stand-in for the MongoDB instance H-BOLD uses to
/// cache Schema Summaries and Cluster Schemas (§2.1, §3.2).
///
/// Thread safety: the collection map is guarded by a `std::shared_mutex`;
/// Collection pointers handed out remain valid and internally
/// thread-safe for the life of the database (or until DropCollection).
/// Concurrent GetCollection calls for the same name return the same
/// instance.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Returns the collection, creating it on first access.
  Collection* GetCollection(const std::string& name);

  /// Returns the collection or nullptr if it does not exist.
  const Collection* FindCollection(const std::string& name) const;

  std::vector<std::string> CollectionNames() const;

  /// Drops a collection. Returns true if it existed.
  bool DropCollection(const std::string& name);

  /// On-disk representation for SaveToDirectory.
  enum class SnapshotFormat {
    /// Versioned binary snapshots (`<encoded-name>.hbsnap`, see
    /// store/snapshot.h): checksummed, and the collection name travels
    /// inside the file so it round-trips exactly. The default.
    kBinary,
    /// Legacy plain `<name>.jsonl` files. Names that are not valid
    /// filename stems (or collide as filenames) cannot round-trip in this
    /// format; kept for interop with external JSONL tooling.
    kJsonl,
  };

  /// Writes every collection into `dir` (creating it). Each file is
  /// written durably: content to `<file>.tmp`, fsync, rename into place,
  /// fsync of the directory — a crash at any point leaves either the
  /// previous complete file or the new one under the final name, never a
  /// truncated file, and the rename survives power loss.
  Status SaveToDirectory(const std::string& dir,
                         SnapshotFormat format = SnapshotFormat::kBinary)
      const;

  /// Loads every `*.hbsnap` snapshot in `dir` as a collection, plus any
  /// legacy `*.jsonl` file whose name no snapshot already covers. A
  /// corrupted or truncated snapshot fails the load with a descriptive
  /// Status. Stale `*.tmp` files left by an interrupted save are logged
  /// (warning) and removed — never loaded.
  Status LoadFromDirectory(const std::string& dir);

  /// Deterministic dump of the whole database — collections in sorted
  /// name order, each as "== <name>\n" + its JSONL dump. Byte-identity of
  /// two CanonicalDump() strings is the save/load round-trip oracle.
  std::string CanonicalDump() const;

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace hbold::store

#endif  // HBOLD_STORE_DATABASE_H_
