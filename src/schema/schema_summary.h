#ifndef HBOLD_SCHEMA_SCHEMA_SUMMARY_H_
#define HBOLD_SCHEMA_SCHEMA_SUMMARY_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/result.h"
#include "extraction/indexes.h"

namespace hbold::schema {

/// A datatype attribute of a class node (name + usage count), e.g.
/// foaf:name used 1200 times on Person.
struct Attribute {
  std::string iri;
  size_t count = 0;
};

/// One node of the Schema Summary: an instantiated class.
struct ClassNode {
  std::string iri;
  std::string label;  // local name, for display
  size_t instance_count = 0;
  std::vector<Attribute> attributes;
};

/// One arc: an object property connecting instances of `src` to instances
/// of `dst`, with usage count. The Schema Summary is a pseudograph: parallel
/// arcs (different properties between the same classes) and self-loops are
/// both meaningful.
struct PropertyArc {
  size_t src = 0;  // index into nodes()
  size_t dst = 0;
  std::string iri;
  size_t count = 0;
};

/// The paper's Schema Summary (§2.1, [2,5]): a pseudograph whose nodes are
/// the instantiated classes of a source and whose arcs are the object
/// properties observed between their instances, annotated with counts.
class SchemaSummary {
 public:
  SchemaSummary() = default;

  /// Derives the Schema Summary from extracted indexes. Object properties
  /// contribute one arc per (property, range class) pair; datatype
  /// properties become attributes of their class node.
  static SchemaSummary FromIndexes(const extraction::IndexSummary& indexes);

  /// Incremental rebuild after a dirty-class merge: nodes for classes NOT
  /// in `dirty` are copied from `prior` (their ClassInfo is unchanged by
  /// construction of the merge), dirty nodes are rebuilt from `merged`, and
  /// ALL arcs are recomputed from `merged` — arcs are index pairs into the
  /// node vector, and any class's rank (hence every index) can shift when
  /// counts move, so patching arcs in place would be incorrect. The result
  /// is value-identical to FromIndexes(merged).
  static SchemaSummary PatchedFromIndexes(
      const SchemaSummary& prior, const extraction::IndexSummary& merged,
      const std::vector<std::string>& dirty);

  const std::string& endpoint_url() const { return endpoint_url_; }
  size_t total_instances() const { return total_instances_; }

  const std::vector<ClassNode>& nodes() const { return nodes_; }
  const std::vector<PropertyArc>& arcs() const { return arcs_; }
  size_t NodeCount() const { return nodes_.size(); }
  size_t ArcCount() const { return arcs_.size(); }

  /// Index of a class by IRI, or -1.
  int FindNode(const std::string& iri) const;

  /// Arcs incident to node `i` (as src or dst).
  std::vector<const PropertyArc*> IncidentArcs(size_t i) const;

  /// Neighbor node indexes of `i` (undirected view, unique, sorted).
  std::vector<size_t> Neighbors(size_t i) const;

  /// Degree of node `i` = in-degree + out-degree over arcs (parallel arcs
  /// each count). This is the degree used for cluster labeling.
  size_t Degree(size_t i) const;

  /// Percentage (0..100) of all class-instance mass covered by `subset`
  /// (node indexes) — the "percentage of the instances represented by the
  /// graph" shown during exploration (Fig. 2).
  double CoveragePercent(const std::set<size_t>& subset) const;

  hbold::Json ToJson() const;
  static Result<SchemaSummary> FromJson(const hbold::Json& j);

 private:
  std::string endpoint_url_;
  size_t total_instances_ = 0;  // sum over nodes of instance_count
  std::vector<ClassNode> nodes_;
  std::vector<PropertyArc> arcs_;
};

}  // namespace hbold::schema

#endif  // HBOLD_SCHEMA_SCHEMA_SUMMARY_H_
