#include "schema/schema_summary.h"

#include <algorithm>

#include "common/string_util.h"

namespace hbold::schema {

SchemaSummary SchemaSummary::FromIndexes(
    const extraction::IndexSummary& indexes) {
  SchemaSummary s;
  s.endpoint_url_ = indexes.endpoint_url;

  std::map<std::string, size_t> index_of;
  for (const extraction::ClassInfo& c : indexes.classes) {
    ClassNode node;
    node.iri = c.iri;
    node.label = IriLocalName(c.iri);
    node.instance_count = c.instance_count;
    index_of[c.iri] = s.nodes_.size();
    s.nodes_.push_back(std::move(node));
    s.total_instances_ += c.instance_count;
  }

  for (const extraction::ClassInfo& c : indexes.classes) {
    size_t src = index_of[c.iri];
    for (const extraction::PropertyInfo& p : c.properties) {
      if (p.is_object_property) {
        for (const auto& [range_iri, count] : p.range_classes) {
          auto it = index_of.find(range_iri);
          if (it == index_of.end()) continue;  // range class not instantiated
          PropertyArc arc;
          arc.src = src;
          arc.dst = it->second;
          arc.iri = p.iri;
          arc.count = count;
          s.arcs_.push_back(std::move(arc));
        }
      } else {
        s.nodes_[src].attributes.push_back(Attribute{p.iri, p.count});
      }
    }
  }
  return s;
}

SchemaSummary SchemaSummary::PatchedFromIndexes(
    const SchemaSummary& prior, const extraction::IndexSummary& merged,
    const std::vector<std::string>& dirty) {
  std::set<std::string> dirty_set(dirty.begin(), dirty.end());
  std::map<std::string, size_t> prior_index;
  for (size_t i = 0; i < prior.nodes_.size(); ++i) {
    prior_index[prior.nodes_[i].iri] = i;
  }

  SchemaSummary s;
  s.endpoint_url_ = merged.endpoint_url;

  std::map<std::string, size_t> index_of;
  for (const extraction::ClassInfo& c : merged.classes) {
    index_of[c.iri] = s.nodes_.size();
    s.total_instances_ += c.instance_count;
    auto it = prior_index.find(c.iri);
    if (dirty_set.count(c.iri) == 0 && it != prior_index.end()) {
      s.nodes_.push_back(prior.nodes_[it->second]);  // quiet: reuse verbatim
      continue;
    }
    ClassNode node;
    node.iri = c.iri;
    node.label = IriLocalName(c.iri);
    node.instance_count = c.instance_count;
    for (const extraction::PropertyInfo& p : c.properties) {
      if (!p.is_object_property) {
        node.attributes.push_back(Attribute{p.iri, p.count});
      }
    }
    s.nodes_.push_back(std::move(node));
  }

  for (const extraction::ClassInfo& c : merged.classes) {
    size_t src = index_of[c.iri];
    for (const extraction::PropertyInfo& p : c.properties) {
      if (!p.is_object_property) continue;
      for (const auto& [range_iri, count] : p.range_classes) {
        auto it = index_of.find(range_iri);
        if (it == index_of.end()) continue;
        s.arcs_.push_back(PropertyArc{src, it->second, p.iri, count});
      }
    }
  }
  return s;
}

int SchemaSummary::FindNode(const std::string& iri) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].iri == iri) return static_cast<int>(i);
  }
  return -1;
}

std::vector<const PropertyArc*> SchemaSummary::IncidentArcs(size_t i) const {
  std::vector<const PropertyArc*> out;
  for (const PropertyArc& a : arcs_) {
    if (a.src == i || a.dst == i) out.push_back(&a);
  }
  return out;
}

std::vector<size_t> SchemaSummary::Neighbors(size_t i) const {
  std::set<size_t> out;
  for (const PropertyArc& a : arcs_) {
    if (a.src == i && a.dst != i) out.insert(a.dst);
    if (a.dst == i && a.src != i) out.insert(a.src);
  }
  return {out.begin(), out.end()};
}

size_t SchemaSummary::Degree(size_t i) const {
  size_t d = 0;
  for (const PropertyArc& a : arcs_) {
    if (a.src == i) ++d;
    if (a.dst == i) ++d;  // self-loops count twice, as in graph theory
  }
  return d;
}

double SchemaSummary::CoveragePercent(const std::set<size_t>& subset) const {
  if (total_instances_ == 0) return 0;
  size_t covered = 0;
  for (size_t i : subset) {
    if (i < nodes_.size()) covered += nodes_[i].instance_count;
  }
  return 100.0 * static_cast<double>(covered) /
         static_cast<double>(total_instances_);
}

Json SchemaSummary::ToJson() const {
  Json j = Json::MakeObject();
  j.Set("endpoint_url", endpoint_url_);
  j.Set("total_instances", total_instances_);
  Json nodes = Json::MakeArray();
  for (const ClassNode& n : nodes_) {
    Json nj = Json::MakeObject();
    nj.Set("iri", n.iri);
    nj.Set("label", n.label);
    nj.Set("instances", n.instance_count);
    Json attrs = Json::MakeArray();
    for (const Attribute& a : n.attributes) {
      Json aj = Json::MakeObject();
      aj.Set("iri", a.iri);
      aj.Set("count", a.count);
      attrs.Append(std::move(aj));
    }
    nj.Set("attributes", std::move(attrs));
    nodes.Append(std::move(nj));
  }
  j.Set("nodes", std::move(nodes));
  Json arcs = Json::MakeArray();
  for (const PropertyArc& a : arcs_) {
    Json aj = Json::MakeObject();
    aj.Set("src", a.src);
    aj.Set("dst", a.dst);
    aj.Set("iri", a.iri);
    aj.Set("count", a.count);
    arcs.Append(std::move(aj));
  }
  j.Set("arcs", std::move(arcs));
  return j;
}

Result<SchemaSummary> SchemaSummary::FromJson(const Json& j) {
  if (!j.is_object()) {
    return Status::InvalidArgument("SchemaSummary JSON must be an object");
  }
  SchemaSummary s;
  s.endpoint_url_ = j.GetString("endpoint_url");
  s.total_instances_ = static_cast<size_t>(j.GetInt("total_instances"));
  const Json* nodes = j.Find("nodes");
  if (nodes != nullptr && nodes->is_array()) {
    for (const Json& nj : nodes->as_array()) {
      ClassNode n;
      n.iri = nj.GetString("iri");
      n.label = nj.GetString("label");
      n.instance_count = static_cast<size_t>(nj.GetInt("instances"));
      const Json* attrs = nj.Find("attributes");
      if (attrs != nullptr && attrs->is_array()) {
        for (const Json& aj : attrs->as_array()) {
          n.attributes.push_back(Attribute{
              aj.GetString("iri"), static_cast<size_t>(aj.GetInt("count"))});
        }
      }
      s.nodes_.push_back(std::move(n));
    }
  }
  const Json* arcs = j.Find("arcs");
  if (arcs != nullptr && arcs->is_array()) {
    for (const Json& aj : arcs->as_array()) {
      PropertyArc a;
      a.src = static_cast<size_t>(aj.GetInt("src"));
      a.dst = static_cast<size_t>(aj.GetInt("dst"));
      a.iri = aj.GetString("iri");
      a.count = static_cast<size_t>(aj.GetInt("count"));
      if (a.src >= s.nodes_.size() || a.dst >= s.nodes_.size()) {
        return Status::InvalidArgument("arc endpoint out of range");
      }
      s.arcs_.push_back(std::move(a));
    }
  }
  return s;
}

}  // namespace hbold::schema
