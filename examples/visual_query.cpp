// The visual query interface: select classes on the Schema Summary, follow
// property arcs, add filters — H-BOLD generates and runs the SPARQL.
//
//   ./build/examples/visual_query

#include <cstdio>

#include "hbold/hbold.h"
#include "workload/scholarly.h"

int main() {
  // Scholarly endpoint + pipeline.
  hbold::rdf::TripleStore store;
  hbold::workload::ScholarlyConfig config;
  config.conferences = 2;
  config.people = 80;
  hbold::workload::GenerateScholarly(config, &store);

  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep(
      "http://www.scholarlydata.org/sparql", "ScholarlyData", &store, &clock);
  hbold::store::Database db;
  hbold::Server server(&db, &clock);
  server.AttachEndpoint(ep.url(), &ep);
  hbold::endpoint::EndpointRecord record;
  record.url = ep.url();
  server.RegisterEndpoint(record);
  if (!server.ProcessEndpoint(ep.url()).ok()) return 1;

  hbold::Presentation presentation(&db);
  auto summary = presentation.LoadSchemaSummary(ep.url());
  if (!summary.ok()) return 1;

  // The user clicks Person on the Schema Summary ...
  std::string ns = hbold::workload::kScholarlyNs;
  int person = summary->FindNode(ns + "Person");
  if (person < 0) return 1;

  hbold::VisualQuery query(*summary);
  std::string person_var = query.SelectClass(static_cast<size_t>(person));

  // ... ticks the rdfs:label attribute ...
  std::string label_var = query.SelectAttribute(
      static_cast<size_t>(person),
      "http://www.w3.org/2000/01/rdf-schema#label");

  // ... follows the affiliation arc to Organisation ...
  for (const auto& arc : summary->arcs()) {
    if (arc.src == static_cast<size_t>(person) &&
        arc.iri == ns + "hasAffiliation") {
      query.FollowArc(arc);
    }
  }

  // ... and filters people whose label contains "1".
  query.FilterRegex(label_var, "1");
  query.SetLimit(8);

  std::printf("generated SPARQL:\n%s\n\n", query.GenerateSparql().c_str());

  auto outcome = query.Execute(&ep);
  if (!outcome.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("results (%zu rows, %.2f ms simulated):\n%s",
              outcome->table.num_rows(), outcome->latency_ms,
              outcome->table.ToTsv().c_str());
  return 0;
}
