// Future-work feature (§5): discovering endpoints from a repository that
// collects SPARQL endpoint *metadata* (SPARQLES-style availability
// measurements), filtering out endpoints too flaky to be worth indexing.
//
//   ./build/examples/metadata_discovery

#include <cstdio>
#include <vector>

#include "hbold/hbold.h"
#include "workload/metadata_repo.h"

int main() {
  hbold::SimClock clock;

  // The repository lists endpoints with measured availability.
  std::vector<hbold::workload::MetadataEntry> entries = {
      {"http://stable-a.example.org/sparql", 0.99},
      {"http://stable-b.example.org/sparql", 0.93},
      {"http://stable-c.example.org/sparql", 0.88},
      {"http://weekly.example.org/sparql", 0.72},
      {"http://flaky.example.org/sparql", 0.41},
      {"http://dying.example.org/sparql", 0.12},
      {"http://dead.example.org/sparql", 0.00},
  };
  hbold::rdf::TripleStore repo_store;
  hbold::workload::GenerateMetadataRepository(
      entries, "http://sparqles.example.org/", &repo_store);
  hbold::endpoint::SimulatedRemoteEndpoint repository(
      "http://sparqles.example.org/sparql", "sparqles-like", &repo_store,
      &clock);

  std::printf("discovery query at threshold 0.8:\n%s\n\n",
              hbold::MetadataRepositoryCrawler::DiscoveryQuery(0.8).c_str());

  hbold::endpoint::EndpointRegistry registry;
  // One of the stable endpoints is already listed.
  hbold::endpoint::EndpointRecord known;
  known.url = "http://stable-b.example.org/sparql";
  known.name = "Stable B";
  registry.Add(known);

  hbold::MetadataRepositoryCrawler crawler(&registry);
  std::printf("%-10s %8s %10s %8s %6s\n", "threshold", "listed", "eligible",
              "known", "new");
  for (double threshold : {0.95, 0.8, 0.5, 0.0}) {
    // Fresh registry copy per threshold so rows are independent.
    hbold::endpoint::EndpointRegistry reg;
    reg.Add(known);
    hbold::MetadataRepositoryCrawler c(&reg);
    auto result = c.Crawl("sparqles-like", &repository, threshold,
                          clock.NowDay());
    if (!result.ok()) {
      std::fprintf(stderr, "crawl failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10.2f %8zu %10zu %8zu %6zu\n", threshold,
                result->endpoints_listed, result->above_threshold,
                result->already_known, result->newly_added);
  }
  std::printf("\nhigher thresholds admit fewer endpoints but spare the\n"
              "refresh scheduler the daily-retry churn of flaky sources.\n");
  return 0;
}
