// Quickstart: load a small Turtle dataset, run the full H-BOLD pipeline
// (index extraction -> Schema Summary -> Cluster Schema), explore it, and
// write a treemap SVG.
//
//   ./build/examples/quickstart [output_dir]

#include <cstdio>
#include <string>

#include "hbold/hbold.h"

namespace {

constexpr char kTurtle[] = R"(
@prefix ex:   <http://example.org/onto#> .
@prefix inst: <http://example.org/inst/> .

inst:alice a ex:Person ; ex:name "Alice" ; ex:worksAt inst:acme ;
    ex:knows inst:bob .
inst:bob a ex:Person ; ex:name "Bob" ; ex:worksAt inst:acme .
inst:carol a ex:Person ; ex:name "Carol" ; ex:worksAt inst:initech .
inst:acme a ex:Organisation ; ex:name "ACME" ; ex:basedIn inst:rome .
inst:initech a ex:Organisation ; ex:name "Initech" ; ex:basedIn inst:milan .
inst:rome a ex:City ; ex:name "Rome" .
inst:milan a ex:City ; ex:name "Milan" .
inst:p1 a ex:Project ; ex:name "Apollo" ; ex:ownedBy inst:acme .
inst:p2 a ex:Project ; ex:name "Hermes" ; ex:ownedBy inst:initech .
)";

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : ".";

  // 1. Load RDF into an in-process triple store and expose it as a
  //    simulated SPARQL endpoint.
  hbold::rdf::TripleStore store;
  auto parsed = hbold::rdf::ParseTurtle(kTurtle, &store);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu triples\n", store.size());

  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep(
      "http://example.org/sparql", "example", &store, &clock);

  // 2. Server layer: register, extract, summarize, cluster, persist.
  hbold::store::Database db;
  hbold::Server server(&db, &clock);
  server.AttachEndpoint(ep.url(), &ep);
  hbold::endpoint::EndpointRecord record;
  record.url = ep.url();
  record.name = "Example LD";
  server.RegisterEndpoint(record);

  auto report = server.ProcessEndpoint(ep.url());
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("pipeline ok: strategy=%s queries=%zu classes=%zu arcs=%zu "
              "clusters=%zu\n",
              report->extraction.strategy_used.c_str(),
              report->extraction.queries_issued, report->classes, report->arcs,
              report->clusters);

  // 3. Presentation layer: load the stored artifacts and explore.
  hbold::Presentation presentation(&db);
  auto summary = presentation.LoadSchemaSummary(ep.url());
  auto clusters = presentation.LoadClusterSchema(ep.url());
  if (!summary.ok() || !clusters.ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }
  for (const auto& cluster : clusters->clusters()) {
    std::printf("cluster '%s': %zu classes, %zu instances\n",
                cluster.label.c_str(), cluster.class_nodes.size(),
                cluster.total_instances);
  }

  hbold::ExplorationSession session(*summary, *clusters);
  int person = summary->FindNode("http://example.org/onto#Person");
  session.FocusClass(static_cast<size_t>(person));
  session.ExpandClass(static_cast<size_t>(person));
  std::printf("after expanding Person: %zu/%zu classes visible, %.1f%% of "
              "instances\n",
              session.VisibleNodeCount(), session.TotalNodeCount(),
              session.CoveragePercent());

  // 4. Treemap of the Cluster Schema (Fig. 4 style) to SVG.
  hbold::viz::Hierarchy hierarchy =
      hbold::viz::HierarchyFromClusterSchema(*clusters, *summary, "Example");
  auto cells = hbold::viz::TreemapLayout(
      hierarchy, hbold::viz::Rect{0, 0, 640, 480});
  auto svg = hbold::viz::RenderTreemap(cells, 640, 480);
  std::string path = out_dir + "/quickstart_treemap.svg";
  auto write = svg.WriteFile(path);
  if (!write.ok()) {
    std::fprintf(stderr, "svg write failed: %s\n", write.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
