// Reproduces the paper's figures on the Scholarly LD: the Fig. 2 four-step
// exploration walk and the four new visualization layouts — Treemap
// (Fig. 4), Sunburst (Fig. 5), Circle Packing (Fig. 6), and Hierarchical
// Edge Bundling (Fig. 7) — written as SVG files.
//
//   ./build/examples/scholarly_exploration [output_dir]

#include <cstdio>
#include <string>

#include "hbold/hbold.h"
#include "workload/scholarly.h"

int main(int argc, char** argv) {
  std::string out_dir = argc > 1 ? argv[1] : ".";

  // Build the Scholarly LD and run the server pipeline on it.
  hbold::rdf::TripleStore store;
  hbold::workload::ScholarlyConfig config;
  size_t triples = hbold::workload::GenerateScholarly(config, &store);
  std::printf("scholarly dataset: %zu triples\n", triples);

  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep(
      "http://www.scholarlydata.org/sparql", "ScholarlyData", &store, &clock);
  hbold::store::Database db;
  hbold::Server server(&db, &clock);
  server.AttachEndpoint(ep.url(), &ep);
  hbold::endpoint::EndpointRecord record;
  record.url = ep.url();
  record.name = "ScholarlyData";
  server.RegisterEndpoint(record);
  auto report = server.ProcessEndpoint(ep.url());
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  hbold::Presentation presentation(&db);
  auto summary = presentation.LoadSchemaSummary(ep.url());
  auto clusters = presentation.LoadClusterSchema(ep.url());
  if (!summary.ok() || !clusters.ok()) return 1;
  std::printf("schema summary: %zu classes, %zu arcs; cluster schema: %zu "
              "clusters\n",
              summary->NodeCount(), summary->ArcCount(),
              clusters->ClusterCount());

  auto write = [&](const hbold::viz::SvgDocument& doc,
                   const std::string& name) {
    std::string path = out_dir + "/" + name;
    auto st = doc.WriteFile(path);
    if (st.ok()) {
      std::printf("wrote %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed: %s\n", st.ToString().c_str());
    }
  };

  // ---- Fig. 2: the four-step exploration, each step rendered. ----
  hbold::ExplorationSession session(*summary, *clusters);
  std::string event_iri =
      std::string(hbold::workload::kScholarlyNs) + "Event";
  int event = summary->FindNode(event_iri);

  struct Step {
    const char* label;
    const char* file;
  };
  const Step steps[] = {
      {"step 1: cluster schema", "fig2_step1_cluster_schema.svg"},
      {"step 2: Event focused", "fig2_step2_event.svg"},
      {"step 3: Event expanded", "fig2_step3_expanded.svg"},
      {"step 4: full schema summary", "fig2_step4_schema_summary.svg"},
  };
  for (int step = 0; step < 4; ++step) {
    if (step == 1) session.FocusClass(static_cast<size_t>(event));
    if (step == 2) session.ExpandClass(static_cast<size_t>(event));
    if (step == 3) session.ExpandAll();

    std::vector<hbold::viz::GraphNode> nodes;
    std::vector<hbold::viz::ForceEdge> edges;
    if (step == 0) {
      // Cluster Schema view: one node per cluster.
      for (const auto& cluster : clusters->clusters()) {
        nodes.push_back(hbold::viz::GraphNode{
            cluster.label,
            8.0 + 2.0 * static_cast<double>(cluster.class_nodes.size()),
            nodes.size()});
      }
      for (const auto& arc : clusters->arcs()) {
        edges.push_back(hbold::viz::ForceEdge{arc.src, arc.dst, 1.0});
      }
    } else {
      for (size_t node : session.VisibleNodes()) {
        nodes.push_back(hbold::viz::GraphNode{
            summary->nodes()[node].label, 8.0,
            static_cast<size_t>(clusters->ClusterOf(node))});
      }
      edges = session.VisibleEdges();
    }
    auto positions = hbold::viz::ForceLayout(
        nodes.size(), edges, {800, 600, 300, 42});
    write(hbold::viz::RenderGraph(nodes, edges, positions, 800, 600),
          steps[step].file);
    std::printf("%-30s nodes=%2zu coverage=%5.1f%%\n", steps[step].label,
                step == 0 ? clusters->ClusterCount()
                          : session.VisibleNodeCount(),
                session.CoveragePercent());
  }

  // ---- Figs. 4-6: hierarchy layouts over the Cluster Schema. ----
  hbold::viz::Hierarchy hierarchy = hbold::viz::HierarchyFromClusterSchema(
      *clusters, *summary, "ScholarlyData");
  write(hbold::viz::RenderTreemap(
            hbold::viz::TreemapLayout(hierarchy,
                                      hbold::viz::Rect{0, 0, 800, 600}),
            800, 600),
        "fig4_treemap.svg");
  write(hbold::viz::RenderSunburst(hbold::viz::SunburstLayout(hierarchy, {}),
                                   300),
        "fig5_sunburst.svg");
  write(hbold::viz::RenderCirclePack(hbold::viz::CirclePackLayout(hierarchy,
                                                                  {}),
                                     300),
        "fig6_circle_pack.svg");

  // ---- Fig. 7: hierarchical edge bundling, Event as class of interest.
  auto bundling = hbold::viz::BundleSchemaSummary(*summary, *clusters, {});
  int focus = -1;
  for (size_t i = 0; i < bundling.leaves.size(); ++i) {
    if (static_cast<int>(bundling.leaves[i].schema_node) == event) {
      focus = static_cast<int>(i);
    }
  }
  write(hbold::viz::RenderEdgeBundling(bundling, 300, focus),
        "fig7_edge_bundling.svg");
  std::printf("edge bundling: %zu leaves, %zu edges, ink %.0f (straight "
              "%.0f)\n",
              bundling.leaves.size(), bundling.edges.size(),
              bundling.TotalInk(), bundling.StraightInk());
  return 0;
}
