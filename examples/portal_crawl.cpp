// Simulates the §3.3 endpoint-discovery workflow: three open-data portals
// are crawled with the paper's Listing 1 query, discovered endpoints are
// deduplicated into the registry, and a few days of the §3.1 refresh
// cycle run over the result.
//
//   ./build/portal_crawl [parallelism]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "hbold/hbold.h"
#include "workload/ld_generator.h"
#include "workload/portal_generator.h"

namespace {

struct Portal {
  std::string name;
  hbold::rdf::TripleStore catalog;
  std::unique_ptr<hbold::endpoint::SimulatedRemoteEndpoint> endpoint;
};

}  // namespace

int main(int argc, char** argv) {
  hbold::SimClock clock;
  hbold::store::Database db;
  hbold::ServerOptions options;
  if (argc > 1) options.parallelism = std::atoi(argv[1]);
  hbold::Server server(&db, &clock, options);

  // Three portals, each listing a few SPARQL endpoints among many plain
  // file datasets.
  std::vector<std::vector<std::string>> urls = {
      {"http://data.europa.one/sparql", "http://data.europa.two/sparql",
       "http://stats.example.eu/sparql"},
      {"http://opendata.eu/sparql"},
      {"http://io.paris.example.org/sparql",
       "http://lod.paris.example.org/sparql"},
  };
  const char* names[] = {"European Data Portal", "EU Open Data Portal",
                         "IO Data Science Paris"};
  std::vector<Portal> portals(3);
  for (size_t i = 0; i < portals.size(); ++i) {
    portals[i].name = names[i];
    hbold::workload::PortalConfig config;
    config.portal_name = names[i];
    config.namespace_iri =
        "http://portal" + std::to_string(i) + ".example.org/";
    config.total_datasets = 40;
    config.sparql_urls = urls[i];
    hbold::workload::GeneratePortalCatalog(config, &portals[i].catalog);
    portals[i].endpoint =
        std::make_unique<hbold::endpoint::SimulatedRemoteEndpoint>(
            config.namespace_iri + "sparql", names[i], &portals[i].catalog,
            &clock);
  }

  // Crawl.
  hbold::PortalCrawler crawler(&server.registry());
  std::printf("%-24s %9s %8s %6s %6s\n", "portal", "matched", "distinct",
              "known", "new");
  for (Portal& portal : portals) {
    auto result =
        crawler.Crawl(portal.name, portal.endpoint.get(), clock.NowDay());
    if (!result.ok()) {
      std::fprintf(stderr, "crawl failed: %s\n",
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("%-24s %9zu %8zu %6zu %6zu\n", result->portal_name.c_str(),
                result->datasets_matched, result->distinct_urls,
                result->already_known, result->newly_added);
  }
  std::printf("registry now lists %zu endpoints\n", server.registry().size());

  // Back the discovered endpoints with simulated LD sources (two of the
  // six are dead and never extract).
  std::vector<std::unique_ptr<hbold::rdf::TripleStore>> stores;
  std::vector<std::unique_ptr<hbold::endpoint::SimulatedRemoteEndpoint>> eps;
  size_t attach_count = 0;
  for (const auto* record : server.registry().All()) {
    ++attach_count;
    if (attach_count % 3 == 0) continue;  // dead endpoint: no route
    auto store = std::make_unique<hbold::rdf::TripleStore>();
    hbold::workload::SyntheticLdConfig config;
    config.num_classes = 4 + attach_count * 3;
    config.max_instances_per_class = 40;
    config.seed = attach_count;
    hbold::workload::GenerateSyntheticLd(config, store.get());
    auto ep = std::make_unique<hbold::endpoint::SimulatedRemoteEndpoint>(
        record->url, record->name, store.get(), &clock);
    server.AttachEndpoint(record->url, ep.get());
    stores.push_back(std::move(store));
    eps.push_back(std::move(ep));
  }

  // Run the daily refresh cycle for a week (fanning out over
  // options.parallelism workers when > 1).
  for (int day = 0; day < 7; ++day) {
    hbold::DailyReport report = server.RunDailyUpdate();
    std::printf(
        "day %lld: due=%zu ok=%zu failed=%zu workers=%d "
        "latency sum=%.0fms makespan=%.0fms (indexed total: %zu)\n",
        static_cast<long long>(report.day), report.due, report.succeeded,
        report.failed, report.parallelism, report.sum_latency_ms,
        report.makespan_ms, server.registry().IndexedCount());
    clock.AdvanceDays(1);
  }

  // Show the dataset list a user would see.
  hbold::Presentation presentation(&db);
  for (const hbold::DatasetInfo& info : presentation.ListDatasets()) {
    std::printf("dataset %-42s classes=%3zu instances=%5zu\n",
                info.url.c_str(), info.classes, info.total_instances);
  }
  return 0;
}
