// E5 — Fig. 5: Sunburst of the Cluster Schema. Regenerates the layout,
// verifies the ring structure (inner ring = clusters, outer ring =
// classes, angles proportional to instance counts, rings partition the
// full circle), and times the layout across schema sizes.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "cluster/cluster_schema.h"
#include "cluster/louvain.h"
#include "extraction/extractor.h"
#include "viz/render.h"
#include "viz/sunburst.h"
#include "workload/ld_generator.h"

namespace {

hbold::viz::Hierarchy SyntheticHierarchy(size_t classes, uint64_t seed) {
  hbold::rdf::TripleStore store;
  hbold::workload::SyntheticLdConfig config;
  config.num_classes = classes;
  config.max_instances_per_class = 50;
  config.seed = seed;
  hbold::workload::GenerateSyntheticLd(config, &store);
  hbold::SimClock clock;
  hbold::endpoint::SimulatedRemoteEndpoint ep("http://x/sparql", "x", &store,
                                              &clock);
  auto indexes = hbold::extraction::IndexExtractor().Extract(&ep, nullptr);
  auto summary = hbold::schema::SchemaSummary::FromIndexes(*indexes);
  auto clusters = hbold::cluster::ClusterSchema::FromPartition(
      summary,
      hbold::cluster::Louvain(hbold::cluster::BuildClassGraph(summary)));
  return hbold::viz::HierarchyFromClusterSchema(clusters, summary, "synth");
}

void PrintInvariantTable() {
  hbold::bench::PrintHeader("E5: Fig. 5 sunburst of the Cluster Schema");
  std::printf("%-10s %8s %14s %16s %12s\n", "classes", "slices",
              "ring-1 angle", "angle error", "layout ms");
  for (size_t classes : {10, 30, 100, 300}) {
    hbold::viz::Hierarchy h = SyntheticHierarchy(classes, classes + 1);
    hbold::Stopwatch sw;
    auto slices = hbold::viz::SunburstLayout(h, {});
    double ms = sw.ElapsedMillis();

    // Ring 1 (clusters) must cover exactly 2*pi.
    double ring1 = 0;
    for (const auto& s : slices) {
      if (s.depth == 1) ring1 += s.a1 - s.a0;
    }
    // Leaf angular spans proportional to effective values within each
    // cluster: compare against direct computation.
    double max_err = 0;
    size_t cluster_index = 0;
    std::vector<double> cluster_values = h.ChildValues();
    for (size_t ci = 0; ci < h.children.size(); ++ci) {
      const auto& cluster = h.children[ci];
      std::vector<double> leaf_values = cluster.ChildValues();
      double cluster_total = 0;
      for (double v : leaf_values) cluster_total += v;
      // Find this cluster's slice span.
      double span = 0;
      for (const auto& s : slices) {
        if (s.depth == 1 && s.name == cluster.name) span = s.a1 - s.a0;
      }
      size_t li = 0;
      for (const auto& s : slices) {
        if (s.depth == 2 && s.group == ci) {
          double expected = span * leaf_values[li] / cluster_total;
          max_err = std::max(max_err,
                             std::fabs((s.a1 - s.a0) - expected));
          ++li;
        }
      }
      ++cluster_index;
    }
    (void)cluster_values;
    (void)cluster_index;
    std::printf("%-10zu %8zu %13.6f %15.2e %12.3f\n", classes, slices.size(),
                ring1 / (2 * hbold::viz::kPi), max_err, ms);
  }
  std::printf("\nshape check: ring-1 angle == 1.0 turns, angle error ~ 0.\n");
}

void BM_SunburstLayout(benchmark::State& state) {
  hbold::viz::Hierarchy h =
      SyntheticHierarchy(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    auto slices = hbold::viz::SunburstLayout(h, {});
    benchmark::DoNotOptimize(slices);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_SunburstLayout)->Arg(10)->Arg(100)->Arg(1000)->Complexity();

void BM_SunburstRender(benchmark::State& state) {
  hbold::viz::Hierarchy h = SyntheticHierarchy(100, 6);
  auto slices = hbold::viz::SunburstLayout(h, {});
  for (auto _ : state) {
    auto svg = hbold::viz::RenderSunburst(slices, 300);
    benchmark::DoNotOptimize(svg.ToString());
  }
}
BENCHMARK(BM_SunburstRender);

}  // namespace

int main(int argc, char** argv) {
  PrintInvariantTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
